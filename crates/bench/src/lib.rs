//! # ceres-bench
//!
//! Benchmark harness: the `repro` binary regenerates every table and figure
//! of the paper (see `repro help`), and the Criterion benches
//! (`benches/substrates.rs`, `benches/pipeline.rs`) measure the runtime of
//! each pipeline stage on representative workloads.

/// Parse `--scale`, `--seed`, `--threads` and the experiment list from CLI
/// args (`--threads 0` = auto: `CERES_THREADS`, then the machine).
pub fn parse_args(args: &[String]) -> (ceres_eval::experiments::ExpConfig, Vec<String>) {
    let mut cfg = ceres_eval::experiments::ExpConfig::default();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.scale);
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.seed);
            }
            "--threads" => {
                i += 1;
                cfg.threads = args.get(i).and_then(|v| v.parse().ok()).filter(|&t| t > 0);
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    (cfg, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_targets() {
        let args: Vec<String> =
            ["--scale", "0.05", "table3", "fig6", "--seed", "7", "--threads", "3"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let (cfg, targets) = parse_args(&args);
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(targets, vec!["table3", "fig6"]);
    }

    #[test]
    fn threads_zero_means_auto() {
        let args: Vec<String> = ["--threads", "0"].iter().map(|s| s.to_string()).collect();
        let (cfg, _) = parse_args(&args);
        assert_eq!(cfg.threads, None);
    }

    #[test]
    fn default_target_is_all() {
        let (_, targets) = parse_args(&[]);
        assert_eq!(targets, vec!["all"]);
    }
}
