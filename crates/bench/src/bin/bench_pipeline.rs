//! Thread-scaling smoke benchmark for the perf trajectory.
//!
//! Runs the CERES pipeline on one SWDE-like movie-vertical site at 1 thread
//! and at N threads, verifies the outputs are identical (the runtime's
//! determinism contract), and writes the wall times to a JSON file so CI
//! accumulates perf data over time. Three variants are timed: the batch
//! `run_site` protocol, the pre-parsed `run_site_views` hot path, and the
//! streaming `SiteSession` path (`run_site_streaming`) where pages are
//! pushed one at a time through the ingest reorder buffer — the overlap
//! win of the train-once/extract-many API.
//!
//! ```text
//! bench_pipeline [--scale S] [--seed N] [--out PATH] [--baseline PATH]
//!                                                  (default out: BENCH_pipeline.json)
//! ```
//!
//! `--baseline` points at a previous run's JSON (e.g. the committed
//! `BENCH_pipeline.json` from the last PR); its single-thread wall times
//! are embedded in the output as `baseline_*` fields together with the
//! before→after ratio, so the perf trajectory is recorded in the artifact
//! itself.
//!
//! Built with `--features runtime-stats`, the pool's scheduling counters
//! (jobs executed, helper joins, steal misses) are appended to the JSON
//! and printed to stderr.
//!
//! The full-protocol run also records a per-stage wall-time profile
//! (`stages_run_site`: Parse → Cluster → Annotate → Plan → Train →
//! Extract, each with t1/tN ms and the tN/t1 speedup) plus `host_cores`,
//! so a flat speedup on a small machine is distinguishable from a real
//! scheduling regression.

use ceres_core::page::PageView;
use ceres_core::pipeline::{run_site_views, AnnotationMode, SiteRun};
use ceres_core::session::{SiteSession, TrainedSite};
use ceres_core::CeresConfig;
use ceres_eval::harness::{protocol_pages, run_ceres_on_site, EvalProtocol, SystemKind};
use ceres_runtime::Runtime;
use ceres_synth::swde::{movie_vertical, SwdeConfig};
use std::fmt::Write as _;
use std::time::Instant;

const ITERATIONS: usize = 3;

/// Best-of-N wall time in milliseconds.
fn time_ms<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..ITERATIONS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

fn assert_same_run(a: &SiteRun, b: &SiteRun) {
    assert_eq!(a.stats, b.stats, "serial and parallel stats diverged");
    assert_eq!(a.extractions, b.extractions, "serial and parallel extractions diverged");
}

/// Pull `"key": <number>` (possibly nested as `"t1": …` after `key`) out of
/// our own JSON format — two fixed shapes, no general parser needed.
fn json_number_after(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let start = rest.find(|c: char| c.is_ascii_digit() || c == '-')?;
    let rest = &rest[start..];
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    rest[..end].parse().ok()
}

/// `(run_site t1, run_site_views t1, run_site_streaming t1)` from a
/// previous run's JSON text. Streaming is `None` for records written
/// before the streaming path existed (PR ≤ 3).
fn baseline_t1(json: &str) -> Option<(f64, f64, Option<f64>)> {
    let site = json_number_after(json, "\"run_site_ms\": {\"t1\":")?;
    let views = json_number_after(json, "\"run_site_views_ms\": {\"t1\":")?;
    let streaming = json_number_after(json, "\"run_site_streaming_ms\": {\"t1\":");
    Some((site, views, streaming))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.02f64;
    let mut seed = 42u64;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    // Malformed values fail loudly: a typo'd `--scale 0,05` silently
    // benchmarking the default would poison every baseline comparison
    // downstream.
    fn parse_or_die<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
        let raw = value.unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        raw.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse {raw:?}");
            std::process::exit(2);
        })
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_or_die("--scale", args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_or_die("--seed", args.get(i));
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or(out_path);
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned();
            }
            other => {
                eprintln!(
                    "unknown arg {other}; usage: \
                     bench_pipeline [--scale S] [--seed N] [--out PATH] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let parallel_threads = Runtime::from_env().threads().max(2);
    eprintln!("# bench_pipeline: scale={scale} seed={seed} threads=1 vs {parallel_threads}");

    let (v, _) = movie_vertical(SwdeConfig { seed, scale });
    let site = &v.sites[0];

    // Full protocol run (parse + cluster + annotate + train + extract).
    let cfg_at = |threads: usize| CeresConfig::new(seed).with_threads(threads);
    let (site_t1, run_a) = time_ms(|| {
        run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg_at(1), SystemKind::CeresFull)
    });
    let (site_tn, run_b) = time_ms(|| {
        run_ceres_on_site(
            &v.kb,
            site,
            EvalProtocol::SplitHalves,
            &cfg_at(parallel_threads),
            SystemKind::CeresFull,
        )
    });
    assert_same_run(&run_a, &run_b);

    // Pre-parsed run (the `run_site_views` hot path the benches track).
    let (train, _) = protocol_pages(site, EvalProtocol::WholeSite);
    let views: Vec<PageView> =
        train.iter().map(|(id, html)| PageView::build(id, html, &v.kb)).collect();
    // Match-path summary: how far unique-text folding collapses the
    // site's field texts before they reach the KB matcher, and (with
    // `runtime-stats`) the hit rate of one ingest-sized MatchCache warmed
    // across the whole site's pages.
    let all_norms: Vec<&str> =
        views.iter().flat_map(|view| view.fields.iter().map(|f| f.norm.as_str())).collect();
    let match_total_texts = all_norms.len();
    let match_unique_texts = ceres_text::fold_unique(&all_norms).uniq.len();
    let match_fold_ratio = match_total_texts as f64 / (match_unique_texts as f64).max(1.0);
    eprintln!(
        "# match path: {match_total_texts} field texts -> {match_unique_texts} unique \
         (fold ratio {match_fold_ratio:.3})"
    );
    #[cfg(feature = "runtime-stats")]
    let match_cache_hit_rate = {
        let mut cache = ceres_kb::MatchCache::new(&v.kb, 1 << 12);
        for (id, html) in &train {
            let _ = PageView::build_with_cache(id, html, &v.kb, &mut cache);
        }
        let stats = cache.stats();
        eprintln!(
            "# match cache: {} hits / {} misses (hit rate {:.3})",
            stats.hits,
            stats.misses,
            stats.hit_rate()
        );
        stats.hit_rate()
    };

    let (views_t1, run_c) =
        time_ms(|| run_site_views(&v.kb, &views, None, &cfg_at(1), AnnotationMode::Full));
    let (views_tn, run_d) = time_ms(|| {
        run_site_views(&v.kb, &views, None, &cfg_at(parallel_threads), AnnotationMode::Full)
    });
    assert_same_run(&run_c, &run_d);

    // Streaming run: pages pushed one at a time through the SiteSession
    // ingest buffer (parse overlaps the push loop), then train + serve.
    // Must be byte-identical to the batch whole-site run above.
    let streaming_run = |threads: usize| {
        let mut session = SiteSession::builder(&v.kb).config(cfg_at(threads)).build();
        for (id, html) in &train {
            session.push_page(id.clone(), html.clone());
        }
        let trained = session.finish_training();
        let n = trained.n_training_pages();
        let extractions = trained.extract_training_pages();
        trained.into_site_run(extractions, n)
    };
    let (stream_t1, run_e) = time_ms(|| streaming_run(1));
    let (stream_tn, run_f) = time_ms(|| streaming_run(parallel_threads));
    assert_same_run(&run_e, &run_f);
    assert_same_run(&run_c, &run_e); // streaming ≡ batch, byte for byte

    // Artifact round trip: the train/serve process split's cost. Size plus
    // save/load wall times go into the JSON; a probe batch pins the loaded
    // site to the in-memory one (full equivalence lives in tests/artifact.rs).
    let trained = {
        let mut session = SiteSession::builder(&v.kb).config(cfg_at(1)).build();
        session.ingest(train.iter().cloned());
        session.finish_training()
    };
    let (artifact_save_ms, artifact) =
        time_ms(|| trained.to_bytes().expect("serialize trained site"));
    let artifact_bytes = artifact.len();
    let (artifact_load_ms, loaded) = time_ms(|| {
        TrainedSite::load_on(&v.kb, Runtime::new(1), &artifact[..]).expect("load trained site")
    });
    let probe: Vec<(String, String)> = train.iter().take(8).cloned().collect();
    assert_eq!(
        loaded.extract_batch(&probe),
        trained.extract_batch(&probe),
        "loaded artifact diverged from the in-memory session"
    );
    eprintln!(
        "# artifact: {artifact_bytes} bytes, save {artifact_save_ms:.2} ms, \
         load {artifact_load_ms:.2} ms"
    );

    // Containment tax: the outcome-typed serve path (guards + per-page
    // panic isolation) vs the fail-fast one, on identical clean pages at
    // one thread. The Ok outcomes must flatten to the fail-fast batch
    // byte-for-byte; the wall-time ratio is the price of isolation on a
    // clean run (target: ≤ 2%). The two paths are timed interleaved
    // (plain, guarded, plain, guarded, …) so a machine-wide slowdown
    // mid-measurement skews both the same way instead of masquerading as
    // containment overhead. More reps than the pipeline timings: the
    // quantity is a ratio of two ~40 ms figures, so best-of needs a few
    // extra shots at a quiet machine before the minimum stabilizes.
    let mut serve_plain_t1 = f64::INFINITY;
    let mut serve_guarded_t1 = f64::INFINITY;
    let mut plain = Vec::new();
    let mut outcomes = Vec::new();
    for _ in 0..ITERATIONS + 4 {
        let t0 = Instant::now();
        plain = trained.extract_batch(&train);
        serve_plain_t1 = serve_plain_t1.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        outcomes = trained.try_extract_batch(&train);
        serve_guarded_t1 = serve_guarded_t1.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let flattened: Vec<ceres_core::Extraction> =
        outcomes.iter().filter_map(|o| o.extractions()).flatten().cloned().collect();
    assert_eq!(flattened, plain, "guarded serve diverged from the fail-fast serve");
    let containment_overhead = serve_guarded_t1 / serve_plain_t1.max(f64::EPSILON) - 1.0;
    // The hostile corpus through the same guarded path: every guard
    // violation must land in quarantine, not abort the process.
    let hostile_pages: Vec<(String, String)> =
        ceres_synth::hostile::hostile_corpus(seed).into_iter().map(|p| (p.id, p.html)).collect();
    let quarantined_pages = trained
        .try_extract_batch(&hostile_pages)
        .iter()
        .filter(|o| matches!(o, ceres_core::ExtractOutcome::Failed(_)))
        .count();
    assert!(quarantined_pages >= 3, "hostile corpus must trip the serve guards");
    eprintln!(
        "# guarded serve: {serve_plain_t1:.2} ms plain vs {serve_guarded_t1:.2} ms guarded \
         ({:+.2}% overhead), {quarantined_pages} hostile pages quarantined",
        containment_overhead * 100.0
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"pipeline\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \
         \"site\": \"{}\",\n  \"pages\": {},\n  \"threads_parallel\": {parallel_threads},\n  \
         \"run_site_ms\": {{\"t1\": {site_t1:.2}, \"tN\": {site_tn:.2}}},\n  \
         \"run_site_views_ms\": {{\"t1\": {views_t1:.2}, \"tN\": {views_tn:.2}}},\n  \
         \"run_site_streaming_ms\": {{\"t1\": {stream_t1:.2}, \"tN\": {stream_tn:.2}}},\n  \
         \"speedup_run_site\": {:.3},\n  \"speedup_run_site_views\": {:.3},\n  \
         \"speedup_run_site_streaming\": {:.3},\n  \
         \"artifact_bytes\": {artifact_bytes},\n  \
         \"artifact_save_ms\": {artifact_save_ms:.2},\n  \
         \"artifact_load_ms\": {artifact_load_ms:.2},\n  \
         \"serve_batch_ms\": {serve_plain_t1:.2},\n  \
         \"serve_guarded_ms\": {serve_guarded_t1:.2},\n  \
         \"containment_overhead\": {containment_overhead:.4},\n  \
         \"quarantined_pages\": {quarantined_pages}",
        site.name,
        site.pages.len(),
        site_t1 / site_tn,
        views_t1 / views_tn,
        stream_t1 / stream_tn,
    );
    // Per-stage wall-time profile of the full-protocol run at both thread
    // counts (the last iteration's profile — representative, not best-of).
    // `host_cores` is recorded so a reader can tell whether a flat tN/t1
    // is a scheduling problem or just a small machine.
    let _ = write!(
        json,
        ",\n  \"host_cores\": {}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );
    json.push_str(",\n  \"stages_run_site\": {");
    eprintln!("# per-stage (run_site): stage t1_ms tN_ms tN/t1");
    for (i, ((name, s1), (_, sn))) in
        run_a.profile.stages().iter().zip(run_b.profile.stages().iter()).enumerate()
    {
        let speedup = if sn.ms > 0.0 { s1.ms / sn.ms } else { 0.0 };
        let _ = write!(
            json,
            "{}\n    \"{name}\": {{\"t1_ms\": {:.2}, \"tN_ms\": {:.2}, \"speedup\": {speedup:.3}, \
             \"tN_pool_jobs\": {}}}",
            if i == 0 { "" } else { "," },
            s1.ms,
            sn.ms,
            sn.pool_jobs,
        );
        eprintln!("#   {name:<9} {:>9.2} {:>9.2} {speedup:>6.3}", s1.ms, sn.ms);
    }
    json.push_str("\n  }");
    // Train-path summary of the single-thread full-protocol run: stage
    // wall time plus the duplicate-folding totals (examples in, unique
    // rows walked, examples-per-unique-row ratio). CI's job summary and
    // the report-only serial-train ratio read these.
    let _ = write!(
        json,
        ",\n  \"train_ms\": {:.2},\n  \"train_examples\": {},\n  \
         \"train_unique_rows\": {},\n  \"train_fold_ratio\": {:.3}",
        run_a.profile.train.ms,
        run_a.fold.n_examples,
        run_a.fold.n_unique_rows,
        run_a.fold.fold_ratio(),
    );
    eprintln!(
        "# train: {:.2} ms t1, {} examples -> {} unique rows (fold ratio {:.3})",
        run_a.profile.train.ms,
        run_a.fold.n_examples,
        run_a.fold.n_unique_rows,
        run_a.fold.fold_ratio(),
    );
    // KB match-path summary (the views-path folding + cache from PR 10).
    let _ = write!(
        json,
        ",\n  \"match_total_texts\": {match_total_texts},\n  \
         \"match_unique_texts\": {match_unique_texts},\n  \
         \"match_fold_ratio\": {match_fold_ratio:.3}"
    );
    #[cfg(feature = "runtime-stats")]
    let _ = write!(json, ",\n  \"match_cache_hit_rate\": {match_cache_hit_rate:.3}");
    // Before→after trajectory against a previous run (the committed
    // record): < 1.0 means this build's single-thread path is faster.
    if let Some(path) = baseline_path.as_deref() {
        // One read serves both the t1 triple and the artifact fields.
        let baseline_json = std::fs::read_to_string(path).unwrap_or_default();
        match baseline_t1(&baseline_json) {
            Some((base_site, base_views, base_streaming)) => {
                let _ = write!(
                    json,
                    ",\n  \"baseline_run_site_t1_ms\": {base_site:.2},\n  \
                     \"baseline_run_site_views_t1_ms\": {base_views:.2},\n  \
                     \"t1_vs_baseline_run_site\": {:.3},\n  \
                     \"t1_vs_baseline_run_site_views\": {:.3}",
                    site_t1 / base_site,
                    views_t1 / base_views,
                );
                if let Some(base_streaming) = base_streaming {
                    let _ = write!(
                        json,
                        ",\n  \"baseline_run_site_streaming_t1_ms\": {base_streaming:.2},\n  \
                         \"t1_vs_baseline_run_site_streaming\": {:.3}",
                        stream_t1 / base_streaming,
                    );
                }
                // Artifact trajectory (absent from records older than the
                // codec layer — PR ≤ 4).
                if let Some(base_bytes) = json_number_after(&baseline_json, "\"artifact_bytes\":") {
                    let _ = write!(
                        json,
                        ",\n  \"baseline_artifact_bytes\": {base_bytes:.0},\n  \
                         \"artifact_bytes_vs_baseline\": {:.3}",
                        artifact_bytes as f64 / base_bytes,
                    );
                }
            }
            // Loud, not fatal: the record must never silently stop
            // accumulating, but a missing baseline (first run on a fresh
            // clone) shouldn't fail the bench either.
            None => eprintln!(
                "# WARNING: --baseline {path} missing or unparsable; \
                 baseline_* fields omitted from {out_path}"
            ),
        }
    }
    // Pool scheduling counters (the `runtime-stats` feature): how many
    // jobs the pool ran for this whole process, how often idle workers
    // joined them, and how often a woken worker lost the claim race.
    #[cfg(feature = "runtime-stats")]
    {
        let stats = ceres_runtime::pool_stats();
        let _ = write!(
            json,
            ",\n  \"pool_jobs_executed\": {},\n  \"pool_helper_joins\": {},\n  \
             \"pool_steal_misses\": {}",
            stats.jobs_executed, stats.helper_joins, stats.steal_misses,
        );
        eprintln!(
            "# pool stats: jobs_executed={} helper_joins={} steal_misses={}",
            stats.jobs_executed, stats.helper_joins, stats.steal_misses
        );
    }
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("{json}");
    eprintln!("# wrote {out_path}");
}
