//! Regenerate every table and figure of the paper's evaluation section,
//! and exercise the train/serve process split on the synthetic fixture.
//!
//! ```text
//! repro [--scale S] [--seed N] [targets…]
//!
//! targets: all | table1 … table9 | fig2 | fig4 | fig5 | fig6 | ablations
//! default: all (at --scale 0.1)
//!
//! repro train [--scale S] [--seed N] [--threads T] [--site NAME|IDX] [--out PATH]
//! repro serve --artifact PATH [--scale S] [--seed N] [--threads T]
//!             [--site NAME|IDX] [--pages train|eval|all] [--verify | --fault-inject]
//! ```
//!
//! `train` builds the deterministic movie-vertical fixture, trains a
//! [`SiteSession`] on the protocol's annotation half, and writes the
//! frozen [`TrainedSite`] as a versioned artifact. `serve` — typically a
//! *different process* — rebuilds the same fixture (same `--scale`/
//! `--seed`), loads the artifact, and extracts from the chosen pages;
//! `--verify` additionally re-runs the whole session in-process and
//! asserts the served extractions are byte-identical.
//!
//! `--fault-inject` swaps the serve phase for the fault-isolation smoke:
//! the selected pages are armed with a seeded
//! [`FaultPlan`](ceres_synth::hostile::FaultPlan), the hostile corpus and
//! a mid-crawl template redesign are appended, and everything is served
//! through the outcome-typed [`TrainedSite::try_extract_batch`]. The run
//! prints quarantine counts by reason plus the drift watchdog's verdict
//! and exits non-zero unless every fault was contained, every expected
//! guard fired, and the watchdog flagged the redesign. Injected panics
//! only detonate in builds with `--features fault-inject`; without the
//! feature the same corpus must quarantine 0 panics.

use ceres_core::session::{SiteSession, TrainedSite};
use ceres_core::{CeresConfig, Extraction};
use ceres_eval::experiments as exp;
use ceres_eval::harness::{protocol_pages, EvalProtocol};
use ceres_synth::swde::{movie_vertical, SwdeConfig, SwdeVertical};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => return train_cmd(&args[1..]),
        Some("serve") => return serve_cmd(&args[1..]),
        _ => {}
    }
    // `--stats` anywhere switches to the per-stage profile report.
    if args.iter().any(|a| a == "--stats") {
        let rest: Vec<String> = args.iter().filter(|a| *a != "--stats").cloned().collect();
        return stats_cmd(&rest);
    }
    if args.iter().any(|a| a == "help" || a == "--help" || a == "-h") {
        println!(
            "repro [--scale S] [--seed N] [--threads T] [targets…]\n\
             targets: all | table1 table2 table3 table4 table5 table6 table7 table8 table9\n\
             \u{20}        | fig2 fig4 fig5 fig6 | ablations\n\
             --threads 0 (default) = auto: CERES_THREADS env, then the machine\n\
             \n\
             repro train [--scale S] [--seed N] [--threads T] [--site NAME|IDX] [--out PATH]\n\
             \u{20}   train once on the fixture's annotation half, write a TrainedSite artifact\n\
             repro serve --artifact PATH [--scale S] [--seed N] [--threads T]\n\
             \u{20}       [--site NAME|IDX] [--pages train|eval|all] [--verify | --fault-inject]\n\
             \u{20}   load the artifact in this process and extract; --verify diffs against\n\
             \u{20}   an in-process train+serve run (exit 1 on any divergence);\n\
             \u{20}   --fault-inject serves a poisoned stream through the outcome-typed\n\
             \u{20}   path and exits 1 unless every fault is contained and quarantined\n\
             \u{20}   (injected panics need a build with --features fault-inject)\n\
             repro --stats [--scale S] [--seed N] [--threads T] [--site NAME|IDX]\n\
             \u{20}   run one site end-to-end and print the per-stage wall-time profile\n\
             \u{20}   (pool-job counts need a build with --features runtime-stats)"
        );
        return;
    }
    let (cfg, targets) = ceres_bench::parse_args(&args);
    let want = |t: &str| targets.iter().any(|x| x == t || x == "all");
    eprintln!(
        "# repro: seed={} scale={} threads={} targets={targets:?}",
        cfg.seed,
        cfg.scale,
        ceres_runtime::Runtime::with_threads(cfg.threads).threads()
    );

    let t0 = std::time::Instant::now();
    let section = |title: &str, body: String| {
        println!("==============================================================");
        println!("{title}   [t+{:.1}s]", t0.elapsed().as_secs_f64());
        println!("==============================================================");
        println!("{body}");
    };

    if want("table1") {
        section("TABLE 1", exp::table1(&cfg));
    }
    if want("table2") {
        section("TABLE 2", exp::table2(&cfg));
    }
    if want("table3") {
        section("TABLE 3", exp::table3(&cfg));
    }
    if want("table4") {
        section("TABLE 4", exp::table4(&cfg));
    }
    if want("table5") || want("table6") || want("table7") {
        let imdb = exp::build_imdb(&cfg);
        if want("table5") {
            section("TABLE 5", exp::table5(&cfg, &imdb));
        }
        if want("table6") {
            section("TABLE 6", exp::table6(&cfg, &imdb));
        }
        if want("table7") {
            section("TABLE 7", exp::table7(&cfg, &imdb));
        }
    }
    if want("table8") || want("table9") || want("fig6") {
        let cc = exp::build_commoncrawl(&cfg);
        if want("table8") {
            section("TABLE 8", exp::table8(&cfg, &cc));
        }
        if want("table9") {
            section("TABLE 9", exp::table9(&cfg, &cc));
        }
        if want("fig6") {
            section("FIGURE 6", exp::fig6(&cfg, &cc));
        }
    }
    if want("fig2") {
        section("FIGURE 2", exp::fig2(&cfg));
    }
    if want("fig4") {
        section("FIGURE 4", exp::fig4(&cfg));
    }
    if want("fig5") {
        section("FIGURE 5", exp::fig5(&cfg));
    }
    if want("ablations") {
        section("ABLATIONS", exp::ablations(&cfg));
    }
    eprintln!("# repro finished in {:.1}s", t0.elapsed().as_secs_f64());
}

// --- train / serve: the cross-process artifact lifecycle -----------------

/// Flags shared by `train` and `serve` (fixture identity + runtime).
struct ArtifactArgs {
    scale: f64,
    seed: u64,
    threads: usize,
    site: String,
    out: String,
    artifact: Option<String>,
    pages: String,
    verify: bool,
    fault_inject: bool,
}

impl Default for ArtifactArgs {
    fn default() -> Self {
        ArtifactArgs {
            // The bench fixture scale (what CI's round-trip smoke uses).
            scale: 0.05,
            seed: 42,
            threads: 0,
            site: "0".to_string(),
            out: "site.ceres".to_string(),
            artifact: None,
            pages: "eval".to_string(),
            verify: false,
            fault_inject: false,
        }
    }
}

fn parse_artifact_args(cmd: &str, args: &[String]) -> ArtifactArgs {
    // Each command only accepts its own flags — `repro train --verify`
    // must fail loudly, not silently verify nothing.
    let allowed: &[&str] = match cmd {
        "train" => &["--scale", "--seed", "--threads", "--site", "--out"],
        "stats" => &["--scale", "--seed", "--threads", "--site"],
        _ => &[
            "--scale",
            "--seed",
            "--threads",
            "--site",
            "--artifact",
            "--pages",
            "--verify",
            "--fault-inject",
        ],
    };
    let mut a = ArtifactArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if !allowed.contains(&flag) {
            eprintln!("repro {cmd}: unknown flag {flag} (see `repro help`)");
            std::process::exit(2);
        }
        let value = |a: &mut usize| -> String {
            *a += 1;
            args.get(*a).cloned().unwrap_or_else(|| {
                eprintln!("repro {cmd}: flag {flag} needs a value");
                std::process::exit(2);
            })
        };
        // Malformed numbers are rejected, not silently defaulted — a typo'd
        // --scale would otherwise train a different fixture than asked for.
        fn parse_or_die<T: std::str::FromStr>(cmd: &str, flag: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("repro {cmd}: cannot parse {flag} value {raw:?}");
                std::process::exit(2);
            })
        }
        match flag {
            "--scale" => a.scale = parse_or_die(cmd, flag, &value(&mut i)),
            "--seed" => a.seed = parse_or_die(cmd, flag, &value(&mut i)),
            "--threads" => a.threads = parse_or_die(cmd, flag, &value(&mut i)),
            "--site" => a.site = value(&mut i),
            "--out" => a.out = value(&mut i),
            "--artifact" => a.artifact = Some(value(&mut i)),
            "--pages" => a.pages = value(&mut i),
            "--verify" => a.verify = true,
            "--fault-inject" => a.fault_inject = true,
            _ => unreachable!("flag was checked against the allowed list"),
        }
        i += 1;
    }
    a
}

/// Build the deterministic fixture and index the requested site.
fn fixture_site(a: &ArtifactArgs) -> (SwdeVertical, usize) {
    let (v, _) = movie_vertical(SwdeConfig { seed: a.seed, scale: a.scale });
    let idx = match a.site.parse::<usize>() {
        Ok(i) if i < v.sites.len() => i,
        _ => match v.sites.iter().position(|s| s.name == a.site) {
            Some(i) => i,
            None => {
                let names: Vec<&str> = v.sites.iter().map(|s| s.name.as_str()).collect();
                eprintln!("repro: no site {:?} in the fixture (sites: {names:?})", a.site);
                std::process::exit(2);
            }
        },
    };
    (v, idx)
}

/// `repro --stats`: run one fixture site end-to-end (train on the
/// protocol's annotation half, extract from the eval half) and print the
/// per-stage wall-time profile — the profiling entry point the README's
/// parallelism workflow starts from.
fn stats_cmd(args: &[String]) {
    let a = parse_artifact_args("stats", args);
    let (v, site_idx) = fixture_site(&a);
    let site = &v.sites[site_idx];
    let (train_pages, eval_pages) = protocol_pages(site, EvalProtocol::SplitHalves);
    let cfg = CeresConfig::new(a.seed).with_threads(a.threads);
    let threads = ceres_runtime::Runtime::with_threads(cfg.threads).threads();
    eprintln!(
        "# repro --stats: site={} train_pages={} eval_pages={} scale={} seed={} threads={}",
        site.name,
        train_pages.len(),
        eval_pages.as_ref().map_or(0, Vec::len),
        a.scale,
        a.seed,
        threads
    );

    let run = ceres_core::pipeline::run_site(
        &v.kb,
        &train_pages,
        eval_pages.as_deref(),
        &cfg,
        ceres_core::AnnotationMode::Full,
    );

    let profile = &run.profile;
    let total = profile.total_ms().max(f64::EPSILON);
    println!("stage      wall_ms      share  pool_jobs");
    for (name, st) in profile.stages() {
        println!("{name:<9} {:>10.2} {:>9.1}% {:>10}", st.ms, st.ms / total * 100.0, st.pool_jobs);
    }
    println!("total     {:>10.2}", profile.total_ms());
    println!(
        "{} clusters, {} train examples, {} extractions at threads={threads}",
        run.stats.n_clusters,
        run.stats.n_train_examples,
        run.extractions.len()
    );
    println!(
        "train fold: {} examples -> {} unique rows (ratio {:.2}x)",
        run.fold.n_examples,
        run.fold.n_unique_rows,
        run.fold.fold_ratio()
    );
    if threads == 1 {
        eprintln!("# threads=1 runs stages inline; pass --threads N>1 to see pool-job attribution");
    } else if profile.stages().iter().all(|(_, st)| st.pool_jobs == 0) {
        eprintln!("# pool_jobs are all 0: build with --features runtime-stats to count them");
    }
}

fn train_cmd(args: &[String]) {
    let a = parse_artifact_args("train", args);
    let (v, site_idx) = fixture_site(&a);
    let site = &v.sites[site_idx];
    let (train_pages, _) = protocol_pages(site, EvalProtocol::SplitHalves);
    let cfg = CeresConfig::new(a.seed).with_threads(a.threads);
    eprintln!(
        "# repro train: site={} pages={} scale={} seed={} threads={}",
        site.name,
        train_pages.len(),
        a.scale,
        a.seed,
        ceres_runtime::Runtime::with_threads(cfg.threads).threads()
    );

    let t0 = std::time::Instant::now();
    let mut session = SiteSession::builder(&v.kb).config(cfg).build();
    session.ingest(train_pages);
    let trained = session.finish_training();
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = std::time::Instant::now();
    let file = std::fs::File::create(&a.out).unwrap_or_else(|e| {
        eprintln!("repro train: cannot create {}: {e}", a.out);
        std::process::exit(1);
    });
    let mut sink = std::io::BufWriter::new(file);
    if let Err(e) = trained.save(&mut sink) {
        eprintln!("repro train: saving {} failed: {e}", a.out);
        std::process::exit(1);
    }
    drop(sink);
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Reporting "0 bytes" when the stat fails would be a lie about a file
    // we just claimed to have written; the file vanishing (or turning
    // unreadable) between write and stat is a hard error.
    let bytes = match std::fs::metadata(&a.out) {
        Ok(m) => m.len(),
        Err(e) => {
            eprintln!(
                "repro train: artifact {} was written but cannot be stat'd afterwards: {e}",
                a.out
            );
            std::process::exit(1);
        }
    };

    let stats = trained.stats();
    println!(
        "trained {} on {} pages: {} clusters, {} train examples → {} ({} bytes)",
        site.name, stats.n_annotation_pages, stats.n_clusters, stats.n_train_examples, a.out, bytes
    );
    eprintln!("# train {train_ms:.1} ms, save {save_ms:.1} ms");
}

fn serve_cmd(args: &[String]) {
    let a = parse_artifact_args("serve", args);
    let Some(artifact_path) = a.artifact.as_deref() else {
        eprintln!("repro serve: --artifact PATH is required");
        std::process::exit(2);
    };
    if a.verify && a.fault_inject {
        eprintln!(
            "repro serve: --verify and --fault-inject are mutually exclusive \
             (the poisoned stream has no fail-fast reference run)"
        );
        std::process::exit(2);
    }
    let (v, site_idx) = fixture_site(&a);
    let site = &v.sites[site_idx];
    let (train_pages, eval_pages) = protocol_pages(site, EvalProtocol::SplitHalves);
    // A panic here would blame the protocol; the actual failure mode is a
    // fixture site too small to split (e.g. a tiny --scale), which the
    // operator can fix.
    let Some(eval_pages) = eval_pages else {
        eprintln!(
            "repro serve: site {} has no eval half under the split-halves protocol \
             ({} pages total) — grow --scale or pick a larger site",
            site.name,
            site.pages.len()
        );
        std::process::exit(1);
    };
    let pages: Vec<(String, String)> = match a.pages.as_str() {
        "train" => train_pages.clone(),
        "eval" => eval_pages.clone(),
        "all" => train_pages.iter().chain(eval_pages.iter()).cloned().collect(),
        other => {
            eprintln!("repro serve: --pages must be train|eval|all, got {other:?}");
            std::process::exit(2);
        }
    };
    if pages.is_empty() {
        eprintln!(
            "repro serve: --pages {} selected no pages on site {} \
             ({} train / {} eval available) — nothing to extract from",
            a.pages,
            site.name,
            train_pages.len(),
            eval_pages.len()
        );
        std::process::exit(1);
    }

    let t0 = std::time::Instant::now();
    let file = std::fs::File::open(artifact_path).unwrap_or_else(|e| {
        eprintln!("repro serve: cannot open {artifact_path}: {e}");
        std::process::exit(1);
    });
    let rt = ceres_runtime::Runtime::with_threads(
        CeresConfig::new(a.seed).with_threads(a.threads).threads,
    );
    let mut loaded = match TrainedSite::load_on(&v.kb, rt, std::io::BufReader::new(file)) {
        Ok(site) => site,
        Err(e) => {
            eprintln!("repro serve: loading {artifact_path} failed: {e}");
            std::process::exit(1);
        }
    };
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    if a.fault_inject {
        eprintln!(
            "# repro serve --fault-inject: site={} artifact={artifact_path} \
             base_pages={} ({}) load {load_ms:.1} ms",
            site.name,
            pages.len(),
            a.pages
        );
        return fault_inject_serve(&a, &mut loaded, &pages);
    }

    let t0 = std::time::Instant::now();
    let extractions = loaded.extract_batch(&pages);
    let extract_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "# repro serve: site={} artifact={artifact_path} pages={} ({}) \
         load {load_ms:.1} ms, extract {extract_ms:.1} ms",
        site.name,
        pages.len(),
        a.pages
    );
    print_extractions(&v, &extractions);

    if a.verify {
        // The single-process reference: train in *this* process on the
        // same fixture, serve the same pages, demand byte-identity.
        let cfg = CeresConfig::new(a.seed).with_threads(a.threads);
        let mut session = SiteSession::builder(&v.kb).config(cfg).build();
        session.ingest(train_pages);
        let reference = session.finish_training().extract_batch(&pages);
        if extractions == reference {
            println!(
                "verify: OK — {} extractions byte-identical to the in-process run",
                extractions.len()
            );
        } else {
            eprintln!(
                "verify: MISMATCH — artifact served {} extractions, \
                 in-process run produced {}",
                extractions.len(),
                reference.len()
            );
            for (i, (got, want)) in extractions.iter().zip(&reference).enumerate() {
                if got != want {
                    eprintln!("  first divergence at {i}: {got:?} != {want:?}");
                    break;
                }
            }
            std::process::exit(1);
        }
    }
}

/// `repro serve --fault-inject`: serve a deliberately poisoned stream —
/// the fixture pages armed with a seeded [`ceres_synth::hostile::FaultPlan`], the hostile
/// corpus, and a trailing mid-crawl template redesign — through the
/// outcome-typed path, then assert containment:
///
/// * the process reaches this line at all (no abort);
/// * every injected panic (builds with `--features fault-inject`) lands as
///   a `panicked` quarantine in exactly its own slot — and without the
///   feature, zero pages report `panicked`;
/// * the corpus's guard violations quarantine under their expected
///   reasons;
/// * the drift watchdog flags the redesign.
///
/// Exit 0 with a final `fault-inject: OK` line, or exit 1 with the first
/// violated invariant — CI greps the counters out of stdout.
fn fault_inject_serve(a: &ArtifactArgs, loaded: &mut TrainedSite, pages: &[(String, String)]) {
    use ceres_core::session::{ExtractOutcome, PageError};
    use ceres_synth::hostile;

    let fail = |msg: String| {
        eprintln!("fault-inject: FAIL — {msg}");
        std::process::exit(1);
    };

    // Arm ~1 in 8 of the fixture pages with the panic marker.
    let mut serve_pages = pages.to_vec();
    let plan = hostile::FaultPlan::new(a.seed, serve_pages.len(), (serve_pages.len() / 8).max(1));
    plan.arm_pages(&mut serve_pages);
    let n_fixture = serve_pages.len();
    // The ingest pathologies, served cold…
    let corpus = hostile::hostile_corpus(a.seed);
    serve_pages.extend(corpus.iter().map(|p| (p.id.clone(), p.html.clone())));
    // …and a site redesign at the end of the stream: drift-watchdog food.
    serve_pages.extend((0..12).map(hostile::drifted_page));

    // Tighten the drift window so the 12-page redesign is judgeable at
    // smoke scale (a loaded site starts from DriftConfig::default()).
    loaded.set_drift(ceres_core::DriftConfig {
        window: 16,
        min_samples: 8,
        max_unassigned_rate: 0.5,
    });

    // Contained panics still run the global panic hook; without this the
    // smoke's stderr is one full backtrace per injected fault. The
    // outcomes carry every payload, so the hook adds nothing here.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let t0 = std::time::Instant::now();
    let outcomes = loaded.try_extract_batch(&serve_pages);
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::panic::set_hook(quiet);
    let mut watchdog = loaded.drift_watchdog();
    let signal = watchdog.observe_batch(&outcomes);

    if outcomes.len() != serve_pages.len() {
        fail(format!("{} pages in, {} outcomes out", serve_pages.len(), outcomes.len()));
    }
    let mut ok = 0usize;
    let mut unassigned = 0usize;
    let mut extractions = 0usize;
    let mut by_reason: Vec<(&str, usize)> = PageError::KINDS.iter().map(|k| (*k, 0)).collect();
    for outcome in &outcomes {
        match outcome {
            ExtractOutcome::Ok(ex) => {
                ok += 1;
                extractions += ex.len();
            }
            ExtractOutcome::Unassigned { .. } => unassigned += 1,
            ExtractOutcome::Failed(e) => {
                if let Some(slot) = by_reason.iter_mut().find(|(k, _)| *k == e.kind()) {
                    slot.1 += 1;
                }
            }
        }
    }
    let quarantined: usize = by_reason.iter().map(|(_, n)| n).sum();
    let panicked = by_reason.iter().find(|(k, _)| *k == "panicked").map_or(0, |(_, n)| *n);

    // Every poisoned slot — and only poisoned slots — detonates when the
    // hook is compiled in; without it the marker must be inert.
    let injected = if cfg!(feature = "fault-inject") { plan.n_poisoned() } else { 0 };
    for i in 0..n_fixture {
        let blown = matches!(&outcomes[i], ExtractOutcome::Failed(PageError::Panicked { .. }));
        let expected = cfg!(feature = "fault-inject") && plan.is_poisoned(i);
        if blown != expected {
            fail(format!(
                "page {} ({}) {} — expected the opposite",
                i,
                serve_pages[i].0,
                if blown { "panicked" } else { "did not panic" }
            ));
        }
    }
    if panicked != injected {
        fail(format!("{injected} panics injected but {panicked} contained"));
    }
    // The corpus's guard violations must quarantine under their slugs.
    for want in ["oversized", "parse-depth", "empty-dom"] {
        if !by_reason.iter().any(|(k, n)| *k == want && *n >= 1) {
            fail(format!("no page quarantined as {want}"));
        }
    }
    if !signal.retrain_suggested() {
        fail(format!("redesign tail did not trip the drift watchdog ({signal:?})"));
    }

    println!(
        "fault-inject: pages={} ok={ok} unassigned={unassigned} quarantined={quarantined}",
        serve_pages.len()
    );
    let reasons = by_reason.iter().map(|(k, n)| format!("{k}={n}")).collect::<Vec<_>>().join(" ");
    println!("fault-inject: quarantine {reasons}");
    println!("fault-inject: injected={injected} contained={panicked}");
    println!(
        "fault-inject: drift retrain_suggested={} window_rate={:.2}",
        signal.retrain_suggested(),
        watchdog.window_unassigned_rate()
    );
    println!("fault-inject: extractions={extractions}");
    eprintln!("# fault-inject: served {} pages in {serve_ms:.1} ms", serve_pages.len());
    println!("fault-inject: OK");
}

/// Deterministic extraction dump: one tab-separated line per triple.
fn print_extractions(v: &SwdeVertical, extractions: &[Extraction]) {
    for e in extractions {
        let label = match e.label {
            ceres_core::extract::ExtractLabel::Name => "NAME",
            ceres_core::extract::ExtractLabel::Pred(p) => v.kb.ontology().pred_name(p),
        };
        println!("{}\t{}\t{}\t{}\t{:.6}", e.page_id, label, e.subject, e.object, e.confidence);
    }
}
