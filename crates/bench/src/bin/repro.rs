//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro [--scale S] [--seed N] [targets…]
//!
//! targets: all | table1 … table9 | fig2 | fig4 | fig5 | fig6 | ablations
//! default: all (at --scale 0.1)
//! ```

use ceres_eval::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "help" || a == "--help" || a == "-h") {
        println!(
            "repro [--scale S] [--seed N] [--threads T] [targets…]\n\
             targets: all | table1 table2 table3 table4 table5 table6 table7 table8 table9\n\
             \u{20}        | fig2 fig4 fig5 fig6 | ablations\n\
             --threads 0 (default) = auto: CERES_THREADS env, then the machine"
        );
        return;
    }
    let (cfg, targets) = ceres_bench::parse_args(&args);
    let want = |t: &str| targets.iter().any(|x| x == t || x == "all");
    eprintln!(
        "# repro: seed={} scale={} threads={} targets={targets:?}",
        cfg.seed,
        cfg.scale,
        ceres_runtime::Runtime::with_threads(cfg.threads).threads()
    );

    let t0 = std::time::Instant::now();
    let section = |title: &str, body: String| {
        println!("==============================================================");
        println!("{title}   [t+{:.1}s]", t0.elapsed().as_secs_f64());
        println!("==============================================================");
        println!("{body}");
    };

    if want("table1") {
        section("TABLE 1", exp::table1(&cfg));
    }
    if want("table2") {
        section("TABLE 2", exp::table2(&cfg));
    }
    if want("table3") {
        section("TABLE 3", exp::table3(&cfg));
    }
    if want("table4") {
        section("TABLE 4", exp::table4(&cfg));
    }
    if want("table5") || want("table6") || want("table7") {
        let imdb = exp::build_imdb(&cfg);
        if want("table5") {
            section("TABLE 5", exp::table5(&cfg, &imdb));
        }
        if want("table6") {
            section("TABLE 6", exp::table6(&cfg, &imdb));
        }
        if want("table7") {
            section("TABLE 7", exp::table7(&cfg, &imdb));
        }
    }
    if want("table8") || want("table9") || want("fig6") {
        let cc = exp::build_commoncrawl(&cfg);
        if want("table8") {
            section("TABLE 8", exp::table8(&cfg, &cc));
        }
        if want("table9") {
            section("TABLE 9", exp::table9(&cfg, &cc));
        }
        if want("fig6") {
            section("FIGURE 6", exp::fig6(&cfg, &cc));
        }
    }
    if want("fig2") {
        section("FIGURE 2", exp::fig2(&cfg));
    }
    if want("fig4") {
        section("FIGURE 4", exp::fig4(&cfg));
    }
    if want("fig5") {
        section("FIGURE 5", exp::fig5(&cfg));
    }
    if want("ablations") {
        section("ABLATIONS", exp::ablations(&cfg));
    }
    eprintln!("# repro finished in {:.1}s", t0.elapsed().as_secs_f64());
}
