//! Criterion benches for the substrate crates: HTML parsing, KB matching,
//! Levenshtein/XPath distance, logistic-regression training, clustering.

use ceres_ml::{agglomerative_cluster, Dataset, LogReg, SparseVec, TrainConfig};
use ceres_synth::movie_pages::{render_film_page, MoviePathology, MovieRenderCtx};
use ceres_synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};
use ceres_synth::rng::derive_rng;
use ceres_synth::SiteStyle;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sample_pages(n: usize) -> (ceres_kb::Kb, Vec<String>) {
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: 1,
        n_people: 400,
        n_films: n.max(60),
        n_series: 4,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;
    let mut rng = derive_rng(1, "bench-pages");
    let style = SiteStyle::random(&mut rng, "en", "bb");
    let pathology = MoviePathology::default();
    let ctx =
        MovieRenderCtx { world: &world, style: &style, site_name: "bench", pathology: &pathology };
    let pages = (0..n).map(|i| render_film_page(&ctx, i, &mut rng).html).collect();
    (kb, pages)
}

fn bench_parse(c: &mut Criterion) {
    let (_, pages) = sample_pages(50);
    let bytes: usize = pages.iter().map(|p| p.len()).sum();
    let mut g = c.benchmark_group("dom");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("parse_50_film_pages", |b| {
        b.iter(|| {
            for html in &pages {
                black_box(ceres_dom::parse_html(html));
            }
        })
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let (kb, pages) = sample_pages(20);
    let docs: Vec<ceres_dom::Document> = pages.iter().map(|h| ceres_dom::parse_html(h)).collect();
    let texts: Vec<String> = docs
        .iter()
        .flat_map(|d| d.text_fields().into_iter().map(|f| d.own_text(f)).collect::<Vec<_>>())
        .collect();
    let mut g = c.benchmark_group("kb");
    g.throughput(Throughput::Elements(texts.len() as u64));
    g.bench_function("match_text_fields", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(kb.match_text(t));
            }
        })
    });
    g.finish();
}

fn bench_distance(c: &mut Criterion) {
    let p1 = "/html[1]/body[1]/div[3]/div[2]/div[2]/div[4]/div[2]/b[1]";
    let p2 = "/html[1]/body[1]/div[3]/div[2]/div[2]/div[3]/div[1]/b[1]";
    c.bench_function("text/levenshtein_xpath", |b| {
        b.iter(|| black_box(ceres_text::levenshtein(black_box(p1), black_box(p2))))
    });
}

fn bench_clustering(c: &mut Criterion) {
    // Cluster 120 synthetic XPaths — a typical per-predicate workload.
    let paths: Vec<String> = (0..120)
        .map(|i| format!("/html[1]/body[1]/div[{}]/ul[1]/li[{}]", 2 + i % 4, 1 + i / 4))
        .collect();
    let weights = vec![1u64; paths.len()];
    c.bench_function("ml/agglomerative_120_xpaths", |b| {
        b.iter(|| {
            black_box(agglomerative_cluster(&paths, &weights, 3, |a, b| {
                ceres_text::levenshtein(a, b) as f64
            }))
        })
    });
}

fn bench_training(c: &mut Criterion) {
    // Synthetic sparse 6-class training problem approximating a site model.
    let mut data = Dataset::new(6, 4000);
    let mut rng = derive_rng(2, "bench-train");
    use rand::Rng;
    for i in 0..1500 {
        let class = (i % 6) as u32;
        let idx: Vec<u32> = (0..30)
            .map(|_| {
                let base = class * 600;
                base + rng.gen_range(0..660u32).min(3999 - base)
            })
            .collect();
        data.push(SparseVec::from_indices(idx), class);
    }
    let mut g = c.benchmark_group("ml");
    g.sample_size(10);
    for optimizer in [ceres_ml::Optimizer::Lbfgs, ceres_ml::Optimizer::Sgd] {
        g.bench_with_input(
            BenchmarkId::new("train_1500x4000", format!("{optimizer:?}")),
            &optimizer,
            |b, &opt| {
                let cfg = TrainConfig { optimizer: opt, max_iters: 40, ..TrainConfig::default() };
                b.iter(|| black_box(LogReg::train(&data, &cfg)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_matching,
    bench_distance,
    bench_clustering,
    bench_training
);
criterion_main!(benches);
