//! Criterion micro-bench for the training hot path: CSR dataset build +
//! L-BFGS fit at three sizes, on synthetic data shaped like real CERES
//! training sets — binary indicator features and heavy row duplication
//! (templated pages emit the same feature row for every instance of a
//! template slot), so duplicate folding engages as it does in the
//! pipeline.

use ceres_ml::{Dataset, LogReg, TrainConfig};
use ceres_synth::rng::derive_rng;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;

/// (examples, features, distinct row templates). Few templates relative to
/// the example count ⇒ high fold ratio, like real templated sites.
const SIZES: [(usize, usize, usize); 3] = [(500, 400, 60), (2000, 1200, 200), (8000, 3000, 500)];

/// Row index-sets for `templates` distinct rows over `features` features.
fn row_templates(features: usize, templates: usize) -> Vec<(Vec<u32>, u32)> {
    let mut rng = derive_rng(7, "bench-train-templates");
    (0..templates)
        .map(|_| {
            let nnz = rng.gen_range(4..24);
            let idx: Vec<u32> = (0..nnz).map(|_| rng.gen_range(0..features as u32)).collect();
            (idx, rng.gen_range(0..3))
        })
        .collect()
}

fn build_dataset(examples: usize, features: usize, templates: &[(Vec<u32>, u32)]) -> Dataset {
    let mut rng = derive_rng(7, "bench-train-rows");
    let mut data = Dataset::new(3, features);
    let mut buf: Vec<u32> = Vec::new();
    for _ in 0..examples {
        let (idx, y) = &templates[rng.gen_range(0..templates.len())];
        buf.extend_from_slice(idx);
        data.push_indicators_buf(&mut buf, *y);
    }
    data
}

fn bench_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("train");
    g.sample_size(10);
    for (examples, features, templates) in SIZES {
        let tpl = row_templates(features, templates);
        g.throughput(Throughput::Elements(examples as u64));

        g.bench_function(BenchmarkId::new("dataset_build", examples), |b| {
            b.iter(|| black_box(build_dataset(examples, features, &tpl)))
        });

        let data = build_dataset(examples, features, &tpl);
        let fold = data.fold_duplicates();
        assert!(fold.data.len() < data.len(), "fixture must fold ({examples} examples)");
        let cfg = TrainConfig { max_iters: 25, ..TrainConfig::default() };
        g.bench_function(BenchmarkId::new("fit_lbfgs", examples), |b| {
            b.iter(|| black_box(LogReg::train(&data, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
