//! Criterion benches for the CERES pipeline stages on a realistic site:
//! topic identification (Algorithm 1), relation annotation (Algorithm 2),
//! end-to-end site extraction, and each paper experiment's core loop at a
//! micro scale (one bench per table family).

use ceres_core::annotate::{annotate_relations, AnnotationMode};
use ceres_core::page::PageView;
use ceres_core::pipeline::run_site_views;
use ceres_core::topic::identify_topics;
use ceres_core::CeresConfig;
use ceres_synth::movie_pages::{render_film_page, MoviePathology, MovieRenderCtx};
use ceres_synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};
use ceres_synth::rng::derive_rng;
use ceres_synth::SiteStyle;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

struct Fixture {
    kb: ceres_kb::Kb,
    views: Vec<PageView>,
}

fn fixture(n_pages: usize) -> Fixture {
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: 5,
        n_people: 500,
        n_films: (n_pages * 2).max(80),
        n_series: 4,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;
    let mut rng = derive_rng(5, "bench-site");
    let style = SiteStyle::random(&mut rng, "en", "pp");
    let pathology = MoviePathology::default();
    let ctx =
        MovieRenderCtx { world: &world, style: &style, site_name: "bench", pathology: &pathology };
    let views: Vec<PageView> = (0..n_pages)
        .map(|i| {
            let page = render_film_page(&ctx, i, &mut rng);
            PageView::build(&page.id, &page.html, &kb)
        })
        .collect();
    Fixture { kb, views }
}

/// Stage benches: Algorithm 1 and Algorithm 2 on 60 pages.
fn bench_stages(c: &mut Criterion) {
    let fx = fixture(60);
    let refs: Vec<&PageView> = fx.views.iter().collect();
    let cfg = CeresConfig::new(5);

    c.bench_function("pipeline/topic_identification_60p", |b| {
        b.iter(|| black_box(identify_topics(&refs, &fx.kb, &cfg.topic)))
    });

    let topics = identify_topics(&refs, &fx.kb, &cfg.topic);
    c.bench_function("pipeline/relation_annotation_60p", |b| {
        b.iter(|| {
            black_box(annotate_relations(
                &refs,
                &fx.kb,
                &topics,
                &cfg.annotate,
                AnnotationMode::Full,
            ))
        })
    });
}

/// End-to-end site run (annotate + train + extract) — the unit of work
/// behind Tables 3–9.
fn bench_end_to_end(c: &mut Criterion) {
    let fx = fixture(60);
    let cfg = CeresConfig::new(5);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("site_run_full_60p", |b| {
        b.iter(|| black_box(run_site_views(&fx.kb, &fx.views, None, &cfg, AnnotationMode::Full)))
    });
    g.bench_function("site_run_topic_only_60p", |b| {
        b.iter(|| {
            black_box(run_site_views(&fx.kb, &fx.views, None, &cfg, AnnotationMode::TopicOnly))
        })
    });
    g.finish();
}

/// Thread scaling: the same site run on the deterministic runtime at 1,
/// 2, and all available threads (output is identical; only wall time may
/// differ).
fn bench_thread_scaling(c: &mut Criterion) {
    let fx = fixture(60);
    let available = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, available];
    counts.sort_unstable();
    counts.dedup(); // avoid duplicate bench ids on 1- and 2-core machines
    let mut g = c.benchmark_group("pipeline/threads");
    g.sample_size(10);
    for threads in counts {
        let cfg = CeresConfig::new(5).with_threads(threads);
        g.bench_function(format!("site_run_full_60p_t{threads}"), |b| {
            b.iter(|| {
                black_box(run_site_views(&fx.kb, &fx.views, None, &cfg, AnnotationMode::Full))
            })
        });
    }
    g.finish();
}

/// Page-view construction (parse + match) — extraction's fixed cost.
fn bench_pageview(c: &mut Criterion) {
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: 6,
        n_people: 300,
        n_films: 100,
        n_series: 3,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;
    let mut rng = derive_rng(6, "pv");
    let style = SiteStyle::random(&mut rng, "en", "pv");
    let pathology = MoviePathology::default();
    let ctx =
        MovieRenderCtx { world: &world, style: &style, site_name: "bench", pathology: &pathology };
    let htmls: Vec<String> = (0..20).map(|i| render_film_page(&ctx, i, &mut rng).html).collect();
    c.bench_function("pipeline/page_view_build_20p", |b| {
        b.iter(|| {
            for (i, h) in htmls.iter().enumerate() {
                black_box(PageView::build(&format!("p{i}"), h, &kb));
            }
        })
    });
}

criterion_group!(benches, bench_stages, bench_end_to_end, bench_thread_scaling, bench_pageview);
criterion_main!(benches);
