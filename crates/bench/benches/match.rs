//! Criterion benches for the batched, memoized KB match path: per-field
//! `match_norm` vs shard-grouped `match_batch` (raw and with unique-text
//! folding), and a read-through `MatchCache` cold vs warm.

use ceres_kb::MatchCache;
use ceres_synth::movie_pages::{render_film_page, MoviePathology, MovieRenderCtx};
use ceres_synth::movie_world::{KbBias, MovieWorld, MovieWorldConfig};
use ceres_synth::rng::derive_rng;
use ceres_synth::SiteStyle;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// Normalized text fields of `n` rendered film pages plus the KB they
/// were rendered from — the exact inputs `PageView::build` feeds the
/// matcher.
fn sample_norms(n: usize) -> (ceres_kb::Kb, Vec<String>) {
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: 1,
        n_people: 400,
        n_films: n.max(60),
        n_series: 4,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;
    let mut rng = derive_rng(1, "bench-match");
    let style = SiteStyle::random(&mut rng, "en", "bb");
    let pathology = MoviePathology::default();
    let ctx =
        MovieRenderCtx { world: &world, style: &style, site_name: "bench", pathology: &pathology };
    let norms: Vec<String> = (0..n)
        .map(|i| render_film_page(&ctx, i, &mut rng).html)
        .flat_map(|html| {
            let doc = ceres_dom::parse_html(&html);
            doc.text_fields()
                .into_iter()
                .map(|f| ceres_text::normalize(&doc.own_text(f)))
                .collect::<Vec<_>>()
        })
        .collect();
    (kb, norms)
}

fn bench_match_path(c: &mut Criterion) {
    let (kb, norms) = sample_norms(40);
    let mut g = c.benchmark_group("match");
    g.throughput(Throughput::Elements(norms.len() as u64));

    // One matcher probe per field, in field order — the pre-PR-10 shape.
    g.bench_function("per_field", |b| {
        b.iter(|| {
            for n in &norms {
                black_box(kb.match_norm(n));
            }
        })
    });

    // One shard-grouped sweep over the same fields.
    g.bench_function("batch", |b| b.iter(|| black_box(kb.match_batch(&norms))));

    // What the views path actually runs: fold duplicates, batch the
    // unique texts, scatter back to field order.
    g.bench_function("batch_folded", |b| {
        b.iter(|| {
            let fold = ceres_text::fold_unique(&norms);
            let matched = kb.match_batch(&fold.uniq);
            let out: Vec<&[ceres_kb::ValueId]> =
                fold.slots.iter().map(|&s| matched[s as usize]).collect();
            black_box(out)
        })
    });

    // Cache cold: a fresh cache per iteration pays one miss per unique
    // text — the first page batch of an ingest chunk.
    g.bench_function("cache_cold", |b| {
        b.iter(|| {
            let mut cache = MatchCache::new(&kb, 1 << 12);
            black_box(cache.match_batch(&norms))
        })
    });

    // Cache warm: every probe hits — the steady state of an ingest chunk
    // full of template-sharing pages.
    g.bench_function("cache_warm", |b| {
        let mut cache = MatchCache::new(&kb, 1 << 12);
        let _ = cache.match_batch(&norms);
        b.iter(|| black_box(cache.match_batch(&norms)))
    });

    g.finish();
}

criterion_group!(benches, bench_match_path);
criterion_main!(benches);
