//! Sparse feature representation: a string-interning feature dictionary and
//! sorted sparse vectors.

use ceres_text::FxHashMap;

/// Interns feature names to dense `u32` ids.
///
/// During training the dictionary grows; before extraction it is *frozen* so
/// that unseen features on evaluation pages are silently dropped (they carry
/// zero weight anyway).
#[derive(Debug, Default, Clone)]
pub struct FeatureDict {
    map: FxHashMap<String, u32>,
    names: Vec<String>,
    frozen: bool,
}

impl FeatureDict {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a feature name. Returns `None` when the dictionary is frozen
    /// and the feature is unknown.
    pub fn intern(&mut self, name: &str) -> Option<u32> {
        if let Some(&id) = self.map.get(name) {
            return Some(id);
        }
        if self.frozen {
            return None;
        }
        let id = self.names.len() as u32;
        self.map.insert(name.to_string(), id);
        self.names.push(name.to_string());
        Some(id)
    }

    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen
    }
}

/// A sparse feature vector: strictly increasing indices with `f32` values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec(Vec<(u32, f32)>);

impl SparseVec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary (index, value) pairs: sorts, and sums duplicate
    /// indices (a feature firing twice counts twice).
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut out: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => out.push((i, v)),
            }
        }
        SparseVec(out)
    }

    /// Build from a set of binary indicator features.
    pub fn from_indices(mut idx: Vec<u32>) -> Self {
        idx.sort_unstable();
        idx.dedup();
        SparseVec(idx.into_iter().map(|i| (i, 1.0)).collect())
    }

    /// [`SparseVec::from_indices`] draining a **reusable** buffer: sorts
    /// and dedups `buf` in place, copies out an exact-size vector, and
    /// clears `buf` (capacity retained). Hot loops vectorizing thousands
    /// of nodes keep one index buffer alive instead of allocating a
    /// growing `Vec<u32>` per node.
    pub fn from_indices_buf(buf: &mut Vec<u32>) -> Self {
        buf.sort_unstable();
        buf.dedup();
        let v = SparseVec(buf.iter().map(|&i| (i, 1.0)).collect());
        buf.clear();
        v
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.0.iter().copied()
    }

    pub fn nnz(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Dot product with a dense weight row.
    #[inline]
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &(i, v) in &self.0 {
            // Features interned after the weights were sized are ignored.
            if let Some(w) = dense.get(i as usize) {
                acc += f64::from(v) * *w;
            }
        }
        acc
    }

    /// `dense[i] += scale * v` for every stored (i, v).
    #[inline]
    pub fn add_scaled_into(&self, dense: &mut [f64], scale: f64) {
        for &(i, v) in &self.0 {
            if let Some(w) = dense.get_mut(i as usize) {
                *w += scale * f64::from(v);
            }
        }
    }

    pub fn max_index(&self) -> Option<u32> {
        self.0.last().map(|&(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dict_interns_and_freezes() {
        let mut d = FeatureDict::new();
        let a = d.intern("tag=div").unwrap();
        let b = d.intern("tag=span").unwrap();
        assert_ne!(a, b);
        assert_eq!(d.intern("tag=div"), Some(a));
        assert_eq!(d.len(), 2);
        d.freeze();
        assert_eq!(d.intern("tag=b"), None);
        assert_eq!(d.intern("tag=div"), Some(a));
        assert_eq!(d.name(b), "tag=span");
    }

    #[test]
    fn from_pairs_sums_duplicates() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        let collected: Vec<(u32, f32)> = v.iter().collect();
        assert_eq!(collected, vec![(1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn from_indices_dedups() {
        let v = SparseVec::from_indices(vec![5, 1, 5, 2]);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.max_index(), Some(5));
    }

    #[test]
    fn from_indices_buf_matches_from_indices_and_clears() {
        let mut buf = vec![5, 1, 5, 2];
        let a = SparseVec::from_indices_buf(&mut buf);
        assert_eq!(a, SparseVec::from_indices(vec![5, 1, 5, 2]));
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 4, "capacity must be retained for reuse");
        // The drained buffer is immediately reusable.
        buf.extend([9, 9, 0]);
        let b = SparseVec::from_indices_buf(&mut buf);
        assert_eq!(b, SparseVec::from_indices(vec![9, 9, 0]));
    }

    #[test]
    fn dot_and_add_scaled() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (2, 3.0)]);
        let dense = vec![2.0, 10.0, 0.5];
        assert_eq!(v.dot(&dense), 2.0 + 1.5);
        let mut acc = vec![0.0; 3];
        v.add_scaled_into(&mut acc, 2.0);
        assert_eq!(acc, vec![2.0, 0.0, 6.0]);
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let v = SparseVec::from_pairs(vec![(10, 1.0)]);
        let dense = vec![1.0; 3];
        assert_eq!(v.dot(&dense), 0.0);
        let mut acc = vec![0.0; 3];
        v.add_scaled_into(&mut acc, 1.0);
        assert_eq!(acc, vec![0.0; 3]);
    }

    proptest! {
        #[test]
        fn from_pairs_is_sorted_unique(
            pairs in proptest::collection::vec((0u32..64, -2.0f32..2.0), 0..64)
        ) {
            let v = SparseVec::from_pairs(pairs);
            let idx: Vec<u32> = v.iter().map(|(i, _)| i).collect();
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(idx, sorted);
        }

        #[test]
        fn dot_is_linear_in_scale(
            pairs in proptest::collection::vec((0u32..16, -1.0f32..1.0), 0..16),
            scale in -3.0f64..3.0,
        ) {
            let v = SparseVec::from_pairs(pairs);
            let dense: Vec<f64> = (0..16).map(|i| i as f64 * 0.25).collect();
            let mut acc = vec![0.0; 16];
            v.add_scaled_into(&mut acc, scale);
            // (scale · v) · dense == scale · (v · dense)
            let direct: f64 = acc.iter().zip(&dense).map(|(a, d)| a * d).sum();
            prop_assert!((direct - scale * v.dot(&dense)).abs() < 1e-6);
        }
    }
}
