//! Sparse feature representation: a string-interning feature dictionary and
//! sorted sparse vectors.
//!
//! Both types implement [`ceres_store::Encode`] / [`ceres_store::Decode`]:
//! a [`FeatureDict`] (part of the persisted `TrainedSite` artifact)
//! serializes as its name table plus the frozen flag (the name→id map is
//! derived state, rebuilt on load), and a [`SparseVec`] serializes as
//! delta-coded indices with exact `f32` bit patterns —
//! `decode(encode(x)) == x`, byte for byte.

use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer, PREALLOC_CAP};
use ceres_text::FxHashMap;

/// Interns feature names to dense `u32` ids.
///
/// During training the dictionary grows; before extraction it is *frozen* so
/// that unseen features on evaluation pages are silently dropped (they carry
/// zero weight anyway).
#[derive(Debug, Default, Clone)]
pub struct FeatureDict {
    map: FxHashMap<String, u32>,
    names: Vec<String>,
    frozen: bool,
}

impl FeatureDict {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a feature name. Returns `None` when the dictionary is frozen
    /// and the feature is unknown.
    pub fn intern(&mut self, name: &str) -> Option<u32> {
        if let Some(&id) = self.map.get(name) {
            return Some(id);
        }
        if self.frozen {
            return None;
        }
        let id = self.names.len() as u32;
        self.map.insert(name.to_string(), id);
        self.names.push(name.to_string());
        Some(id)
    }

    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The interned names in id order (the dictionary's serializable
    /// part; the map is derived).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuild a dictionary from its serialized parts: the name table in
    /// id order plus the frozen flag. Fails on duplicate names (the
    /// name↔id mapping must stay a bijection).
    pub fn from_names(names: Vec<String>, frozen: bool) -> Result<FeatureDict, StoreError> {
        let mut map = FxHashMap::default();
        map.reserve(names.len());
        for (id, name) in names.iter().enumerate() {
            if map.insert(name.clone(), id as u32).is_some() {
                return Err(StoreError::Invalid {
                    context: "feature dictionary",
                    detail: format!("duplicate feature name {name:?}"),
                });
            }
        }
        Ok(FeatureDict { map, names, frozen })
    }
}

impl Encode for FeatureDict {
    fn encode(&self, w: &mut Writer) {
        w.put_str_table(&self.names);
        w.put_bool(self.frozen);
    }
}

impl Decode for FeatureDict {
    fn decode(r: &mut Reader<'_>) -> Result<FeatureDict, StoreError> {
        let names = r.get_str_table("feature dictionary names")?;
        let frozen = r.get_bool("feature dictionary frozen flag")?;
        FeatureDict::from_names(names, frozen)
    }
}

/// A sparse feature vector: strictly increasing indices with `f32` values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec(Vec<(u32, f32)>);

impl SparseVec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary (index, value) pairs: sorts, and sums duplicate
    /// indices (a feature firing twice counts twice).
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut out: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => out.push((i, v)),
            }
        }
        SparseVec(out)
    }

    /// Build from a set of binary indicator features.
    pub fn from_indices(mut idx: Vec<u32>) -> Self {
        idx.sort_unstable();
        idx.dedup();
        SparseVec(idx.into_iter().map(|i| (i, 1.0)).collect())
    }

    /// [`SparseVec::from_indices`] draining a **reusable** buffer: sorts
    /// and dedups `buf` in place, copies out an exact-size vector, and
    /// clears `buf` (capacity retained). Hot loops vectorizing thousands
    /// of nodes keep one index buffer alive instead of allocating a
    /// growing `Vec<u32>` per node.
    pub fn from_indices_buf(buf: &mut Vec<u32>) -> Self {
        buf.sort_unstable();
        buf.dedup();
        let v = SparseVec(buf.iter().map(|&i| (i, 1.0)).collect());
        buf.clear();
        v
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.0.iter().copied()
    }

    pub fn nnz(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Dot product with a dense weight row.
    ///
    /// Out-of-range indices are **skipped, deliberately**: a model's weight
    /// row is sized from the [`FeatureDict`] at the moment it was frozen
    /// for training, but featurization of *unseen* pages interns against a
    /// live dictionary, so a vector can legitimately carry indices the
    /// model has no weight for. A feature the model never saw during
    /// training has a learned weight of exactly "absent" — contributing
    /// nothing is the statistically correct treatment, equivalent to a
    /// zero weight. Training-time vectors are range-checked upstream
    /// (`Dataset::push` debug-asserts `max_index < n_features`), so the
    /// skip only ever fires for late-interned serving features. Pinned by
    /// `late_interned_features_do_not_change_predictions` in the crate's
    /// integration tests.
    #[inline]
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &(i, v) in &self.0 {
            if let Some(w) = dense.get(i as usize) {
                acc += f64::from(v) * *w;
            }
        }
        acc
    }

    /// `dense[i] += scale * v` for every stored (i, v).
    ///
    /// Skips out-of-range indices for the same frozen-dictionary reason as
    /// [`SparseVec::dot`]: an accumulator sized to the trained weight row
    /// has no slot for features interned after the freeze, and a gradient
    /// contribution for a weight that doesn't exist is meaningless.
    #[inline]
    pub fn add_scaled_into(&self, dense: &mut [f64], scale: f64) {
        for &(i, v) in &self.0 {
            if let Some(w) = dense.get_mut(i as usize) {
                *w += scale * f64::from(v);
            }
        }
    }

    pub fn max_index(&self) -> Option<u32> {
        self.0.last().map(|&(i, _)| i)
    }
}

impl Encode for SparseVec {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.0.len());
        let mut prev: Option<u32> = None;
        for &(i, v) in &self.0 {
            // Strictly increasing indices delta-code tightly: the first
            // index raw, then (gap − 1) per successor.
            match prev {
                None => w.put_varint(u64::from(i)),
                Some(p) => w.put_varint(u64::from(i - p - 1)),
            }
            prev = Some(i);
            w.put_f32(v);
        }
    }
}

impl Decode for SparseVec {
    fn decode(r: &mut Reader<'_>) -> Result<SparseVec, StoreError> {
        const CTX: &str = "sparse vector";
        let len = r.get_usize(CTX)?;
        let mut out: Vec<(u32, f32)> = Vec::with_capacity(len.min(PREALLOC_CAP));
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let delta = r.get_varint(CTX)?;
            let idx = match prev {
                None => Some(delta),
                // p is u32 so p+1 can't overflow u64; the delta can.
                Some(p) => (u64::from(p) + 1).checked_add(delta),
            };
            let idx =
                idx.and_then(|i| u32::try_from(i).ok()).ok_or_else(|| StoreError::Invalid {
                    context: CTX,
                    detail: format!("feature index delta {delta} overflows u32"),
                })?;
            let v = r.get_f32(CTX)?;
            out.push((idx, v));
            prev = Some(idx);
        }
        // Delta coding makes indices strictly increasing by construction,
        // so the decoded vector upholds SparseVec's invariant as-is.
        Ok(SparseVec(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dict_interns_and_freezes() {
        let mut d = FeatureDict::new();
        let a = d.intern("tag=div").unwrap();
        let b = d.intern("tag=span").unwrap();
        assert_ne!(a, b);
        assert_eq!(d.intern("tag=div"), Some(a));
        assert_eq!(d.len(), 2);
        d.freeze();
        assert_eq!(d.intern("tag=b"), None);
        assert_eq!(d.intern("tag=div"), Some(a));
        assert_eq!(d.name(b), "tag=span");
    }

    #[test]
    fn from_pairs_sums_duplicates() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        let collected: Vec<(u32, f32)> = v.iter().collect();
        assert_eq!(collected, vec![(1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn from_indices_dedups() {
        let v = SparseVec::from_indices(vec![5, 1, 5, 2]);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.max_index(), Some(5));
    }

    #[test]
    fn from_indices_buf_matches_from_indices_and_clears() {
        let mut buf = vec![5, 1, 5, 2];
        let a = SparseVec::from_indices_buf(&mut buf);
        assert_eq!(a, SparseVec::from_indices(vec![5, 1, 5, 2]));
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 4, "capacity must be retained for reuse");
        // The drained buffer is immediately reusable.
        buf.extend([9, 9, 0]);
        let b = SparseVec::from_indices_buf(&mut buf);
        assert_eq!(b, SparseVec::from_indices(vec![9, 9, 0]));
    }

    #[test]
    fn dot_and_add_scaled() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (2, 3.0)]);
        let dense = vec![2.0, 10.0, 0.5];
        assert_eq!(v.dot(&dense), 2.0 + 1.5);
        let mut acc = vec![0.0; 3];
        v.add_scaled_into(&mut acc, 2.0);
        assert_eq!(acc, vec![2.0, 0.0, 6.0]);
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let v = SparseVec::from_pairs(vec![(10, 1.0)]);
        let dense = vec![1.0; 3];
        assert_eq!(v.dot(&dense), 0.0);
        let mut acc = vec![0.0; 3];
        v.add_scaled_into(&mut acc, 1.0);
        assert_eq!(acc, vec![0.0; 3]);
    }

    fn codec_roundtrip<T>(value: &T) -> T
    where
        T: ceres_store::Encode + ceres_store::Decode,
    {
        let mut w = ceres_store::Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ceres_store::Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert!(r.is_empty(), "decode must consume the whole encoding");
        back
    }

    #[test]
    fn dict_round_trips_with_rebuilt_map() {
        let mut d = FeatureDict::new();
        d.intern("tag=div").unwrap();
        d.intern("class=info").unwrap();
        d.intern("žánr").unwrap();
        d.freeze();
        let back = codec_roundtrip(&d);
        assert!(back.is_frozen());
        assert_eq!(back.names(), d.names());
        // The derived map works: lookups agree with the original.
        assert_eq!(back.get("class=info"), d.get("class=info"));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn dict_with_duplicate_names_fails_to_decode() {
        let mut w = ceres_store::Writer::new();
        w.put_str_table(&["a".to_string(), "a".to_string()]);
        w.put_bool(true);
        let bytes = w.into_bytes();
        let err = FeatureDict::decode(&mut ceres_store::Reader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn sparse_vec_decode_rejects_delta_overflow() {
        // len=2, first entry idx=5, then a delta of u64::MAX: the running
        // index must fail the checked add, not wrap into a decreasing index.
        let mut w = ceres_store::Writer::new();
        w.put_usize(2);
        w.put_varint(5);
        w.put_f32(1.0);
        w.put_varint(u64::MAX);
        w.put_f32(2.0);
        let bytes = w.into_bytes();
        let err = SparseVec::decode(&mut ceres_store::Reader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn sparse_vec_decode_rejects_truncation() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (9, -2.5), (100, 0.25)]);
        let mut w = ceres_store::Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(codec_roundtrip(&v), v);
        for cut in 0..bytes.len() {
            assert!(
                SparseVec::decode(&mut ceres_store::Reader::new(&bytes[..cut])).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_sparse_vec_round_trips(
            pairs in proptest::collection::vec((0u32..100_000, -8.0f32..8.0), 0..128)
        ) {
            let v = SparseVec::from_pairs(pairs);
            prop_assert_eq!(codec_roundtrip(&v), v);
        }

        #[test]
        fn prop_sparse_vec_decode_of_random_bytes_never_panics(
            // Cast from u32 so 0xff is reachable (the shim has no
            // inclusive-range strategy).
            raw in proptest::collection::vec(0u32..256, 0..64)
        ) {
            let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
            let _ = SparseVec::decode(&mut ceres_store::Reader::new(&bytes));
            let _ = FeatureDict::decode(&mut ceres_store::Reader::new(&bytes));
        }
    }

    proptest! {
        #[test]
        fn from_pairs_is_sorted_unique(
            pairs in proptest::collection::vec((0u32..64, -2.0f32..2.0), 0..64)
        ) {
            let v = SparseVec::from_pairs(pairs);
            let idx: Vec<u32> = v.iter().map(|(i, _)| i).collect();
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(idx, sorted);
        }

        #[test]
        fn dot_is_linear_in_scale(
            pairs in proptest::collection::vec((0u32..16, -1.0f32..1.0), 0..16),
            scale in -3.0f64..3.0,
        ) {
            let v = SparseVec::from_pairs(pairs);
            let dense: Vec<f64> = (0..16).map(|i| i as f64 * 0.25).collect();
            let mut acc = vec![0.0; 16];
            v.add_scaled_into(&mut acc, scale);
            // (scale · v) · dense == scale · (v · dense)
            let direct: f64 = acc.iter().zip(&dense).map(|(a, d)| a * d).sum();
            prop_assert!((direct - scale * v.dot(&dense)).abs() < 1e-6);
        }
    }
}
