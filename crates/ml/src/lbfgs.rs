//! Limited-memory BFGS.
//!
//! The paper trains its extractor with scikit-learn's LBFGS solver; this is
//! a from-scratch implementation of the same method: the two-loop recursion
//! over an `m`-deep history of (s, y) pairs, safeguarded by a backtracking
//! Armijo line search, falling back to steepest descent whenever the
//! curvature condition would be violated.
//!
//! The objective is an opaque `FnMut(&[f64], &mut [f64]) -> f64` and is
//! evaluated once per iteration *plus* once per line-search probe — in
//! CERES it is the duplicate-folded training objective
//! (`ceres_ml::logreg`), which is why the caller keeps any scratch state
//! (score buffers) inside the closure rather than allocating per call.

/// L-BFGS hyperparameters.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// History depth `m`.
    pub history: usize,
    pub max_iters: usize,
    /// Convergence: ‖∇f‖∞ ≤ tol · max(1, |f|).
    pub tol: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Line-search backtracking factor.
    pub backtrack: f64,
    /// Max line-search steps per iteration.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            history: 7,
            max_iters: 100,
            tol: 1e-5,
            armijo_c1: 1e-4,
            backtrack: 0.5,
            max_line_search: 30,
        }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct LbfgsOutcome {
    pub x: Vec<f64>,
    pub f: f64,
    pub iterations: usize,
    pub converged: bool,
}

/// Minimize `objective` starting at `x0`.
///
/// `objective(x, grad)` must fill `grad` with ∇f(x) and return f(x).
pub fn lbfgs_minimize<F>(x0: Vec<f64>, mut objective: F, cfg: &LbfgsConfig) -> LbfgsOutcome
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0;
    let mut grad = vec![0.0; n];
    let mut f = objective(&x, &mut grad);

    // Ring buffers of correction pairs.
    let mut s_hist: Vec<Vec<f64>> = Vec::with_capacity(cfg.history);
    let mut y_hist: Vec<Vec<f64>> = Vec::with_capacity(cfg.history);
    let mut rho_hist: Vec<f64> = Vec::with_capacity(cfg.history);

    let mut direction = vec![0.0; n];
    let mut iterations = 0;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let gnorm = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
        if gnorm <= cfg.tol * f.abs().max(1.0) {
            return LbfgsOutcome { x, f, iterations: iter, converged: true };
        }

        two_loop(&grad, &s_hist, &y_hist, &rho_hist, &mut direction);

        // Ensure a descent direction; fall back to -grad otherwise.
        let descent: f64 = direction.iter().zip(&grad).map(|(d, g)| d * g).sum();
        if descent >= 0.0 || !descent.is_finite() {
            for (d, g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
        }
        let descent: f64 = direction.iter().zip(&grad).map(|(d, g)| d * g).sum();

        // Backtracking Armijo line search.
        let mut step = if s_hist.is_empty() {
            // First step: scale to a unit-ish move.
            1.0 / grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1.0)
        } else {
            1.0
        };
        let x_prev = x.clone();
        let grad_prev = grad.clone();
        let f_prev = f;
        let mut accepted = false;
        for _ in 0..cfg.max_line_search {
            for i in 0..n {
                x[i] = x_prev[i] + step * direction[i];
            }
            let f_new = objective(&x, &mut grad);
            if f_new.is_finite() && f_new <= f_prev + cfg.armijo_c1 * step * descent {
                f = f_new;
                accepted = true;
                break;
            }
            step *= cfg.backtrack;
        }
        if !accepted {
            // Line search failed: restore the best point and stop.
            x = x_prev;
            let _ = objective(&x, &mut grad);
            return LbfgsOutcome { x, f: f_prev, iterations, converged: false };
        }

        // Update history with the accepted step.
        let mut s = vec![0.0; n];
        let mut y = vec![0.0; n];
        let mut sy = 0.0;
        for i in 0..n {
            s[i] = x[i] - x_prev[i];
            y[i] = grad[i] - grad_prev[i];
            sy += s[i] * y[i];
        }
        // Skip the pair if curvature is not positive (keeps H ≻ 0).
        if sy > 1e-10 {
            if s_hist.len() == cfg.history {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            s_hist.push(s);
            y_hist.push(y);
            rho_hist.push(1.0 / sy);
        }
    }

    LbfgsOutcome { x, f, iterations, converged: false }
}

/// The classic two-loop recursion: writes `-H·grad` into `direction`.
fn two_loop(
    grad: &[f64],
    s_hist: &[Vec<f64>],
    y_hist: &[Vec<f64>],
    rho_hist: &[f64],
    direction: &mut [f64],
) {
    direction.copy_from_slice(grad);
    let m = s_hist.len();
    let mut alpha = vec![0.0; m];
    for i in (0..m).rev() {
        let a =
            rho_hist[i] * s_hist[i].iter().zip(direction.iter()).map(|(s, q)| s * q).sum::<f64>();
        alpha[i] = a;
        for (q, y) in direction.iter_mut().zip(&y_hist[i]) {
            *q -= a * y;
        }
    }
    // Initial Hessian scaling γ = sᵀy / yᵀy from the most recent pair.
    if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
        let sy: f64 = s.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|v| v * v).sum();
        if yy > 0.0 {
            let gamma = sy / yy;
            for q in direction.iter_mut() {
                *q *= gamma;
            }
        }
    }
    for i in 0..m {
        let beta =
            rho_hist[i] * y_hist[i].iter().zip(direction.iter()).map(|(y, q)| y * q).sum::<f64>();
        for (q, s) in direction.iter_mut().zip(&s_hist[i]) {
            *q += (alpha[i] - beta) * s;
        }
    }
    for q in direction.iter_mut() {
        *q = -*q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        // f(x) = Σ aᵢ (xᵢ - bᵢ)², minimum at b.
        let a = [1.0, 10.0, 0.5, 3.0];
        let b = [2.0, -1.0, 0.0, 4.0];
        let obj = |x: &[f64], g: &mut [f64]| {
            let mut f = 0.0;
            for i in 0..4 {
                let d = x[i] - b[i];
                f += a[i] * d * d;
                g[i] = 2.0 * a[i] * d;
            }
            f
        };
        let out = lbfgs_minimize(vec![0.0; 4], obj, &LbfgsConfig::default());
        assert!(out.converged, "should converge on a quadratic");
        for (i, (xi, bi)) in out.x.iter().zip(&b).enumerate() {
            assert!((xi - bi).abs() < 1e-4, "x[{i}] = {xi}");
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic banana function, minimum at (1, 1).
        let obj = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let cfg = LbfgsConfig { max_iters: 500, ..LbfgsConfig::default() };
        let out = lbfgs_minimize(vec![-1.2, 1.0], obj, &cfg);
        assert!(
            (out.x[0] - 1.0).abs() < 1e-3 && (out.x[1] - 1.0).abs() < 1e-3,
            "got {:?} after {} iters",
            out.x,
            out.iterations
        );
    }

    #[test]
    fn converges_faster_than_iteration_cap_on_easy_problems() {
        let obj = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        };
        let out = lbfgs_minimize(vec![100.0], obj, &LbfgsConfig::default());
        assert!(out.converged);
        assert!(out.iterations < 50);
        assert!(out.x[0].abs() < 1e-3);
    }

    #[test]
    fn zero_gradient_start_converges_immediately() {
        let obj = |x: &[f64], g: &mut [f64]| {
            g.fill(0.0);
            let _ = x;
            7.0
        };
        let out = lbfgs_minimize(vec![1.0, 2.0], obj, &LbfgsConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.f, 7.0);
    }
}
