//! Multinomial (softmax) logistic regression — the extractor model of paper
//! §4.2:
//!
//! > Pr(Y = k | X) = exp(β_k0 + β_kᵀ X) / (1 + Σ_i exp(β_i0 + β_iᵀ X))
//!
//! trained by minimizing the scikit-learn objective the authors used
//! (`LogisticRegression(solver="lbfgs", penalty="l2", C=1)`):
//!
//! ```text
//! J(W) = Σ_i −log Pr(y_i | x_i)  +  (1 / 2C) · ‖W‖²      (intercepts unregularized)
//! ```

use crate::lbfgs::{lbfgs_minimize, LbfgsConfig, LbfgsOutcome};
use crate::sgd::{sgd_minimize, SgdConfig};
use crate::sparse::SparseVec;
use ceres_runtime::{auto_chunk_coarse, Runtime};
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer};

/// A labeled training set.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    pub examples: Vec<SparseVec>,
    pub labels: Vec<u32>,
    pub n_classes: usize,
    pub n_features: usize,
}

impl Dataset {
    pub fn new(n_classes: usize, n_features: usize) -> Self {
        Dataset { examples: Vec::new(), labels: Vec::new(), n_classes, n_features }
    }

    pub fn push(&mut self, x: SparseVec, y: u32) {
        debug_assert!((y as usize) < self.n_classes);
        if let Some(max) = x.max_index() {
            debug_assert!((max as usize) < self.n_features, "feature index out of range");
        }
        self.examples.push(x);
        self.labels.push(y);
    }

    pub fn len(&self) -> usize {
        self.examples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// Which optimizer trains the model (the paper uses LBFGS; SGD is kept for
/// the optimizer ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimizer {
    Lbfgs,
    Sgd,
}

/// Training hyperparameters. Defaults mirror the paper's scikit-learn call.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Inverse regularization strength (scikit-learn's `C`). Paper: 1.0.
    pub c: f64,
    pub optimizer: Optimizer,
    pub max_iters: usize,
    /// Gradient-norm tolerance (relative to max(1, |f|)).
    pub tol: f64,
    /// SGD-only knobs.
    pub sgd_epochs: usize,
    pub sgd_lr: f64,
    /// Mini-batch SGD warm-start epochs run before full-batch L-BFGS
    /// (L-BFGS only; 0 = disabled, the default). The warm start uses
    /// deterministic fixed-order batches of [`TrainConfig::warm_start_batch`]
    /// examples at learning rate `sgd_lr / |batch|`, so it is byte-identical
    /// at any thread count, like the rest of training.
    pub warm_start_epochs: usize,
    /// Mini-batch size for the warm start (clamped to `1..=n`).
    pub warm_start_batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            c: 1.0,
            optimizer: Optimizer::Lbfgs,
            max_iters: 100,
            tol: 1e-5,
            sgd_epochs: 30,
            sgd_lr: 0.1,
            warm_start_epochs: 0,
            warm_start_batch: 256,
        }
    }
}

/// Statistics reported by training.
#[derive(Debug, Clone)]
pub struct TrainStats {
    pub iterations: usize,
    pub final_loss: f64,
    pub converged: bool,
}

/// A trained softmax classifier.
///
/// Weights are stored class-major: `w[k * (d + 1) .. (k + 1) * (d + 1)]` is
/// class `k`'s weight row, whose *last* element is the intercept β_k0.
#[derive(Debug, Clone)]
pub struct LogReg {
    w: Vec<f64>,
    n_classes: usize,
    n_features: usize,
}

impl LogReg {
    /// [`LogReg::train_on`] on a sequential runtime. Output is
    /// byte-identical to `train_on` at any thread count (the gradient's
    /// block structure is fixed by the dataset size, not the runtime).
    pub fn train(data: &Dataset, config: &TrainConfig) -> (LogReg, TrainStats) {
        Self::train_on(&Runtime::sequential(), data, config)
    }

    /// Train on `data`, running gradient accumulation on `rt`'s workers.
    /// Panics on an empty dataset (a caller bug: CERES always aborts a
    /// site earlier when annotation produced nothing).
    pub fn train_on(rt: &Runtime, data: &Dataset, config: &TrainConfig) -> (LogReg, TrainStats) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(data.n_classes >= 2, "need at least two classes");
        let dim = data.n_classes * (data.n_features + 1);
        let mut x0 = vec![0.0; dim];
        if config.optimizer == Optimizer::Lbfgs && config.warm_start_epochs > 0 {
            warm_start(rt, data, config, &mut x0);
        }
        let objective = |w: &[f64], grad: &mut [f64]| loss_grad_on(rt, data, config.c, w, grad);

        let (w, stats) = match config.optimizer {
            Optimizer::Lbfgs => {
                let cfg = LbfgsConfig {
                    max_iters: config.max_iters,
                    tol: config.tol,
                    ..LbfgsConfig::default()
                };
                let LbfgsOutcome { x, f, iterations, converged } =
                    lbfgs_minimize(x0, objective, &cfg);
                (x, TrainStats { iterations, final_loss: f, converged })
            }
            Optimizer::Sgd => {
                let cfg = SgdConfig {
                    epochs: config.sgd_epochs,
                    lr: config.sgd_lr,
                    ..SgdConfig::default()
                };
                let (x, f, iters) = sgd_minimize(x0, objective, &cfg);
                (x, TrainStats { iterations: iters, final_loss: f, converged: true })
            }
        };
        (LogReg { w, n_classes: data.n_classes, n_features: data.n_features }, stats)
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The raw class-major weight matrix (row stride `n_features + 1`,
    /// intercept last) — the model's serializable part.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Rebuild a model from its serialized parts, validating the shape
    /// invariants every inference path indexes by.
    pub fn from_parts(
        w: Vec<f64>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<LogReg, StoreError> {
        if n_classes < 2 {
            return Err(StoreError::Invalid {
                context: "logreg model",
                detail: format!("n_classes {n_classes} < 2"),
            });
        }
        let dim = n_classes.saturating_mul(n_features.saturating_add(1));
        if w.len() != dim {
            return Err(StoreError::Invalid {
                context: "logreg model",
                detail: format!(
                    "weight vector has {} entries, expected {n_classes} × ({n_features} + 1)",
                    w.len()
                ),
            });
        }
        Ok(LogReg { w, n_classes, n_features })
    }

    #[inline]
    fn row(&self, k: usize) -> &[f64] {
        let stride = self.n_features + 1;
        &self.w[k * stride..(k + 1) * stride]
    }

    /// Class log-odds (pre-softmax scores) for one example.
    pub fn scores(&self, x: &SparseVec) -> Vec<f64> {
        (0..self.n_classes)
            .map(|k| {
                let row = self.row(k);
                // Intercept is the last slot; SparseVec::dot ignores it
                // because feature indices are < n_features.
                x.dot(row) + row[self.n_features]
            })
            .collect()
    }

    /// Posterior distribution over classes for one example.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f64> {
        let mut scores = self.scores(x);
        softmax_in_place(&mut scores);
        scores
    }

    /// Most probable class and its probability.
    pub fn predict(&self, x: &SparseVec) -> (u32, f64) {
        let probs = self.predict_proba(x);
        let (k, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .expect("at least two classes");
        (k as u32, *p)
    }

    /// Mean accuracy on a labeled dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            data.examples.iter().zip(&data.labels).filter(|(x, &y)| self.predict(x).0 == y).count();
        correct as f64 / data.len() as f64
    }
}

impl Encode for LogReg {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_classes);
        w.put_usize(self.n_features);
        w.put(&self.w);
    }
}

impl Decode for LogReg {
    fn decode(r: &mut Reader<'_>) -> Result<LogReg, StoreError> {
        const CTX: &str = "logreg model";
        let n_classes = r.get_usize(CTX)?;
        let n_features = r.get_usize(CTX)?;
        let w: Vec<f64> = r.get()?;
        LogReg::from_parts(w, n_classes, n_features)
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_in_place(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// Unregularized negative log-likelihood over `examples[lo..hi]`, with the
/// gradient **accumulated** into `grad` (not zeroed) — the shared kernel of
/// the serial path, the blocked parallel path, and the warm start.
fn loss_grad_span(data: &Dataset, lo: usize, hi: usize, w: &[f64], grad: &mut [f64]) -> f64 {
    let k = data.n_classes;
    let d = data.n_features;
    let stride = d + 1;
    debug_assert_eq!(w.len(), k * stride);

    let mut loss = 0.0;
    let mut scores = vec![0.0; k];
    for (x, &y) in data.examples[lo..hi].iter().zip(&data.labels[lo..hi]) {
        for (ki, s) in scores.iter_mut().enumerate() {
            let row = &w[ki * stride..(ki + 1) * stride];
            *s = x.dot(row) + row[d];
        }
        // log-sum-exp for the normalizer.
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + scores.iter().map(|s| (s - max).exp()).sum::<f64>().ln();
        loss += lse - scores[y as usize];

        for ki in 0..k {
            let p = (scores[ki] - lse).exp();
            let indicator = f64::from(ki as u32 == y);
            let coeff = p - indicator;
            let grow = &mut grad[ki * stride..(ki + 1) * stride];
            x.add_scaled_into(&mut grow[..d], coeff);
            grow[d] += coeff; // intercept "feature" is the constant 1
        }
    }
    loss
}

/// Deterministic block structure for parallel gradient accumulation over
/// `examples[lo..hi]`. Boundaries depend only on the span length — never
/// the thread count — so the per-block partial sums, reduced in block-index
/// order, give bit-identical loss and gradient at any thread count. The
/// minimum block size keeps tiny datasets on the single-block (serial)
/// path where per-block buffers would cost more than they save.
const GRAD_TARGET_BLOCKS: usize = 32;
const GRAD_MIN_BLOCK: usize = 64;

fn grad_blocks(lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let n = hi - lo;
    if n == 0 {
        return Vec::new();
    }
    let block = n.div_ceil(GRAD_TARGET_BLOCKS).max(GRAD_MIN_BLOCK);
    (0..n).step_by(block).map(|b| (lo + b, lo + (b + block).min(n))).collect()
}

/// Accumulate the span loss/gradient of `examples[lo..hi]` into `grad` on
/// `rt`'s workers: each fixed block produces a partial (loss, gradient)
/// reduced into `grad` sequentially in block order. One block short-circuits
/// to the plain serial kernel — bit-identical, since folding a single
/// zero-initialized partial into `grad` is the same additions in the same
/// order.
fn accumulate_span_on(
    rt: &Runtime,
    data: &Dataset,
    lo: usize,
    hi: usize,
    w: &[f64],
    grad: &mut [f64],
) -> f64 {
    let blocks = grad_blocks(lo, hi);
    if blocks.len() <= 1 {
        return loss_grad_span(data, lo, hi, w, grad);
    }
    let parts =
        rt.par_map_chunked(&blocks, auto_chunk_coarse(blocks.len(), rt.threads()), |&(a, b)| {
            let mut part = vec![0.0; w.len()];
            let l = loss_grad_span(data, a, b, w, &mut part);
            (l, part)
        });
    let mut loss = 0.0;
    for (l, part) in &parts {
        loss += l;
        for (g, p) in grad.iter_mut().zip(part) {
            *g += p;
        }
    }
    loss
}

/// L2 penalty (1/2C)·‖W‖², skipping intercepts; returns the loss term and
/// accumulates the gradient term.
fn add_l2_penalty(data: &Dataset, c: f64, w: &[f64], grad: &mut [f64]) -> f64 {
    let stride = data.n_features + 1;
    let lambda = 1.0 / c;
    let mut loss = 0.0;
    for ki in 0..data.n_classes {
        for j in 0..data.n_features {
            let v = w[ki * stride + j];
            loss += 0.5 * lambda * v * v;
            grad[ki * stride + j] += lambda * v;
        }
    }
    loss
}

/// Regularized negative log-likelihood and its gradient (serial).
///
/// Exposed (crate-public) for the gradient-check tests.
#[cfg(test)]
pub(crate) fn loss_grad(data: &Dataset, c: f64, w: &[f64], grad: &mut [f64]) -> f64 {
    grad.fill(0.0);
    let loss = loss_grad_span(data, 0, data.len(), w, grad);
    loss + add_l2_penalty(data, c, w, grad)
}

/// [`loss_grad`] with gradient accumulation parallelized over `rt` — the
/// L-BFGS inner loop. Bit-identical at any thread count (fixed blocks,
/// block-order reduction); on a sequential runtime and a single block it is
/// also bit-identical to the serial [`loss_grad`].
pub(crate) fn loss_grad_on(
    rt: &Runtime,
    data: &Dataset,
    c: f64,
    w: &[f64],
    grad: &mut [f64],
) -> f64 {
    grad.fill(0.0);
    let loss = accumulate_span_on(rt, data, 0, data.len(), w, grad);
    loss + add_l2_penalty(data, c, w, grad)
}

/// Mini-batch SGD warm start before full-batch L-BFGS: a few epochs of
/// plain (momentum-free) mini-batch steps over deterministic fixed-order
/// batches, each stepping on the batch-mean gradient plus the batch's
/// share of the L2 penalty. Fixed batch boundaries + the blocked span
/// accumulator keep it byte-identical at any thread count. An epoch that
/// drives any weight non-finite is rewound and ends the warm start — the
/// full-batch L-BFGS that follows is the robust phase.
fn warm_start(rt: &Runtime, data: &Dataset, config: &TrainConfig, w: &mut [f64]) {
    let n = data.len();
    let batch = config.warm_start_batch.clamp(1, n);
    let stride = data.n_features + 1;
    let lambda = 1.0 / config.c;
    let mut grad = vec![0.0; w.len()];
    let mut prev = w.to_vec();
    for _ in 0..config.warm_start_epochs {
        prev.copy_from_slice(w);
        for lo in (0..n).step_by(batch) {
            let hi = (lo + batch).min(n);
            grad.fill(0.0);
            accumulate_span_on(rt, data, lo, hi, w, &mut grad);
            let scale = (hi - lo) as f64 / n as f64;
            for ki in 0..data.n_classes {
                for j in 0..data.n_features {
                    grad[ki * stride + j] += scale * lambda * w[ki * stride + j];
                }
            }
            let step = config.sgd_lr / (hi - lo) as f64;
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= step * g;
            }
        }
        if w.iter().any(|v| !v.is_finite()) {
            w.copy_from_slice(&prev);
            break;
        }
    }
    // Accept the warm point only if it improved the full objective: a
    // diverged-but-finite trajectory (an oversized learning rate walking
    // the weights to ±1e300) must not poison the L-BFGS that follows. A
    // NaN warm loss compares as not-improved and is rejected too.
    grad.fill(0.0);
    let warm_loss = loss_grad_on(rt, data, config.c, w, &mut grad);
    prev.fill(0.0);
    grad.fill(0.0);
    let cold_loss = loss_grad_on(rt, data, config.c, &prev, &mut grad);
    let improved = matches!(warm_loss.partial_cmp(&cold_loss), Some(std::cmp::Ordering::Less));
    if !improved {
        w.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_free_dataset() -> Dataset {
        // Three linearly separable classes on two indicator features.
        let mut data = Dataset::new(3, 2);
        for _ in 0..20 {
            data.push(SparseVec::from_pairs(vec![(0, 1.0)]), 0);
            data.push(SparseVec::from_pairs(vec![(1, 1.0)]), 1);
            data.push(SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]), 2);
        }
        data
    }

    #[test]
    fn learns_separable_classes() {
        let data = xor_free_dataset();
        let (model, stats) = LogReg::train(&data, &TrainConfig::default());
        assert!(stats.final_loss.is_finite());
        assert!(model.accuracy(&data) > 0.99, "accuracy {}", model.accuracy(&data));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        for x in &data.examples {
            let p = model.predict_proba(x);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sgd_also_learns() {
        let data = xor_free_dataset();
        let cfg = TrainConfig { optimizer: Optimizer::Sgd, ..TrainConfig::default() };
        let (model, _) = LogReg::train(&data, &cfg);
        assert!(model.accuracy(&data) > 0.95);
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let data = xor_free_dataset();
        let strong = LogReg::train(&data, &TrainConfig { c: 0.01, ..TrainConfig::default() }).0;
        let weak = LogReg::train(&data, &TrainConfig { c: 100.0, ..TrainConfig::default() }).0;
        let norm = |m: &LogReg| m.w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut data = Dataset::new(3, 4);
        data.push(SparseVec::from_pairs(vec![(0, 1.0), (3, 0.5)]), 0);
        data.push(SparseVec::from_pairs(vec![(1, 2.0)]), 1);
        data.push(SparseVec::from_pairs(vec![(2, 1.0), (1, -1.0)]), 2);
        data.push(SparseVec::from_pairs(vec![(0, -0.5), (2, 0.25)]), 1);

        let dim = 3 * 5;
        // A deterministic non-trivial weight point.
        let w: Vec<f64> = (0..dim).map(|i| ((i * 7 % 11) as f64 - 5.0) * 0.1).collect();
        let mut grad = vec![0.0; dim];
        let f0 = loss_grad(&data, 1.0, &w, &mut grad);
        assert!(f0.is_finite());

        let eps = 1e-6;
        let mut scratch = vec![0.0; dim];
        for i in 0..dim {
            let mut wp = w.clone();
            wp[i] += eps;
            let fp = loss_grad(&data, 1.0, &wp, &mut scratch);
            let mut wm = w.clone();
            wm[i] -= eps;
            let fm = loss_grad(&data, 1.0, &wm, &mut scratch);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "grad mismatch at {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let mut s = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[1] > s[0] && s[0] > s[2]);
    }

    #[test]
    fn trained_model_round_trips_bit_for_bit() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let mut w = ceres_store::Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let back = LogReg::decode(&mut ceres_store::Reader::new(&bytes)).expect("decode");
        assert_eq!(back.n_classes(), model.n_classes());
        assert_eq!(back.n_features(), model.n_features());
        assert_eq!(back.weights(), model.weights());
        // Identical weights ⇒ identical posteriors, bit for bit.
        for x in &data.examples {
            assert_eq!(back.predict_proba(x), model.predict_proba(x));
        }
    }

    #[test]
    fn model_decode_rejects_shape_lies() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let mut w = ceres_store::Writer::new();
        model.encode(&mut w);
        let mut bytes = w.into_bytes();
        // n_classes is the first varint; bump it so the weight count no
        // longer matches the declared shape.
        bytes[0] += 1;
        assert!(LogReg::decode(&mut ceres_store::Reader::new(&bytes)).is_err());
        assert!(LogReg::from_parts(vec![0.0; 5], 2, 3).is_err());
        assert!(LogReg::from_parts(vec![0.0; 8], 1, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(2, 1);
        let _ = LogReg::train(&data, &TrainConfig::default());
    }

    /// A dataset big enough to cross the multi-block threshold of
    /// `grad_blocks` (> 2 × `GRAD_MIN_BLOCK` examples).
    fn blocky_dataset() -> Dataset {
        let mut data = Dataset::new(3, 6);
        for i in 0..500usize {
            let a = (i * 7 % 13) as f32 * 0.25 - 1.0;
            let b = (i * 11 % 17) as f32 * 0.125;
            let x =
                SparseVec::from_pairs(vec![((i % 6) as u32, a), (((i + 2) % 6) as u32, b + 1.0)]);
            data.push(x, (i % 3) as u32);
        }
        data
    }

    #[test]
    fn blocked_gradient_is_bit_identical_at_every_thread_count() {
        let data = blocky_dataset();
        assert!(grad_blocks(0, data.len()).len() > 1, "fixture must exercise multiple blocks");
        let dim = 3 * 7;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 5 % 9) as f64 - 4.0) * 0.05).collect();
        let mut ref_grad = vec![0.0; dim];
        let ref_loss = loss_grad_on(&Runtime::sequential(), &data, 1.0, &w, &mut ref_grad);
        for threads in [2, 4, 8] {
            let rt = Runtime::new(threads);
            let mut grad = vec![0.0; dim];
            let loss = loss_grad_on(&rt, &data, 1.0, &w, &mut grad);
            assert_eq!(loss.to_bits(), ref_loss.to_bits(), "loss diverged at threads={threads}");
            assert!(
                grad.iter().zip(&ref_grad).all(|(a, b)| a.to_bits() == b.to_bits()),
                "gradient diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn blocked_gradient_matches_the_serial_kernel_numerically() {
        // Block-order reduction reassociates float additions, so exact bit
        // equality with the flat serial loop is not promised — but the
        // values must agree to tight tolerance.
        let data = blocky_dataset();
        let dim = 3 * 7;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 5 % 9) as f64 - 4.0) * 0.05).collect();
        let mut serial = vec![0.0; dim];
        let ls = loss_grad(&data, 1.0, &w, &mut serial);
        let mut blocked = vec![0.0; dim];
        let lb = loss_grad_on(&Runtime::new(4), &data, 1.0, &w, &mut blocked);
        assert!((ls - lb).abs() <= 1e-9 * ls.abs().max(1.0), "loss {ls} vs {lb}");
        for (i, (a, b)) in serial.iter().zip(&blocked).enumerate() {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "grad[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn train_on_is_thread_count_invariant() {
        let data = blocky_dataset();
        let cfg = TrainConfig::default();
        let (reference, ref_stats) = LogReg::train(&data, &cfg);
        for threads in [2, 8] {
            let (model, stats) = LogReg::train_on(&Runtime::new(threads), &data, &cfg);
            assert_eq!(model.weights(), reference.weights(), "weights diverged at {threads}");
            assert_eq!(stats.iterations, ref_stats.iterations);
            assert_eq!(stats.final_loss.to_bits(), ref_stats.final_loss.to_bits());
        }
        assert!(reference.accuracy(&data) > 0.5);
    }

    #[test]
    fn warm_start_is_thread_count_invariant_and_still_learns() {
        let data = blocky_dataset();
        let cfg =
            TrainConfig { warm_start_epochs: 3, warm_start_batch: 64, ..TrainConfig::default() };
        let (reference, _) = LogReg::train(&data, &cfg);
        for threads in [2, 8] {
            let (model, _) = LogReg::train_on(&Runtime::new(threads), &data, &cfg);
            assert_eq!(model.weights(), reference.weights(), "warm start diverged at {threads}");
        }
        // The warm start must not hurt the optimum the solver reaches.
        let (cold, _) = LogReg::train(&data, &TrainConfig::default());
        let acc = reference.accuracy(&data);
        assert!(
            acc >= cold.accuracy(&data) - 0.05,
            "warm-started accuracy {acc} collapsed vs cold {}",
            cold.accuracy(&data)
        );
    }

    #[test]
    fn warm_start_survives_a_divergent_learning_rate() {
        let data = blocky_dataset();
        let cfg = TrainConfig {
            warm_start_epochs: 5,
            warm_start_batch: 32,
            sgd_lr: 1e6, // absurd on purpose
            ..TrainConfig::default()
        };
        let (model, stats) = LogReg::train(&data, &cfg);
        assert!(stats.final_loss.is_finite());
        assert!(model.weights().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn grad_blocks_cover_the_span_exactly_once() {
        for (lo, hi) in [(0, 0), (0, 1), (0, 63), (0, 64), (0, 129), (5, 505), (7, 4096)] {
            let blocks = grad_blocks(lo, hi);
            let mut expect = lo;
            for &(a, b) in &blocks {
                assert_eq!(a, expect, "gap before block ({a}, {b}) in span ({lo}, {hi})");
                assert!(b > a);
                expect = b;
            }
            assert_eq!(expect, hi, "span ({lo}, {hi}) not fully covered");
        }
    }
}
