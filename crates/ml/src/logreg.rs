//! Multinomial (softmax) logistic regression — the extractor model of paper
//! §4.2:
//!
//! > Pr(Y = k | X) = exp(β_k0 + β_kᵀ X) / (1 + Σ_i exp(β_i0 + β_iᵀ X))
//!
//! trained by minimizing the scikit-learn objective the authors used
//! (`LogisticRegression(solver="lbfgs", penalty="l2", C=1)`), **folded over
//! duplicate rows**: identical `(features, label)` pairs — ubiquitous on
//! templated pages — are deduplicated into unique rows with an integer
//! multiplicity `c_i` before optimization, and each unique row contributes
//! `c_i` times its loss and gradient:
//!
//! ```text
//! J(W) = Σ_i c_i · −log Pr(y_i | x_i)  +  (1 / 2C) · ‖W‖²   (intercepts unregularized)
//! ```
//!
//! With all multiplicities 1 this is exactly the per-example objective
//! (multiplying by 1.0 is an IEEE identity), and folding is deterministic
//! (first-occurrence order), so training remains byte-identical at every
//! thread count — only cheaper: each L-BFGS iteration and line-search probe
//! walks the unique rows once instead of re-walking every duplicate.
//!
//! The training set is a [`Dataset`] in CSR layout (one contiguous
//! `indices`/`values`/`row_offsets` triple), so the objective streams
//! linear memory instead of chasing one heap allocation per example.

use crate::lbfgs::{lbfgs_minimize, LbfgsConfig, LbfgsOutcome};
use crate::sgd::{sgd_minimize, SgdConfig};
use crate::sparse::SparseVec;
use ceres_runtime::{auto_chunk_coarse, Runtime};
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer};

/// A labeled training set in CSR (compressed sparse row) layout.
///
/// Row `r`'s features are `indices[row_offsets[r]..row_offsets[r + 1]]`
/// (strictly increasing) with matching `values`; its label is `labels[r]`.
/// One contiguous triple replaces the former per-example `Vec<SparseVec>`
/// (a heap allocation and pointer chase per row), so the training objective
/// — which re-walks the whole set once per L-BFGS iteration *and* per
/// line-search probe — streams linear memory. Iteration order over each
/// row's `(index, value)` pairs is identical to the old layout, so every
/// float operation happens in the same order and results are bit-identical
/// (pinned by `prop_csr_loss_grad_matches_sparse_vec_reference`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    indices: Vec<u32>,
    values: Vec<f32>,
    /// `len() + 1` offsets into `indices`/`values`; starts at 0.
    row_offsets: Vec<usize>,
    labels: Vec<u32>,
    /// Number of target classes (fixed at construction).
    pub n_classes: usize,
    /// Feature-space dimensionality (fixed at construction).
    pub n_features: usize,
    /// Whether every stored value is exactly 1.0 (pure indicator rows —
    /// the common case: CERES features are binary). Tracked on push so the
    /// objective can take a multiply-free kernel: `1.0 × w == w` is an
    /// IEEE identity, so the specialization is bit-identical.
    all_unit: bool,
}

impl Default for Dataset {
    fn default() -> Self {
        Dataset::new(0, 0)
    }
}

impl Dataset {
    /// An empty dataset over `n_classes` classes and `n_features` features.
    pub fn new(n_classes: usize, n_features: usize) -> Self {
        Dataset {
            indices: Vec::new(),
            values: Vec::new(),
            row_offsets: vec![0],
            labels: Vec::new(),
            n_classes,
            n_features,
            all_unit: true,
        }
    }

    /// Append one example. The `SparseVec` invariant (strictly increasing
    /// indices) carries straight into the CSR arrays.
    pub fn push(&mut self, x: SparseVec, y: u32) {
        debug_assert!((y as usize) < self.n_classes);
        if let Some(max) = x.max_index() {
            debug_assert!((max as usize) < self.n_features, "feature index out of range");
        }
        for (i, v) in x.iter() {
            self.indices.push(i);
            self.values.push(v);
            self.all_unit &= v == 1.0;
        }
        self.row_offsets.push(self.indices.len());
        self.labels.push(y);
    }

    /// Append one row directly from index/value slices (`idx` strictly
    /// increasing, both slices equal length) — the allocation-free twin of
    /// [`Dataset::push`] used by duplicate folding and the training-set
    /// builder.
    pub fn push_row(&mut self, idx: &[u32], vals: &[f32], y: u32) {
        debug_assert_eq!(idx.len(), vals.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "indices must strictly increase");
        debug_assert!((y as usize) < self.n_classes);
        debug_assert!(
            idx.last().is_none_or(|&i| (i as usize) < self.n_features),
            "feature index out of range"
        );
        self.indices.extend_from_slice(idx);
        self.values.extend_from_slice(vals);
        self.all_unit &= vals.iter().all(|&v| v == 1.0);
        self.row_offsets.push(self.indices.len());
        self.labels.push(y);
    }

    /// Append a row of binary indicator features from a scratch index
    /// buffer: sorts and dedups `buf` in place, streams it into the CSR
    /// arrays with unit values, and clears `buf` (capacity retained) —
    /// the `SparseVec::from_indices_buf` idiom without the intermediate
    /// `SparseVec` allocation.
    pub fn push_indicators_buf(&mut self, buf: &mut Vec<u32>, y: u32) {
        buf.sort_unstable();
        buf.dedup();
        debug_assert!((y as usize) < self.n_classes);
        debug_assert!(
            buf.last().is_none_or(|&i| (i as usize) < self.n_features),
            "feature index out of range"
        );
        self.indices.extend_from_slice(buf);
        self.values.extend(std::iter::repeat_n(1.0f32, buf.len()));
        self.row_offsets.push(self.indices.len());
        self.labels.push(y);
        buf.clear();
    }

    /// Append every row of `other` (same shape) after this dataset's rows —
    /// how the parallel training-set builder merges its per-chunk parts in
    /// chunk order.
    pub fn append(&mut self, other: &Dataset) {
        assert_eq!(self.n_classes, other.n_classes, "class count mismatch");
        assert_eq!(self.n_features, other.n_features, "feature count mismatch");
        let base = self.indices.len();
        self.indices.extend_from_slice(&other.indices);
        self.values.extend_from_slice(&other.values);
        self.labels.extend_from_slice(&other.labels);
        self.all_unit &= other.all_unit;
        self.row_offsets.extend(other.row_offsets[1..].iter().map(|o| base + o));
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total stored (index, value) pairs across all rows.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// All labels, in row order.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Row `r` as (indices, values) slices into the CSR arrays.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.row_offsets[r], self.row_offsets[r + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Row `r` copied out as a [`SparseVec`] (allocates — tests and
    /// diagnostics only; hot paths use [`Dataset::row`]).
    pub fn sparse_row(&self, r: usize) -> SparseVec {
        let (idx, vals) = self.row(r);
        SparseVec::from_pairs(idx.iter().copied().zip(vals.iter().copied()).collect())
    }

    /// Fold duplicate `(features, label)` rows into unique rows with an
    /// integer multiplicity. Unique rows keep **first-occurrence order**
    /// (so the result is deterministic and independent of everything but
    /// the input), and equality is bitwise on values — no float surprises.
    ///
    /// Highly templated sites produce many byte-identical training rows;
    /// the optimizer then walks `counts.len()` rows per objective
    /// evaluation instead of `self.len()`.
    pub fn fold_duplicates(&self) -> FoldedDataset {
        use std::hash::{BuildHasher, Hash, Hasher};
        let mut by_hash: ceres_text::FxHashMap<u64, Vec<u32>> = ceres_text::FxHashMap::default();
        by_hash.reserve(self.len());
        let mut data = Dataset::new(self.n_classes, self.n_features);
        let mut counts: Vec<u32> = Vec::new();
        for r in 0..self.len() {
            let (idx, vals) = self.row(r);
            let y = self.labels[r];
            let mut hasher = ceres_text::FxBuildHasher::default().build_hasher();
            y.hash(&mut hasher);
            idx.hash(&mut hasher);
            for v in vals {
                v.to_bits().hash(&mut hasher);
            }
            let bucket = by_hash.entry(hasher.finish()).or_default();
            let found = bucket.iter().copied().find(|&u| {
                let (ui, uv) = data.row(u as usize);
                data.labels[u as usize] == y
                    && ui == idx
                    && uv.len() == vals.len()
                    && uv.iter().zip(vals).all(|(a, b)| a.to_bits() == b.to_bits())
            });
            match found {
                Some(u) => counts[u as usize] += 1,
                None => {
                    let u = data.len() as u32;
                    data.push_row(idx, vals, y);
                    counts.push(1);
                    bucket.push(u);
                }
            }
        }
        FoldedDataset { data, counts }
    }
}

/// Result of [`Dataset::fold_duplicates`]: the unique rows (first-occurrence
/// order) and each row's multiplicity in the source dataset.
#[derive(Debug, Clone)]
pub struct FoldedDataset {
    /// The unique rows.
    pub data: Dataset,
    /// `counts[r]` = how many source rows folded into unique row `r`
    /// (always ≥ 1; `counts.iter().sum() == source.len()`).
    pub counts: Vec<u32>,
}

/// Which optimizer trains the model (the paper uses LBFGS; SGD is kept for
/// the optimizer ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimizer {
    Lbfgs,
    Sgd,
}

/// Training hyperparameters. Defaults mirror the paper's scikit-learn call.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Inverse regularization strength (scikit-learn's `C`). Paper: 1.0.
    pub c: f64,
    pub optimizer: Optimizer,
    pub max_iters: usize,
    /// Gradient-norm tolerance (relative to max(1, |f|)).
    pub tol: f64,
    /// SGD-only knobs.
    pub sgd_epochs: usize,
    pub sgd_lr: f64,
    /// Mini-batch SGD warm-start epochs run before full-batch L-BFGS
    /// (L-BFGS only; 0 = disabled, the default). The warm start uses
    /// deterministic fixed-order batches of [`TrainConfig::warm_start_batch`]
    /// unique rows, each stepping on the batch's multiplicity-weighted mean
    /// gradient, so it is byte-identical at any thread count, like the rest
    /// of training.
    pub warm_start_epochs: usize,
    /// Mini-batch size for the warm start (clamped to `1..=n`).
    pub warm_start_batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            c: 1.0,
            optimizer: Optimizer::Lbfgs,
            max_iters: 100,
            tol: 1e-5,
            sgd_epochs: 30,
            sgd_lr: 0.1,
            warm_start_epochs: 0,
            warm_start_batch: 256,
        }
    }
}

/// Statistics reported by training.
#[derive(Debug, Clone)]
pub struct TrainStats {
    pub iterations: usize,
    pub final_loss: f64,
    pub converged: bool,
    /// Source examples handed to [`LogReg::train_on`].
    pub n_examples: usize,
    /// Unique rows after duplicate folding — what the optimizer actually
    /// walked per objective evaluation.
    pub n_unique_rows: usize,
}

impl TrainStats {
    /// Duplicate-folding win: source examples per unique row (≥ 1.0).
    pub fn fold_ratio(&self) -> f64 {
        self.n_examples as f64 / self.n_unique_rows.max(1) as f64
    }
}

/// Reusable per-example score buffer for the allocation-free scoring paths
/// ([`LogReg::scores_into`], [`LogReg::predict_proba_into`],
/// [`LogReg::predict_into`]). One scratch per serving loop replaces one
/// `Vec<f64>` allocation per scored node — millions per site.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    buf: Vec<f64>,
}

impl ScoreScratch {
    /// An empty scratch (the first use sizes it).
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer, resized to `k` entries (zeroed).
    fn resized(&mut self, k: usize) -> &mut [f64] {
        self.buf.clear();
        self.buf.resize(k, 0.0);
        &mut self.buf
    }
}

/// Dot product of a CSR row with a dense weight row — the same arithmetic,
/// in the same order, as [`SparseVec::dot`], including its skip rule:
/// indices outside `dense` (features interned after the weights were sized)
/// contribute nothing.
#[inline]
fn dot_row(idx: &[u32], vals: &[f32], dense: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&i, &v) in idx.iter().zip(vals) {
        if let Some(w) = dense.get(i as usize) {
            acc += f64::from(v) * *w;
        }
    }
    acc
}

/// Argmax over a probability slice, replicating `Iterator::max_by`'s
/// last-maximum tie behavior so `_into` predictions match the allocating
/// originals exactly.
fn top_class(probs: &[f64]) -> (u32, f64) {
    let (k, p) = probs
        .iter()
        .enumerate()
        .max_by(|a, b| ceres_text::nan_lowest(*a.1, *b.1))
        // lint: allow(CL003) reason="probs is a predict_proba row; LogReg::n_classes >= 2 is a construction invariant, so the slice is never empty"
        .expect("at least two classes");
    (k as u32, *p)
}

/// A trained softmax classifier.
///
/// Weights are stored class-major: `w[k * (d + 1) .. (k + 1) * (d + 1)]` is
/// class `k`'s weight row, whose *last* element is the intercept β_k0. A
/// feature-major mirror (`wt`, intercepts split out) is rebuilt on
/// construction so scoring walks one contiguous `n_classes`-wide block per
/// stored feature instead of `n_classes` strided gathers — same additions
/// in the same order per class accumulator, so scores are bit-identical to
/// the class-major layout (see `transpose_weights_into`).
#[derive(Debug, Clone)]
pub struct LogReg {
    w: Vec<f64>,
    /// Feature-major mirror of the feature block of `w`: `wt[i * k + ki]`
    /// is class `ki`'s weight on feature `i`. Derived, never serialized.
    wt: Vec<f64>,
    /// The intercepts β_k0, split out of the transposed matrix.
    intercepts: Vec<f64>,
    n_classes: usize,
    n_features: usize,
}

/// Transpose a class-major weight matrix (row stride `d + 1`, intercept
/// last) into the feature-major layout the hot kernels walk: `wt[i*k + ki]`
/// holds class `ki`'s weight on feature `i`, intercepts split out. Pure
/// permutation of assignments — no arithmetic, so no rounding anywhere.
fn transpose_weights_into(
    w: &[f64],
    k: usize,
    d: usize,
    wt: &mut Vec<f64>,
    intercepts: &mut Vec<f64>,
) {
    let stride = d + 1;
    wt.clear();
    wt.resize(d * k, 0.0);
    intercepts.clear();
    intercepts.resize(k, 0.0);
    for ki in 0..k {
        let row = &w[ki * stride..(ki + 1) * stride];
        for (j, &v) in row[..d].iter().enumerate() {
            wt[j * k + ki] = v;
        }
        intercepts[ki] = row[d];
    }
}

impl LogReg {
    /// [`LogReg::train_on`] on a sequential runtime. Output is
    /// byte-identical to `train_on` at any thread count (the gradient's
    /// block structure is fixed by the dataset size, not the runtime).
    pub fn train(data: &Dataset, config: &TrainConfig) -> (LogReg, TrainStats) {
        Self::train_on(&Runtime::sequential(), data, config)
    }

    /// Train on `data`, running gradient accumulation on `rt`'s workers.
    ///
    /// Duplicate rows are folded first (see [`Dataset::fold_duplicates`]);
    /// the optimizer then minimizes the multiplicity-weighted objective
    /// over the unique rows — same minimizer, fewer row walks. Panics on an
    /// empty dataset (a caller bug: CERES always aborts a site earlier when
    /// annotation produced nothing).
    pub fn train_on(rt: &Runtime, data: &Dataset, config: &TrainConfig) -> (LogReg, TrainStats) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(data.n_classes >= 2, "need at least two classes");
        let folded = data.fold_duplicates();
        let (fdata, counts) = (&folded.data, &folded.counts[..]);
        let dim = data.n_classes * (data.n_features + 1);
        let mut x0 = vec![0.0; dim];
        if config.optimizer == Optimizer::Lbfgs && config.warm_start_epochs > 0 {
            warm_start(rt, fdata, counts, config, &mut x0);
        }
        let mut scratch = SpanScratch::default();
        let objective = |w: &[f64], grad: &mut [f64]| {
            loss_grad_folded_on(rt, fdata, counts, config.c, w, grad, &mut scratch)
        };

        let (w, iterations, final_loss, converged) = match config.optimizer {
            Optimizer::Lbfgs => {
                let cfg = LbfgsConfig {
                    max_iters: config.max_iters,
                    tol: config.tol,
                    ..LbfgsConfig::default()
                };
                let LbfgsOutcome { x, f, iterations, converged } =
                    lbfgs_minimize(x0, objective, &cfg);
                (x, iterations, f, converged)
            }
            Optimizer::Sgd => {
                let cfg = SgdConfig {
                    epochs: config.sgd_epochs,
                    lr: config.sgd_lr,
                    ..SgdConfig::default()
                };
                let (x, f, iters) = sgd_minimize(x0, objective, &cfg);
                (x, iters, f, true)
            }
        };
        let stats = TrainStats {
            iterations,
            final_loss,
            converged,
            n_examples: data.len(),
            n_unique_rows: fdata.len(),
        };
        (LogReg::from_weights(w, data.n_classes, data.n_features), stats)
    }

    /// Assemble a model from a validated weight vector, building the
    /// feature-major mirror the scoring paths read.
    fn from_weights(w: Vec<f64>, n_classes: usize, n_features: usize) -> LogReg {
        let mut wt = Vec::new();
        let mut intercepts = Vec::new();
        transpose_weights_into(&w, n_classes, n_features, &mut wt, &mut intercepts);
        LogReg { w, wt, intercepts, n_classes, n_features }
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The raw class-major weight matrix (row stride `n_features + 1`,
    /// intercept last) — the model's serializable part.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Rebuild a model from its serialized parts, validating the shape
    /// invariants every inference path indexes by.
    pub fn from_parts(
        w: Vec<f64>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<LogReg, StoreError> {
        if n_classes < 2 {
            return Err(StoreError::Invalid {
                context: "logreg model",
                detail: format!("n_classes {n_classes} < 2"),
            });
        }
        let dim = n_classes.saturating_mul(n_features.saturating_add(1));
        if w.len() != dim {
            return Err(StoreError::Invalid {
                context: "logreg model",
                detail: format!(
                    "weight vector has {} entries, expected {n_classes} × ({n_features} + 1)",
                    w.len()
                ),
            });
        }
        Ok(LogReg::from_weights(w, n_classes, n_features))
    }

    #[inline]
    fn row(&self, k: usize) -> &[f64] {
        let stride = self.n_features + 1;
        &self.w[k * stride..(k + 1) * stride]
    }

    /// Write class log-odds for one example into `out` (length
    /// `n_classes`) — the shared allocation-free kernel behind every
    /// scoring path. Walks the feature-major mirror: one contiguous
    /// `n_classes`-wide block per stored feature, then the intercepts.
    /// Every class accumulator starts at 0.0, adds the same `x·w` terms in
    /// the same (increasing-index) order as [`SparseVec::dot`] over the
    /// class-major row, and adds its intercept last — bit-identical to the
    /// old `x.dot(&row[..d]) + row[d]` per class.
    fn scores_write(&self, x: &SparseVec, out: &mut [f64]) {
        // One cheap pass picks the multiply-free monomorphization for
        // indicator features (the common case — see `Dataset::all_unit`).
        if x.iter().all(|(_, v)| v == 1.0) {
            self.scores_accum::<true>(x, out);
        } else {
            self.scores_accum::<false>(x, out);
        }
    }

    fn scores_accum<const UNIT: bool>(&self, x: &SparseVec, out: &mut [f64]) {
        out.fill(0.0);
        let d = self.n_features;
        let k = self.n_classes;
        for (i, v) in x.iter() {
            let i = i as usize;
            // Skip rule of `SparseVec::dot`: features interned after the
            // weights were sized (index ≥ d — including exactly d, which
            // must not alias the intercept) contribute nothing.
            if i >= d {
                continue;
            }
            let ws = &self.wt[i * k..(i + 1) * k];
            let xv = f64::from(v);
            for (s, &wv) in out.iter_mut().zip(ws) {
                *s += if UNIT { wv } else { xv * wv };
            }
        }
        for (s, &b) in out.iter_mut().zip(&self.intercepts) {
            *s += b;
        }
    }

    /// Class log-odds (pre-softmax scores) for one example.
    pub fn scores(&self, x: &SparseVec) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.scores_write(x, &mut out);
        out
    }

    /// [`LogReg::scores`] into a reusable scratch — no allocation.
    pub fn scores_into<'a>(&self, x: &SparseVec, scratch: &'a mut ScoreScratch) -> &'a [f64] {
        let out = scratch.resized(self.n_classes);
        self.scores_write(x, out);
        out
    }

    /// Posterior distribution over classes for one example.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f64> {
        let mut scores = self.scores(x);
        softmax_in_place(&mut scores);
        scores
    }

    /// [`LogReg::predict_proba`] into a reusable scratch — no allocation.
    pub fn predict_proba_into<'a>(
        &self,
        x: &SparseVec,
        scratch: &'a mut ScoreScratch,
    ) -> &'a [f64] {
        let out = scratch.resized(self.n_classes);
        self.scores_write(x, out);
        softmax_in_place(out);
        out
    }

    /// Most probable class and its probability.
    pub fn predict(&self, x: &SparseVec) -> (u32, f64) {
        top_class(&self.predict_proba(x))
    }

    /// [`LogReg::predict`] through a reusable scratch — no allocation.
    pub fn predict_into(&self, x: &SparseVec, scratch: &mut ScoreScratch) -> (u32, f64) {
        top_class(self.predict_proba_into(x, scratch))
    }

    /// Mean accuracy on a labeled dataset (CSR rows scored through one
    /// scratch — no per-example allocations).
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut scratch = ScoreScratch::new();
        let mut correct = 0usize;
        for r in 0..data.len() {
            let (idx, vals) = data.row(r);
            let out = scratch.resized(self.n_classes);
            for (ki, s) in out.iter_mut().enumerate() {
                let row = self.row(ki);
                *s = dot_row(idx, vals, &row[..self.n_features]) + row[self.n_features];
            }
            softmax_in_place(out);
            if top_class(out).0 == data.labels[r] {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }
}

impl Encode for LogReg {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_classes);
        w.put_usize(self.n_features);
        w.put(&self.w);
    }
}

impl Decode for LogReg {
    fn decode(r: &mut Reader<'_>) -> Result<LogReg, StoreError> {
        const CTX: &str = "logreg model";
        let n_classes = r.get_usize(CTX)?;
        let n_features = r.get_usize(CTX)?;
        let w: Vec<f64> = r.get()?;
        LogReg::from_parts(w, n_classes, n_features)
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_in_place(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// Multiplicity-weighted unregularized negative log-likelihood over rows
/// `lo..hi`, in the **feature-major (transposed) layout**: weights come in
/// as `wt[i*k + ki]` + split-out intercepts, and the gradient is
/// accumulated into `acc` — `d*k` transposed feature slots followed by `k`
/// intercept slots. One pass per row touches a contiguous `k`-wide block
/// per stored feature, replacing the old `k` strided gather-dots plus `k`
/// scatter passes.
///
/// Bit-identical to the class-major kernel by construction: every
/// accumulator (per-class score, each gradient slot) starts at 0.0 and
/// receives exactly the same contributions in the same order — increasing
/// index within a row, row order across rows, intercept added after the
/// feature sum, softmax coefficients computed from the same score values.
/// Row `r` contributes `counts[r]` times its loss and gradient; with all
/// counts 1 every operation is bit-identical to the unfolded per-example
/// objective (`1.0 × x` and `x` are the same IEEE value). Pinned against
/// the per-example `SparseVec` reference, to the bit, by
/// `prop_csr_loss_grad_matches_sparse_vec_reference`.
#[allow(clippy::too_many_arguments)]
fn loss_grad_span(
    data: &Dataset,
    counts: &[u32],
    lo: usize,
    hi: usize,
    wt: &[f64],
    intercepts: &[f64],
    acc: &mut [f64],
    scores: &mut Vec<f64>,
    coeffs: &mut Vec<f64>,
) -> f64 {
    // Pure indicator datasets take the multiply-free monomorphization:
    // `1.0 × w == w` and `coeff × 1.0 == coeff` are IEEE identities, so
    // skipping the multiplies cannot change a bit.
    if data.all_unit {
        span_kernel::<true>(data, counts, lo, hi, wt, intercepts, acc, scores, coeffs)
    } else {
        span_kernel::<false>(data, counts, lo, hi, wt, intercepts, acc, scores, coeffs)
    }
}

// `r` indexes three parallel arrays (rows, labels, counts), so a range
// loop reads better than enumerating any single one of them.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn span_kernel<const UNIT: bool>(
    data: &Dataset,
    counts: &[u32],
    lo: usize,
    hi: usize,
    wt: &[f64],
    intercepts: &[f64],
    acc: &mut [f64],
    scores: &mut Vec<f64>,
    coeffs: &mut Vec<f64>,
) -> f64 {
    let k = data.n_classes;
    let d = data.n_features;
    debug_assert_eq!(wt.len(), d * k);
    debug_assert_eq!(intercepts.len(), k);
    debug_assert_eq!(acc.len(), d * k + k);
    debug_assert_eq!(counts.len(), data.len());
    let (gt, gi) = acc.split_at_mut(d * k);
    scores.clear();
    scores.resize(k, 0.0);
    coeffs.clear();
    coeffs.resize(k, 0.0);

    let mut loss = 0.0;
    for r in lo..hi {
        let (idx, vals) = data.row(r);
        let y = data.labels[r] as usize;
        let c = f64::from(counts[r]);
        scores.fill(0.0);
        for (&i, &v) in idx.iter().zip(vals) {
            let i = i as usize;
            // Skip rule of `SparseVec::dot`: indices ≥ d (features interned
            // after the weights were sized) contribute nothing.
            if i >= d {
                continue;
            }
            let ws = &wt[i * k..(i + 1) * k];
            let xv = f64::from(v);
            for (s, &wv) in scores.iter_mut().zip(ws) {
                *s += if UNIT { wv } else { xv * wv };
            }
        }
        for (s, &b) in scores.iter_mut().zip(intercepts) {
            *s += b; // intercept after the feature sum, as in `dot + row[d]`
        }
        // log-sum-exp for the normalizer.
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + scores.iter().map(|s| (s - max).exp()).sum::<f64>().ln();
        loss += c * (lse - scores[y]);

        for (ki, (co, s)) in coeffs.iter_mut().zip(scores.iter()).enumerate() {
            let p = (s - lse).exp();
            let indicator = f64::from(ki == y);
            *co = c * (p - indicator);
        }
        for (&i, &v) in idx.iter().zip(vals) {
            let i = i as usize;
            if i >= d {
                continue;
            }
            let gs = &mut gt[i * k..(i + 1) * k];
            let xv = f64::from(v);
            for (g, &co) in gs.iter_mut().zip(coeffs.iter()) {
                *g += if UNIT { co } else { co * xv };
            }
        }
        for (g, &co) in gi.iter_mut().zip(coeffs.iter()) {
            *g += co; // intercept "feature" is the constant 1
        }
    }
    loss
}

/// Reusable buffers for one objective evaluation: the transposed weights,
/// the packed transposed-gradient accumulator (`d*k` feature slots then `k`
/// intercept slots), and the per-row score/coefficient scratch. One of
/// these lives for a whole optimizer run, so the per-evaluation transpose
/// is the only O(dim) work added — the same order as the `grad.fill(0.0)`
/// each evaluation already pays.
#[derive(Debug, Default)]
struct SpanScratch {
    wt: Vec<f64>,
    intercepts: Vec<f64>,
    acc: Vec<f64>,
    scores: Vec<f64>,
    coeffs: Vec<f64>,
}

/// Deterministic block structure for parallel gradient accumulation over
/// rows `lo..hi`. Boundaries depend only on the span length — never the
/// thread count — so the per-block partial sums, reduced in block-index
/// order, give bit-identical loss and gradient at any thread count. The
/// minimum block size keeps tiny datasets on the single-block (serial)
/// path where per-block buffers would cost more than they save. Each
/// block pays a zero + reduce of a full `d*k`-sized partial per objective
/// eval, so the target count is kept small: at d≈4k, k≈10 the partial is
/// ~345 KB and 32 blocks made the bookkeeping rival the row sweeps.
const GRAD_TARGET_BLOCKS: usize = 4;
const GRAD_MIN_BLOCK: usize = 64;

fn grad_blocks(lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let n = hi - lo;
    if n == 0 {
        return Vec::new();
    }
    let block = n.div_ceil(GRAD_TARGET_BLOCKS).max(GRAD_MIN_BLOCK);
    (0..n).step_by(block).map(|b| (lo + b, lo + (b + block).min(n))).collect()
}

/// Accumulate the span loss/gradient of rows `lo..hi` into the class-major
/// `grad` on `rt`'s workers. The weights are transposed once into
/// `scratch`, each fixed block produces a partial (loss, transposed
/// gradient) reduced sequentially in block order, and the transposed total
/// is scattered back into `grad` — a pure permutation of additions, so the
/// result is bit-identical to accumulating class-major directly: every
/// slot starts at 0.0 in both layouts and receives the same contributions
/// in the same order. One block short-circuits the fan-out, running the
/// kernel straight into the scratch accumulator.
#[allow(clippy::too_many_arguments)]
fn accumulate_span_on(
    rt: &Runtime,
    data: &Dataset,
    counts: &[u32],
    lo: usize,
    hi: usize,
    w: &[f64],
    grad: &mut [f64],
    scratch: &mut SpanScratch,
) -> f64 {
    let k = data.n_classes;
    let d = data.n_features;
    let stride = d + 1;
    debug_assert_eq!(w.len(), k * stride);
    transpose_weights_into(w, k, d, &mut scratch.wt, &mut scratch.intercepts);
    scratch.acc.clear();
    scratch.acc.resize(d * k + k, 0.0);
    let blocks = grad_blocks(lo, hi);
    let loss = if blocks.len() <= 1 {
        loss_grad_span(
            data,
            counts,
            lo,
            hi,
            &scratch.wt,
            &scratch.intercepts,
            &mut scratch.acc,
            &mut scratch.scores,
            &mut scratch.coeffs,
        )
    } else {
        let wt = &scratch.wt;
        let intercepts = &scratch.intercepts;
        let parts = rt.par_map_chunked(
            &blocks,
            auto_chunk_coarse(blocks.len(), rt.threads()),
            |&(a, b)| {
                let mut part = vec![0.0; d * k + k];
                let mut scores = Vec::new();
                let mut coeffs = Vec::new();
                let l = loss_grad_span(
                    data,
                    counts,
                    a,
                    b,
                    wt,
                    intercepts,
                    &mut part,
                    &mut scores,
                    &mut coeffs,
                );
                (l, part)
            },
        );
        let mut loss = 0.0;
        for (l, part) in &parts {
            loss += l;
            for (g, p) in scratch.acc.iter_mut().zip(part) {
                *g += p;
            }
        }
        loss
    };
    // Scatter the transposed totals into the class-major gradient. The
    // scratch accumulator folded from 0.0, so it can never hold -0.0 and
    // `grad_slot += total` is the bitwise value the class-major layout
    // would have accumulated in place.
    for ki in 0..k {
        let grow = &mut grad[ki * stride..(ki + 1) * stride];
        for (j, g) in grow[..d].iter_mut().enumerate() {
            *g += scratch.acc[j * k + ki];
        }
        grow[d] += scratch.acc[d * k + ki];
    }
    loss
}

/// L2 penalty (1/2C)·‖W‖², skipping intercepts; returns the loss term and
/// accumulates the gradient term.
fn add_l2_penalty(data: &Dataset, c: f64, w: &[f64], grad: &mut [f64]) -> f64 {
    let stride = data.n_features + 1;
    let lambda = 1.0 / c;
    let mut loss = 0.0;
    for ki in 0..data.n_classes {
        for j in 0..data.n_features {
            let v = w[ki * stride + j];
            loss += 0.5 * lambda * v * v;
            grad[ki * stride + j] += lambda * v;
        }
    }
    loss
}

/// The regularized, multiplicity-weighted objective and its gradient, with
/// gradient accumulation parallelized over `rt` — the L-BFGS inner loop.
/// Bit-identical at any thread count (fixed blocks, block-order reduction).
#[allow(clippy::too_many_arguments)]
fn loss_grad_folded_on(
    rt: &Runtime,
    data: &Dataset,
    counts: &[u32],
    c: f64,
    w: &[f64],
    grad: &mut [f64],
    scratch: &mut SpanScratch,
) -> f64 {
    grad.fill(0.0);
    let loss = accumulate_span_on(rt, data, counts, 0, data.len(), w, grad, scratch);
    loss + add_l2_penalty(data, c, w, grad)
}

/// Regularized per-example (all multiplicities 1) negative log-likelihood
/// and gradient on a sequential runtime — what the gradient-check and CSR
/// bit-identity tests evaluate against the references.
#[cfg(test)]
pub(crate) fn loss_grad(data: &Dataset, c: f64, w: &[f64], grad: &mut [f64]) -> f64 {
    loss_grad_on(&Runtime::sequential(), data, c, w, grad)
}

/// [`loss_grad`] with gradient accumulation parallelized over `rt` (all
/// multiplicities 1) — kept for the thread-invariance pins.
#[cfg(test)]
pub(crate) fn loss_grad_on(
    rt: &Runtime,
    data: &Dataset,
    c: f64,
    w: &[f64],
    grad: &mut [f64],
) -> f64 {
    let ones = vec![1u32; data.len()];
    let mut scratch = SpanScratch::default();
    loss_grad_folded_on(rt, data, &ones, c, w, grad, &mut scratch)
}

/// Mini-batch SGD warm start before full-batch L-BFGS: a few epochs of
/// plain (momentum-free) mini-batch steps over deterministic fixed-order
/// batches of **unique rows**, each stepping on the batch's
/// multiplicity-weighted mean gradient plus the batch's share (by
/// multiplicity mass) of the L2 penalty. Fixed batch boundaries + the
/// blocked span accumulator keep it byte-identical at any thread count;
/// on an unfolded dataset (all counts 1) the arithmetic reduces exactly to
/// the historical per-example warm start. An epoch that drives any weight
/// non-finite is rewound and ends the warm start — the full-batch L-BFGS
/// that follows is the robust phase.
fn warm_start(rt: &Runtime, data: &Dataset, counts: &[u32], config: &TrainConfig, w: &mut [f64]) {
    let n = data.len();
    let batch = config.warm_start_batch.clamp(1, n);
    let stride = data.n_features + 1;
    let lambda = 1.0 / config.c;
    // Batch boundaries and multiplicity masses are fixed up front: with all
    // counts 1, `mass` is exactly the old `(hi - lo)` example count.
    let batches: Vec<(usize, usize, f64)> = (0..n)
        .step_by(batch)
        .map(|lo| {
            let hi = (lo + batch).min(n);
            (lo, hi, counts[lo..hi].iter().map(|&c| f64::from(c)).sum())
        })
        .collect();
    let total: f64 = counts.iter().map(|&c| f64::from(c)).sum();
    let mut grad = vec![0.0; w.len()];
    let mut scratch = SpanScratch::default();
    let mut prev = w.to_vec();
    for _ in 0..config.warm_start_epochs {
        prev.copy_from_slice(w);
        for &(lo, hi, mass) in &batches {
            grad.fill(0.0);
            accumulate_span_on(rt, data, counts, lo, hi, w, &mut grad, &mut scratch);
            let scale = mass / total;
            for ki in 0..data.n_classes {
                for j in 0..data.n_features {
                    grad[ki * stride + j] += scale * lambda * w[ki * stride + j];
                }
            }
            let step = config.sgd_lr / mass;
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= step * g;
            }
        }
        if w.iter().any(|v| !v.is_finite()) {
            w.copy_from_slice(&prev);
            break;
        }
    }
    // Accept the warm point only if it improved the full objective: a
    // diverged-but-finite trajectory (an oversized learning rate walking
    // the weights to ±1e300) must not poison the L-BFGS that follows. A
    // NaN warm loss compares as not-improved and is rejected too.
    let warm_loss = loss_grad_folded_on(rt, data, counts, config.c, w, &mut grad, &mut scratch);
    prev.fill(0.0);
    let cold_loss = loss_grad_folded_on(rt, data, counts, config.c, &prev, &mut grad, &mut scratch);
    let improved = warm_loss < cold_loss;
    if !improved {
        w.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn xor_free_dataset() -> Dataset {
        // Three linearly separable classes on two indicator features.
        let mut data = Dataset::new(3, 2);
        for _ in 0..20 {
            data.push(SparseVec::from_pairs(vec![(0, 1.0)]), 0);
            data.push(SparseVec::from_pairs(vec![(1, 1.0)]), 1);
            data.push(SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]), 2);
        }
        data
    }

    #[test]
    fn learns_separable_classes() {
        let data = xor_free_dataset();
        let (model, stats) = LogReg::train(&data, &TrainConfig::default());
        assert!(stats.final_loss.is_finite());
        assert!(model.accuracy(&data) > 0.99, "accuracy {}", model.accuracy(&data));
        // xor_free_dataset repeats three rows 20 times each.
        assert_eq!(stats.n_examples, 60);
        assert_eq!(stats.n_unique_rows, 3);
        assert!((stats.fold_ratio() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        for r in 0..data.len() {
            let x = data.sparse_row(r);
            let p = model.predict_proba(&x);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn into_variants_match_allocating_paths_bit_for_bit() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let mut scratch = ScoreScratch::new();
        for r in 0..data.len() {
            let x = data.sparse_row(r);
            assert_eq!(model.scores(&x), model.scores_into(&x, &mut scratch));
            assert_eq!(model.predict_proba(&x), model.predict_proba_into(&x, &mut scratch));
            assert_eq!(model.predict(&x), model.predict_into(&x, &mut scratch));
        }
    }

    /// The feature-major scoring mirror must reproduce the class-major
    /// formula (`x.dot(&row[..d]) + row[d]` per class) to the bit,
    /// including the skip rule for late-interned feature indices ≥ d.
    #[test]
    fn transposed_scores_match_class_major_reference_bit_for_bit() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let probes = [
            SparseVec::from_pairs(vec![(0, 1.0)]),
            SparseVec::from_pairs(vec![(0, -0.5), (1, 2.0)]),
            // Indices ≥ n_features (= 2): skipped, never aliasing the
            // intercept slot.
            SparseVec::from_pairs(vec![(1, 1.0), (2, 7.0), (9, -3.0)]),
            SparseVec::new(),
        ];
        for x in &probes {
            let got = model.scores(x);
            let reference: Vec<f64> = (0..model.n_classes())
                .map(|ki| {
                    let row = model.row(ki);
                    x.dot(&row[..model.n_features()]) + row[model.n_features()]
                })
                .collect();
            assert_eq!(got, reference, "scores diverged for {x:?}");
        }
    }

    #[test]
    fn sgd_also_learns() {
        let data = xor_free_dataset();
        let cfg = TrainConfig { optimizer: Optimizer::Sgd, ..TrainConfig::default() };
        let (model, _) = LogReg::train(&data, &cfg);
        assert!(model.accuracy(&data) > 0.95);
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let data = xor_free_dataset();
        let strong = LogReg::train(&data, &TrainConfig { c: 0.01, ..TrainConfig::default() }).0;
        let weak = LogReg::train(&data, &TrainConfig { c: 100.0, ..TrainConfig::default() }).0;
        let norm = |m: &LogReg| m.w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut data = Dataset::new(3, 4);
        data.push(SparseVec::from_pairs(vec![(0, 1.0), (3, 0.5)]), 0);
        data.push(SparseVec::from_pairs(vec![(1, 2.0)]), 1);
        data.push(SparseVec::from_pairs(vec![(2, 1.0), (1, -1.0)]), 2);
        data.push(SparseVec::from_pairs(vec![(0, -0.5), (2, 0.25)]), 1);

        let dim = 3 * 5;
        // A deterministic non-trivial weight point.
        let w: Vec<f64> = (0..dim).map(|i| ((i * 7 % 11) as f64 - 5.0) * 0.1).collect();
        let mut grad = vec![0.0; dim];
        let f0 = loss_grad(&data, 1.0, &w, &mut grad);
        assert!(f0.is_finite());

        let eps = 1e-6;
        let mut scratch = vec![0.0; dim];
        for i in 0..dim {
            let mut wp = w.clone();
            wp[i] += eps;
            let fp = loss_grad(&data, 1.0, &wp, &mut scratch);
            let mut wm = w.clone();
            wm[i] -= eps;
            let fm = loss_grad(&data, 1.0, &wm, &mut scratch);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "grad mismatch at {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn folded_gradient_matches_finite_differences() {
        // Same check against the multiplicity-weighted objective: duplicate
        // a few rows, fold, and difference the folded loss.
        let mut data = Dataset::new(3, 4);
        for _ in 0..3 {
            data.push(SparseVec::from_pairs(vec![(0, 1.0), (3, 0.5)]), 0);
        }
        data.push(SparseVec::from_pairs(vec![(1, 2.0)]), 1);
        data.push(SparseVec::from_pairs(vec![(1, 2.0)]), 1);
        data.push(SparseVec::from_pairs(vec![(2, 1.0), (1, -1.0)]), 2);
        let folded = data.fold_duplicates();
        assert_eq!(folded.data.len(), 3);
        assert_eq!(folded.counts, vec![3, 2, 1]);

        let dim = 3 * 5;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 7 % 11) as f64 - 5.0) * 0.1).collect();
        let rt = Runtime::sequential();
        let mut scratch = SpanScratch::default();
        let eval = |w: &[f64], grad: &mut [f64], scratch: &mut SpanScratch| {
            loss_grad_folded_on(&rt, &folded.data, &folded.counts, 1.0, w, grad, scratch)
        };
        let mut grad = vec![0.0; dim];
        let f0 = eval(&w, &mut grad, &mut scratch);
        assert!(f0.is_finite());
        let eps = 1e-6;
        let mut sink = vec![0.0; dim];
        for i in 0..dim {
            let mut wp = w.clone();
            wp[i] += eps;
            let fp = eval(&wp, &mut sink, &mut scratch);
            let mut wm = w.clone();
            wm[i] -= eps;
            let fm = eval(&wm, &mut sink, &mut scratch);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "folded grad mismatch at {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let mut s = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[1] > s[0] && s[0] > s[2]);
    }

    #[test]
    fn trained_model_round_trips_bit_for_bit() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let mut w = ceres_store::Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let back = LogReg::decode(&mut ceres_store::Reader::new(&bytes)).expect("decode");
        assert_eq!(back.n_classes(), model.n_classes());
        assert_eq!(back.n_features(), model.n_features());
        assert_eq!(back.weights(), model.weights());
        // Identical weights ⇒ identical posteriors, bit for bit.
        for r in 0..data.len() {
            let x = data.sparse_row(r);
            assert_eq!(back.predict_proba(&x), model.predict_proba(&x));
        }
    }

    #[test]
    fn model_decode_rejects_shape_lies() {
        let data = xor_free_dataset();
        let (model, _) = LogReg::train(&data, &TrainConfig::default());
        let mut w = ceres_store::Writer::new();
        model.encode(&mut w);
        let mut bytes = w.into_bytes();
        // n_classes is the first varint; bump it so the weight count no
        // longer matches the declared shape.
        bytes[0] += 1;
        assert!(LogReg::decode(&mut ceres_store::Reader::new(&bytes)).is_err());
        assert!(LogReg::from_parts(vec![0.0; 5], 2, 3).is_err());
        assert!(LogReg::from_parts(vec![0.0; 8], 1, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(2, 1);
        let _ = LogReg::train(&data, &TrainConfig::default());
    }

    #[test]
    fn csr_layout_round_trips_rows() {
        let rows = [
            SparseVec::from_pairs(vec![(0, 1.0), (5, -2.5)]),
            SparseVec::new(),
            SparseVec::from_pairs(vec![(3, 0.25)]),
        ];
        let mut data = Dataset::new(2, 6);
        for (r, x) in rows.iter().enumerate() {
            data.push(x.clone(), (r % 2) as u32);
        }
        assert_eq!(data.len(), 3);
        assert_eq!(data.nnz(), 3);
        assert_eq!(data.labels(), &[0, 1, 0]);
        for (r, x) in rows.iter().enumerate() {
            assert_eq!(&data.sparse_row(r), x, "row {r}");
        }
        // Empty rows stay addressable.
        assert_eq!(data.row(1), (&[][..], &[][..]));
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = Dataset::new(2, 4);
        a.push(SparseVec::from_pairs(vec![(0, 1.0)]), 0);
        let mut b = Dataset::new(2, 4);
        b.push(SparseVec::from_pairs(vec![(1, 2.0), (3, 3.0)]), 1);
        b.push(SparseVec::new(), 0);
        let mut whole = Dataset::new(2, 4);
        whole.push(SparseVec::from_pairs(vec![(0, 1.0)]), 0);
        whole.push(SparseVec::from_pairs(vec![(1, 2.0), (3, 3.0)]), 1);
        whole.push(SparseVec::new(), 0);
        a.append(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn push_indicators_buf_matches_sparse_vec_push() {
        let mut via_buf = Dataset::new(2, 10);
        let mut buf = vec![5, 1, 5, 2];
        via_buf.push_indicators_buf(&mut buf, 1);
        assert!(buf.is_empty(), "buffer must be drained for reuse");
        let mut via_push = Dataset::new(2, 10);
        via_push.push(SparseVec::from_indices(vec![5, 1, 5, 2]), 1);
        assert_eq!(via_buf, via_push);
    }

    #[test]
    fn fold_keeps_first_occurrence_order_and_masses() {
        let mut data = Dataset::new(2, 4);
        let a = SparseVec::from_pairs(vec![(0, 1.0)]);
        let b = SparseVec::from_pairs(vec![(1, 1.0)]);
        // Interleaved duplicates; (a, 1) differs from (a, 0) by label only.
        for x in [&a, &b, &a, &a, &b] {
            data.push(x.clone(), 0);
        }
        data.push(a.clone(), 1);
        let folded = data.fold_duplicates();
        assert_eq!(folded.data.len(), 3);
        assert_eq!(folded.counts, vec![3, 2, 1]);
        assert_eq!(folded.data.sparse_row(0), a);
        assert_eq!(folded.data.sparse_row(1), b);
        assert_eq!(folded.data.sparse_row(2), a);
        assert_eq!(folded.data.labels(), &[0, 0, 1]);
        assert_eq!(folded.counts.iter().sum::<u32>() as usize, data.len());
        // Determinism: folding again gives the identical structure.
        let again = data.fold_duplicates();
        assert_eq!(again.data, folded.data);
        assert_eq!(again.counts, folded.counts);
        // Values are compared bitwise: 1.0 vs -1.0 at the same index must
        // not fold together.
        let mut signs = Dataset::new(2, 2);
        signs.push(SparseVec::from_pairs(vec![(0, 1.0)]), 0);
        signs.push(SparseVec::from_pairs(vec![(0, -1.0)]), 0);
        assert_eq!(signs.fold_duplicates().data.len(), 2);
    }

    #[test]
    fn folded_objective_equals_unfolded_objective() {
        // The folded loss/gradient must equal the plain per-example
        // objective numerically (folding reorders float additions, so
        // tight-tolerance, not bitwise).
        let mut data = Dataset::new(3, 5);
        for i in 0..120usize {
            let x =
                SparseVec::from_pairs(vec![((i % 4) as u32, 1.0), (4, (i % 3) as f32 * 0.5 - 0.5)]);
            data.push(x, (i % 3) as u32);
        }
        let folded = data.fold_duplicates();
        assert!(folded.data.len() < data.len(), "fixture must actually fold");
        let dim = 3 * 6;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 3 % 7) as f64 - 3.0) * 0.1).collect();
        let mut g_ref = vec![0.0; dim];
        let l_ref = loss_grad(&data, 1.0, &w, &mut g_ref);
        let mut g_fold = vec![0.0; dim];
        let mut scratch = SpanScratch::default();
        let l_fold = loss_grad_folded_on(
            &Runtime::sequential(),
            &folded.data,
            &folded.counts,
            1.0,
            &w,
            &mut g_fold,
            &mut scratch,
        );
        assert!((l_ref - l_fold).abs() <= 1e-9 * l_ref.abs().max(1.0), "{l_ref} vs {l_fold}");
        for (i, (a, b)) in g_ref.iter().zip(&g_fold).enumerate() {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "grad[{i}]: {a} vs {b}");
        }
    }

    /// A dataset big enough to cross the multi-block threshold of
    /// `grad_blocks` (> 2 × `GRAD_MIN_BLOCK` examples).
    fn blocky_dataset() -> Dataset {
        let mut data = Dataset::new(3, 6);
        for i in 0..500usize {
            let a = (i * 7 % 13) as f32 * 0.25 - 1.0;
            let b = (i * 11 % 17) as f32 * 0.125;
            let x =
                SparseVec::from_pairs(vec![((i % 6) as u32, a), (((i + 2) % 6) as u32, b + 1.0)]);
            data.push(x, (i % 3) as u32);
        }
        data
    }

    /// `blocky_dataset` with heavy duplication: every row repeated enough
    /// that the folded row count still crosses the multi-block threshold.
    fn duplicated_blocky_dataset() -> Dataset {
        let base = blocky_dataset();
        let mut data = Dataset::new(base.n_classes, base.n_features);
        for r in 0..base.len() {
            for _ in 0..1 + (r % 3) {
                let (idx, vals) = base.row(r);
                data.push_row(idx, vals, base.labels()[r]);
            }
        }
        data
    }

    #[test]
    fn blocked_gradient_is_bit_identical_at_every_thread_count() {
        let data = blocky_dataset();
        assert!(grad_blocks(0, data.len()).len() > 1, "fixture must exercise multiple blocks");
        let dim = 3 * 7;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 5 % 9) as f64 - 4.0) * 0.05).collect();
        let mut ref_grad = vec![0.0; dim];
        let ref_loss = loss_grad_on(&Runtime::sequential(), &data, 1.0, &w, &mut ref_grad);
        for threads in [2, 4, 8] {
            let rt = Runtime::new(threads);
            let mut grad = vec![0.0; dim];
            let loss = loss_grad_on(&rt, &data, 1.0, &w, &mut grad);
            assert_eq!(loss.to_bits(), ref_loss.to_bits(), "loss diverged at threads={threads}");
            assert!(
                grad.iter().zip(&ref_grad).all(|(a, b)| a.to_bits() == b.to_bits()),
                "gradient diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn blocked_gradient_matches_the_serial_kernel_numerically() {
        // Block-order reduction reassociates float additions, so exact bit
        // equality with the flat serial loop is not promised — but the
        // values must agree to tight tolerance.
        let data = blocky_dataset();
        let dim = 3 * 7;
        let w: Vec<f64> = (0..dim).map(|i| ((i * 5 % 9) as f64 - 4.0) * 0.05).collect();
        let mut serial = vec![0.0; dim];
        let ls = loss_grad(&data, 1.0, &w, &mut serial);
        let mut blocked = vec![0.0; dim];
        let lb = loss_grad_on(&Runtime::new(4), &data, 1.0, &w, &mut blocked);
        assert!((ls - lb).abs() <= 1e-9 * ls.abs().max(1.0), "loss {ls} vs {lb}");
        for (i, (a, b)) in serial.iter().zip(&blocked).enumerate() {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "grad[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn train_on_is_thread_count_invariant() {
        let data = blocky_dataset();
        let cfg = TrainConfig::default();
        let (reference, ref_stats) = LogReg::train(&data, &cfg);
        for threads in [2, 8] {
            let (model, stats) = LogReg::train_on(&Runtime::new(threads), &data, &cfg);
            assert_eq!(model.weights(), reference.weights(), "weights diverged at {threads}");
            assert_eq!(stats.iterations, ref_stats.iterations);
            assert_eq!(stats.final_loss.to_bits(), ref_stats.final_loss.to_bits());
        }
        assert!(reference.accuracy(&data) > 0.5);
    }

    #[test]
    fn folded_training_is_thread_count_invariant() {
        // Duplicate-heavy data: folding must engage, shrink the walked row
        // count, and stay byte-identical at threads {1, 2, 8}.
        let data = duplicated_blocky_dataset();
        let cfg = TrainConfig::default();
        let (reference, ref_stats) = LogReg::train(&data, &cfg);
        assert_eq!(ref_stats.n_examples, data.len());
        assert_eq!(ref_stats.n_unique_rows, blocky_dataset().len());
        assert!(ref_stats.fold_ratio() > 1.5, "fold ratio {}", ref_stats.fold_ratio());
        assert!(
            grad_blocks(0, ref_stats.n_unique_rows).len() > 1,
            "folded fixture must still exercise multiple blocks"
        );
        for threads in [1, 2, 8] {
            let (model, stats) = LogReg::train_on(&Runtime::new(threads), &data, &cfg);
            assert_eq!(model.weights(), reference.weights(), "weights diverged at {threads}");
            assert_eq!(stats.iterations, ref_stats.iterations);
            assert_eq!(stats.final_loss.to_bits(), ref_stats.final_loss.to_bits());
            assert_eq!(stats.n_unique_rows, ref_stats.n_unique_rows);
        }
    }

    #[test]
    fn warm_start_is_thread_count_invariant_and_still_learns() {
        let data = blocky_dataset();
        let cfg =
            TrainConfig { warm_start_epochs: 3, warm_start_batch: 64, ..TrainConfig::default() };
        let (reference, _) = LogReg::train(&data, &cfg);
        for threads in [2, 8] {
            let (model, _) = LogReg::train_on(&Runtime::new(threads), &data, &cfg);
            assert_eq!(model.weights(), reference.weights(), "warm start diverged at {threads}");
        }
        // The warm start must not hurt the optimum the solver reaches.
        let (cold, _) = LogReg::train(&data, &TrainConfig::default());
        let acc = reference.accuracy(&data);
        assert!(
            acc >= cold.accuracy(&data) - 0.05,
            "warm-started accuracy {acc} collapsed vs cold {}",
            cold.accuracy(&data)
        );
    }

    #[test]
    fn warm_start_survives_a_divergent_learning_rate() {
        let data = blocky_dataset();
        let cfg = TrainConfig {
            warm_start_epochs: 5,
            warm_start_batch: 32,
            sgd_lr: 1e6, // absurd on purpose
            ..TrainConfig::default()
        };
        let (model, stats) = LogReg::train(&data, &cfg);
        assert!(stats.final_loss.is_finite());
        assert!(model.weights().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn grad_blocks_cover_the_span_exactly_once() {
        for (lo, hi) in [(0, 0), (0, 1), (0, 63), (0, 64), (0, 129), (5, 505), (7, 4096)] {
            let blocks = grad_blocks(lo, hi);
            let mut expect = lo;
            for &(a, b) in &blocks {
                assert_eq!(a, expect, "gap before block ({a}, {b}) in span ({lo}, {hi})");
                assert!(b > a);
                expect = b;
            }
            assert_eq!(expect, hi, "span ({lo}, {hi}) not fully covered");
        }
    }

    /// The pre-CSR objective, verbatim: per-example `Vec<SparseVec>` rows,
    /// `SparseVec::dot` / `add_scaled_into` kernels, serial loop, L2 tail.
    /// The CSR path must reproduce it bit for bit.
    fn reference_loss_grad(
        examples: &[SparseVec],
        labels: &[u32],
        k: usize,
        d: usize,
        c: f64,
        w: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let stride = d + 1;
        grad.fill(0.0);
        let mut loss = 0.0;
        let mut scores = vec![0.0; k];
        for (x, &y) in examples.iter().zip(labels) {
            for (ki, s) in scores.iter_mut().enumerate() {
                let row = &w[ki * stride..(ki + 1) * stride];
                *s = x.dot(row) + row[d];
            }
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + scores.iter().map(|s| (s - max).exp()).sum::<f64>().ln();
            loss += lse - scores[y as usize];
            for ki in 0..k {
                let p = (scores[ki] - lse).exp();
                let indicator = f64::from(ki as u32 == y);
                let coeff = p - indicator;
                let grow = &mut grad[ki * stride..(ki + 1) * stride];
                x.add_scaled_into(&mut grow[..d], coeff);
                grow[d] += coeff;
            }
        }
        // Penalty accumulated apart and added once — as `add_l2_penalty`
        // always did.
        let lambda = 1.0 / c;
        let mut penalty = 0.0;
        for ki in 0..k {
            for j in 0..d {
                let v = w[ki * stride + j];
                penalty += 0.5 * lambda * v * v;
                grad[ki * stride + j] += lambda * v;
            }
        }
        loss + penalty
    }

    proptest! {
        /// CSR streaming changes the memory layout, never the arithmetic:
        /// loss and every gradient component must match the per-example
        /// `Vec<SparseVec>` reference to the bit.
        #[test]
        fn prop_csr_loss_grad_matches_sparse_vec_reference(
            raw in proptest::collection::vec(
                (proptest::collection::vec((0u32..12, -2.0f32..2.0), 0..6), 0u32..3),
                1..40,
            ),
            wseed in 0u32..1000,
        ) {
            let (k, d) = (3usize, 12usize);
            let examples: Vec<SparseVec> =
                raw.iter().map(|(pairs, _)| SparseVec::from_pairs(pairs.clone())).collect();
            let labels: Vec<u32> = raw.iter().map(|&(_, y)| y).collect();
            let mut data = Dataset::new(k, d);
            for (x, &y) in examples.iter().zip(&labels) {
                data.push(x.clone(), y);
            }
            let dim = k * (d + 1);
            let w: Vec<f64> = (0..dim)
                .map(|i| (((i as u32).wrapping_mul(31).wrapping_add(wseed) % 17) as f64 - 8.0) * 0.07)
                .collect();
            let mut g_ref = vec![0.0; dim];
            let l_ref = reference_loss_grad(&examples, &labels, k, d, 1.0, &w, &mut g_ref);
            let mut g_csr = vec![0.0; dim];
            let l_csr = loss_grad(&data, 1.0, &w, &mut g_csr);
            prop_assert_eq!(l_csr.to_bits(), l_ref.to_bits());
            for (i, (a, b)) in g_csr.iter().zip(&g_ref).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "grad[{}] diverged", i);
            }
        }

        /// Folding is deterministic and lossless: first-occurrence order,
        /// multiplicities summing to the source length, and every unique
        /// row bit-equal to its first source occurrence.
        #[test]
        fn prop_fold_is_deterministic_and_lossless(
            raw in proptest::collection::vec(
                (proptest::collection::vec(0u32..6, 0..4), 0u32..2),
                1..60,
            ),
        ) {
            let mut data = Dataset::new(2, 6);
            for (idx, y) in &raw {
                data.push(SparseVec::from_indices(idx.clone()), *y);
            }
            let folded = data.fold_duplicates();
            prop_assert_eq!(folded.counts.len(), folded.data.len());
            prop_assert_eq!(folded.counts.iter().map(|&c| c as usize).sum::<usize>(), data.len());
            let again = data.fold_duplicates();
            prop_assert_eq!(&again.data, &folded.data);
            prop_assert_eq!(again.counts, folded.counts.clone());
            // Each source row must appear among the unique rows.
            for r in 0..data.len() {
                let x = data.sparse_row(r);
                let y = data.labels()[r];
                prop_assert!(
                    (0..folded.data.len()).any(|u| folded.data.labels()[u] == y
                        && folded.data.sparse_row(u) == x),
                    "source row {} lost by folding", r
                );
            }
        }
    }
}
