//! Full-batch gradient descent with momentum — the fallback optimizer for
//! the L-BFGS-vs-SGD ablation (`repro ablations`). Despite the module's
//! historical `sgd` name there is no stochastic mini-batching here: every
//! step evaluates the full objective.
//!
//! Deliberately simple: the point of the ablation is to show that the
//! *model* (not the solver) carries CERES's accuracy, while L-BFGS reaches
//! the optimum in far fewer objective evaluations. Like the L-BFGS path it
//! sees the objective only through the `FnMut(&[f64], &mut [f64]) -> f64`
//! callback, so it minimizes the same duplicate-folded objective and walks
//! unique rows, not raw examples, per epoch.

/// Gradient-descent hyperparameters.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    pub epochs: usize,
    pub lr: f64,
    pub momentum: f64,
    /// Stop early when the objective improves by less than this fraction.
    pub rel_tol: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { epochs: 200, lr: 0.1, momentum: 0.9, rel_tol: 1e-7 }
    }
}

/// Minimize `objective` from `x0`; returns (argmin, min, iterations).
pub fn sgd_minimize<F>(x0: Vec<f64>, mut objective: F, cfg: &SgdConfig) -> (Vec<f64>, f64, usize)
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0;
    let mut x_prev = x.clone();
    let mut grad = vec![0.0; n];
    let mut velocity = vec![0.0; n];
    let mut f_prev = objective(&x, &mut grad);
    let mut lr = cfg.lr;
    let mut iters = 0;
    let mut stalled = 0usize;
    // A few flat epochs in a row are required before stopping: momentum can
    // make single-epoch improvements vanish mid-trajectory.
    const PATIENCE: usize = 5;

    for epoch in 0..cfg.epochs {
        iters = epoch + 1;
        x_prev.copy_from_slice(&x);
        for i in 0..n {
            velocity[i] = cfg.momentum * velocity[i] - lr * grad[i];
            x[i] += velocity[i];
        }
        let f = objective(&x, &mut grad);
        if !f.is_finite() || f > f_prev + 0.5 * f_prev.abs() + 1.0 {
            // Diverging: rewind the step, halve the rate, kill momentum.
            x.copy_from_slice(&x_prev);
            let _ = objective(&x, &mut grad);
            lr *= 0.5;
            velocity.fill(0.0);
            continue;
        }
        if (f_prev - f).abs() <= cfg.rel_tol * f_prev.abs().max(1.0) {
            stalled += 1;
            if stalled >= PATIENCE {
                return (x, f, iters);
            }
        } else {
            stalled = 0;
        }
        f_prev = f;
    }
    (x, f_prev, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let obj = |x: &[f64], g: &mut [f64]| {
            let mut f = 0.0;
            for i in 0..3 {
                let d = x[i] - (i as f64);
                f += d * d;
                g[i] = 2.0 * d;
            }
            f
        };
        let (x, f, _) = sgd_minimize(vec![5.0; 3], obj, &SgdConfig::default());
        assert!(f < 1e-4, "f = {f}");
        for (i, v) in x.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn survives_divergent_learning_rate() {
        // An lr far too large for this curvature must not produce NaNs.
        let obj = |x: &[f64], g: &mut [f64]| {
            g[0] = 200.0 * x[0];
            100.0 * x[0] * x[0]
        };
        let cfg = SgdConfig { lr: 1.0, epochs: 300, ..SgdConfig::default() };
        let (x, f, _) = sgd_minimize(vec![1.0], obj, &cfg);
        assert!(x[0].is_finite());
        assert!(f.is_finite());
        assert!(f < 1.0, "recovered f = {f}");
    }
}
