//! # ceres-ml
//!
//! The machine-learning substrate of the CERES reproduction. The paper
//! (§4.2, §5.2) trains a multinomial logistic regression with scikit-learn
//! (LBFGS solver, L2 regularization, `C = 1`) and clusters XPaths with
//! scikit-learn's agglomerative clustering; neither is available in Rust's
//! approved offline crate set, so both are implemented here from scratch:
//!
//! * [`sparse`] — feature dictionary + sorted sparse vectors;
//! * [`logreg`] — the softmax classifier and its regularized objective.
//!   Training sets live in a CSR-layout [`Dataset`]; duplicate
//!   `(row, label)` pairs — ubiquitous on templated pages — are folded to
//!   unique rows with integer multiplicities, and the optimizer minimizes
//!   the multiplicity-weighted objective
//!   `Σ_i c_i · −log Pr(y_i | x_i) + (1/2C)·‖W‖²` over the unique rows
//!   (bit-identical to the per-example objective when nothing folds,
//!   deterministic always);
//! * [`lbfgs`] — limited-memory BFGS with backtracking Armijo line search;
//! * [`sgd`] — a full-batch gradient-descent/momentum fallback used by the
//!   optimizer ablation;
//! * [`cluster`] — single-linkage agglomerative clustering (via Kruskal
//!   union-find, equivalent to repeated closest-pair merging) with
//!   count-weighted items, used for the global-evidence step of relation
//!   annotation (§3.2.2).
//!
//! The model-side types ([`SparseVec`], [`FeatureDict`], [`LogReg`]) all
//! implement `ceres_store`'s `Encode`/`Decode`; the dictionary and model
//! ride inside the persisted `TrainedSite` artifact, while `SparseVec`'s
//! codec serves callers persisting feature vectors or datasets directly.

pub mod cluster;
pub mod lbfgs;
pub mod logreg;
pub mod sgd;
pub mod sparse;

pub use cluster::{agglomerative_cluster, Clustering};
pub use lbfgs::{LbfgsConfig, LbfgsOutcome};
pub use logreg::{
    Dataset, FoldedDataset, LogReg, Optimizer, ScoreScratch, TrainConfig, TrainStats,
};
pub use sparse::{FeatureDict, SparseVec};
