//! # ceres-ml
//!
//! The machine-learning substrate of the CERES reproduction. The paper
//! (§4.2, §5.2) trains a multinomial logistic regression with scikit-learn
//! (LBFGS solver, L2 regularization, `C = 1`) and clusters XPaths with
//! scikit-learn's agglomerative clustering; neither is available in Rust's
//! approved offline crate set, so both are implemented here from scratch:
//!
//! * [`sparse`] — feature dictionary + sorted sparse vectors;
//! * [`logreg`] — the softmax classifier and its regularized objective;
//! * [`lbfgs`] — limited-memory BFGS with backtracking Armijo line search;
//! * [`sgd`] — a full-batch gradient-descent/momentum fallback used by the
//!   optimizer ablation;
//! * [`cluster`] — single-linkage agglomerative clustering (via Kruskal
//!   union-find, equivalent to repeated closest-pair merging) with
//!   count-weighted items, used for the global-evidence step of relation
//!   annotation (§3.2.2).
//!
//! The model-side types ([`SparseVec`], [`FeatureDict`], [`LogReg`]) all
//! implement `ceres_store`'s `Encode`/`Decode`; the dictionary and model
//! ride inside the persisted `TrainedSite` artifact, while `SparseVec`'s
//! codec serves callers persisting feature vectors or datasets directly.

pub mod cluster;
pub mod lbfgs;
pub mod logreg;
pub mod sgd;
pub mod sparse;

pub use cluster::{agglomerative_cluster, Clustering};
pub use lbfgs::{LbfgsConfig, LbfgsOutcome};
pub use logreg::{Dataset, LogReg, Optimizer, TrainConfig, TrainStats};
pub use sparse::{FeatureDict, SparseVec};
