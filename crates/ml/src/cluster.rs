//! Bottom-up agglomerative clustering with single linkage.
//!
//! Paper §3.2.2: "We use an agglomerative clustering approach, where in each
//! iteration we find two nodes with the closest distance, and merge the
//! clusters they belong to, until we reach the desired number of clusters."
//! That procedure — min-distance pair merging — is exactly single-linkage
//! clustering, which we compute with Kruskal's algorithm over the pairwise
//! distance edges and a union-find, stopping when `k` components remain.
//!
//! CERES clusters the XPaths of *all* mentions of a predicate across a
//! website; identical XPaths recur on nearly every page, so callers
//! deduplicate and pass per-item `weights` (occurrence counts). Cluster
//! *size* — what "prefer the largest cluster" means in Algorithm 2 — is the
//! weighted member count.

/// Result of clustering `n` items into at most `k` clusters.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `assignment[i]` is the cluster id (0-based, dense) of item `i`.
    pub assignment: Vec<usize>,
    /// Total weight per cluster id.
    pub cluster_weights: Vec<u64>,
    pub n_clusters: usize,
}

impl Clustering {
    /// Id of the heaviest cluster.
    pub fn largest_cluster(&self) -> Option<usize> {
        (0..self.n_clusters).max_by_key(|&c| self.cluster_weights[c])
    }
}

struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        true
    }
}

/// Cluster `items` into at most `k` clusters under `dist`, single linkage.
///
/// `weights[i]` is the multiplicity of item `i` (pass all-ones when items
/// are not deduplicated). Ties between equal-distance edges are broken by
/// index order, making the result deterministic.
pub fn agglomerative_cluster<T, D>(
    items: &[T],
    weights: &[u64],
    k: usize,
    mut dist: D,
) -> Clustering
where
    D: FnMut(&T, &T) -> f64,
{
    assert_eq!(items.len(), weights.len());
    let n = items.len();
    if n == 0 {
        return Clustering { assignment: Vec::new(), cluster_weights: Vec::new(), n_clusters: 0 };
    }
    let k = k.max(1);

    // All pairwise edges, sorted ascending by distance (then by indices for
    // determinism).
    let mut edges: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((dist(&items[i], &items[j]), i as u32, j as u32));
        }
    }
    // `nan_greatest` (not `partial_cmp().unwrap_or(Equal)`, which is
    // intransitive and lets `sort_by` panic or scramble on NaN): `dist` is
    // caller-supplied, and a NaN distance must sort *after* every real edge
    // so the two items merge last — the clustering analogue of "NaN
    // similarities never match".
    edges
        .sort_by(|a, b| ceres_text::nan_greatest(a.0, b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut uf = UnionFind::new(n);
    for &(_, i, j) in &edges {
        if uf.components <= k {
            break;
        }
        uf.union(i as usize, j as usize);
    }

    // Densify cluster ids in first-seen order.
    let mut dense: Vec<isize> = vec![-1; n];
    let mut next = 0usize;
    let mut assignment = vec![0usize; n];
    for (i, slot) in assignment.iter_mut().enumerate() {
        let root = uf.find(i);
        if dense[root] < 0 {
            dense[root] = next as isize;
            next += 1;
        }
        *slot = dense[root] as usize;
    }
    let mut cluster_weights = vec![0u64; next];
    for (&c, &w) in assignment.iter().zip(weights) {
        cluster_weights[c] += w;
    }
    Clustering { assignment, cluster_weights, n_clusters: next }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn two_obvious_groups() {
        let items = [0.0, 0.1, 0.2, 10.0, 10.1];
        let w = [1u64; 5];
        let c = agglomerative_cluster(&items, &w, 2, d1);
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        assert_eq!(c.largest_cluster(), Some(c.assignment[0]));
    }

    #[test]
    fn weights_determine_largest_cluster() {
        let items = [0.0, 10.0];
        // The singleton on the right is 100× heavier.
        let c = agglomerative_cluster(&items, &[1, 100], 2, d1);
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.largest_cluster(), Some(c.assignment[1]));
    }

    #[test]
    fn k_one_merges_everything() {
        let items = [0.0, 5.0, 50.0];
        let c = agglomerative_cluster(&items, &[1, 1, 1], 1, d1);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.cluster_weights, vec![3]);
    }

    #[test]
    fn k_ge_n_keeps_singletons() {
        let items = [0.0, 1.0, 2.0];
        let c = agglomerative_cluster(&items, &[1, 1, 1], 10, d1);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn empty_input() {
        let items: [f64; 0] = [];
        let c = agglomerative_cluster(&items, &[], 3, d1);
        assert_eq!(c.n_clusters, 0);
        assert!(c.largest_cluster().is_none());
    }

    #[test]
    fn single_linkage_chains() {
        // A chain 0-1-2-3 with small steps plus an outlier: single linkage
        // keeps the chain together even though its ends are far apart.
        let items = [0.0, 1.0, 2.0, 3.0, 100.0];
        let c = agglomerative_cluster(&items, &[1; 5], 2, d1);
        assert_eq!(c.assignment[0], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[4]);
    }

    /// Regression: a NaN distance must neither panic the sort (Rust ≥ 1.81
    /// `sort_by` checks comparator totality, and the previous
    /// `partial_cmp().unwrap_or(Equal)` was intransitive with NaN mixed in)
    /// nor win a merge — NaN edges sort last, so real edges decide first.
    #[test]
    fn nan_distances_sort_last_and_never_panic() {
        let items = [0.0, 0.5, f64::NAN, 10.0];
        let nan_poisoned = |a: &f64, b: &f64| (a - b).abs(); // NaN vs anything -> NaN
        let c = agglomerative_cluster(&items, &[1; 4], 2, nan_poisoned);
        assert_eq!(c.n_clusters, 2);
        // The only all-real edge is 0–1 (plus 0–3/1–3); the NaN item only
        // ever joins via NaN edges, which come last: 0 and 1 merge first.
        assert_eq!(c.assignment[0], c.assignment[1]);
        let d = agglomerative_cluster(&items, &[1; 4], 2, nan_poisoned);
        assert_eq!(c.assignment, d.assignment, "NaN ordering must be stable");
    }

    #[test]
    fn deterministic_under_ties() {
        let items = [0.0, 1.0, 2.0, 3.0];
        let a = agglomerative_cluster(&items, &[1; 4], 2, d1);
        let b = agglomerative_cluster(&items, &[1; 4], 2, d1);
        assert_eq!(a.assignment, b.assignment);
    }

    proptest! {
        #[test]
        fn cluster_count_is_min_k_n(
            items in proptest::collection::vec(-100.0f64..100.0, 0..24),
            k in 1usize..8,
        ) {
            let w = vec![1u64; items.len()];
            let c = agglomerative_cluster(&items, &w, k, d1);
            prop_assert_eq!(c.n_clusters, k.min(items.len()));
            // Every item assigned, ids dense.
            for &a in &c.assignment {
                prop_assert!(a < c.n_clusters);
            }
            let total: u64 = c.cluster_weights.iter().sum();
            prop_assert_eq!(total, items.len() as u64);
        }
    }
}
