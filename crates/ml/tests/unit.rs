//! Unit tests for the ML substrate: logistic regression on a separable toy
//! problem, sparse/dense dot-product agreement, clustering determinism.

use ceres_ml::{
    agglomerative_cluster, Dataset, LogReg, Optimizer, ScoreScratch, SparseVec, TrainConfig,
};

/// Three linearly separable classes, each keyed by a disjoint feature block.
fn separable_dataset() -> Dataset {
    let mut data = Dataset::new(3, 9);
    for rep in 0..20u32 {
        for class in 0..3u32 {
            let base = class * 3;
            // Vary the secondary feature per repetition so examples differ.
            let idx = vec![base, base + 1 + (rep % 2)];
            data.push(SparseVec::from_indices(idx), class);
        }
    }
    data
}

#[test]
fn logreg_learns_linearly_separable_toy_set() {
    let data = separable_dataset();
    for optimizer in [Optimizer::Lbfgs, Optimizer::Sgd] {
        let cfg = TrainConfig { optimizer, ..TrainConfig::default() };
        let (model, stats) = LogReg::train(&data, &cfg);
        assert!(
            model.accuracy(&data) > 0.99,
            "{optimizer:?} failed to separate a separable set: {stats:?}"
        );
        // Confident on a canonical member of each class.
        for class in 0..3u32 {
            let x = SparseVec::from_indices(vec![class * 3, class * 3 + 1]);
            let (pred, p) = model.predict(&x);
            assert_eq!(pred, class);
            assert!(p > 0.5, "class {class} probability {p:.3} too diffuse");
        }
    }
}

#[test]
fn logreg_training_is_deterministic() {
    let data = separable_dataset();
    let cfg = TrainConfig::default();
    let (a, _) = LogReg::train(&data, &cfg);
    let (b, _) = LogReg::train(&data, &cfg);
    let x = SparseVec::from_indices(vec![0, 1]);
    assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
}

#[test]
fn sparse_dot_matches_dense() {
    let dense_x = [0.0, 1.5, 0.0, -2.0, 0.25, 0.0, 3.0];
    let pairs: Vec<(u32, f32)> = dense_x
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, &v)| (i as u32, v as f32))
        .collect();
    let sparse = SparseVec::from_pairs(pairs);
    let w = [0.5, -1.0, 2.0, 0.75, 4.0, -0.125, 1.0 / 3.0];
    let dense_dot: f64 = dense_x.iter().zip(&w).map(|(&x, &wi)| x * wi).sum();
    assert!(
        (sparse.dot(&w) - dense_dot).abs() < 1e-9,
        "sparse {} vs dense {}",
        sparse.dot(&w),
        dense_dot
    );
    // Empty vector dots to zero against anything.
    assert_eq!(SparseVec::new().dot(&w), 0.0);
}

/// Pins the intended skip semantics of `SparseVec::dot` /
/// `add_scaled_into` for late-interned features: a feature interned into a
/// live dictionary *after* a model's weights were sized (so its index is ≥
/// the model's `n_features`) must contribute nothing to any scoring path —
/// not shift probabilities, not alias another weight slot, not panic.
#[test]
fn late_interned_features_do_not_change_predictions() {
    let data = separable_dataset();
    let (model, _) = LogReg::train(&data, &TrainConfig::default());
    assert_eq!(model.n_features(), 9);

    let seen = SparseVec::from_indices(vec![0, 1]);
    // Same vector plus features a live dictionary interned after training
    // froze the weight shape — including index 9, one past the last real
    // feature (the slot a careless kernel would alias to the intercept).
    let with_late = SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0), (9, 1.0), (40, 2.5)]);

    assert_eq!(model.scores(&seen), model.scores(&with_late));
    assert_eq!(model.predict_proba(&seen), model.predict_proba(&with_late));
    assert_eq!(model.predict(&seen), model.predict(&with_late));
    let mut scratch = ScoreScratch::new();
    assert_eq!(model.predict(&seen), model.predict_into(&with_late, &mut scratch));

    // The raw kernels skip too: dot ignores the out-of-range pair, and
    // add_scaled_into leaves an accumulator sized to the weight row alone.
    let w = [1.0, 2.0, 3.0];
    let v = SparseVec::from_pairs(vec![(1, 1.0), (3, 100.0)]);
    assert_eq!(v.dot(&w), 2.0);
    let mut acc = vec![0.0; 3];
    v.add_scaled_into(&mut acc, 1.0);
    assert_eq!(acc, vec![0.0, 1.0, 0.0]);
}

#[test]
fn sparse_add_scaled_matches_dense_axpy() {
    let sparse = SparseVec::from_pairs(vec![(1, 2.0), (4, -1.0)]);
    let mut acc = vec![1.0; 6];
    sparse.add_scaled_into(&mut acc, 0.5);
    assert_eq!(acc, vec![1.0, 2.0, 1.0, 1.0, 0.5, 1.0]);
}

#[test]
fn clustering_is_deterministic_and_respects_k() {
    let items: Vec<f64> = vec![0.0, 0.1, 0.2, 10.0, 10.1, 20.0, 20.2, 20.4];
    let weights = vec![1u64; items.len()];
    let dist = |a: &f64, b: &f64| (a - b).abs();

    let a = agglomerative_cluster(&items, &weights, 3, dist);
    let b = agglomerative_cluster(&items, &weights, 3, dist);
    assert_eq!(a.assignment, b.assignment, "same input must yield same clustering");
    assert_eq!(a.n_clusters, 3);

    // The three obvious groups must land in three distinct clusters.
    assert_eq!(a.assignment[0], a.assignment[1]);
    assert_eq!(a.assignment[0], a.assignment[2]);
    assert_eq!(a.assignment[3], a.assignment[4]);
    assert_eq!(a.assignment[5], a.assignment[6]);
    assert_eq!(a.assignment[5], a.assignment[7]);
    assert_ne!(a.assignment[0], a.assignment[3]);
    assert_ne!(a.assignment[3], a.assignment[5]);

    // Cluster weights account for every item.
    assert_eq!(a.cluster_weights.iter().sum::<u64>(), items.len() as u64);
}

#[test]
fn clustering_handles_degenerate_sizes() {
    let dist = |a: &u32, b: &u32| f64::from(a.abs_diff(*b));
    let empty = agglomerative_cluster::<u32, _>(&[], &[], 3, dist);
    assert_eq!(empty.n_clusters, 0);
    let single = agglomerative_cluster(&[7u32], &[5], 3, dist);
    assert_eq!(single.n_clusters, 1);
    assert_eq!(single.cluster_weights, vec![5]);
}
