//! HTML builder that stamps ground-truth ids.
//!
//! Every emitted text field gets a `data-gt="<id>"` attribute; when the
//! field asserts a fact (or the page's topic name), the corresponding
//! [`GoldFact`] is recorded. The extraction stack never reads `data-gt*`
//! attributes (enforced by a `ceres-core` test), so gold cannot leak into
//! features.

use crate::dataset::GoldFact;
use ceres_dom::{escape_attr, escape_text};
use std::fmt::Write as _;

/// A streaming HTML writer with gold bookkeeping.
#[derive(Debug, Default)]
pub struct GtHtml {
    out: String,
    open_tags: Vec<&'static str>,
    next_gt: u32,
    gold: Vec<GoldFact>,
}

impl GtHtml {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an element: `attrs` are (name, value) pairs.
    pub fn open(&mut self, tag: &'static str, attrs: &[(&str, &str)]) -> &mut Self {
        self.out.push('<');
        self.out.push_str(tag);
        for (k, v) in attrs {
            let _ = write!(self.out, " {}=\"{}\"", k, escape_attr(v));
        }
        self.out.push('>');
        self.open_tags.push(tag);
        self
    }

    /// Close the most recently opened element.
    pub fn close(&mut self) -> &mut Self {
        let tag = self.open_tags.pop().expect("close without open");
        let _ = write!(self.out, "</{tag}>");
        self
    }

    /// Close all remaining open elements.
    pub fn close_all(&mut self) {
        while !self.open_tags.is_empty() {
            self.close();
        }
    }

    /// Emit a plain (non-gold) text field: `<tag attrs data-gt="N">text</tag>`.
    /// Even non-gold fields carry an id so evaluation can detect *incorrect*
    /// extractions from them.
    pub fn field(&mut self, tag: &'static str, attrs: &[(&str, &str)], text: &str) -> u32 {
        self.field_impl(tag, attrs, text, None)
    }

    /// Emit a text field asserting `(pred, object)` about the page topic.
    pub fn gold_field(
        &mut self,
        tag: &'static str,
        attrs: &[(&str, &str)],
        text: &str,
        pred: &str,
        object: &str,
    ) -> u32 {
        self.field_impl(tag, attrs, text, Some((pred.to_string(), object.to_string())))
    }

    /// Emit the topic-name field (`pred = "name"`).
    pub fn name_field(&mut self, tag: &'static str, attrs: &[(&str, &str)], text: &str) -> u32 {
        self.field_impl(tag, attrs, text, Some(("name".to_string(), text.to_string())))
    }

    fn field_impl(
        &mut self,
        tag: &'static str,
        attrs: &[(&str, &str)],
        text: &str,
        gold: Option<(String, String)>,
    ) -> u32 {
        let id = self.next_gt;
        self.next_gt += 1;
        self.out.push('<');
        self.out.push_str(tag);
        for (k, v) in attrs {
            let _ = write!(self.out, " {}=\"{}\"", k, escape_attr(v));
        }
        let _ = write!(self.out, " data-gt=\"{id}\">");
        self.out.push_str(&escape_text(text));
        let _ = write!(self.out, "</{tag}>");
        if let Some((pred, object)) = gold {
            self.gold.push(GoldFact { gt_id: id, pred, object });
        }
        id
    }

    /// Raw passthrough (comments, scripts…). The caller is responsible for
    /// well-formedness.
    pub fn raw(&mut self, s: &str) -> &mut Self {
        self.out.push_str(s);
        self
    }

    /// Finish; panics if elements remain open (a generator bug).
    pub fn finish(mut self) -> (String, Vec<GoldFact>) {
        assert!(self.open_tags.is_empty(), "unclosed tags: {:?}", self.open_tags);
        self.gold.sort_by_key(|g| g.gt_id);
        (std::mem::take(&mut self.out), std::mem::take(&mut self.gold))
    }

    pub fn gold_so_far(&self) -> &[GoldFact] {
        &self.gold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_dom::parse_html;

    #[test]
    fn builds_parseable_html_with_gold_ids() {
        let mut b = GtHtml::new();
        b.open("html", &[]).open("body", &[]);
        b.open("div", &[("class", "info")]);
        let name_id = b.name_field("h1", &[], "Do the Right Thing");
        let dir_id =
            b.gold_field("span", &[("class", "val")], "Spike Lee", "directedBy", "Spike Lee");
        let _plain = b.field("span", &[("class", "label")], "Director:");
        b.close();
        b.close().close();
        let (html, gold) = b.finish();

        assert_eq!(gold.len(), 2);
        assert_eq!(gold[0].gt_id, name_id);
        assert_eq!(gold[0].pred, "name");
        assert_eq!(gold[1].gt_id, dir_id);
        assert_eq!(gold[1].pred, "directedBy");

        let doc = parse_html(&html);
        let fields = doc.text_fields();
        assert_eq!(fields.len(), 3);
        // Every field carries its data-gt id.
        let gts: Vec<&str> = fields.iter().map(|&f| doc.node(f).attr("data-gt").unwrap()).collect();
        assert_eq!(gts, vec!["0", "1", "2"]);
    }

    #[test]
    fn escapes_entities() {
        let mut b = GtHtml::new();
        b.open("div", &[("title", "a \"b\" & c")]);
        b.field("span", &[], "Tom & Jerry <3");
        b.close();
        let (html, _) = b.finish();
        let doc = parse_html(&html);
        let f = doc.text_fields()[0];
        assert_eq!(doc.own_text(f), "Tom & Jerry <3");
    }

    #[test]
    #[should_panic(expected = "unclosed tags")]
    fn unbalanced_builder_panics() {
        let mut b = GtHtml::new();
        b.open("div", &[]);
        let _ = b.finish();
    }
}
