//! Deterministic name, title, and date generators.
//!
//! The generators are built from syllable tables so that (a) the space is
//! large enough to avoid unwanted collisions at scale, while (b) *wanted*
//! collisions — the ambiguity CERES must survive — are injected explicitly:
//! episode titles reusing famous strings ("Pilot"), films named after common
//! UI words, people sharing surnames.

use crate::rng::choose;
use rand::rngs::SmallRng;
use rand::Rng;

const GIVEN_SYL_A: &[&str] = &[
    "Al", "Ben", "Car", "Da", "El", "Fran", "Gre", "Hen", "Is", "Jo", "Ka", "Lu", "Mar", "Nor",
    "Os", "Pat", "Quin", "Ro", "Sam", "Ta", "Ur", "Vic", "Wen", "Xa", "Yo", "Zel",
];
const GIVEN_SYL_B: &[&str] = &[
    "a", "an", "ard", "as", "el", "en", "ia", "in", "io", "is", "on", "or", "ra", "ric", "ta",
    "ton", "us",
];
const SURNAME_SYL_A: &[&str] = &[
    "Ander", "Black", "Carl", "Dawn", "Ells", "Fitz", "Gold", "Harring", "Ivers", "Jack", "Kings",
    "Lind", "Mont", "North", "Okon", "Peters", "Quill", "Richard", "Sander", "Thorn", "Under",
    "Vander", "Whit", "Young", "Zimmer",
];
const SURNAME_SYL_B: &[&str] = &[
    "berg", "by", "dale", "field", "ford", "gate", "house", "land", "ley", "man", "mark", "mont",
    "son", "stein", "stone", "ton", "well", "wood", "worth",
];

const TITLE_ADJ: &[&str] = &[
    "Crimson",
    "Silent",
    "Broken",
    "Golden",
    "Midnight",
    "Savage",
    "Hidden",
    "Electric",
    "Frozen",
    "Burning",
    "Distant",
    "Velvet",
    "Hollow",
    "Iron",
    "Paper",
    "Scarlet",
    "Wandering",
    "Forgotten",
    "Neon",
    "Quiet",
];
const TITLE_NOUN: &[&str] = &[
    "River", "Empire", "Harvest", "Mirror", "Garden", "Station", "Horizon", "Shadow", "Serenade",
    "Voyage", "Winter", "Carnival", "Fortress", "Lantern", "Meridian", "Orchard", "Paradox",
    "Requiem", "Summit", "Tides",
];
const TITLE_TAIL: &[&str] = &[
    "",
    "",
    "",
    " II",
    " Returns",
    " Rising",
    " of the North",
    " at Dawn",
    " Forever",
    " in Blue",
];

/// Common UI strings that double as entity names — the "Help"/"Biography"
/// ambiguity of paper §3.1.2 and §2.2.
pub const AMBIGUOUS_TITLES: &[&str] = &["Help", "Biography", "Home", "Contact", "Pilot"];

const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Generate a person name. Collisions are possible (as in reality) but rare.
pub fn person_name(rng: &mut SmallRng) -> String {
    let given = format!("{}{}", choose(rng, GIVEN_SYL_A), choose(rng, GIVEN_SYL_B));
    let surname = format!("{}{}", choose(rng, SURNAME_SYL_A), choose(rng, SURNAME_SYL_B));
    format!("{given} {surname}")
}

/// A "Surname, Given" or initialed variant used as a person alias.
pub fn person_alias(rng: &mut SmallRng, name: &str) -> String {
    let mut parts = name.split(' ');
    let given = parts.next().unwrap_or("X");
    let surname = parts.next().unwrap_or("Y");
    match rng.gen_range(0..3u8) {
        0 => format!("{surname}, {given}"),
        1 => format!("{}. {surname}", &given[..1]),
        _ => format!("{given} {} {surname}", choose(rng, &["J.", "M.", "R.", "T."])),
    }
}

/// Generate a film/series title; `serial` guarantees uniqueness within a
/// world when appended (worlds pass a per-title counter for a slice of
/// titles to keep most titles unique while allowing a controlled share of
/// duplicates).
pub fn film_title(rng: &mut SmallRng) -> String {
    format!("{} {}{}", choose(rng, TITLE_ADJ), choose(rng, TITLE_NOUN), choose(rng, TITLE_TAIL))
}

/// Book titles reuse the film table with a different shape.
pub fn book_title(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..3u8) {
        0 => format!("The {} {}", choose(rng, TITLE_ADJ), choose(rng, TITLE_NOUN)),
        1 => format!("A {} of {}s", choose(rng, TITLE_NOUN), choose(rng, TITLE_NOUN)),
        _ => format!("{} & {}", choose(rng, TITLE_NOUN), choose(rng, TITLE_NOUN)),
    }
}

/// University names.
pub fn university_name(rng: &mut SmallRng) -> String {
    let place = format!("{}{}", choose(rng, SURNAME_SYL_A), choose(rng, SURNAME_SYL_B));
    match rng.gen_range(0..3u8) {
        0 => format!("University of {place}"),
        1 => format!("{place} State University"),
        _ => format!("{place} College"),
    }
}

/// NBA team names.
pub fn team_name(rng: &mut SmallRng) -> String {
    let city = format!("{}{}", choose(rng, SURNAME_SYL_A), choose(rng, SURNAME_SYL_B));
    let mascot = choose(
        rng,
        &["Hawks", "Comets", "Titans", "Wolves", "Raptors", "Chargers", "Kings", "Storm"],
    );
    format!("{city} {mascot}")
}

/// A calendar date with multiple render styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    pub year: u16,
    pub month: u8,
    pub day: u8,
}

impl Date {
    pub fn random(rng: &mut SmallRng, year_lo: u16, year_hi: u16) -> Date {
        Date {
            year: rng.gen_range(year_lo..=year_hi),
            month: rng.gen_range(1..=12),
            day: rng.gen_range(1..=28),
        }
    }

    /// Canonical ISO form — what the KB stores.
    pub fn iso(&self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// US style: "June 30, 1989".
    pub fn us(&self) -> String {
        format!("{} {}, {}", MONTHS[(self.month - 1) as usize], self.day, self.year)
    }

    /// European style: "30 June 1989".
    pub fn eu(&self) -> String {
        format!("{} {} {}", self.day, MONTHS[(self.month - 1) as usize], self.year)
    }

    /// All render variants (used to alias the KB literal so that fuzzy
    /// matching connects a page rendering to the canonical form).
    pub fn variants(&self) -> Vec<String> {
        vec![self.iso(), self.us(), self.eu()]
    }
}

/// Render style for dates, fixed per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateStyle {
    Iso,
    Us,
    Eu,
}

impl DateStyle {
    pub fn render(self, d: &Date) -> String {
        match self {
            DateStyle::Iso => d.iso(),
            DateStyle::Us => d.us(),
            DateStyle::Eu => d.eu(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn generators_are_deterministic() {
        let mut a = derive_rng(1, "n");
        let mut b = derive_rng(1, "n");
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(film_title(&mut a), film_title(&mut b));
    }

    #[test]
    fn names_have_two_parts() {
        let mut rng = derive_rng(3, "names");
        for _ in 0..50 {
            let n = person_name(&mut rng);
            assert_eq!(n.split(' ').count(), 2, "{n}");
        }
    }

    #[test]
    fn alias_differs_from_name() {
        let mut rng = derive_rng(4, "alias");
        for _ in 0..50 {
            let n = person_name(&mut rng);
            let a = person_alias(&mut rng, &n);
            assert_ne!(n, a);
            // Shares the surname.
            let surname = n.split(' ').nth(1).unwrap();
            assert!(a.contains(surname), "{a} should contain {surname}");
        }
    }

    #[test]
    fn date_variants_roundtrip_via_normalization() {
        let d = Date { year: 1989, month: 6, day: 30 };
        assert_eq!(d.iso(), "1989-06-30");
        assert_eq!(d.us(), "June 30, 1989");
        assert_eq!(d.eu(), "30 June 1989");
        assert_eq!(d.variants().len(), 3);
    }

    #[test]
    fn name_space_is_large() {
        let mut rng = derive_rng(5, "space");
        let mut set = std::collections::HashSet::new();
        for _ in 0..1000 {
            set.insert(person_name(&mut rng));
        }
        // Collisions allowed but must be rare.
        assert!(set.len() > 900, "only {} unique of 1000", set.len());
    }
}
