//! The three non-movie SWDE verticals: Book, NBA Player, University.
//!
//! Each world is a flat entity list; per the paper (§5.1.1), the seed KB for
//! these verticals is built from the *ground truth of one site* (abebooks,
//! espn, collegeboard respectively), so the KB builders here take the subset
//! of entities that site carries.

use crate::names::{book_title, person_name, team_name, university_name, Date};
use crate::rng::{derive_rng, prob};
use crate::schema::{
    book, book_ontology, nba, nba_ontology, types, university, university_ontology,
};
use ceres_kb::Kb;
use rand::rngs::SmallRng;
use rand::Rng;

/// A book.
#[derive(Debug, Clone)]
pub struct Book {
    pub title: String,
    pub authors: Vec<String>,
    pub isbn13: String,
    pub publisher: String,
    pub pub_date: Date,
}

/// The book universe.
#[derive(Debug)]
pub struct BookWorld {
    pub books: Vec<Book>,
}

pub const PUBLISHERS: &[&str] = &[
    "Harbor Press",
    "Northgate Books",
    "Meridian House",
    "Lantern & Sons",
    "Paper Crane",
    "Gold Leaf Publishing",
    "Riverton Press",
    "Summit Editions",
];

impl BookWorld {
    pub fn generate(seed: u64, n_books: usize) -> BookWorld {
        let mut rng = derive_rng(seed, "book-world");
        // A pool of authors smaller than the book count so authors repeat
        // across books (needed for cross-site KB overlap to mean anything).
        let n_authors = (n_books / 3).max(8);
        let authors: Vec<String> = (0..n_authors).map(|_| person_name(&mut rng)).collect();
        let books = (0..n_books)
            .map(|i| {
                let n_auth = if prob(&mut rng, 0.2) { 2 } else { 1 };
                let mut bauthors: Vec<String> =
                    (0..n_auth).map(|_| authors[rng.gen_range(0..authors.len())].clone()).collect();
                bauthors.dedup();
                Book {
                    title: format!("{} ({})", book_title(&mut rng), i),
                    authors: bauthors,
                    isbn13: format!("978{:010}", rng.gen_range(0u64..10_000_000_000)),
                    publisher: (*crate::rng::choose(&mut rng, PUBLISHERS)).to_string(),
                    pub_date: Date::random(&mut rng, 1980, 2017),
                }
            })
            .collect();
        BookWorld { books }
    }

    /// Build the seed KB from the books in `catalog` (site 0's catalog).
    pub fn build_kb(&self, catalog: &[usize]) -> Kb {
        let o = book_ontology();
        let book_t = o.type_by_name(types::BOOK).unwrap();
        let author_t = o.type_by_name(types::AUTHOR).unwrap();
        let author_p = o.pred_by_name(book::AUTHOR).unwrap();
        let isbn_p = o.pred_by_name(book::ISBN13).unwrap();
        let publisher_p = o.pred_by_name(book::PUBLISHER).unwrap();
        let date_p = o.pred_by_name(book::PUBLICATION_DATE).unwrap();
        let mut b = ceres_kb::KbBuilder::new(o);
        for &i in catalog {
            let bk = &self.books[i];
            let bid = b.entity(book_t, &bk.title);
            for a in &bk.authors {
                let aid = b.entity(author_t, a);
                b.triple(bid, author_p, aid);
            }
            let isbn = b.literal(&bk.isbn13);
            b.triple(bid, isbn_p, isbn);
            let pubid = b.literal(&bk.publisher);
            b.triple(bid, publisher_p, pubid);
            let did = b.literal(&bk.pub_date.iso());
            for v in bk.pub_date.variants() {
                b.alias(did, &v);
            }
            b.triple(bid, date_p, did);
        }
        b.build()
    }
}

/// An NBA player.
#[derive(Debug, Clone)]
pub struct Player {
    pub name: String,
    pub team: String,
    /// Feet-inches, e.g. "6-8".
    pub height: String,
    /// Pounds, e.g. "245 lbs".
    pub weight: String,
}

/// The NBA universe.
#[derive(Debug)]
pub struct NbaWorld {
    pub players: Vec<Player>,
    pub teams: Vec<String>,
}

impl NbaWorld {
    pub fn generate(seed: u64, n_players: usize) -> NbaWorld {
        let mut rng = derive_rng(seed, "nba-world");
        let teams: Vec<String> = (0..30).map(|_| team_name(&mut rng)).collect();
        let players = (0..n_players)
            .map(|_| Player {
                name: person_name(&mut rng),
                team: teams[rng.gen_range(0..teams.len())].clone(),
                height: format!("{}-{}", rng.gen_range(5..=7), rng.gen_range(0..=11)),
                weight: format!("{} lbs", rng.gen_range(160..=320)),
            })
            .collect();
        NbaWorld { players, teams }
    }

    pub fn build_kb(&self, roster: &[usize]) -> Kb {
        let o = nba_ontology();
        let player_t = o.type_by_name(types::PLAYER).unwrap();
        let team_p = o.pred_by_name(nba::TEAM).unwrap();
        let height_p = o.pred_by_name(nba::HEIGHT).unwrap();
        let weight_p = o.pred_by_name(nba::WEIGHT).unwrap();
        let mut b = ceres_kb::KbBuilder::new(o);
        for &i in roster {
            let p = &self.players[i];
            let pid = b.entity(player_t, &p.name);
            let tid = b.literal(&p.team);
            b.triple(pid, team_p, tid);
            let hid = b.literal(&p.height);
            // Height renders differently on some sites: 6'8".
            let parts: Vec<&str> = p.height.split('-').collect();
            b.alias(hid, &format!("{}'{}\"", parts[0], parts[1]));
            b.triple(pid, height_p, hid);
            let wid = b.literal(&p.weight);
            b.alias(wid, p.weight.trim_end_matches(" lbs"));
            b.triple(pid, weight_p, wid);
        }
        b.build()
    }
}

/// A university.
#[derive(Debug, Clone)]
pub struct University {
    pub name: String,
    pub phone: String,
    pub website: String,
    /// "Public" or "Private".
    pub ty: &'static str,
}

/// The university universe.
#[derive(Debug)]
pub struct UniversityWorld {
    pub universities: Vec<University>,
}

impl UniversityWorld {
    pub fn generate(seed: u64, n: usize) -> UniversityWorld {
        let mut rng = derive_rng(seed, "uni-world");
        let mut seen = std::collections::HashSet::new();
        let mut universities = Vec::with_capacity(n);
        while universities.len() < n {
            let name = university_name(&mut rng);
            if !seen.insert(name.clone()) {
                continue;
            }
            let slug: String =
                name.to_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
            universities.push(University {
                name,
                phone: format!(
                    "({:03}) {:03}-{:04}",
                    rng.gen_range(200..999),
                    rng.gen_range(200..999),
                    rng.gen_range(0..9999)
                ),
                website: format!("www.{}.edu", &slug[..slug.len().min(16)]),
                ty: if prob(&mut rng, 0.55) { "Public" } else { "Private" },
            });
        }
        UniversityWorld { universities }
    }

    pub fn build_kb(&self, subset: &[usize]) -> Kb {
        let o = university_ontology();
        let uni_t = o.type_by_name(types::UNIVERSITY).unwrap();
        let phone_p = o.pred_by_name(university::PHONE).unwrap();
        let web_p = o.pred_by_name(university::WEBSITE).unwrap();
        let type_p = o.pred_by_name(university::TYPE).unwrap();
        let mut b = ceres_kb::KbBuilder::new(o);
        for &i in subset {
            let u = &self.universities[i];
            let uid = b.entity(uni_t, &u.name);
            let ph = b.literal(&u.phone);
            b.triple(uid, phone_p, ph);
            let web = b.literal(&u.website);
            b.alias(web, &format!("http://{}", u.website));
            b.triple(uid, web_p, web);
            let ty = b.literal(u.ty);
            b.triple(uid, type_p, ty);
        }
        b.build()
    }
}

/// Draw a site catalog of `size` entity indexes with `overlap` indexes
/// shared with `base` (site 0's catalog) and the rest disjoint from it.
pub fn catalog_with_overlap(
    rng: &mut SmallRng,
    universe: usize,
    base: &[usize],
    size: usize,
    overlap: usize,
) -> Vec<usize> {
    let overlap = overlap.min(base.len()).min(size);
    let mut out: Vec<usize> =
        crate::rng::sample_distinct(rng, base.len(), overlap).iter().map(|&i| base[i]).collect();
    let base_set: std::collections::BTreeSet<usize> = base.iter().copied().collect();
    let mut candidates: Vec<usize> = (0..universe).filter(|i| !base_set.contains(i)).collect();
    let need = size.saturating_sub(out.len());
    let picks = crate::rng::sample_distinct(rng, candidates.len(), need);
    for p in picks {
        out.push(candidates[p]);
    }
    candidates.clear();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn book_world_and_kb() {
        let w = BookWorld::generate(5, 100);
        assert_eq!(w.books.len(), 100);
        let kb = w.build_kb(&[0, 1, 2, 3, 4]);
        assert_eq!(kb.stats().types.iter().find(|t| t.type_name == "Book").unwrap().instances, 5);
        // ISBN matches.
        let isbn = &w.books[2].isbn13;
        assert!(!kb.match_text(isbn).is_empty());
        // A book outside the catalog does not match.
        assert!(kb.match_text(&w.books[50].title).is_empty());
    }

    #[test]
    fn nba_kb_matches_height_variants() {
        let w = NbaWorld::generate(6, 40);
        let kb = w.build_kb(&(0..40).collect::<Vec<_>>());
        let p = &w.players[0];
        let parts: Vec<&str> = p.height.split('-').collect();
        let variant = format!("{}'{}\"", parts[0], parts[1]);
        assert!(!kb.match_text(&variant).is_empty(), "{variant}");
    }

    #[test]
    fn university_types_are_binary() {
        let w = UniversityWorld::generate(7, 60);
        assert!(w.universities.iter().all(|u| u.ty == "Public" || u.ty == "Private"));
        let kb = w.build_kb(&(0..60).collect::<Vec<_>>());
        assert!(!kb.match_text("Public").is_empty());
    }

    #[test]
    fn catalog_overlap_is_exact() {
        let mut rng = derive_rng(8, "cat");
        let base: Vec<usize> = (0..50).collect();
        let cat = catalog_with_overlap(&mut rng, 500, &base, 80, 20);
        let in_base = cat.iter().filter(|&&i| i < 50).count();
        assert_eq!(in_base, 20);
        assert_eq!(cat.len(), 80);
    }
}
