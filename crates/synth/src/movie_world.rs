//! The synthetic movie universe: people, films, TV series, and episodes,
//! plus the biased seed-KB builder.
//!
//! Entities are generated in *fame order* (index 0 = most famous); film
//! crews are drawn Zipf-skewed from the people pool so a head of prolific
//! actors emerges (the paper's Frank Welker example: a single person page
//! listing hundreds of credits). The seed KB is a deliberately biased subset
//! of the world, mirroring footnote 10 of the paper: popularity-weighted
//! entity coverage, cast links only for "principal" (low billing number)
//! credits with character information, and per-predicate keep rates.

use crate::names::{film_title, person_alias, person_name, Date, AMBIGUOUS_TITLES};
use crate::rng::{choose, derive_rng, prob, zipf};
use crate::schema::{movie, movie_ontology, types};
use ceres_kb::{Kb, KbBuilder, ValueId};
use rand::Rng;

/// Genres used across the movie vertical.
pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Documentary",
    "Horror",
    "Romance",
    "Animation",
    "Crime",
    "Adventure",
    "Fantasy",
    "Musical",
    "Western",
    "Biography",
];

/// MPAA ratings (gold-only predicate; never seeded into the KB).
pub const RATINGS: &[&str] = &["G", "PG", "PG-13", "R", "NC-17"];

/// Production countries (also used for birthplaces).
pub const COUNTRIES: &[&str] = &[
    "USA",
    "United Kingdom",
    "France",
    "Italy",
    "Denmark",
    "Iceland",
    "Czech Republic",
    "Slovakia",
    "Indonesia",
    "Nigeria",
    "India",
    "Japan",
    "South Korea",
    "China",
    "Canada",
];

const CITIES: &[&str] = &[
    "Springfield",
    "Riverton",
    "Lakewood",
    "Fairview",
    "Greenville",
    "Bristol",
    "Ashford",
    "Milton",
    "Clayton",
    "Dover",
    "Harborview",
    "Kingsport",
    "Northgate",
    "Oakdale",
];

/// One cast credit on a film.
#[derive(Debug, Clone, Copy)]
pub struct CastEntry {
    pub person: usize,
    /// 1-based billing order; low numbers are "principal" cast.
    pub billing: u8,
    /// Whether the credit carries character information — the paper's seed
    /// KB "only contains actors when associated IMDb character information
    /// is available".
    pub has_character_info: bool,
}

/// A film (or theatrical release).
#[derive(Debug, Clone)]
pub struct Film {
    pub title: String,
    pub year: u16,
    pub release: Date,
    /// Indexes into [`GENRES`].
    pub genres: Vec<usize>,
    pub directors: Vec<usize>,
    pub writers: Vec<usize>,
    pub cast: Vec<CastEntry>,
    pub producers: Vec<usize>,
    pub composer: Option<usize>,
    /// Index into [`COUNTRIES`].
    pub country: usize,
    pub rating: &'static str,
}

/// A person with a derived filmography.
#[derive(Debug, Clone, Default)]
pub struct Person {
    pub name: String,
    pub alias: Option<String>,
    pub birth: Option<Date>,
    pub birthplace: Option<String>,
    pub acted_in: Vec<(usize, u8, bool)>,
    pub directed: Vec<usize>,
    pub wrote: Vec<usize>,
    pub produced: Vec<usize>,
    pub composed: Vec<usize>,
}

/// A TV series.
#[derive(Debug, Clone)]
pub struct Series {
    pub title: String,
}

/// A TV episode.
#[derive(Debug, Clone)]
pub struct Episode {
    pub title: String,
    pub series: usize,
    pub season: u8,
    pub number: u8,
    pub cast: Vec<usize>,
}

/// World-size knobs.
#[derive(Debug, Clone)]
pub struct MovieWorldConfig {
    pub seed: u64,
    pub n_people: usize,
    pub n_films: usize,
    pub n_series: usize,
    /// Fraction of films whose title collides with another film or with an
    /// ambiguous UI string.
    pub title_collision_share: f64,
}

impl Default for MovieWorldConfig {
    fn default() -> Self {
        MovieWorldConfig {
            seed: 42,
            n_people: 3000,
            n_films: 1200,
            n_series: 40,
            title_collision_share: 0.03,
        }
    }
}

/// The generated universe.
#[derive(Debug)]
pub struct MovieWorld {
    pub config: MovieWorldConfig,
    pub people: Vec<Person>,
    pub films: Vec<Film>,
    pub series: Vec<Series>,
    pub episodes: Vec<Episode>,
}

impl MovieWorld {
    pub fn generate(config: MovieWorldConfig) -> MovieWorld {
        let mut rng = derive_rng(config.seed, "movie-world");

        // --- People ---
        let mut people: Vec<Person> = (0..config.n_people)
            .map(|_| {
                let name = person_name(&mut rng);
                let alias =
                    if prob(&mut rng, 0.35) { Some(person_alias(&mut rng, &name)) } else { None };
                Person {
                    name,
                    alias,
                    birth: Some(Date::random(&mut rng, 1920, 1999)),
                    birthplace: Some(format!(
                        "{}, {}",
                        choose(&mut rng, CITIES),
                        choose(&mut rng, COUNTRIES)
                    )),
                    ..Person::default()
                }
            })
            .collect();

        // --- Films ---
        let n_people = config.n_people;
        let mut films: Vec<Film> = Vec::with_capacity(config.n_films);
        for fi in 0..config.n_films {
            let title = if prob(&mut rng, config.title_collision_share) {
                if prob(&mut rng, 0.5) || films.is_empty() {
                    (*choose(&mut rng, AMBIGUOUS_TITLES)).to_string()
                } else {
                    films[rng.gen_range(0..films.len())].title.clone()
                }
            } else {
                // Serial suffix keeps most titles unique at scale.
                let base = film_title(&mut rng);
                if fi % 7 == 0 {
                    base
                } else {
                    format!("{base} {}", 1900 + (fi % 120))
                }
            };
            let year = rng.gen_range(1950..=2017);
            let mut release = Date::random(&mut rng, year, year);
            release.year = year;

            let n_genres = rng.gen_range(1..=3);
            let mut genres: Vec<usize> =
                (0..n_genres).map(|_| rng.gen_range(0..GENRES.len())).collect();
            genres.sort_unstable();
            genres.dedup();

            let n_directors = if prob(&mut rng, 0.12) { 2 } else { 1 };
            let directors: Vec<usize> =
                (0..n_directors).map(|_| zipf(&mut rng, n_people, 1.05)).collect();

            let mut writers: Vec<usize> = Vec::new();
            // Writer/director overlap: the Spike Lee ambiguity of Example 3.1.
            if prob(&mut rng, 0.4) {
                writers.push(directors[0]);
            }
            while writers.len() < rng.gen_range(1..=3) {
                writers.push(zipf(&mut rng, n_people, 1.05));
            }
            writers.dedup();

            let cast_size = rng.gen_range(5..=22);
            let mut cast: Vec<CastEntry> = Vec::with_capacity(cast_size);
            let mut seen = std::collections::BTreeSet::new();
            // The director occasionally acts in their own film.
            if prob(&mut rng, 0.18) {
                seen.insert(directors[0]);
                cast.push(CastEntry { person: directors[0], billing: 1, has_character_info: true });
            }
            while cast.len() < cast_size {
                let p = zipf(&mut rng, n_people, 1.02);
                if seen.insert(p) {
                    cast.push(CastEntry {
                        person: p,
                        billing: (cast.len() + 1) as u8,
                        has_character_info: prob(&mut rng, 0.55),
                    });
                }
            }

            let mut producers: Vec<usize> = Vec::new();
            if prob(&mut rng, 0.3) {
                producers.push(directors[0]);
            }
            while producers.len() < rng.gen_range(1..=2) {
                producers.push(zipf(&mut rng, n_people, 1.1));
            }
            producers.dedup();

            let composer = if prob(&mut rng, 0.8) {
                Some(zipf(&mut rng, n_people.min(200), 1.1))
            } else {
                None
            };

            films.push(Film {
                title,
                year,
                release,
                genres,
                directors,
                writers,
                cast,
                producers,
                composer,
                country: rng.gen_range(0..COUNTRIES.len()),
                #[allow(clippy::explicit_auto_deref)]
                rating: *choose(&mut rng, RATINGS),
            });
        }

        // --- Derived filmographies ---
        for (fi, film) in films.iter().enumerate() {
            for c in &film.cast {
                people[c.person].acted_in.push((fi, c.billing, c.has_character_info));
            }
            for &d in &film.directors {
                people[d].directed.push(fi);
            }
            for &w in &film.writers {
                people[w].wrote.push(fi);
            }
            for &p in &film.producers {
                people[p].produced.push(fi);
            }
            if let Some(c) = film.composer {
                people[c].composed.push(fi);
            }
        }

        // --- TV series & episodes ---
        let mut series: Vec<Series> = Vec::with_capacity(config.n_series);
        let mut episodes: Vec<Episode> = Vec::new();
        for si in 0..config.n_series {
            // One series is called "Biography" — the §2.2 ambiguity where a
            // page's section header matches a series title.
            let title = if si == 0 { "Biography".to_string() } else { film_title(&mut rng) };
            series.push(Series { title });
            let n_seasons = rng.gen_range(1..=3);
            for season in 1..=n_seasons {
                let n_eps = rng.gen_range(4..=10);
                for number in 1..=n_eps {
                    let title = if season == 1 && number == 1 && prob(&mut rng, 0.8) {
                        "Pilot".to_string()
                    } else if prob(&mut rng, 0.1) {
                        // Talk-show style: an episode titled with a guest's name.
                        people[zipf(&mut rng, n_people, 1.02)].name.clone()
                    } else {
                        film_title(&mut rng)
                    };
                    let cast: Vec<usize> =
                        (0..rng.gen_range(2..=5)).map(|_| zipf(&mut rng, n_people, 1.02)).collect();
                    episodes.push(Episode { title, series: si, season, number, cast });
                }
            }
        }

        MovieWorld { config, people, films, series, episodes }
    }

    /// Build the seed KB under `bias`. Returns the KB plus the subject
    /// [`ValueId`]s of covered films and people (used by experiments that
    /// need to know what was annotatable).
    pub fn build_kb(&self, bias: &KbBias) -> MovieKb {
        let mut rng = derive_rng(self.config.seed, "movie-kb");
        let ontology = movie_ontology();
        let person_t = ontology.type_by_name(types::PERSON).unwrap();
        let film_t = ontology.type_by_name(types::FILM).unwrap();
        let series_t = ontology.type_by_name(types::TV_SERIES).unwrap();
        let episode_t = ontology.type_by_name(types::TV_EPISODE).unwrap();

        let p = |name: &str| ontology.pred_by_name(name).unwrap();
        let directed_by = p(movie::DIRECTED_BY);
        let written_by = p(movie::WRITTEN_BY);
        let has_cast = p(movie::HAS_CAST_MEMBER);
        let has_genre = p(movie::HAS_GENRE);
        let release_date = p(movie::RELEASE_DATE);
        let release_year = p(movie::RELEASE_YEAR);
        let country = p(movie::COUNTRY);
        let music_by = p(movie::MUSIC_BY);
        let ep_number = p(movie::EPISODE_NUMBER);
        let season_number = p(movie::SEASON_NUMBER);
        let ep_series = p(movie::EPISODE_SERIES);
        let has_alias = p(movie::HAS_ALIAS);
        let place_of_birth = p(movie::PLACE_OF_BIRTH);
        let birth_date = p(movie::BIRTH_DATE);
        let acted_in = p(movie::ACTED_IN);
        let director_of = p(movie::DIRECTOR_OF);
        let writer_of = p(movie::WRITER_OF);
        let producer_of = p(movie::PRODUCER_OF);
        let created_music = p(movie::CREATED_MUSIC_FOR);

        let mut b = KbBuilder::new(ontology);

        // Popularity-weighted film coverage: the famous head is densely
        // covered, the long tail sparsely.
        let covered_films: Vec<bool> = (0..self.films.len())
            .map(|i| {
                let head = i < (self.films.len() as f64 * bias.film_head_fraction) as usize;
                prob(&mut rng, if head { bias.film_head_coverage } else { bias.film_tail_coverage })
            })
            .collect();
        let covered_people: Vec<bool> = (0..self.people.len())
            .map(|i| {
                let head = i < (self.people.len() as f64 * bias.person_head_fraction) as usize;
                prob(
                    &mut rng,
                    if head { bias.person_head_coverage } else { bias.person_tail_coverage },
                )
            })
            .collect();

        let date_literal = |b: &mut KbBuilder, d: &Date| -> ValueId {
            let id = b.literal(&d.iso());
            for v in d.variants() {
                b.alias(id, &v);
            }
            id
        };

        let mut film_ids: Vec<Option<ValueId>> = vec![None; self.films.len()];
        let mut person_ids: Vec<Option<ValueId>> = vec![None; self.people.len()];

        for (i, film) in self.films.iter().enumerate() {
            if !covered_films[i] {
                continue;
            }
            let fid = b.entity(film_t, &film.title);
            film_ids[i] = Some(fid);
        }
        for (i, person) in self.people.iter().enumerate() {
            if !covered_people[i] {
                continue;
            }
            let pid = b.entity(person_t, &person.name);
            person_ids[i] = Some(pid);
        }

        // Film-subject triples.
        for (i, film) in self.films.iter().enumerate() {
            let Some(fid) = film_ids[i] else { continue };
            for &d in &film.directors {
                if let Some(pid) = person_ids[d] {
                    if prob(&mut rng, bias.keep_director) {
                        b.triple(fid, directed_by, pid);
                        b.triple(pid, director_of, fid);
                    }
                }
            }
            for &w in &film.writers {
                if let Some(pid) = person_ids[w] {
                    if prob(&mut rng, bias.keep_writer) {
                        b.triple(fid, written_by, pid);
                        b.triple(pid, writer_of, fid);
                    }
                }
            }
            for c in &film.cast {
                // The principal-cast bias: only low billing numbers with
                // character info enter the KB.
                let principal = c.billing <= bias.principal_billing_cutoff && c.has_character_info;
                if !principal && !prob(&mut rng, bias.keep_cast_nonprincipal) {
                    continue;
                }
                if let Some(pid) = person_ids[c.person] {
                    b.triple(fid, has_cast, pid);
                    b.triple(pid, acted_in, fid);
                }
            }
            for &pr in &film.producers {
                if let Some(pid) = person_ids[pr] {
                    if prob(&mut rng, bias.keep_producer) {
                        b.triple(pid, producer_of, fid);
                    }
                }
            }
            if let Some(cm) = film.composer {
                if let Some(pid) = person_ids[cm] {
                    if prob(&mut rng, bias.keep_composer) {
                        b.triple(fid, music_by, pid);
                        b.triple(pid, created_music, fid);
                    }
                }
            }
            if prob(&mut rng, bias.keep_genre) {
                for &g in &film.genres {
                    let gid = b.literal(GENRES[g]);
                    b.triple(fid, has_genre, gid);
                }
            }
            if prob(&mut rng, bias.keep_release_date) {
                let did = date_literal(&mut b, &film.release);
                b.triple(fid, release_date, did);
            }
            let yid = b.literal(&film.year.to_string());
            b.triple(fid, release_year, yid);
            let cid = b.literal(COUNTRIES[film.country]);
            b.triple(fid, country, cid);
            // NOTE: mpaaRating deliberately never seeded (Table 3 footnote).
        }

        // Person-subject triples.
        for (i, person) in self.people.iter().enumerate() {
            let Some(pid) = person_ids[i] else { continue };
            if let Some(alias) = &person.alias {
                if prob(&mut rng, bias.keep_alias) {
                    let aid = b.literal(alias);
                    b.triple(pid, has_alias, aid);
                    // The alias string also matches the person for topic id.
                    b.alias(pid, alias);
                }
            }
            if let Some(bp) = &person.birthplace {
                if prob(&mut rng, bias.keep_birth) {
                    let bpid = b.literal(bp);
                    b.triple(pid, place_of_birth, bpid);
                }
            }
            if let Some(bd) = &person.birth {
                if prob(&mut rng, bias.keep_birth) {
                    let bdid = date_literal(&mut b, bd);
                    b.triple(pid, birth_date, bdid);
                }
            }
        }

        // Series & episodes.
        let mut series_ids = Vec::with_capacity(self.series.len());
        for s in &self.series {
            series_ids.push(b.entity(series_t, &s.title));
        }
        for (i, ep) in self.episodes.iter().enumerate() {
            if !prob(&mut rng, bias.episode_coverage) {
                continue;
            }
            // Episodes intern by (type, normalized title); colliding "Pilot"
            // titles collapse into one entity id, which *is* the ambiguity
            // the paper describes (one string, thousands of episodes). We
            // keep them distinct entities by qualifying the canonical name,
            // with the bare title as a matching alias.
            let canonical = format!("{} #{i}", ep.title);
            let eid = b.entity(episode_t, &canonical);
            b.alias(eid, &ep.title);
            let sid = series_ids[ep.series];
            b.triple(eid, ep_series, sid);
            let season_lit = b.literal(&format!("Season {}", ep.season));
            b.triple(eid, season_number, season_lit);
            let num_lit = b.literal(&format!("Episode {}", ep.number));
            b.triple(eid, ep_number, num_lit);
            for &c in &ep.cast {
                if let Some(pid) = person_ids[c] {
                    b.triple(eid, has_cast, pid);
                }
            }
        }

        let kb = b.build();
        MovieKb { kb, film_ids, person_ids }
    }
}

/// The built KB plus world→KB id maps.
pub struct MovieKb {
    pub kb: Kb,
    /// `film_ids[i]` is the KB id of world film `i`, if covered.
    pub film_ids: Vec<Option<ValueId>>,
    pub person_ids: Vec<Option<ValueId>>,
}

/// Seed-KB bias knobs (DESIGN.md §1; paper footnote 10).
#[derive(Debug, Clone)]
pub struct KbBias {
    pub film_head_fraction: f64,
    pub film_head_coverage: f64,
    pub film_tail_coverage: f64,
    pub person_head_fraction: f64,
    pub person_head_coverage: f64,
    pub person_tail_coverage: f64,
    /// Billing cutoff for "principal" cast membership.
    pub principal_billing_cutoff: u8,
    pub keep_cast_nonprincipal: f64,
    pub keep_director: f64,
    pub keep_writer: f64,
    pub keep_producer: f64,
    pub keep_composer: f64,
    pub keep_genre: f64,
    pub keep_release_date: f64,
    pub keep_alias: f64,
    pub keep_birth: f64,
    pub episode_coverage: f64,
}

impl Default for KbBias {
    fn default() -> Self {
        // Tuned so that on rendered pages roughly: cast facts ~14% in KB,
        // producer ~9%, director ~38%, genre ~58% (footnote 10).
        KbBias {
            film_head_fraction: 0.3,
            film_head_coverage: 0.95,
            film_tail_coverage: 0.45,
            person_head_fraction: 0.3,
            person_head_coverage: 0.9,
            person_tail_coverage: 0.5,
            principal_billing_cutoff: 5,
            keep_cast_nonprincipal: 0.02,
            keep_director: 0.7,
            keep_writer: 0.55,
            keep_producer: 0.2,
            keep_composer: 0.35,
            keep_genre: 0.95,
            keep_release_date: 0.8,
            keep_alias: 0.8,
            keep_birth: 0.75,
            episode_coverage: 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> MovieWorld {
        MovieWorld::generate(MovieWorldConfig {
            seed: 7,
            n_people: 300,
            n_films: 120,
            n_series: 5,
            title_collision_share: 0.05,
        })
    }

    #[test]
    fn world_generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.films.len(), b.films.len());
        assert_eq!(a.films[0].title, b.films[0].title);
        assert_eq!(a.people[17].name, b.people[17].name);
        assert_eq!(a.episodes.len(), b.episodes.len());
    }

    #[test]
    fn filmographies_are_consistent() {
        let w = small_world();
        for (fi, film) in w.films.iter().enumerate() {
            for c in &film.cast {
                assert!(w.people[c.person].acted_in.iter().any(|&(f, _, _)| f == fi));
            }
            for &d in &film.directors {
                assert!(w.people[d].directed.contains(&fi));
            }
        }
    }

    #[test]
    fn zipf_head_people_are_prolific() {
        let w = small_world();
        let head_credits: usize = w.people[..10].iter().map(|p| p.acted_in.len()).sum();
        let tail_credits: usize =
            w.people[w.people.len() - 10..].iter().map(|p| p.acted_in.len()).sum();
        assert!(head_credits > tail_credits * 3, "head {head_credits} vs tail {tail_credits}");
    }

    #[test]
    fn pilot_episodes_exist() {
        let w = small_world();
        let pilots = w.episodes.iter().filter(|e| e.title == "Pilot").count();
        assert!(pilots >= 2, "expected several Pilot episodes, got {pilots}");
    }

    #[test]
    fn kb_respects_principal_cast_bias() {
        let w = small_world();
        let mkb = w.build_kb(&KbBias::default());
        let kb = &mkb.kb;
        assert!(kb.n_triples() > 100);

        // Fraction of all world cast credits present in the KB should be
        // well below the director fraction (footnote 10's shape).
        let has_cast = kb.ontology().pred_by_name(movie::HAS_CAST_MEMBER).unwrap();
        let directed = kb.ontology().pred_by_name(movie::DIRECTED_BY).unwrap();
        let world_cast: usize = w.films.iter().map(|f| f.cast.len()).sum();
        let world_directed: usize = w.films.iter().map(|f| f.directors.len()).sum();
        let kb_cast = kb.triples().iter().filter(|t| t.pred == has_cast).count();
        let kb_directed = kb.triples().iter().filter(|t| t.pred == directed).count();
        let cast_frac = kb_cast as f64 / world_cast as f64;
        let dir_frac = kb_directed as f64 / world_directed as f64;
        assert!(cast_frac < dir_frac, "cast {cast_frac:.2} vs director {dir_frac:.2}");
        assert!(cast_frac < 0.35, "cast fraction too high: {cast_frac:.2}");
    }

    #[test]
    fn mpaa_rating_never_seeded() {
        let w = small_world();
        let mkb = w.build_kb(&KbBias::default());
        let rating = mkb.kb.ontology().pred_by_name(movie::MPAA_RATING).unwrap();
        assert_eq!(mkb.kb.triples().iter().filter(|t| t.pred == rating).count(), 0);
    }

    #[test]
    fn date_literals_match_all_render_styles() {
        let w = small_world();
        let mkb = w.build_kb(&KbBias::default());
        // Find some film with a release-date triple and check the matcher
        // reaches it from every render style.
        let rd = mkb.kb.ontology().pred_by_name(movie::RELEASE_DATE).unwrap();
        let t = mkb.kb.triples().iter().find(|t| t.pred == rd).expect("some release date");
        let iso = mkb.kb.canonical(t.object).to_string();
        // Reconstruct the Date from ISO and check variants.
        let parts: Vec<u16> = iso.split('-').map(|p| p.parse().unwrap()).collect();
        let d = Date { year: parts[0], month: parts[1] as u8, day: parts[2] as u8 };
        for v in d.variants() {
            assert!(mkb.kb.match_text(&v).contains(&t.object), "style {v} failed to match {iso}");
        }
    }

    #[test]
    fn ambiguous_episode_titles_share_alias() {
        let w = small_world();
        // Full episode coverage so every pilot lands in the KB.
        let bias = KbBias { episode_coverage: 1.0, ..KbBias::default() };
        let mkb = w.build_kb(&bias);
        let hits = mkb.kb.match_text("Pilot");
        assert!(hits.len() >= 2, "Pilot should be ambiguous, got {}", hits.len());
    }
}
