//! The IMDb-like complex-site dataset of §5.1.2 / §5.4: one Film/TV site
//! (movie + TV-episode detail pages) and one Person site, both backed by the
//! same world and the same biased seed KB as the SWDE Movie vertical.
//!
//! Person pages are the hard part: long multi-valued filmographies, "Known
//! For" boxes, alias-shaped TV appearance titles, and writer/director/actor
//! overlaps — everything §5.4 credits for CERES-TOPIC's collapse.

use crate::dataset::Site;
use crate::movie_pages::{
    render_episode_page, render_film_page, render_person_page, MoviePathology, MovieRenderCtx,
};
use crate::movie_world::{KbBias, MovieKb, MovieWorld, MovieWorldConfig};
use crate::rng::{derive_rng, zipf_distinct};
use crate::style::SiteStyle;

/// Paper page counts (§5.1.2).
const PAPER_MOVIE_PAGES: usize = 8245;
const PAPER_PERSON_PAGES: usize = 1600;
/// Share of the Film/TV page set that is TV-episode pages (IMDb title pages
/// cover both; Table 5's Film/TV block includes episode predicates).
const EPISODE_SHARE: f64 = 0.12;

/// The generated IMDb-like dataset.
pub struct ImdbDataset {
    pub world: MovieWorld,
    pub movie_site: Site,
    pub person_site: Site,
    pub kb: ceres_kb::Kb,
}

/// Generate at `scale` (1.0 reproduces the paper's page counts).
pub fn generate(seed: u64, scale: f64) -> ImdbDataset {
    let n_title_pages = ((PAPER_MOVIE_PAGES as f64 * scale).round() as usize).max(40);
    let n_person_pages = ((PAPER_PERSON_PAGES as f64 * scale).round() as usize).max(16);
    let n_episode_pages = ((n_title_pages as f64 * EPISODE_SHARE) as usize).max(4);
    let n_film_pages = n_title_pages - n_episode_pages;

    let world = MovieWorld::generate(MovieWorldConfig {
        seed: seed ^ 0x1DB,
        n_people: (n_person_pages * 8).max(n_film_pages * 2),
        n_films: (n_film_pages * 5 / 4).max(60),
        n_series: (n_episode_pages / 10).max(4),
        title_collision_share: 0.03,
    });
    let MovieKb { kb, .. } = world.build_kb(&KbBias::default());

    // --- Film/TV site ---
    let mut rng = derive_rng(seed, "imdb-titles");
    let style = SiteStyle {
        // IMDb-like: semantic classes and itemprop microdata, moderate ads.
        semantic_classes: true,
        use_itemprop: true,
        ..SiteStyle::random(&mut rng, "en", "imdb")
    };
    let pathology = MoviePathology::default();
    let ctx = MovieRenderCtx {
        world: &world,
        style: &style,
        site_name: "imdb-like",
        pathology: &pathology,
    };

    let mut pages = Vec::with_capacity(n_title_pages);
    for fi in zipf_distinct(&mut rng, world.films.len(), n_film_pages, 1.05) {
        pages.push(render_film_page(&ctx, fi, &mut rng));
    }
    let n_eps = world.episodes.len().min(n_episode_pages);
    for ei in zipf_distinct(&mut rng, world.episodes.len(), n_eps, 1.05) {
        pages.push(render_episode_page(&ctx, ei, &mut rng));
    }
    let movie_site =
        Site { name: "imdb-like-titles".to_string(), focus: "Film/TV".to_string(), pages };

    // --- Person site (most prolific people first: they have the complex
    // pages) ---
    let mut prng = derive_rng(seed, "imdb-people");
    let pstyle = SiteStyle {
        semantic_classes: true,
        use_itemprop: true,
        ..SiteStyle::random(&mut prng, "en", "imdbp")
    };
    let pctx = MovieRenderCtx {
        world: &world,
        style: &pstyle,
        site_name: "imdb-like",
        pathology: &pathology,
    };
    let mut ppages = Vec::with_capacity(n_person_pages);
    for pi in zipf_distinct(&mut prng, world.people.len(), n_person_pages, 1.1) {
        // Skip people with no credits at all (no detail page would exist).
        let p = &world.people[pi];
        if p.acted_in.is_empty() && p.directed.is_empty() && p.wrote.is_empty() {
            continue;
        }
        ppages.push(render_person_page(&pctx, pi, &mut prng));
    }
    let person_site =
        Site { name: "imdb-like-people".to_string(), focus: "People".to_string(), pages: ppages };

    ImdbDataset { world, movie_site, person_site, kb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::movie as m;

    #[test]
    fn dataset_builds_with_both_sites() {
        let d = generate(9, 0.02);
        assert!(d.movie_site.pages.len() >= 40);
        assert!(d.person_site.pages.len() >= 10);
        assert!(d.kb.n_triples() > 100);
    }

    #[test]
    fn title_site_mixes_films_and_episodes() {
        let d = generate(9, 0.02);
        let films = d.movie_site.pages.iter().filter(|p| p.id.starts_with("film-")).count();
        let eps = d.movie_site.pages.iter().filter(|p| p.id.starts_with("episode-")).count();
        assert!(films > 0 && eps > 0, "films {films}, episodes {eps}");
    }

    #[test]
    fn person_pages_have_multivalued_filmographies() {
        let d = generate(9, 0.02);
        let max_acted = d
            .person_site
            .pages
            .iter()
            .map(|p| p.gold.facts.iter().filter(|f| f.pred == m::ACTED_IN).count())
            .max()
            .unwrap();
        assert!(max_acted >= 10, "expected a prolific actor, max {max_acted}");
    }

    #[test]
    fn deterministic() {
        let a = generate(9, 0.02);
        let b = generate(9, 0.02);
        assert_eq!(a.movie_site.pages[3].html, b.movie_site.pages[3].html);
        assert_eq!(a.kb.n_triples(), b.kb.n_triples());
    }
}
