//! # ceres-synth
//!
//! The synthetic semi-structured web used in place of the paper's
//! proprietary corpora (SWDE, an IMDb crawl, and 33 CommonCrawl movie
//! sites — see DESIGN.md §1 for the substitution rationale).
//!
//! The generator produces three artifacts per experiment:
//!
//! 1. a **world** — a closed universe of entities and facts (films, people,
//!    TV episodes, books, NBA players, universities);
//! 2. a set of **websites** — each site renders a subset of the world
//!    through its own templates, style lexicon, label language, and noise
//!    model (optional sections, ad blocks that shift sibling indices,
//!    recommendation rails, "Known For" boxes, search boxes, …);
//! 3. a **seed KB** — a *biased subset* of the world (popularity-weighted
//!    coverage, principal-cast-only links, per-predicate keep rates),
//!    mirroring how the paper's IMDb-derived KB relates to the live site
//!    (footnote 10).
//!
//! Every rendered text field carries a `data-gt` attribute keyed to a
//! [`GoldFact`]; the extraction stack ignores `data-gt*` attributes (unit
//! tested in `ceres-core`), while the evaluation harness uses them to score
//! topics, annotations, and extractions at node level.

pub mod commoncrawl;
pub mod dataset;
pub mod hostile;
pub mod html;
pub mod imdb;
pub mod movie_pages;
pub mod movie_world;
pub mod names;
pub mod rng;
pub mod schema;
pub mod small_worlds;
pub mod style;
pub mod swde;
pub mod vertical_pages;

pub use dataset::{GoldFact, Page, PageGold, PageKind, Site};
pub use html::GtHtml;
pub use movie_world::{KbBias, MovieWorld, MovieWorldConfig};
pub use schema::movie_ontology;
pub use style::{KvStyle, LabelPack, ListStyle, SiteStyle};
