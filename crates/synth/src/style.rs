//! Per-site presentation: markup style, class-name lexicon, label language.
//!
//! Two sites asserting the same fact render it through different DOM shapes
//! and labels — this is exactly why DOM extractors must be retrained per
//! site (paper §1) and what the style lexicon varies.

use crate::names::DateStyle;
use crate::rng::{choose, prob};
use rand::rngs::SmallRng;
use rand::Rng;

/// How key-value facts are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvStyle {
    /// `<table><tr><td>label</td><td>value</td></tr>…`
    Table,
    /// `<div class=row><span class=label>…</span><span class=value>…</span></div>`
    Divs,
    /// `<dl><dt>label</dt><dd>value</dd>…`
    DefinitionList,
}

/// How multi-valued lists are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListStyle {
    /// `<ul><li>…</li></ul>`
    Ul,
    /// `<div class=items><div class=item>…</div></div>`
    Divs,
}

/// UI label strings in the site's language.
#[derive(Debug, Clone)]
pub struct LabelPack {
    pub language: &'static str,
    pub director: &'static str,
    pub writer: &'static str,
    pub cast: &'static str,
    pub genre: &'static str,
    pub release_date: &'static str,
    pub year: &'static str,
    pub country: &'static str,
    pub rating: &'static str,
    pub also_known_as: &'static str,
    pub born: &'static str,
    pub birthplace: &'static str,
    pub filmography_actor: &'static str,
    pub filmography_director: &'static str,
    pub filmography_writer: &'static str,
    pub filmography_producer: &'static str,
    pub filmography_composer: &'static str,
    pub known_for: &'static str,
    pub recommendations: &'static str,
    pub search: &'static str,
    pub help: &'static str,
    pub contact: &'static str,
    pub home: &'static str,
    pub season: &'static str,
    pub episode: &'static str,
    pub series: &'static str,
}

/// English labels.
pub const EN: LabelPack = LabelPack {
    language: "en",
    director: "Director",
    writer: "Writer",
    cast: "Cast",
    genre: "Genre",
    release_date: "Release Date",
    year: "Year",
    country: "Country",
    rating: "Rating",
    also_known_as: "Also Known As",
    born: "Born",
    birthplace: "Place of Birth",
    filmography_actor: "Actor",
    filmography_director: "Director",
    filmography_writer: "Writer",
    filmography_producer: "Producer",
    filmography_composer: "Music Department",
    known_for: "Known For",
    recommendations: "People who liked this also liked",
    search: "Search",
    help: "Help",
    contact: "Contact",
    home: "Home",
    season: "Season",
    episode: "Episode",
    series: "Series",
};

pub const CS: LabelPack = LabelPack {
    language: "cs",
    director: "Režie",
    writer: "Scénář",
    cast: "Hrají",
    genre: "Žánr",
    release_date: "Datum premiéry",
    year: "Rok",
    country: "Země",
    rating: "Hodnocení",
    also_known_as: "Také známý jako",
    born: "Narozen",
    birthplace: "Místo narození",
    filmography_actor: "Herec",
    filmography_director: "Režisér",
    filmography_writer: "Scenárista",
    filmography_producer: "Producent",
    filmography_composer: "Hudba",
    known_for: "Známý díky",
    recommendations: "Podobné filmy",
    search: "Hledat",
    help: "Nápověda",
    contact: "Kontakt",
    home: "Domů",
    season: "Sezóna",
    episode: "Epizoda",
    series: "Seriál",
};

pub const DA: LabelPack = LabelPack {
    language: "da",
    director: "Instruktør",
    writer: "Manuskript",
    cast: "Medvirkende",
    genre: "Genre",
    release_date: "Premieredato",
    year: "År",
    country: "Land",
    rating: "Bedømmelse",
    also_known_as: "Også kendt som",
    born: "Født",
    birthplace: "Fødested",
    filmography_actor: "Skuespiller",
    filmography_director: "Instruktør",
    filmography_writer: "Forfatter",
    filmography_producer: "Producent",
    filmography_composer: "Musik",
    known_for: "Kendt for",
    recommendations: "Lignende film",
    search: "Søg",
    help: "Hjælp",
    contact: "Kontakt",
    home: "Hjem",
    season: "Sæson",
    episode: "Episode",
    series: "Serie",
};

pub const IS: LabelPack = LabelPack {
    language: "is",
    director: "Leikstjóri",
    writer: "Handrit",
    cast: "Leikarar",
    genre: "Tegund",
    release_date: "Frumsýningardagur",
    year: "Ár",
    country: "Land",
    rating: "Einkunn",
    also_known_as: "Einnig þekktur sem",
    born: "Fæddur",
    birthplace: "Fæðingarstaður",
    filmography_actor: "Leikari",
    filmography_director: "Leikstjóri",
    filmography_writer: "Höfundur",
    filmography_producer: "Framleiðandi",
    filmography_composer: "Tónlist",
    known_for: "Þekktur fyrir",
    recommendations: "Svipaðar myndir",
    search: "Leita",
    help: "Hjálp",
    contact: "Hafa samband",
    home: "Heim",
    season: "Þáttaröð",
    episode: "Þáttur",
    series: "Sería",
};

pub const IT: LabelPack = LabelPack {
    language: "it",
    director: "Regia",
    writer: "Sceneggiatura",
    cast: "Interpreti",
    genre: "Genere",
    release_date: "Data di uscita",
    year: "Anno",
    country: "Paese",
    rating: "Valutazione",
    also_known_as: "Conosciuto anche come",
    born: "Nato",
    birthplace: "Luogo di nascita",
    filmography_actor: "Attore",
    filmography_director: "Regista",
    filmography_writer: "Sceneggiatore",
    filmography_producer: "Produttore",
    filmography_composer: "Musiche",
    known_for: "Noto per",
    recommendations: "Film simili",
    search: "Cerca",
    help: "Aiuto",
    contact: "Contatti",
    home: "Home",
    season: "Stagione",
    episode: "Episodio",
    series: "Serie",
};

pub const ID: LabelPack = LabelPack {
    language: "id",
    director: "Sutradara",
    writer: "Penulis",
    cast: "Pemeran",
    genre: "Genre",
    release_date: "Tanggal rilis",
    year: "Tahun",
    country: "Negara",
    rating: "Peringkat",
    also_known_as: "Juga dikenal sebagai",
    born: "Lahir",
    birthplace: "Tempat lahir",
    filmography_actor: "Aktor",
    filmography_director: "Sutradara",
    filmography_writer: "Penulis",
    filmography_producer: "Produser",
    filmography_composer: "Musik",
    known_for: "Dikenal karena",
    recommendations: "Film serupa",
    search: "Cari",
    help: "Bantuan",
    contact: "Kontak",
    home: "Beranda",
    season: "Musim",
    episode: "Episode",
    series: "Serial",
};

pub const SK: LabelPack = LabelPack {
    language: "sk",
    director: "Réžia",
    writer: "Scenár",
    cast: "Hrajú",
    genre: "Žáner",
    release_date: "Dátum premiéry",
    year: "Rok",
    country: "Krajina",
    rating: "Hodnotenie",
    also_known_as: "Tiež známy ako",
    born: "Narodený",
    birthplace: "Miesto narodenia",
    filmography_actor: "Herec",
    filmography_director: "Režisér",
    filmography_writer: "Scenárista",
    filmography_producer: "Producent",
    filmography_composer: "Hudba",
    known_for: "Známy vďaka",
    recommendations: "Podobné filmy",
    search: "Hľadať",
    help: "Pomoc",
    contact: "Kontakt",
    home: "Domov",
    season: "Séria",
    episode: "Epizóda",
    series: "Seriál",
};

/// Look up a label pack by language code; defaults to English.
pub fn label_pack(code: &str) -> &'static LabelPack {
    match code {
        "cs" => &CS,
        "da" => &DA,
        "is" => &IS,
        "it" => &IT,
        "id" => &ID,
        "sk" => &SK,
        _ => &EN,
    }
}

/// The full per-site presentation profile.
#[derive(Debug, Clone)]
pub struct SiteStyle {
    pub kv: KvStyle,
    pub list: ListStyle,
    /// Class-name prefix ("rt", "kino", …) making selectors site-specific.
    pub class_prefix: String,
    pub labels: &'static LabelPack,
    pub date_style: DateStyle,
    /// Whether semantic `itemprop` microdata is emitted.
    pub use_itemprop: bool,
    /// Whether class names are semantic (`cast`) or generic (`sec3`).
    pub semantic_classes: bool,
    /// Probability that an ad `<div>` precedes a section, shifting sibling
    /// indices (the Figure 2 phenomenon).
    pub ad_prob: f64,
    /// Probability that an optional field is missing from a page.
    pub missing_prob: f64,
    /// Extra wrapper divs around the main content (depth jitter per site).
    pub wrapper_depth: usize,
    /// If set, section order is shuffled per page (the "template variety"
    /// pathology of §5.5.1).
    pub shuffle_sections: bool,
}

impl SiteStyle {
    /// Draw a style for a site from its RNG; `language` picks the labels.
    pub fn random(rng: &mut SmallRng, language: &str, class_prefix: &str) -> SiteStyle {
        let kv = *choose(rng, &[KvStyle::Table, KvStyle::Divs, KvStyle::DefinitionList]);
        let list = *choose(rng, &[ListStyle::Ul, ListStyle::Divs]);
        let date_style = *choose(rng, &[DateStyle::Iso, DateStyle::Us, DateStyle::Eu]);
        SiteStyle {
            kv,
            list,
            class_prefix: class_prefix.to_string(),
            labels: label_pack(language),
            date_style,
            use_itemprop: prob(rng, 0.35),
            semantic_classes: prob(rng, 0.6),
            ad_prob: rng.gen_range(0.05..0.35),
            missing_prob: rng.gen_range(0.02..0.15),
            wrapper_depth: rng.gen_range(0..3),
            shuffle_sections: false,
        }
    }

    /// Class attribute value for a section: semantic or positional.
    pub fn class_for(&self, semantic: &str, position: usize) -> String {
        if self.semantic_classes {
            format!("{}-{}", self.class_prefix, semantic)
        } else {
            format!("{}-sec{}", self.class_prefix, position)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn label_pack_lookup() {
        assert_eq!(label_pack("cs").director, "Režie");
        assert_eq!(label_pack("xx").director, "Director");
        assert_eq!(label_pack("is").language, "is");
    }

    #[test]
    fn style_is_deterministic_per_seed() {
        let mut a = derive_rng(11, "style");
        let mut b = derive_rng(11, "style");
        let sa = SiteStyle::random(&mut a, "en", "x");
        let sb = SiteStyle::random(&mut b, "en", "x");
        assert_eq!(sa.kv, sb.kv);
        assert_eq!(sa.ad_prob, sb.ad_prob);
    }

    #[test]
    fn class_for_respects_semantic_flag() {
        let mut rng = derive_rng(12, "cls");
        let mut s = SiteStyle::random(&mut rng, "en", "rt");
        s.semantic_classes = true;
        assert_eq!(s.class_for("cast", 3), "rt-cast");
        s.semantic_classes = false;
        assert_eq!(s.class_for("cast", 3), "rt-sec3");
    }

    #[test]
    fn all_label_packs_have_distinct_languages() {
        let packs = [&EN, &CS, &DA, &IS, &IT, &ID, &SK];
        let mut langs: Vec<&str> = packs.iter().map(|p| p.language).collect();
        langs.sort_unstable();
        langs.dedup();
        assert_eq!(langs.len(), packs.len());
    }
}
