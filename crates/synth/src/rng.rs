//! Deterministic randomness helpers.
//!
//! Every generator takes an explicit seed; sites derive their own seeds from
//! the master seed and the site name, so adding a site never perturbs the
//! pages of another.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive a child RNG from a master seed and a string tag.
pub fn derive_rng(master_seed: u64, tag: &str) -> SmallRng {
    // FNV-1a over the tag, mixed with the master seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master_seed.rotate_left(17);
    for b in tag.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ master_seed)
}

/// Bernoulli draw.
pub fn prob(rng: &mut SmallRng, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Uniform choice from a non-empty slice.
pub fn choose<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Approximate Zipf sample over `0..n` with exponent `s` (popularity skew:
/// index 0 is the most popular item). Uses inverse-CDF rejection, good
/// enough for workload generation.
pub fn zipf(rng: &mut SmallRng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // Rejection sampling against the continuous envelope (Devroye).
    let n_f = n as f64;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = ((n_f.powf(1.0 - s) - 1.0) * u + 1.0).powf(1.0 / (1.0 - s));
        let k = x.floor() as usize;
        if k >= 1 && k <= n {
            return k - 1;
        }
    }
}

/// Sample `k` distinct indices from `0..n` with Zipf skew; falls back to all
/// indices when `k >= n`.
pub fn zipf_distinct(rng: &mut SmallRng, n: usize, k: usize, s: f64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut seen = std::collections::BTreeSet::new();
    // Cap attempts to avoid pathological loops on tiny n / large k.
    let mut attempts = 0;
    while seen.len() < k && attempts < 50 * k + 100 {
        seen.insert(zipf(rng, n, s));
        attempts += 1;
    }
    let mut i = 0;
    while seen.len() < k {
        seen.insert(i);
        i += 1;
    }
    seen.into_iter().collect()
}

/// Uniform sample of `k` distinct indices from `0..n` (Floyd's algorithm).
pub fn sample_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut set = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !set.insert(t) {
            set.insert(j);
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_rng_is_deterministic_and_tag_sensitive() {
        let mut a1 = derive_rng(42, "site-a");
        let mut a2 = derive_rng(42, "site-a");
        let mut b = derive_rng(42, "site-b");
        let va1: u64 = a1.gen();
        let va2: u64 = a2.gen();
        let vb: u64 = b.gen();
        assert_eq!(va1, va2);
        assert_ne!(va1, vb);
    }

    #[test]
    fn zipf_is_skewed_toward_small_indices() {
        let mut rng = derive_rng(7, "zipf");
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[zipf(&mut rng, 100, 1.1)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "head {} tail {}", counts[0], counts[50]);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn zipf_distinct_returns_k_unique() {
        let mut rng = derive_rng(7, "zd");
        let v = zipf_distinct(&mut rng, 50, 10, 1.2);
        assert_eq!(v.len(), 10);
        let mut u = v.clone();
        u.dedup();
        assert_eq!(u.len(), 10);
        assert!(v.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_distinct_bounds() {
        let mut rng = derive_rng(9, "sd");
        let v = sample_distinct(&mut rng, 10, 4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|&i| i < 10));
        let all = sample_distinct(&mut rng, 3, 10);
        assert_eq!(all, vec![0, 1, 2]);
    }
}
