//! Hostile-input fixtures: a deterministic poison-page corpus and seeded
//! fault plans for proving panic containment end-to-end.
//!
//! Real crawls contain pages that violate every politeness assumption:
//! markup truncated mid-tag by a dropped connection, absurd nesting,
//! multi-megabyte attribute blobs, duplicate captures of the same URL, and
//! mid-crawl template redesigns. This module renders those pathologies
//! deterministically — same seed, same corpus, byte for byte — so the
//! fault-isolated ingest/serve paths (`ceres-core`'s `try_push_page` /
//! `try_extract_batch`) can be tested and benchmarked against input that
//! never changes under a fixed seed.

use crate::rng::{derive_rng, sample_distinct};
use rand::Rng;
use std::collections::BTreeSet;

/// Panic marker honored by `ceres-core`'s test-only `fault-inject`
/// feature. Duplicated from `ceres_core::session::FAULT_PANIC_MARKER`
/// (this crate deliberately does not depend on `ceres-core`); the
/// workspace suite `tests/fault_isolation.rs` pins the two constants
/// equal.
pub const FAULT_PANIC_MARKER: &str = "ceres:fault=panic";

/// What a guarded ingest running **default guards** must do with a
/// hostile page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Tolerated: parses (possibly to nonsense) and reaches training.
    Survives,
    /// Quarantined under this `PageError::kind()` slug.
    Quarantined(&'static str),
}

/// One hostile page plus its expected fate under default guards.
#[derive(Debug, Clone)]
pub struct HostilePage {
    pub id: String,
    pub html: String,
    pub expect: Expect,
}

/// A plausible detail page cut off mid-markup at a seeded offset (the
/// fetch died). The cut always lands after the `<h1>` text so the page
/// keeps at least one text field — the tolerant parser must survive it
/// and a guarded ingest must let it through.
pub fn truncated_page(seed: u64, i: usize) -> String {
    let mut rng = derive_rng(seed, &format!("truncated-{i}"));
    let full = format!(
        "<html><body><h1>Item {i}</h1>\
         <div class=info><span class=label>Maker:</span> <span class=val>Maker {i}</span></div>\
         <ul><li>part a</li><li>part b</li><li>part c</li></ul>\
         <div class=footer><span>terms</span><span>contact</span></div></body></html>"
    );
    let keep_from = full.find("</h1>").expect("fixture has an h1") + "</h1>".len();
    let cut = rng.gen_range(keep_from..full.len());
    full[..cut].to_string()
}

/// `depth` nested `<div>`s around one text node — past any sane layout,
/// and past `GuardConfig::max_dom_depth` when `depth` exceeds it.
pub fn deep_nesting_page(depth: usize) -> String {
    format!("{}bottom{}", "<div>".repeat(depth), "</div>".repeat(depth))
}

/// A page whose single attribute carries `bytes` of payload (tracking
/// blobs, inlined state dumps). Exceeds `GuardConfig::max_page_bytes`
/// when `bytes` does.
pub fn huge_attribute_page(bytes: usize) -> String {
    format!(
        "<html><body><div data-blob=\"{}\"><p>payload</p></div></body></html>",
        "A".repeat(bytes)
    )
}

/// Markup that parses to a DOM with no text fields at all.
pub fn blank_page() -> String {
    "<html><body><div><div></div></div></body></html>".to_string()
}

/// `len` seeded codepoints of raw noise (controls, punctuation, stray `<`
/// and `>`, non-ASCII) — not HTML by any stretch; the parser must
/// tolerate it anyway.
pub fn byte_soup(seed: u64, len: usize) -> String {
    let mut rng = derive_rng(seed, "byte-soup");
    (0..len).map(|_| char::from_u32(rng.gen_range(1..=0x24F)).unwrap_or('?')).collect()
}

/// A serve-phase page from a "site redesign": a card-grid layout sharing
/// no tag structure with the detail templates the fixtures train on, so a
/// trained site reports it unassigned — the drift watchdog's food.
pub fn drifted_page(i: usize) -> (String, String) {
    let cards: String = (0..6)
        .map(|j| {
            format!(
                "<article class=card><h3>Card {i}-{j}</h3>\
                 <p>blurb {j}</p><button>open</button></article>"
            )
        })
        .collect();
    let html = format!(
        "<html><body><nav><a>home</a><a>discover</a><a>account</a></nav>\
         <main><section class=hero><h2>Fresh look {i}</h2><p>redesigned</p></section>\
         <section class=grid>{cards}</section></main>\
         <aside><p>promo one</p><p>promo two</p></aside></body></html>"
    );
    (format!("redesign-{i}"), html)
}

/// The deterministic poison corpus: every ingest pathology with its
/// expected fate under default guards, in a fixed order (the duplicate
/// pair relies on it: first capture survives, the re-crawl is refused).
pub fn hostile_corpus(seed: u64) -> Vec<HostilePage> {
    let mut pages: Vec<HostilePage> = (0..4)
        .map(|i| HostilePage {
            id: format!("truncated-{i}"),
            html: truncated_page(seed, i),
            expect: Expect::Survives,
        })
        .collect();
    pages.push(HostilePage {
        id: "deep-200".into(),
        html: deep_nesting_page(200),
        expect: Expect::Quarantined("parse-depth"),
    });
    pages.push(HostilePage {
        id: "huge-attr".into(),
        html: huge_attribute_page(2 * 1024 * 1024),
        expect: Expect::Quarantined("oversized"),
    });
    pages.push(HostilePage {
        id: "blank".into(),
        html: blank_page(),
        expect: Expect::Quarantined("empty-dom"),
    });
    // Raw soup alone can parse to zero text fields (everything swallowed
    // by an unterminated tag), which would make its fate seed-dependent;
    // the `<p>` frame pins at least one text field, so "survives" holds
    // for every seed. Pure soup is the proptest suite's job.
    pages.push(HostilePage {
        id: "soup".into(),
        html: format!("<p>soup header</p>{}", byte_soup(seed, 4096)),
        expect: Expect::Survives,
    });
    pages.push(HostilePage {
        id: "dup".into(),
        html: "<html><body><p>original capture</p></body></html>".into(),
        expect: Expect::Survives,
    });
    pages.push(HostilePage {
        id: "dup".into(),
        html: "<html><body><p>re-crawled capture</p></body></html>".into(),
        expect: Expect::Quarantined("duplicate-id"),
    });
    pages
}

/// A seeded plan of which page indices of a crawl are poisoned with
/// [`FAULT_PANIC_MARKER`]. The marker rides in an HTML comment, which the
/// parser skips — an armed crawl is valid input for clean builds and only
/// detonates under `ceres-core`'s test-only `fault-inject` feature.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    poisoned: BTreeSet<usize>,
    n_pages: usize,
}

impl FaultPlan {
    /// Pick `n_faults` distinct indices of `0..n_pages` to poison
    /// (seed-deterministic; all of them when `n_faults >= n_pages`).
    pub fn new(seed: u64, n_pages: usize, n_faults: usize) -> FaultPlan {
        let mut rng = derive_rng(seed, "fault-plan");
        let poisoned = sample_distinct(&mut rng, n_pages, n_faults).into_iter().collect();
        FaultPlan { poisoned, n_pages }
    }

    /// Number of pages the plan covers.
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Number of poisoned indices.
    pub fn n_poisoned(&self) -> usize {
        self.poisoned.len()
    }

    /// Whether page `index` is slated to panic.
    pub fn is_poisoned(&self, index: usize) -> bool {
        self.poisoned.contains(&index)
    }

    /// Poisoned indices in ascending order.
    pub fn poisoned_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.poisoned.iter().copied()
    }

    /// Arm one page: poisoned indices get the marker comment prepended,
    /// everything else passes through untouched.
    pub fn arm(&self, index: usize, html: &str) -> String {
        if self.is_poisoned(index) {
            format!("<!--{FAULT_PANIC_MARKER}-->{html}")
        } else {
            html.to_string()
        }
    }

    /// Arm a whole crawl in place (page `i` is armed iff `is_poisoned(i)`).
    pub fn arm_pages(&self, pages: &mut [(String, String)]) {
        for (i, (_, html)) in pages.iter_mut().enumerate() {
            if self.is_poisoned(i) {
                *html = format!("<!--{FAULT_PANIC_MARKER}-->{html}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_dom::parse_html;

    #[test]
    fn corpus_is_deterministic_and_parser_tolerates_every_page() {
        let a = hostile_corpus(9);
        let b = hostile_corpus(9);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.html, pb.html);
            assert_eq!(pa.expect, pb.expect);
            // The tolerant parser must never panic on poison, only the
            // guards decide its fate.
            let doc = parse_html(&pa.html);
            doc.check_consistency().expect("consistent arena");
        }
        // Every quarantine reason the corpus claims to exercise is there.
        for slug in ["parse-depth", "oversized", "empty-dom", "duplicate-id"] {
            assert!(
                a.iter().any(|p| p.expect == Expect::Quarantined(slug)),
                "corpus misses {slug}"
            );
        }
        assert!(a.iter().any(|p| p.expect == Expect::Survives));
    }

    #[test]
    fn truncated_pages_keep_their_headline_text() {
        for i in 0..4 {
            let html = truncated_page(3, i);
            assert!(html.contains(&format!("Item {i}")), "{html}");
            let doc = parse_html(&html);
            doc.check_consistency().expect("consistent arena");
        }
    }

    #[test]
    fn fault_plan_is_seed_deterministic_and_exact() {
        let p1 = FaultPlan::new(7, 40, 5);
        let p2 = FaultPlan::new(7, 40, 5);
        let p3 = FaultPlan::new(8, 40, 5);
        assert_eq!(
            p1.poisoned_indices().collect::<Vec<_>>(),
            p2.poisoned_indices().collect::<Vec<_>>()
        );
        assert_ne!(
            p1.poisoned_indices().collect::<Vec<_>>(),
            p3.poisoned_indices().collect::<Vec<_>>()
        );
        assert_eq!(p1.n_poisoned(), 5);
        assert!(p1.poisoned_indices().all(|i| i < 40));
        // Over-asking poisons everything.
        assert_eq!(FaultPlan::new(7, 3, 10).n_poisoned(), 3);
    }

    #[test]
    fn armed_pages_carry_the_marker_in_a_comment_the_parser_skips() {
        let plan = FaultPlan::new(11, 10, 3);
        let mut pages: Vec<(String, String)> = (0..10)
            .map(|i| (format!("p-{i}"), format!("<html><body><p>page {i}</p></body></html>")))
            .collect();
        let clean = pages.clone();
        plan.arm_pages(&mut pages);
        for (i, (id, html)) in pages.iter().enumerate() {
            assert_eq!(id, &clean[i].0);
            assert_eq!(html.contains(FAULT_PANIC_MARKER), plan.is_poisoned(i));
            assert_eq!(plan.arm(i, &clean[i].1), *html);
            // The marker hides in a comment: the parsed DOM text is
            // unchanged, so a clean (no fault-inject) build treats armed
            // and unarmed crawls identically.
            let doc = parse_html(html);
            doc.check_consistency().expect("consistent arena");
            assert!(!doc.deep_text(doc.root()).contains(FAULT_PANIC_MARKER));
        }
    }

    #[test]
    fn drifted_pages_are_deterministic() {
        assert_eq!(drifted_page(4), drifted_page(4));
        let (id, html) = drifted_page(4);
        assert_eq!(id, "redesign-4");
        parse_html(&html).check_consistency().expect("consistent arena");
    }
}
