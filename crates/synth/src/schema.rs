//! Ontology definitions shared between the worlds, the site renderers, and
//! the evaluation harness. Predicate *names* are the cross-crate contract:
//! gold facts, KB triples, and reported metrics all use these strings.

use ceres_kb::Ontology;

/// Predicate names for the movie vertical (both film-subject and
/// person-subject predicates, after Tables 5/6/9 of the paper).
pub mod movie {
    pub const DIRECTED_BY: &str = "film.wasDirectedBy.person";
    pub const WRITTEN_BY: &str = "film.wasWrittenBy.person";
    pub const HAS_CAST_MEMBER: &str = "film.hasCastMember.person";
    pub const HAS_GENRE: &str = "film.hasGenre.genre";
    pub const RELEASE_DATE: &str = "film.hasReleaseDate.date";
    pub const RELEASE_YEAR: &str = "film.releaseYear";
    pub const MPAA_RATING: &str = "film.mpaaRating";
    pub const COUNTRY: &str = "film.country";
    pub const MUSIC_BY: &str = "film.musicBy.person";
    pub const EPISODE_NUMBER: &str = "episode.episodeNumber";
    pub const SEASON_NUMBER: &str = "episode.seasonNumber";
    pub const EPISODE_SERIES: &str = "episode.series";
    pub const HAS_ALIAS: &str = "person.hasAlias.name";
    pub const PLACE_OF_BIRTH: &str = "person.placeOfBirth";
    pub const BIRTH_DATE: &str = "person.birthDate";
    pub const ACTED_IN: &str = "person.actedIn.film";
    pub const DIRECTOR_OF: &str = "person.directorOf.film";
    pub const WRITER_OF: &str = "person.writerOf.film";
    pub const PRODUCER_OF: &str = "person.producerOf.film";
    pub const CREATED_MUSIC_FOR: &str = "person.createdMusicFor.film";
}

/// Predicate names for the Book vertical (Table 1).
pub mod book {
    pub const AUTHOR: &str = "book.author";
    pub const ISBN13: &str = "book.isbn13";
    pub const PUBLISHER: &str = "book.publisher";
    pub const PUBLICATION_DATE: &str = "book.publicationDate";
}

/// Predicate names for the NBA Player vertical (Table 1).
pub mod nba {
    pub const TEAM: &str = "player.team";
    pub const HEIGHT: &str = "player.height";
    pub const WEIGHT: &str = "player.weight";
}

/// Predicate names for the University vertical (Table 1).
pub mod university {
    pub const PHONE: &str = "university.phone";
    pub const WEBSITE: &str = "university.website";
    pub const TYPE: &str = "university.type";
}

/// Entity type names.
pub mod types {
    pub const PERSON: &str = "Person";
    pub const FILM: &str = "Film";
    pub const TV_SERIES: &str = "TVSeries";
    pub const TV_EPISODE: &str = "TVEpisode";
    pub const BOOK: &str = "Book";
    pub const AUTHOR: &str = "Author";
    pub const PLAYER: &str = "NBAPlayer";
    pub const UNIVERSITY: &str = "University";
}

/// Build the movie-vertical ontology (Table 2's four entity types).
///
/// `film.mpaaRating` is registered but the seed-KB builder never adds
/// triples for it — reproducing Table 3's footnote ("The KB … did not
/// include Movie.MPAA-Rating because lacking seed data").
pub fn movie_ontology() -> Ontology {
    use movie::*;
    let mut o = Ontology::new();
    let person = o.register_type(types::PERSON);
    let film = o.register_type(types::FILM);
    let _series = o.register_type(types::TV_SERIES);
    let episode = o.register_type(types::TV_EPISODE);

    o.register_pred(DIRECTED_BY, film, true);
    o.register_pred(WRITTEN_BY, film, true);
    o.register_pred(HAS_CAST_MEMBER, film, true);
    o.register_pred(HAS_GENRE, film, true);
    o.register_pred(RELEASE_DATE, film, false);
    o.register_pred(RELEASE_YEAR, film, false);
    o.register_pred(MPAA_RATING, film, false);
    o.register_pred(COUNTRY, film, false);
    o.register_pred(MUSIC_BY, film, true);
    o.register_pred(EPISODE_NUMBER, episode, false);
    o.register_pred(SEASON_NUMBER, episode, false);
    o.register_pred(EPISODE_SERIES, episode, false);
    o.register_pred(HAS_ALIAS, person, true);
    o.register_pred(PLACE_OF_BIRTH, person, false);
    o.register_pred(BIRTH_DATE, person, false);
    o.register_pred(ACTED_IN, person, true);
    o.register_pred(DIRECTOR_OF, person, true);
    o.register_pred(WRITER_OF, person, true);
    o.register_pred(PRODUCER_OF, person, true);
    o.register_pred(CREATED_MUSIC_FOR, person, true);
    o
}

/// Build the Book-vertical ontology.
pub fn book_ontology() -> Ontology {
    let mut o = Ontology::new();
    let book = o.register_type(types::BOOK);
    let _author = o.register_type(types::AUTHOR);
    o.register_pred(book::AUTHOR, book, true);
    o.register_pred(book::ISBN13, book, false);
    o.register_pred(book::PUBLISHER, book, false);
    o.register_pred(book::PUBLICATION_DATE, book, false);
    o
}

/// Build the NBA-vertical ontology.
pub fn nba_ontology() -> Ontology {
    let mut o = Ontology::new();
    let player = o.register_type(types::PLAYER);
    o.register_pred(nba::TEAM, player, false);
    o.register_pred(nba::HEIGHT, player, false);
    o.register_pred(nba::WEIGHT, player, false);
    o
}

/// Build the University-vertical ontology.
pub fn university_ontology() -> Ontology {
    let mut o = Ontology::new();
    let uni = o.register_type(types::UNIVERSITY);
    o.register_pred(university::PHONE, uni, false);
    o.register_pred(university::WEBSITE, uni, false);
    o.register_pred(university::TYPE, uni, false);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movie_ontology_has_all_predicates() {
        let o = movie_ontology();
        assert_eq!(o.n_types(), 4);
        assert_eq!(o.n_preds(), 20);
        assert!(o.pred_by_name(movie::ACTED_IN).is_some());
        assert!(o.pred_by_name(movie::MPAA_RATING).is_some());
        let film = o.type_by_name(types::FILM).unwrap();
        assert_eq!(o.preds_of_type(film).len(), 9);
    }

    #[test]
    fn vertical_ontologies_build() {
        assert_eq!(book_ontology().n_preds(), 4);
        assert_eq!(nba_ontology().n_preds(), 3);
        assert_eq!(university_ontology().n_preds(), 3);
    }

    #[test]
    fn multi_valued_flags_match_semantics() {
        let o = movie_ontology();
        assert!(o.pred(o.pred_by_name(movie::HAS_CAST_MEMBER).unwrap()).multi_valued);
        assert!(!o.pred(o.pred_by_name(movie::RELEASE_YEAR).unwrap()).multi_valued);
    }
}
