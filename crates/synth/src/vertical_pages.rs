//! Detail-page renderers for the Book, NBA Player, and University verticals.

use crate::dataset::{Page, PageGold, PageKind};
use crate::html::GtHtml;
use crate::rng::prob;
use crate::schema::{book, nba, university};
use crate::small_worlds::{Book, Player, University};
use crate::style::SiteStyle;
use rand::rngs::SmallRng;
use rand::Rng;

fn page_chrome_open(b: &mut GtHtml, style: &SiteStyle, title: &str, site: &str) {
    b.open("html", &[]).open("head", &[]);
    b.field("title", &[], &format!("{title} - {site}"));
    b.close();
    b.open("body", &[]);
    let l = style.labels;
    b.open("div", &[("class", "nav")]);
    for label in [l.home, l.search, l.help, l.contact] {
        b.field("a", &[("href", "#")], label);
    }
    b.close();
    if prob_ad(style) {
        b.open("div", &[("class", "ad-slot")]);
        b.field("span", &[("class", "ad")], "Advertisement");
        b.close();
    }
}

// Site-level deterministic "ad" for the chrome (kept simple: the movie
// renderer handles per-page randomized ads; vertical pages get randomized
// ads inside their body sections instead).
fn prob_ad(_style: &SiteStyle) -> bool {
    false
}

fn page_chrome_close(b: &mut GtHtml, site: &str) {
    b.open("div", &[("class", "footer")]);
    b.field("span", &[], &format!("(c) {site}"));
    b.close();
    b.close(); // body
    b.close(); // html
}

fn kv_div_row(
    b: &mut GtHtml,
    label: &str,
    value: &str,
    gold: Option<(&str, &str)>,
    itemprop: Option<&str>,
) {
    b.open("div", &[("class", "row")]);
    b.field("span", &[("class", "label")], &format!("{label}:"));
    let attrs: Vec<(&str, &str)> = match itemprop {
        Some(ip) => vec![("class", "val"), ("itemprop", ip)],
        None => vec![("class", "val")],
    };
    match gold {
        Some((p, o)) => {
            b.gold_field("span", &attrs, value, p, o);
        }
        None => {
            b.field("span", &attrs, value);
        }
    }
    b.close();
}

/// Render a book detail page.
pub fn render_book_page(
    bk: &Book,
    idx: usize,
    style: &SiteStyle,
    site: &str,
    rng: &mut SmallRng,
) -> Page {
    let mut b = GtHtml::new();
    page_chrome_open(&mut b, style, &bk.title, site);
    if prob(rng, style.ad_prob) {
        b.open("div", &[("class", "ad-slot")]);
        b.field("span", &[("class", "ad")], "Advertisement");
        b.close();
    }
    b.name_field("h1", &[("class", "title")], &bk.title);
    b.open("div", &[("class", &style.class_for("info", 1))]);
    for a in &bk.authors {
        kv_div_row(&mut b, "Author", a, Some((book::AUTHOR, a)), ip(style, "author"));
    }
    if !prob(rng, style.missing_prob) {
        kv_div_row(
            &mut b,
            "ISBN-13",
            &bk.isbn13,
            Some((book::ISBN13, &bk.isbn13)),
            ip(style, "isbn"),
        );
    }
    if !prob(rng, style.missing_prob) {
        kv_div_row(
            &mut b,
            "Publisher",
            &bk.publisher,
            Some((book::PUBLISHER, &bk.publisher)),
            ip(style, "publisher"),
        );
    }
    if !prob(rng, style.missing_prob) {
        let rendered = style.date_style.render(&bk.pub_date);
        kv_div_row(
            &mut b,
            "Publication Date",
            &rendered,
            Some((book::PUBLICATION_DATE, &rendered)),
            ip(style, "datePublished"),
        );
    }
    b.close();
    // Price box — plausible non-KB noise.
    b.open("div", &[("class", "buy")]);
    b.field(
        "span",
        &[("class", "price")],
        &format!("${}.{:02}", rng.gen_range(5..60), rng.gen_range(0..99)),
    );
    b.field("a", &[("href", "#")], "Add to cart");
    b.close();
    page_chrome_close(&mut b, site);
    let (html, facts) = b.finish();
    Page {
        id: format!("book-{idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(bk.title.clone()),
            topic_type: Some("Book".to_string()),
            facts,
        },
    }
}

/// Render an NBA player detail page.
pub fn render_player_page(
    p: &Player,
    idx: usize,
    style: &SiteStyle,
    site: &str,
    rng: &mut SmallRng,
) -> Page {
    let mut b = GtHtml::new();
    page_chrome_open(&mut b, style, &p.name, site);
    b.name_field("h1", &[("class", "title")], &p.name);
    b.open("div", &[("class", &style.class_for("bio", 1))]);
    kv_div_row(&mut b, "Team", &p.team, Some((nba::TEAM, &p.team)), ip(style, "memberOf"));
    if !prob(rng, style.missing_prob) {
        kv_div_row(
            &mut b,
            "Height",
            &p.height,
            Some((nba::HEIGHT, &p.height)),
            ip(style, "height"),
        );
    }
    if !prob(rng, style.missing_prob) {
        kv_div_row(
            &mut b,
            "Weight",
            &p.weight,
            Some((nba::WEIGHT, &p.weight)),
            ip(style, "weight"),
        );
    }
    b.close();
    // A stats table (noise: lots of small numbers).
    b.open("table", &[("class", "stats")]);
    for season in 0..rng.gen_range(2..6) {
        b.open("tr", &[]);
        b.field("td", &[("class", "season")], &format!("{}-{}", 2010 + season, 2011 + season));
        b.field("td", &[("class", "ppg")], &format!("{:.1}", rng.gen_range(2.0..31.0)));
        b.field("td", &[("class", "rpg")], &format!("{:.1}", rng.gen_range(1.0..12.0)));
        b.close();
    }
    b.close();
    page_chrome_close(&mut b, site);
    let (html, facts) = b.finish();
    Page {
        id: format!("player-{idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(p.name.clone()),
            topic_type: Some("NBAPlayer".to_string()),
            facts,
        },
    }
}

/// Render a university detail page. When `search_box_trap` is set, every
/// page carries a search filter listing both type values ("Public",
/// "Private") — the annotation-error pathology §5.3 reports.
pub fn render_university_page(
    u: &University,
    idx: usize,
    style: &SiteStyle,
    site: &str,
    search_box_trap: bool,
    rng: &mut SmallRng,
) -> Page {
    let mut b = GtHtml::new();
    page_chrome_open(&mut b, style, &u.name, site);
    if search_box_trap {
        b.open("div", &[("class", "searchbox")]);
        b.field("span", &[("class", "filter-label")], "Filter by type:");
        b.field("span", &[("class", "filter-opt")], "Public");
        b.field("span", &[("class", "filter-opt")], "Private");
        b.close();
    }
    b.name_field("h1", &[("class", "title")], &u.name);
    b.open("div", &[("class", &style.class_for("contact", 1))]);
    if !prob(rng, style.missing_prob) {
        kv_div_row(
            &mut b,
            "Phone",
            &u.phone,
            Some((university::PHONE, &u.phone)),
            ip(style, "telephone"),
        );
    }
    kv_div_row(
        &mut b,
        "Website",
        &u.website,
        Some((university::WEBSITE, &u.website)),
        ip(style, "url"),
    );
    kv_div_row(&mut b, "Type", u.ty, Some((university::TYPE, u.ty)), ip(style, "category"));
    b.close();
    // Enrollment stats noise.
    b.open("div", &[("class", "stats")]);
    b.field("span", &[("class", "enrollment")], &format!("{} students", rng.gen_range(900..45000)));
    b.close();
    page_chrome_close(&mut b, site);
    let (html, facts) = b.finish();
    Page {
        id: format!("uni-{idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(u.name.clone()),
            topic_type: Some("University".to_string()),
            facts,
        },
    }
}

fn ip<'a>(style: &SiteStyle, name: &'a str) -> Option<&'a str> {
    if style.use_itemprop {
        Some(name)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use crate::small_worlds::{BookWorld, NbaWorld, UniversityWorld};
    use ceres_dom::parse_html;

    #[test]
    fn book_page_has_all_predicates_possible() {
        let w = BookWorld::generate(1, 10);
        let mut rng = derive_rng(1, "b");
        let mut style = SiteStyle::random(&mut rng, "en", "bk");
        style.missing_prob = 0.0;
        let page = render_book_page(&w.books[0], 0, &style, "books.test", &mut rng);
        let doc = parse_html(&page.html);
        doc.check_consistency().unwrap();
        for pred in [book::AUTHOR, book::ISBN13, book::PUBLISHER, book::PUBLICATION_DATE] {
            assert!(page.gold.facts.iter().any(|f| f.pred == pred), "missing {pred}");
        }
    }

    #[test]
    fn player_page_parses() {
        let w = NbaWorld::generate(2, 10);
        let mut rng = derive_rng(2, "n");
        let style = SiteStyle::random(&mut rng, "en", "nb");
        let page = render_player_page(&w.players[0], 0, &style, "hoops.test", &mut rng);
        parse_html(&page.html).check_consistency().unwrap();
        assert!(page.gold.facts.iter().any(|f| f.pred == nba::TEAM));
    }

    #[test]
    fn university_search_box_trap_renders_both_types() {
        let w = UniversityWorld::generate(3, 10);
        let mut rng = derive_rng(3, "u");
        let style = SiteStyle::random(&mut rng, "en", "un");
        let page =
            render_university_page(&w.universities[0], 0, &style, "colleges.test", true, &mut rng);
        assert!(page.html.contains("filter-opt"));
        // Both values present on the page regardless of the true type.
        assert!(page.html.contains(">Public<") && page.html.contains(">Private<"));
        // But only the true type is gold.
        let type_facts: Vec<_> =
            page.gold.facts.iter().filter(|f| f.pred == university::TYPE).collect();
        assert_eq!(type_facts.len(), 1);
    }
}
