//! Renderers for the movie vertical's page types: film detail pages, person
//! detail pages, TV-episode detail pages, and non-detail chart pages.
//!
//! Every noise source the paper identifies is reproduced here:
//!
//! * optional sections and ad blocks shift sibling indices between pages of
//!   the same template (Figure 2);
//! * recommendation rails repeat other entities' facts near the topic's
//!   (Example 3.2 / Figure 1's Crooklyn box);
//! * person pages carry "Known For" boxes and alias-shaped episode titles
//!   that trap the naive annotator (§5.4);
//! * site pathologies from §5.5.1 — role-ambiguous filmographies, genre
//!   indexes on every page, box-office date lists, shuffled section order —
//!   are switchable per site.

use crate::dataset::{Page, PageGold, PageKind};
use crate::html::GtHtml;
use crate::movie_world::{MovieWorld, GENRES};
use crate::rng::{prob, sample_distinct};
use crate::style::{KvStyle, ListStyle, SiteStyle};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-site failure modes from §5.5.1.
#[derive(Debug, Clone, Default)]
pub struct MoviePathology {
    /// Filmography lists all films without distinguishing the role
    /// (spicyonion.com, filmindonesia.or.id).
    pub role_ambiguity: bool,
    /// A list of *all* genres on every page (christianfilmdatabase.com,
    /// laborfilms.com).
    pub genre_index: bool,
    /// Long date/box-office tables instead of just release dates
    /// (the-numbers.com).
    pub box_office_lists: bool,
    /// Section order shuffles per page (colonialfilm.org.uk,
    /// bollywoodmdb.com).
    pub shuffle_sections: bool,
}

/// A rendered value with its optional `(pred, object)` gold assertion.
type GoldValue = (String, Option<(String, String)>);

/// One info row: a label plus one or more (value, gold) entries.
struct InfoRow {
    label: String,
    semantic: &'static str,
    values: Vec<GoldValue>,
}

/// Shared render context.
pub struct MovieRenderCtx<'a> {
    pub world: &'a MovieWorld,
    pub style: &'a SiteStyle,
    pub site_name: &'a str,
    pub pathology: &'a MoviePathology,
}

fn maybe_ad(b: &mut GtHtml, rng: &mut SmallRng, style: &SiteStyle) {
    if prob(rng, style.ad_prob) {
        b.open("div", &[("class", "ad-slot")]);
        b.field("span", &[("class", "ad")], "Advertisement");
        b.close();
    }
}

fn render_nav(b: &mut GtHtml, style: &SiteStyle) {
    let l = style.labels;
    b.open("div", &[("class", "nav")]);
    for label in [l.home, l.search, l.help, l.contact] {
        b.field("a", &[("href", "#")], label);
    }
    b.close();
}

fn render_footer(b: &mut GtHtml, style: &SiteStyle, site_name: &str) {
    b.open("div", &[("class", "footer")]);
    b.field("span", &[], &format!("(c) {site_name}"));
    b.field("a", &[("href", "#")], style.labels.contact);
    b.close();
}

fn open_wrappers(b: &mut GtHtml, style: &SiteStyle) -> usize {
    for i in 0..style.wrapper_depth {
        b.open("div", &[("class", &format!("wrap{i}"))]);
    }
    style.wrapper_depth
}

fn close_wrappers(b: &mut GtHtml, n: usize) {
    for _ in 0..n {
        b.close();
    }
}

fn render_info_section(b: &mut GtHtml, style: &SiteStyle, rows: &[InfoRow], pos: usize) {
    let cls = style.class_for("info", pos);
    match style.kv {
        KvStyle::Table => {
            b.open("table", &[("class", &cls)]);
            for row in rows {
                b.open("tr", &[("class", "row")]);
                b.field("td", &[("class", "label")], &format!("{}:", row.label));
                b.open("td", &[("class", "value")]);
                render_values(b, style, row);
                b.close();
                b.close();
            }
            b.close();
        }
        KvStyle::Divs => {
            b.open("div", &[("class", &cls)]);
            for row in rows {
                b.open("div", &[("class", "row")]);
                b.field("span", &[("class", "label")], &format!("{}:", row.label));
                render_values(b, style, row);
                b.close();
            }
            b.close();
        }
        KvStyle::DefinitionList => {
            b.open("dl", &[("class", &cls)]);
            for row in rows {
                b.field("dt", &[("class", "label")], &format!("{}:", row.label));
                b.open("dd", &[("class", "value")]);
                render_values(b, style, row);
                b.close();
            }
            b.close();
        }
    }
}

fn render_values(b: &mut GtHtml, style: &SiteStyle, row: &InfoRow) {
    for (text, gold) in &row.values {
        let itemprop_attrs: Vec<(&str, &str)> = if style.use_itemprop {
            vec![("class", "val"), ("itemprop", row.semantic)]
        } else {
            vec![("class", "val")]
        };
        match gold {
            Some((pred, obj)) => {
                b.gold_field("span", &itemprop_attrs, text, pred, obj);
            }
            None => {
                b.field("span", &itemprop_attrs, text);
            }
        }
    }
}

fn render_list_section(
    b: &mut GtHtml,
    style: &SiteStyle,
    header: &str,
    semantic: &'static str,
    items: &[GoldValue],
    pos: usize,
) {
    let cls = style.class_for(semantic, pos);
    b.open("div", &[("class", &cls)]);
    b.field("h2", &[("class", "hdr")], header);
    let (list_tag, item_tag): (&'static str, &'static str) = match style.list {
        ListStyle::Ul => ("ul", "li"),
        ListStyle::Divs => ("div", "div"),
    };
    b.open(list_tag, &[("class", "items")]);
    for (text, gold) in items {
        let attrs: Vec<(&str, &str)> = if style.use_itemprop {
            vec![("class", "item"), ("itemprop", semantic)]
        } else {
            vec![("class", "item")]
        };
        match gold {
            Some((pred, obj)) => {
                b.gold_field(item_tag, &attrs, text, pred, obj);
            }
            None => {
                b.field(item_tag, &attrs, text);
            }
        }
    }
    b.close();
    b.close();
}

fn gold(pred: &str, obj: &str) -> Option<(String, String)> {
    Some((pred.to_string(), obj.to_string()))
}

/// Render a film detail page.
pub fn render_film_page(ctx: &MovieRenderCtx<'_>, film_idx: usize, rng: &mut SmallRng) -> Page {
    use crate::schema::movie as m;
    let world = ctx.world;
    let style = ctx.style;
    let film = &world.films[film_idx];
    let l = style.labels;

    let mut b = GtHtml::new();
    b.open("html", &[]).open("head", &[]);
    b.field("title", &[], &format!("{} - {}", film.title, ctx.site_name));
    b.close(); // head
    b.open("body", &[]);
    render_nav(&mut b, style);
    maybe_ad(&mut b, rng, style);
    let wrap = open_wrappers(&mut b, style);

    b.name_field("h1", &[("class", "title")], &film.title);
    maybe_ad(&mut b, rng, style);

    // --- Info rows ---
    let mut rows: Vec<InfoRow> = Vec::new();
    rows.push(InfoRow {
        label: l.director.to_string(),
        semantic: "director",
        values: film
            .directors
            .iter()
            .map(|&d| {
                let name = world.people[d].name.clone();
                let g = gold(m::DIRECTED_BY, &name);
                (name, g)
            })
            .collect(),
    });
    if !prob(rng, style.missing_prob) {
        rows.push(InfoRow {
            label: l.writer.to_string(),
            semantic: "writer",
            values: film
                .writers
                .iter()
                .map(|&w| {
                    let name = world.people[w].name.clone();
                    let g = gold(m::WRITTEN_BY, &name);
                    (name, g)
                })
                .collect(),
        });
    }
    rows.push(InfoRow {
        label: l.genre.to_string(),
        semantic: "genre",
        values: film
            .genres
            .iter()
            .map(|&g| {
                let s = GENRES[g].to_string();
                let gd = gold(m::HAS_GENRE, &s);
                (s, gd)
            })
            .collect(),
    });
    if !prob(rng, style.missing_prob) {
        let rendered = style.date_style.render(&film.release);
        rows.push(InfoRow {
            label: l.release_date.to_string(),
            semantic: "datePublished",
            values: vec![(rendered.clone(), gold(m::RELEASE_DATE, &rendered))],
        });
    }
    rows.push(InfoRow {
        label: l.year.to_string(),
        semantic: "year",
        values: vec![(film.year.to_string(), gold(m::RELEASE_YEAR, &film.year.to_string()))],
    });
    if !prob(rng, style.missing_prob) {
        let c = crate::movie_world::COUNTRIES[film.country].to_string();
        rows.push(InfoRow {
            label: l.country.to_string(),
            semantic: "country",
            values: vec![(c.clone(), gold(m::COUNTRY, &c))],
        });
    }
    if !prob(rng, style.missing_prob) {
        rows.push(InfoRow {
            label: l.rating.to_string(),
            semantic: "contentRating",
            values: vec![(film.rating.to_string(), gold(m::MPAA_RATING, film.rating))],
        });
    }
    if let Some(cm) = film.composer {
        if !prob(rng, style.missing_prob) {
            let name = world.people[cm].name.clone();
            rows.push(InfoRow {
                label: l.filmography_composer.to_string(),
                semantic: "musicBy",
                values: vec![(name.clone(), gold(m::MUSIC_BY, &name))],
            });
        }
    }
    if ctx.pathology.shuffle_sections {
        rows.shuffle(rng);
    }
    render_info_section(&mut b, style, &rows, 1);

    // --- Cast list ---
    let cast_items: Vec<GoldValue> = film
        .cast
        .iter()
        .map(|c| {
            let name = world.people[c.person].name.clone();
            let g = gold(m::HAS_CAST_MEMBER, &name);
            (name, g)
        })
        .collect();
    maybe_ad(&mut b, rng, style);
    render_list_section(&mut b, style, l.cast, "cast", &cast_items, 2);

    close_wrappers(&mut b, wrap);

    // --- Pathology: genre index on every page ---
    if ctx.pathology.genre_index {
        let items: Vec<GoldValue> = GENRES.iter().map(|g| (g.to_string(), None)).collect();
        render_list_section(&mut b, style, l.genre, "genre-index", &items, 3);
    }

    // --- Pathology: daily box-office table ---
    if ctx.pathology.box_office_lists {
        b.open("div", &[("class", "boxoffice")]);
        b.field("h2", &[], "Box Office");
        b.open("table", &[("class", "chart")]);
        let mut d = film.release;
        for _ in 0..rng.gen_range(5..15) {
            b.open("tr", &[]);
            b.field("td", &[("class", "date")], &style.date_style.render(&d));
            b.field("td", &[("class", "gross")], &format!("${}", rng.gen_range(10_000..5_000_000)));
            b.close();
            d.day = (d.day % 27) + 1;
        }
        b.close();
        b.close();
    }

    // --- Recommendation rail: other films with *their* facts ---
    b.open("div", &[("class", "recs")]);
    b.field("h3", &[], l.recommendations);
    let n_recs = rng.gen_range(2..=4);
    for ri in sample_distinct(rng, world.films.len(), n_recs) {
        if ri == film_idx {
            continue;
        }
        let other = &world.films[ri];
        b.open("div", &[("class", "rec")]);
        b.field("span", &[("class", "rec-title")], &other.title);
        for &g in &other.genres {
            b.field("span", &[("class", "rec-genre")], GENRES[g]);
        }
        if let Some(&d) = other.directors.first() {
            b.field("span", &[("class", "rec-person")], &world.people[d].name);
        }
        b.close();
    }
    b.close();

    render_footer(&mut b, style, ctx.site_name);
    b.close(); // body
    b.close(); // html
    let (html, facts) = b.finish();
    Page {
        id: format!("film-{film_idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(film.title.clone()),
            topic_type: Some("Film".to_string()),
            facts,
        },
    }
}

/// Render a person detail page (the complex IMDb-like template).
pub fn render_person_page(ctx: &MovieRenderCtx<'_>, person_idx: usize, rng: &mut SmallRng) -> Page {
    use crate::schema::movie as m;
    let world = ctx.world;
    let style = ctx.style;
    let person = &world.people[person_idx];
    let l = style.labels;

    let mut b = GtHtml::new();
    b.open("html", &[]).open("head", &[]);
    b.field("title", &[], &format!("{} - {}", person.name, ctx.site_name));
    b.close();
    b.open("body", &[]);
    render_nav(&mut b, style);
    maybe_ad(&mut b, rng, style);
    let wrap = open_wrappers(&mut b, style);

    b.name_field("h1", &[("class", "title")], &person.name);

    // --- Bio info rows ---
    let mut rows: Vec<InfoRow> = Vec::new();
    if let Some(alias) = &person.alias {
        rows.push(InfoRow {
            label: l.also_known_as.to_string(),
            semantic: "alternateName",
            values: vec![(alias.clone(), gold(m::HAS_ALIAS, alias))],
        });
    }
    if let Some(bd) = &person.birth {
        if !prob(rng, style.missing_prob) {
            let rendered = style.date_style.render(bd);
            rows.push(InfoRow {
                label: l.born.to_string(),
                semantic: "birthDate",
                values: vec![(rendered.clone(), gold(m::BIRTH_DATE, &rendered))],
            });
        }
    }
    if let Some(bp) = &person.birthplace {
        if !prob(rng, style.missing_prob) {
            rows.push(InfoRow {
                label: l.birthplace.to_string(),
                semantic: "birthPlace",
                values: vec![(bp.clone(), gold(m::PLACE_OF_BIRTH, bp))],
            });
        }
    }
    render_info_section(&mut b, style, &rows, 1);

    // --- "Known For": the four most famous credits, not a predicate ---
    let mut known: Vec<usize> =
        person.acted_in.iter().map(|&(f, _, _)| f).chain(person.directed.iter().copied()).collect();
    known.sort_unstable();
    known.dedup();
    known.truncate(4);
    if !known.is_empty() {
        let items: Vec<GoldValue> =
            known.iter().map(|&f| (world.films[f].title.clone(), None)).collect();
        render_list_section(&mut b, style, l.known_for, "known-for", &items, 2);
    }

    maybe_ad(&mut b, rng, style);

    // --- Filmography ---
    const FILMOGRAPHY_CAP: usize = 150;
    if ctx.pathology.role_ambiguity {
        // The §5.5.1 pathology: one merged list, role undistinguished. Gold
        // keeps the true role, so extractors that guess a single predicate
        // for the section are wrong on part of it.
        let mut merged: Vec<(String, Option<(String, String)>)> = Vec::new();
        for &(f, _, _) in person.acted_in.iter().take(FILMOGRAPHY_CAP) {
            let t = world.films[f].title.clone();
            let g = gold(m::ACTED_IN, &t);
            merged.push((t, g));
        }
        for &f in person.directed.iter().take(20) {
            let t = world.films[f].title.clone();
            let g = gold(m::DIRECTOR_OF, &t);
            merged.push((t, g));
        }
        for &f in person.wrote.iter().take(20) {
            let t = world.films[f].title.clone();
            let g = gold(m::WRITER_OF, &t);
            merged.push((t, g));
        }
        merged.shuffle(rng);
        render_list_section(&mut b, style, "Filmography", "filmography", &merged, 3);
    } else {
        let sections: [(&str, &'static str, Vec<GoldValue>); 5] = [
            (
                l.filmography_actor,
                "filmo-actor",
                person
                    .acted_in
                    .iter()
                    .take(FILMOGRAPHY_CAP)
                    .map(|&(f, _, _)| {
                        let t = world.films[f].title.clone();
                        let g = gold(m::ACTED_IN, &t);
                        (t, g)
                    })
                    .collect(),
            ),
            (
                l.filmography_director,
                "filmo-director",
                person
                    .directed
                    .iter()
                    .take(FILMOGRAPHY_CAP)
                    .map(|&f| {
                        let t = world.films[f].title.clone();
                        let g = gold(m::DIRECTOR_OF, &t);
                        (t, g)
                    })
                    .collect(),
            ),
            (
                l.filmography_writer,
                "filmo-writer",
                person
                    .wrote
                    .iter()
                    .take(FILMOGRAPHY_CAP)
                    .map(|&f| {
                        let t = world.films[f].title.clone();
                        let g = gold(m::WRITER_OF, &t);
                        (t, g)
                    })
                    .collect(),
            ),
            (
                l.filmography_producer,
                "filmo-producer",
                person
                    .produced
                    .iter()
                    .take(FILMOGRAPHY_CAP)
                    .map(|&f| {
                        let t = world.films[f].title.clone();
                        let g = gold(m::PRODUCER_OF, &t);
                        (t, g)
                    })
                    .collect(),
            ),
            (
                l.filmography_composer,
                "filmo-music",
                person
                    .composed
                    .iter()
                    .take(FILMOGRAPHY_CAP)
                    .map(|&f| {
                        let t = world.films[f].title.clone();
                        let g = gold(m::CREATED_MUSIC_FOR, &t);
                        (t, g)
                    })
                    .collect(),
            ),
        ];
        let mut pos = 3;
        for (header, semantic, items) in sections {
            if items.is_empty() {
                continue;
            }
            // Occasional ads between filmography sections shift indices —
            // this is exactly the Winfrey/McKellen divergence of Figure 2.
            maybe_ad(&mut b, rng, style);
            render_list_section(&mut b, style, header, semantic, &items, pos);
            pos += 1;
        }
    }

    // --- Alias traps: TV appearances titled with the person's own alias ---
    if let Some(alias) = &person.alias {
        let mut items: Vec<(String, Option<(String, String)>)> = Vec::new();
        items.push((alias.clone(), None)); // an episode literally titled with the alias
        items.push((format!("An Evening with {}", person.name), None));
        if prob(rng, 0.5) {
            items.push((alias.clone(), None)); // a second talk-show credit
        }
        render_list_section(&mut b, style, "TV Appearances", "tv-appearances", &items, 8);
        // Character credit trap: plays a character named like their alias.
        b.open("div", &[("class", "characters")]);
        b.field("span", &[("class", "char-label")], "Characters:");
        b.field("span", &[("class", "char")], alias);
        b.close();
    }

    close_wrappers(&mut b, wrap);

    // --- Recommendation rail: other people ---
    b.open("div", &[("class", "recs")]);
    b.field("h3", &[], l.recommendations);
    for ri in sample_distinct(rng, world.people.len(), 3) {
        if ri != person_idx {
            b.field("span", &[("class", "rec-person")], &world.people[ri].name);
        }
    }
    b.close();

    render_footer(&mut b, style, ctx.site_name);
    b.close().close();
    let (html, facts) = b.finish();
    Page {
        id: format!("person-{person_idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(person.name.clone()),
            topic_type: Some("Person".to_string()),
            facts,
        },
    }
}

/// Render a TV-episode detail page.
pub fn render_episode_page(ctx: &MovieRenderCtx<'_>, ep_idx: usize, rng: &mut SmallRng) -> Page {
    use crate::schema::movie as m;
    let world = ctx.world;
    let style = ctx.style;
    let ep = &world.episodes[ep_idx];
    let l = style.labels;

    let mut b = GtHtml::new();
    b.open("html", &[]).open("head", &[]);
    b.field("title", &[], &format!("{} - {}", ep.title, ctx.site_name));
    b.close();
    b.open("body", &[]);
    render_nav(&mut b, style);
    maybe_ad(&mut b, rng, style);
    let wrap = open_wrappers(&mut b, style);

    b.name_field("h1", &[("class", "title")], &ep.title);

    let series_title = world.series[ep.series].title.clone();
    let season = format!("Season {}", ep.season);
    let number = format!("Episode {}", ep.number);
    let rows = vec![
        InfoRow {
            label: l.series.to_string(),
            semantic: "partOfSeries",
            values: vec![(series_title.clone(), gold(m::EPISODE_SERIES, &series_title))],
        },
        InfoRow {
            label: l.season.to_string(),
            semantic: "seasonNumber",
            values: vec![(season.clone(), gold(m::SEASON_NUMBER, &season))],
        },
        InfoRow {
            label: l.episode.to_string(),
            semantic: "episodeNumber",
            values: vec![(number.clone(), gold(m::EPISODE_NUMBER, &number))],
        },
    ];
    render_info_section(&mut b, style, &rows, 1);

    let cast_items: Vec<GoldValue> = ep
        .cast
        .iter()
        .map(|&p| {
            let name = world.people[p].name.clone();
            let g = gold(m::HAS_CAST_MEMBER, &name);
            (name, g)
        })
        .collect();
    render_list_section(&mut b, style, l.cast, "cast", &cast_items, 2);

    close_wrappers(&mut b, wrap);
    render_footer(&mut b, style, ctx.site_name);
    b.close().close();
    let (html, facts) = b.finish();
    let _ = rng;
    Page {
        id: format!("episode-{ep_idx}"),
        html,
        gold: PageGold {
            kind: PageKind::Detail,
            topic: Some(ep.title.clone()),
            topic_type: Some("TVEpisode".to_string()),
            facts,
        },
    }
}

/// Render a non-detail box-office chart page: dozens of film titles, no
/// topic entity (boxofficemojo.com's entire CommonCrawl presence).
pub fn render_chart_page(ctx: &MovieRenderCtx<'_>, day: usize, rng: &mut SmallRng) -> Page {
    let world = ctx.world;
    let style = ctx.style;
    let mut b = GtHtml::new();
    b.open("html", &[]).open("head", &[]);
    b.field("title", &[], &format!("Daily Chart #{day} - {}", ctx.site_name));
    b.close();
    b.open("body", &[]);
    render_nav(&mut b, style);
    b.field("h1", &[("class", "chart-title")], &format!("Daily Box Office — Day {day}"));
    b.open("table", &[("class", "chart")]);
    let n = rng.gen_range(15..40);
    for (rank, fi) in sample_distinct(rng, world.films.len(), n).into_iter().enumerate() {
        b.open("tr", &[]);
        b.field("td", &[("class", "rank")], &(rank + 1).to_string());
        b.field("td", &[("class", "film")], &world.films[fi].title);
        b.field("td", &[("class", "gross")], &format!("${}", rng.gen_range(1_000..9_000_000)));
        b.close();
    }
    b.close();
    render_footer(&mut b, style, ctx.site_name);
    b.close().close();
    let (html, _) = b.finish();
    Page { id: format!("chart-{day}"), html, gold: PageGold::non_detail() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie_world::{MovieWorld, MovieWorldConfig};
    use crate::rng::derive_rng;
    use crate::style::SiteStyle;
    use ceres_dom::parse_html;

    fn world() -> MovieWorld {
        MovieWorld::generate(MovieWorldConfig {
            seed: 3,
            n_people: 200,
            n_films: 80,
            n_series: 4,
            title_collision_share: 0.02,
        })
    }

    fn ctx<'a>(
        world: &'a MovieWorld,
        style: &'a SiteStyle,
        pathology: &'a MoviePathology,
    ) -> MovieRenderCtx<'a> {
        MovieRenderCtx { world, style, site_name: "test-site", pathology }
    }

    #[test]
    fn film_page_parses_and_gold_ids_resolve() {
        let w = world();
        let mut rng = derive_rng(1, "t");
        let style = SiteStyle::random(&mut rng, "en", "t");
        let path = MoviePathology::default();
        let page = render_film_page(&ctx(&w, &style, &path), 0, &mut rng);
        let doc = parse_html(&page.html);
        doc.check_consistency().unwrap();

        // Every gold fact's gt id exists on the page.
        let gt_ids: std::collections::HashSet<String> = doc
            .text_fields()
            .iter()
            .filter_map(|&f| doc.node(f).attr("data-gt").map(str::to_string))
            .collect();
        for fact in &page.gold.facts {
            assert!(gt_ids.contains(&fact.gt_id.to_string()), "missing gt {}", fact.gt_id);
        }
        // A name fact exists and matches the topic.
        let name = page.gold.facts.iter().find(|f| f.pred == "name").unwrap();
        assert_eq!(Some(name.object.as_str()), page.gold.topic.as_deref());
    }

    #[test]
    fn film_page_has_cast_gold() {
        let w = world();
        let mut rng = derive_rng(2, "t");
        let style = SiteStyle::random(&mut rng, "en", "t");
        let path = MoviePathology::default();
        let page = render_film_page(&ctx(&w, &style, &path), 1, &mut rng);
        use crate::schema::movie as m;
        let cast_facts = page.gold.facts.iter().filter(|f| f.pred == m::HAS_CAST_MEMBER).count();
        assert_eq!(cast_facts, w.films[1].cast.len());
    }

    #[test]
    fn person_page_known_for_is_not_gold() {
        let w = world();
        let mut rng = derive_rng(3, "t");
        let mut style = SiteStyle::random(&mut rng, "en", "t");
        // The test locates the Known-For box by class name.
        style.semantic_classes = true;
        let path = MoviePathology::default();
        // Person 0 is famous and has credits.
        let page = render_person_page(&ctx(&w, &style, &path), 0, &mut rng);
        let doc = parse_html(&page.html);
        // Find Known-For items: they carry gt ids but no gold facts.
        let mut found_known_for = false;
        for f in doc.text_fields() {
            let classes = doc.node(f).attr("class").unwrap_or("");
            // item inside known-for section: parent's class contains known-for
            if let Some(parent) = doc.node(f).parent {
                let pcls: String = doc
                    .ancestors(f)
                    .filter_map(|a| doc.node(a).attr("class"))
                    .collect::<Vec<_>>()
                    .join(" ");
                if pcls.contains("known-for") && classes.contains("item") {
                    found_known_for = true;
                    let gt: u32 = doc.node(f).attr("data-gt").unwrap().parse().unwrap();
                    assert_eq!(page.gold.pred_of(gt), None, "known-for must not be gold");
                }
                let _ = parent;
            }
        }
        assert!(found_known_for, "person 0 should have a Known For box");
    }

    #[test]
    fn role_ambiguity_merges_filmography() {
        let w = world();
        let mut rng = derive_rng(4, "t");
        let mut style = SiteStyle::random(&mut rng, "en", "t");
        // The merged section is only recognizable by class name when the
        // site emits semantic classes.
        style.semantic_classes = true;
        let path = MoviePathology { role_ambiguity: true, ..Default::default() };
        let page = render_person_page(&ctx(&w, &style, &path), 0, &mut rng);
        assert!(page.html.contains("filmography"));
        assert!(!page.html.contains("filmo-actor"));
    }

    #[test]
    fn genre_index_pathology_lists_all_genres() {
        let w = world();
        let mut rng = derive_rng(5, "t");
        let style = SiteStyle::random(&mut rng, "en", "t");
        let path = MoviePathology { genre_index: true, ..Default::default() };
        let page = render_film_page(&ctx(&w, &style, &path), 2, &mut rng);
        for g in GENRES {
            assert!(page.html.contains(g), "genre index should list {g}");
        }
    }

    #[test]
    fn chart_page_is_non_detail() {
        let w = world();
        let mut rng = derive_rng(6, "t");
        let style = SiteStyle::random(&mut rng, "en", "t");
        let path = MoviePathology::default();
        let page = render_chart_page(&ctx(&w, &style, &path), 1, &mut rng);
        assert_eq!(page.gold.kind, PageKind::NonDetail);
        assert!(page.gold.facts.is_empty());
        let doc = parse_html(&page.html);
        assert!(doc.text_fields().len() > 30, "charts are dense");
    }

    #[test]
    fn episode_page_has_series_facts() {
        let w = world();
        let mut rng = derive_rng(7, "t");
        let style = SiteStyle::random(&mut rng, "en", "t");
        let path = MoviePathology::default();
        let page = render_episode_page(&ctx(&w, &style, &path), 0, &mut rng);
        use crate::schema::movie as m;
        assert!(page.gold.facts.iter().any(|f| f.pred == m::EPISODE_SERIES));
        assert!(page.gold.facts.iter().any(|f| f.pred == m::SEASON_NUMBER));
    }

    #[test]
    fn ads_shift_sibling_indices_across_pages() {
        // With a high ad probability, the same template yields different
        // XPaths for the title across renders — the Figure 2 phenomenon.
        let w = world();
        let mut rng = derive_rng(8, "t");
        let mut style = SiteStyle::random(&mut rng, "en", "t");
        style.ad_prob = 0.9;
        // Index variation needs the title inside wrapper divs: an ad-slot
        // <div> before the wrapper shifts the wrapper's sibling index,
        // while a bare body-level <h1> keeps /body/h1[1] regardless.
        style.wrapper_depth = 2;
        let path = MoviePathology::default();
        let mut paths = std::collections::HashSet::new();
        for i in 0..6 {
            let page = render_film_page(&ctx(&w, &style, &path), i, &mut rng);
            let doc = parse_html(&page.html);
            for f in doc.text_fields() {
                if doc.node(f).attr("class") == Some("title") {
                    paths.insert(doc.xpath(f).to_string());
                }
            }
        }
        assert!(paths.len() > 1, "expected index variation, got {paths:?}");
    }

    #[test]
    fn different_styles_produce_different_markup() {
        let w = world();
        let mut rng1 = derive_rng(10, "s1");
        let mut rng2 = derive_rng(11, "s2");
        let s1 = SiteStyle::random(&mut rng1, "en", "a");
        let s2 = SiteStyle::random(&mut rng2, "cs", "b");
        let path = MoviePathology::default();
        let p1 = render_film_page(&ctx(&w, &s1, &path), 0, &mut rng1);
        let p2 = render_film_page(&ctx(&w, &s2, &path), 0, &mut rng2);
        assert_ne!(p1.html, p2.html);
        // Same facts asserted regardless of style (modulo missing-field
        // noise): both must contain the director gold.
        use crate::schema::movie as m;
        assert!(p1.gold.facts.iter().any(|f| f.pred == m::DIRECTED_BY));
        assert!(p2.gold.facts.iter().any(|f| f.pred == m::DIRECTED_BY));
    }
}
