//! SWDE-like benchmark generator: the four verticals of Table 1 (Movie,
//! Book, NBA Player, University), 10 sites each, page counts scaled from the
//! paper's.
//!
//! Seed-KB construction follows §5.1.1: the Movie vertical uses the (biased)
//! world-derived KB; the other three verticals build their KB from the
//! ground truth of the alphabetically-first site (abebooks / espn /
//! collegeboard analogues — here simply site index 0).

use crate::dataset::Site;
use crate::movie_pages::{render_film_page, MoviePathology, MovieRenderCtx};
use crate::movie_world::{KbBias, MovieWorld, MovieWorldConfig};
use crate::rng::{derive_rng, zipf_distinct};
use crate::schema::{book, movie, nba, university};
use crate::small_worlds::{catalog_with_overlap, BookWorld, NbaWorld, UniversityWorld};
use crate::style::SiteStyle;
use crate::vertical_pages::{render_book_page, render_player_page, render_university_page};
use ceres_kb::Kb;

/// Scaling configuration for SWDE generation.
#[derive(Debug, Clone, Copy)]
pub struct SwdeConfig {
    pub seed: u64,
    /// Multiplier on the paper's page counts (1.0 = full SWDE size).
    pub scale: f64,
}

impl Default for SwdeConfig {
    fn default() -> Self {
        SwdeConfig { seed: 42, scale: 0.1 }
    }
}

impl SwdeConfig {
    fn pages(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(12)
    }
}

/// A generated vertical: sites, seed KB, and the attribute list evaluated in
/// Tables 3/4 (display name, predicate name — `"name"` denotes the topic).
pub struct SwdeVertical {
    pub name: &'static str,
    pub sites: Vec<Site>,
    pub kb: Kb,
    pub attributes: Vec<(&'static str, &'static str)>,
}

/// Paper page counts per site (Table 1 totals / 10 sites).
const MOVIE_PAGES_PER_SITE: usize = 2000;
const BOOK_PAGES_PER_SITE: usize = 2000;
const NBA_PAGES_PER_SITE: usize = 440;
const UNIVERSITY_PAGES_PER_SITE: usize = 1670;

const MOVIE_SITE_NAMES: [&str; 10] = [
    "allmovie",
    "amctv",
    "hollywood",
    "iheartmovies",
    "imdb-swde",
    "metacritic",
    "cinestream",
    "reelviews",
    "moviefone",
    "yidio",
];
const BOOK_SITE_NAMES: [&str; 10] = [
    "acebooks",
    "amazon-books",
    "bookdepository",
    "booksamillion",
    "borders",
    "buybooks",
    "christianbook",
    "deepdiscount",
    "waterstones",
    "wordery",
];
const NBA_SITE_NAMES: [&str; 10] = [
    "espn",
    "fanhouse",
    "foxsports",
    "msnca",
    "nba",
    "si",
    "slam",
    "usatoday",
    "wiki-nba",
    "yahoo-nba",
];
const UNIVERSITY_SITE_NAMES: [&str; 10] = [
    "collegeboard",
    "collegenavigator",
    "collegeprowler",
    "collegetoolkit",
    "ecampustours",
    "embark",
    "matchcollege",
    "princetonreview",
    "studentaid",
    "usnews",
];

/// Generate the Movie vertical (world-derived seed KB, Table 2 bias).
pub fn movie_vertical(cfg: SwdeConfig) -> (SwdeVertical, MovieWorld) {
    let pages_per_site = cfg.pages(MOVIE_PAGES_PER_SITE);
    // Each site samples Zipf-style from a shared film pool ~2.5× a site's
    // page count so heads overlap across sites.
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: cfg.seed ^ 0x5005,
        n_people: (pages_per_site * 6).max(400),
        n_films: (pages_per_site * 5 / 2).max(150),
        n_series: 10,
        title_collision_share: 0.02,
    });
    let kb = world.build_kb(&KbBias::default()).kb;

    let mut sites = Vec::with_capacity(10);
    for name in MOVIE_SITE_NAMES {
        let mut rng = derive_rng(cfg.seed, &format!("swde-movie-{name}"));
        let style = SiteStyle::random(&mut rng, "en", &name[..2.min(name.len())]);
        let pathology = MoviePathology::default();
        let ctx =
            MovieRenderCtx { world: &world, style: &style, site_name: name, pathology: &pathology };
        let picks = zipf_distinct(&mut rng, world.films.len(), pages_per_site, 1.15);
        let pages = picks.into_iter().map(|fi| render_film_page(&ctx, fi, &mut rng)).collect();
        sites.push(Site { name: name.to_string(), focus: "Movies".to_string(), pages });
    }

    (
        SwdeVertical {
            name: "Movie",
            sites,
            kb,
            attributes: vec![
                ("Title", "name"),
                ("Director", movie::DIRECTED_BY),
                ("Genre", movie::HAS_GENRE),
                ("MPAA Rating", movie::MPAA_RATING),
            ],
        },
        world,
    )
}

/// Per-site KB-overlap counts for the Book vertical (drives Figure 4: some
/// sites share almost no ISBNs with the seed KB).
fn book_overlaps(catalog_size: usize) -> [usize; 10] {
    let c = catalog_size as f64;
    [
        catalog_size,        // site 0 *is* the KB
        (c * 0.01) as usize, // near-zero overlap sites
        (c * 0.015) as usize,
        (c * 0.025) as usize,
        (c * 0.04) as usize,
        (c * 0.08) as usize,
        (c * 0.15) as usize,
        (c * 0.30) as usize,
        (c * 0.55) as usize,
        (c * 0.80) as usize,
    ]
}

/// Generate the Book vertical (seed KB = site 0's ground truth).
pub fn book_vertical(cfg: SwdeConfig) -> (SwdeVertical, BookWorld) {
    let pages_per_site = cfg.pages(BOOK_PAGES_PER_SITE);
    let universe = pages_per_site * 12;
    let world = BookWorld::generate(cfg.seed ^ 0xB00C, universe);

    let mut rng = derive_rng(cfg.seed, "swde-book-catalogs");
    let base: Vec<usize> = crate::rng::sample_distinct(&mut rng, universe, pages_per_site);
    let kb = world.build_kb(&base);

    let overlaps = book_overlaps(pages_per_site);
    let mut sites = Vec::with_capacity(10);
    for (si, name) in BOOK_SITE_NAMES.iter().enumerate() {
        let mut srng = derive_rng(cfg.seed, &format!("swde-book-{name}"));
        let style = SiteStyle::random(&mut srng, "en", &name[..2]);
        let catalog = if si == 0 {
            base.clone()
        } else {
            catalog_with_overlap(&mut srng, universe, &base, pages_per_site, overlaps[si])
        };
        let pages = catalog
            .iter()
            .map(|&bi| render_book_page(&world.books[bi], bi, &style, name, &mut srng))
            .collect();
        sites.push(Site { name: name.to_string(), focus: "Books".to_string(), pages });
    }

    (
        SwdeVertical {
            name: "Book",
            sites,
            kb,
            attributes: vec![
                ("Title", "name"),
                ("Author", book::AUTHOR),
                ("Publisher", book::PUBLISHER),
                ("Publication Date", book::PUBLICATION_DATE),
                ("ISBN-13", book::ISBN13),
            ],
        },
        world,
    )
}

/// Generate the NBA Player vertical (high cross-site overlap: one league).
pub fn nba_vertical(cfg: SwdeConfig) -> (SwdeVertical, NbaWorld) {
    let pages_per_site = cfg.pages(NBA_PAGES_PER_SITE);
    let universe = pages_per_site * 3 / 2;
    let world = NbaWorld::generate(cfg.seed ^ 0x0BA5, universe);

    let mut rng = derive_rng(cfg.seed, "swde-nba-rosters");
    let base: Vec<usize> = crate::rng::sample_distinct(&mut rng, universe, pages_per_site);
    let kb = world.build_kb(&base);

    let mut sites = Vec::with_capacity(10);
    for (si, name) in NBA_SITE_NAMES.iter().enumerate() {
        let mut srng = derive_rng(cfg.seed, &format!("swde-nba-{name}"));
        let style = SiteStyle::random(&mut srng, "en", &name[..2]);
        let roster = if si == 0 {
            base.clone()
        } else {
            // Sites cover mostly the same players: 85% overlap.
            catalog_with_overlap(
                &mut srng,
                universe,
                &base,
                pages_per_site,
                pages_per_site * 85 / 100,
            )
        };
        let pages = roster
            .iter()
            .map(|&pi| render_player_page(&world.players[pi], pi, &style, name, &mut srng))
            .collect();
        sites.push(Site { name: name.to_string(), focus: "NBA players".to_string(), pages });
    }

    (
        SwdeVertical {
            name: "NBAPlayer",
            sites,
            kb,
            attributes: vec![
                ("Name", "name"),
                ("Team", nba::TEAM),
                ("Weight", nba::WEIGHT),
                ("Height", nba::HEIGHT),
            ],
        },
        world,
    )
}

/// Generate the University vertical. Site 7 carries the search-box trap the
/// paper blames for its University.Type annotation errors.
pub fn university_vertical(cfg: SwdeConfig) -> (SwdeVertical, UniversityWorld) {
    let pages_per_site = cfg.pages(UNIVERSITY_PAGES_PER_SITE);
    let universe = pages_per_site * 2;
    let world = UniversityWorld::generate(cfg.seed ^ 0x0121, universe);

    let mut rng = derive_rng(cfg.seed, "swde-uni-subsets");
    let base: Vec<usize> = crate::rng::sample_distinct(&mut rng, universe, pages_per_site);
    let kb = world.build_kb(&base);

    let mut sites = Vec::with_capacity(10);
    for (si, name) in UNIVERSITY_SITE_NAMES.iter().enumerate() {
        let mut srng = derive_rng(cfg.seed, &format!("swde-uni-{name}"));
        let style = SiteStyle::random(&mut srng, "en", &name[..2]);
        let subset = if si == 0 {
            base.clone()
        } else {
            catalog_with_overlap(
                &mut srng,
                universe,
                &base,
                pages_per_site,
                pages_per_site * 70 / 100,
            )
        };
        let trap = si == 7;
        let pages = subset
            .iter()
            .map(|&ui| {
                render_university_page(&world.universities[ui], ui, &style, name, trap, &mut srng)
            })
            .collect();
        sites.push(Site { name: name.to_string(), focus: "Universities".to_string(), pages });
    }

    (
        SwdeVertical {
            name: "University",
            sites,
            kb,
            attributes: vec![
                ("Name", "name"),
                ("Phone", university::PHONE),
                ("Website", university::WEBSITE),
                ("Type", university::TYPE),
            ],
        },
        world,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SwdeConfig {
        SwdeConfig { seed: 5, scale: 0.01 }
    }

    #[test]
    fn movie_vertical_builds() {
        let (v, world) = movie_vertical(tiny());
        assert_eq!(v.sites.len(), 10);
        assert!(v.kb.n_triples() > 50);
        assert!(v.sites.iter().all(|s| s.pages.len() >= 12));
        assert!(world.films.len() >= 50);
    }

    #[test]
    fn book_sites_have_controlled_overlap() {
        let (v, world) = book_vertical(tiny());
        // Site 0's titles are all in the KB; site 1's almost none.
        let in_kb = |site: &Site| {
            site.pages
                .iter()
                .filter(|p| !v.kb.match_text(p.gold.topic.as_deref().unwrap()).is_empty())
                .count()
        };
        let s0 = in_kb(&v.sites[0]);
        let s1 = in_kb(&v.sites[1]);
        let s9 = in_kb(&v.sites[9]);
        assert_eq!(s0, v.sites[0].pages.len());
        assert!(s1 < s9, "low-overlap site {s1} should be < high-overlap {s9}");
        let _ = world;
    }

    #[test]
    fn nba_vertical_has_high_overlap() {
        let (v, _) = nba_vertical(tiny());
        let in_kb = v.sites[5]
            .pages
            .iter()
            .filter(|p| !v.kb.match_text(p.gold.topic.as_deref().unwrap()).is_empty())
            .count();
        assert!(
            in_kb * 100 >= v.sites[5].pages.len() * 60,
            "NBA overlap too low: {in_kb}/{}",
            v.sites[5].pages.len()
        );
    }

    #[test]
    fn university_trap_site_has_search_box() {
        let (v, _) = university_vertical(tiny());
        assert!(v.sites[7].pages[0].html.contains("filter-opt"));
        assert!(!v.sites[0].pages[0].html.contains("filter-opt"));
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = nba_vertical(tiny());
        let (b, _) = nba_vertical(tiny());
        assert_eq!(a.sites[3].pages[5].html, b.sites[3].pages[5].html);
    }
}
