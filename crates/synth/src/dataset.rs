//! Dataset containers: pages, per-page gold, sites.

/// One node-level gold assertion: the text field `data-gt=<gt_id>` expresses
/// `(topic, pred, object)` — or, for `pred == "name"`, names the topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldFact {
    pub gt_id: u32,
    /// Ontology predicate name, or `"name"` for the topic-name field.
    pub pred: String,
    /// The object exactly as rendered on the page.
    pub object: String,
}

/// What kind of page this is (the template-clustering experiments need
/// non-detail pages in the mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// A detail page about one topic entity.
    Detail,
    /// A chart/index/entry page with no single topic (box-office charts,
    /// search indexes).
    NonDetail,
}

/// Ground truth for one page.
#[derive(Debug, Clone)]
pub struct PageGold {
    pub kind: PageKind,
    /// Canonical topic name in the world (for detail pages).
    pub topic: Option<String>,
    /// World entity type of the topic (`"Film"`, `"Person"`, …).
    pub topic_type: Option<String>,
    /// Node-level facts. Empty for non-detail pages.
    pub facts: Vec<GoldFact>,
}

impl PageGold {
    pub fn non_detail() -> Self {
        PageGold { kind: PageKind::NonDetail, topic: None, topic_type: None, facts: Vec::new() }
    }

    /// Distinct (pred, object) assertions — the triple-level gold used for
    /// extraction scoring (a fact duplicated across nodes counts once).
    pub fn triple_set(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> =
            self.facts.iter().map(|f| (f.pred.as_str(), f.object.as_str())).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Gold predicate for a node, if any.
    pub fn pred_of(&self, gt_id: u32) -> Option<&str> {
        self.facts.iter().find(|f| f.gt_id == gt_id).map(|f| f.pred.as_str())
    }
}

/// One rendered page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Site-unique page id (url-ish).
    pub id: String,
    pub html: String,
    pub gold: PageGold,
}

/// One website: a set of pages sharing templates.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    /// Human description ("Danish films").
    pub focus: String,
    pub pages: Vec<Page>,
}

impl Site {
    /// Split pages into (annotation/training, evaluation) halves — even
    /// indexes train, odd evaluate; deterministic and independent of page
    /// generation order randomness.
    pub fn split_halves(&self) -> (Vec<&Page>, Vec<&Page>) {
        let train = self.pages.iter().step_by(2).collect();
        let eval = self.pages.iter().skip(1).step_by(2).collect();
        (train, eval)
    }

    pub fn detail_page_count(&self) -> usize {
        self.pages.iter().filter(|p| p.gold.kind == PageKind::Detail).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: usize) -> Page {
        Page {
            id: format!("p{i}"),
            html: String::new(),
            gold: PageGold {
                kind: PageKind::Detail,
                topic: Some(format!("t{i}")),
                topic_type: Some("Film".to_string()),
                facts: vec![
                    GoldFact { gt_id: 0, pred: "name".into(), object: format!("t{i}") },
                    GoldFact { gt_id: 1, pred: "genre".into(), object: "Drama".into() },
                    GoldFact { gt_id: 2, pred: "genre".into(), object: "Drama".into() },
                ],
            },
        }
    }

    #[test]
    fn split_halves_partitions() {
        let site = Site { name: "s".into(), focus: "f".into(), pages: (0..9).map(page).collect() };
        let (train, eval) = site.split_halves();
        assert_eq!(train.len(), 5);
        assert_eq!(eval.len(), 4);
        let all: std::collections::HashSet<&str> =
            train.iter().chain(eval.iter()).map(|p| p.id.as_str()).collect();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn triple_set_dedups() {
        let p = page(0);
        let triples = p.gold.triple_set();
        assert_eq!(triples.len(), 2); // name + one genre (duplicate collapsed)
    }

    #[test]
    fn pred_of_finds_node_gold() {
        let p = page(0);
        assert_eq!(p.gold.pred_of(1), Some("genre"));
        assert_eq!(p.gold.pred_of(99), None);
    }
}
