//! The CommonCrawl-like long-tail movie corpus: 33 sites named and sized
//! after Table 8 of the paper, with per-site language, KB affinity, page
//! mix, and the §5.5.1 failure modes.

use crate::dataset::Site;
use crate::movie_pages::{
    render_chart_page, render_episode_page, render_film_page, render_person_page, MoviePathology,
    MovieRenderCtx,
};
use crate::movie_world::{KbBias, MovieWorld, MovieWorldConfig};
use crate::rng::{derive_rng, prob, sample_distinct, zipf_distinct};
use crate::style::SiteStyle;

/// Static description of one long-tail site.
#[derive(Debug, Clone)]
pub struct CcSiteSpec {
    pub name: &'static str,
    pub focus: &'static str,
    /// Page count in the paper's crawl (Table 8); scaled at generation.
    pub paper_pages: usize,
    pub language: &'static str,
    /// 0..1 — how head-biased (KB-dense) the site's film selection is. Low
    /// affinity reproduces the sites with a handful of annotatable pages.
    pub kb_affinity: f64,
    /// Fraction of pages that are person pages.
    pub person_share: f64,
    /// Fraction of pages that are TV-episode pages.
    pub episode_share: f64,
    /// Fraction of pages that are non-detail charts/indexes.
    pub nondetail_share: f64,
    pub role_ambiguity: bool,
    pub genre_index: bool,
    pub box_office_lists: bool,
    pub shuffle_sections: bool,
}

const fn spec(
    name: &'static str,
    focus: &'static str,
    paper_pages: usize,
    language: &'static str,
    kb_affinity: f64,
) -> CcSiteSpec {
    CcSiteSpec {
        name,
        focus,
        paper_pages,
        language,
        kb_affinity,
        person_share: 0.0,
        episode_share: 0.0,
        nondetail_share: 0.0,
        role_ambiguity: false,
        genre_index: false,
        box_office_lists: false,
        shuffle_sections: false,
    }
}

/// The 33 sites of Table 8.
pub fn cc_site_specs() -> Vec<CcSiteSpec> {
    vec![
        spec("themoviedb.org", "General film information", 32_143, "en", 0.9),
        spec("blaxploitation.com", "Blaxploitation films", 670, "en", 0.75),
        spec("danksefilm.com", "Danish films", 2_100, "da", 0.7),
        spec("archiviodelcinemaitaliano.it", "Italian films", 1_573, "it", 0.7),
        spec("filmitalia.org", "Italian films", 2_847, "it", 0.7),
        spec("kmdb.or.kr", "Korean films", 1_351, "en", 0.25),
        spec("britflicks.com", "British films", 1_464, "en", 0.8),
        CcSiteSpec {
            nondetail_share: 0.08,
            person_share: 0.1,
            ..spec("rottentomatoes.com", "Film reviews", 73_410, "en", 0.85)
        },
        spec("moviecrow.com", "Indian films", 569, "en", 0.3),
        spec("nfb.ca", "Canadian films", 39_780, "en", 0.55),
        spec("kinobox.cz", "Czech films", 37_988, "cs", 0.5),
        CcSiteSpec {
            episode_share: 0.25,
            ..spec("samdb.co.za", "South African films", 1_424, "en", 0.2)
        },
        CcSiteSpec {
            episode_share: 0.3,
            ..spec("dianying.com", "Chinese films", 15_789, "en", 0.45)
        },
        spec("giantscreencinema.com", "IMAX films", 370, "en", 0.6),
        CcSiteSpec {
            episode_share: 0.35,
            ..spec("myanimelist.net", "Animated films", 5_588, "en", 0.55)
        },
        spec("hkmdb.com", "Hong Kong films", 6_350, "en", 0.5),
        CcSiteSpec {
            shuffle_sections: true,
            ..spec("bollywoodmdb.com", "Bollywood films", 1_483, "en", 0.5)
        },
        CcSiteSpec {
            person_share: 0.55,
            ..spec("soundtrackcollector.com", "Movie soundtracks", 4_192, "en", 0.6)
        },
        CcSiteSpec {
            role_ambiguity: true,
            person_share: 0.45,
            ..spec("spicyonion.com", "Indian films", 5_898, "en", 0.5)
        },
        spec("shortfilmcentral.com", "Short films", 32_613, "en", 0.35),
        CcSiteSpec {
            role_ambiguity: true,
            person_share: 0.35,
            ..spec("filmindonesia.or.id", "Indonesian films", 2_901, "id", 0.45)
        },
        CcSiteSpec {
            box_office_lists: true,
            nondetail_share: 0.25,
            ..spec("the-numbers.com", "Financial performance", 74_767, "en", 0.75)
        },
        CcSiteSpec {
            nondetail_share: 0.35,
            ..spec("sodasandpopcorn.com", "Nigerian films", 3_401, "en", 0.3)
        },
        CcSiteSpec {
            genre_index: true,
            ..spec("christianfilmdatabase.com", "Christian films", 2_040, "en", 0.55)
        },
        spec("jfdb.jp", "Japanese films", 1_055, "en", 0.25),
        spec("kvikmyndavefurinn.is", "Icelandic films", 235, "is", 0.5),
        CcSiteSpec {
            genre_index: true,
            ..spec("laborfilms.com", "Labor movement films", 566, "en", 0.35)
        },
        CcSiteSpec {
            shuffle_sections: true,
            ..spec("africa-archive.com", "African films", 1_300, "en", 0.3)
        },
        CcSiteSpec {
            shuffle_sections: true,
            episode_share: 0.2,
            ..spec("colonialfilm.org.uk", "Colonial-era films", 1_911, "en", 0.15)
        },
        CcSiteSpec {
            shuffle_sections: true,
            ..spec("sfd.sfu.sk", "Slovak films", 1_711, "sk", 0.15)
        },
        // The three zero-extraction sites of Table 8:
        CcSiteSpec { nondetail_share: 0.5, ..spec("bcdb.com", "Animated films", 912, "en", 0.02) },
        spec("bmxmdb.com", "BMX films", 924, "en", 0.005),
        CcSiteSpec {
            nondetail_share: 1.0,
            ..spec("boxofficemojo.com", "Financial performance", 74_507, "en", 0.8)
        },
    ]
}

/// A generated CommonCrawl-like corpus.
pub struct CcDataset {
    pub world: MovieWorld,
    pub sites: Vec<Site>,
    pub kb: ceres_kb::Kb,
}

/// Generate the corpus at `scale` (1.0 ≈ the paper's 433,832 pages — large;
/// the default repro uses 0.05–0.1).
pub fn generate(seed: u64, scale: f64) -> CcDataset {
    let specs = cc_site_specs();
    let total_pages: usize =
        specs.iter().map(|s| ((s.paper_pages as f64 * scale) as usize).max(20)).sum();

    // World sized to give every site distinct films while keeping a shared
    // famous head for cross-site overlap.
    let n_films = (total_pages * 7 / 8).max(500);
    let world = MovieWorld::generate(MovieWorldConfig {
        seed: seed ^ 0xCC,
        n_people: n_films * 2,
        n_films,
        n_series: (n_films / 200).max(8),
        title_collision_share: 0.025,
    });
    let kb = world.build_kb(&KbBias::default()).kb;

    let sites = specs.iter().map(|s| generate_cc_site(&world, s, seed, scale)).collect();

    CcDataset { world, sites, kb }
}

/// Generate one long-tail site.
pub fn generate_cc_site(world: &MovieWorld, spec: &CcSiteSpec, seed: u64, scale: f64) -> Site {
    let mut rng = derive_rng(seed, &format!("cc-{}", spec.name));
    let n_pages = ((spec.paper_pages as f64 * scale) as usize).max(20);
    let prefix: String = spec.name.chars().take(4).filter(|c| c.is_ascii_alphanumeric()).collect();
    let mut style = SiteStyle::random(&mut rng, spec.language, &prefix);
    style.shuffle_sections = spec.shuffle_sections;

    let pathology = MoviePathology {
        role_ambiguity: spec.role_ambiguity,
        genre_index: spec.genre_index,
        box_office_lists: spec.box_office_lists,
        shuffle_sections: spec.shuffle_sections,
    };
    let ctx = MovieRenderCtx { world, style: &style, site_name: spec.name, pathology: &pathology };

    let n_nondetail = (n_pages as f64 * spec.nondetail_share) as usize;
    let n_detail = n_pages - n_nondetail;
    let n_person = (n_detail as f64 * spec.person_share) as usize;
    let n_episode = (n_detail as f64 * spec.episode_share) as usize;
    let n_film = n_detail - n_person - n_episode;

    let mut pages = Vec::with_capacity(n_pages);

    // Film selection: KB-affine sites draw Zipf from the famous head; low
    // affinity sites draw uniformly from the long tail.
    let head = (world.films.len() as f64 * 0.3) as usize;
    let mut chosen = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    while chosen.len() < n_film.min(world.films.len()) && guard < n_film * 60 + 1000 {
        guard += 1;
        let fi = if prob(&mut rng, spec.kb_affinity) {
            crate::rng::zipf(&mut rng, head.max(1), 1.1)
        } else {
            head + rng_range(&mut rng, world.films.len() - head)
        };
        chosen.insert(fi);
    }
    for fi in chosen {
        pages.push(render_film_page(&ctx, fi, &mut rng));
    }

    if n_person > 0 {
        let people = zipf_distinct(&mut rng, world.people.len(), n_person, 1.1);
        for pi in people {
            let p = &world.people[pi];
            if p.acted_in.is_empty() && p.directed.is_empty() && p.composed.is_empty() {
                continue;
            }
            pages.push(render_person_page(&ctx, pi, &mut rng));
        }
    }
    if n_episode > 0 && !world.episodes.is_empty() {
        for ei in sample_distinct(&mut rng, world.episodes.len(), n_episode) {
            pages.push(render_episode_page(&ctx, ei, &mut rng));
        }
    }
    for day in 0..n_nondetail {
        pages.push(render_chart_page(&ctx, day, &mut rng));
    }

    Site { name: spec.name.to_string(), focus: spec.focus.to_string(), pages }
}

fn rng_range(rng: &mut rand::rngs::SmallRng, n: usize) -> usize {
    use rand::Rng;
    if n == 0 {
        0
    } else {
        rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PageKind;

    #[test]
    fn specs_cover_all_33_sites() {
        let specs = cc_site_specs();
        assert_eq!(specs.len(), 33);
        let total: usize = specs.iter().map(|s| s.paper_pages).sum();
        // Table 8 total: 433,832 pages.
        assert_eq!(total, 433_832);
    }

    #[test]
    fn boxofficemojo_is_all_charts() {
        let d = generate(4, 0.003);
        let bom = d.sites.iter().find(|s| s.name == "boxofficemojo.com").unwrap();
        assert!(bom.pages.iter().all(|p| p.gold.kind == PageKind::NonDetail));
    }

    #[test]
    fn language_labels_differ() {
        let d = generate(4, 0.003);
        let cz = d.sites.iter().find(|s| s.name == "kinobox.cz").unwrap();
        let filmpage = cz.pages.iter().find(|p| p.id.starts_with("film-")).unwrap();
        assert!(filmpage.html.contains("Režie"), "Czech labels expected");
    }

    #[test]
    fn kb_affinity_controls_overlap() {
        let d = generate(4, 0.003);
        let overlap = |name: &str| {
            let site = d.sites.iter().find(|s| s.name == name).unwrap();
            let detail: Vec<_> = site
                .pages
                .iter()
                .filter(|p| p.gold.kind == PageKind::Detail && p.id.starts_with("film-"))
                .collect();
            if detail.is_empty() {
                return 0.0;
            }
            detail
                .iter()
                .filter(|p| !d.kb.match_text(p.gold.topic.as_deref().unwrap()).is_empty())
                .count() as f64
                / detail.len() as f64
        };
        let high = overlap("themoviedb.org");
        let low = overlap("bmxmdb.com");
        assert!(high > low, "tmdb {high:.2} should exceed bmxmdb {low:.2}");
    }

    #[test]
    fn scaled_page_counts_track_table8() {
        let d = generate(4, 0.003);
        let tn = d.sites.iter().find(|s| s.name == "the-numbers.com").unwrap();
        let kv = d.sites.iter().find(|s| s.name == "kvikmyndavefurinn.is").unwrap();
        assert!(tn.pages.len() > kv.pages.len() * 5);
    }
}
