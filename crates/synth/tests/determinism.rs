//! Smoke test guarding the determinism contract `tests/end_to_end.rs`
//! relies on: `swde::movie_vertical` output is byte-stable for a fixed
//! `SwdeConfig`.

use ceres_synth::swde::{movie_vertical, SwdeConfig};

#[test]
fn movie_vertical_is_byte_stable_for_fixed_config() {
    let cfg = SwdeConfig { seed: 77, scale: 0.02 };
    let (a, _) = movie_vertical(cfg);
    let (b, _) = movie_vertical(cfg);

    assert_eq!(a.sites.len(), b.sites.len());
    assert_eq!(a.kb.n_triples(), b.kb.n_triples());
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert_eq!(sa.name, sb.name);
        assert_eq!(sa.pages.len(), sb.pages.len(), "page count drift on {}", sa.name);
        for (pa, pb) in sa.pages.iter().zip(&sb.pages) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.html, pb.html, "byte instability on site {} page {}", sa.name, pa.id);
            assert_eq!(
                pa.gold.facts.len(),
                pb.gold.facts.len(),
                "gold drift on site {} page {}",
                sa.name,
                pa.id
            );
        }
    }
}

#[test]
fn different_seeds_produce_different_corpora() {
    let (a, _) = movie_vertical(SwdeConfig { seed: 77, scale: 0.02 });
    let (b, _) = movie_vertical(SwdeConfig { seed: 78, scale: 0.02 });
    assert_ne!(
        a.sites[0].pages[0].html, b.sites[0].pages[0].html,
        "seed must perturb rendered pages"
    );
}
