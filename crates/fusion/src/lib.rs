//! # ceres-fusion
//!
//! Post-extraction knowledge fusion and entity linkage.
//!
//! The paper stops at per-page extractions and explicitly defers two steps
//! to other systems (§2.1, §5.5.1): *knowledge fusion* — "we leave for
//! future work to investigate how many of these aforementioned mistakes can
//! be solved by applying knowledge fusion [10, 11] on the extraction
//! results" — and *entity linkage* of extracted strings to KB entities
//! (\[13\]). This crate implements practical versions of both, following the
//! Knowledge Vault recipe:
//!
//! * [`fuse`](mod@fuse) — group extracted triples by their normalized
//!   `(subject, predicate, object)`, combine per-source confidences with a
//!   noisy-OR model damped by per-source reliability, and emit fused facts
//!   ranked by belief. Facts asserted independently by several sites gain
//!   belief; one-off extractions from a single shaky site lose it.
//! * [`link`](mod@link) — resolve fused subjects/objects against a seed KB: exact
//!   normalized match, token-sorted fuzzy match, and type-compatibility
//!   with the predicate's ontology signature.

pub mod export;
pub mod fuse;
pub mod link;

pub use export::{from_tsv, to_tsv};
pub use fuse::{fuse, FusedFact, FusionConfig, SourcedExtraction};
pub use link::{link, LinkOutcome, Linkage};
