//! Entity linkage: resolve fused facts against a seed KB.
//!
//! CERES extracts *strings*; growing a KB requires deciding whether
//! "Spike Lee" on a new site is the `Person` the KB already knows or a new
//! entity (paper §2.1 defers this to big-data-integration techniques \[13\]).
//! The linker here resolves a fused fact in three steps:
//!
//! 1. candidate generation — the KB matcher's exact-normalized and
//!    token-sorted indexes;
//! 2. type filtering — the predicate's ontology signature constrains the
//!    subject's entity type;
//! 3. decision — a single type-compatible candidate links; several
//!    candidates stay ambiguous; none means a **new entity**, the paper's
//!    headline capability ("unlike Knowledge Vault, we allow extracting
//!    facts where the subjects and objects are not present in the seed
//!    database").

use crate::fuse::FusedFact;
use ceres_kb::{Kb, ValueId, ValueKind};

/// Resolution of one endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Linkage {
    /// Unique KB entity.
    Linked(ValueId),
    /// Several plausible KB entities (ids listed, best-effort order).
    Ambiguous(Vec<ValueId>),
    /// No KB entity — a brand-new entity discovered by extraction.
    NewEntity,
}

/// A fused fact with both endpoints resolved.
#[derive(Debug, Clone)]
pub struct LinkOutcome {
    pub fact: FusedFact,
    pub subject: Linkage,
    pub object: Linkage,
}

/// Link fused facts against `kb`.
pub fn link(kb: &Kb, facts: &[FusedFact]) -> Vec<LinkOutcome> {
    facts
        .iter()
        .map(|fact| {
            let subject_type =
                kb.ontology().pred_by_name(&fact.pred).map(|p| kb.ontology().pred(p).subject_type);
            let subject = resolve(kb, &fact.subject, subject_type);
            // Objects are untyped in our ontology (entity or literal).
            let object = resolve(kb, &fact.object_surface, None);
            LinkOutcome { fact: fact.clone(), subject, object }
        })
        .collect()
}

fn resolve(kb: &Kb, text: &str, required_type: Option<ceres_kb::EntityTypeId>) -> Linkage {
    let mut candidates: Vec<ValueId> = kb.match_text(text).to_vec();
    if let Some(ty) = required_type {
        candidates.retain(|&v| matches!(kb.kind(v), ValueKind::Entity(t) if t == ty));
    }
    match candidates.len() {
        0 => Linkage::NewEntity,
        1 => Linkage::Linked(candidates[0]),
        _ => {
            // Prefer the candidate with the richest object set (most facts
            // ≈ most prominent entity); deterministic tie-break by id.
            candidates.sort_by_key(|&v| (std::cmp::Reverse(kb.object_set(v).len()), v));
            Linkage::Ambiguous(candidates)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::FusedFact;
    use ceres_kb::{KbBuilder, Ontology};

    fn fact(subject: &str, pred: &str, object: &str) -> FusedFact {
        FusedFact {
            subject: subject.to_string(),
            pred: pred.to_string(),
            object: object.to_string(),
            object_surface: object.to_string(),
            belief: 0.9,
            observations: 2,
            sites: 2,
        }
    }

    fn kb() -> Kb {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let episode = o.register_type("TVEpisode");
        let directed = o.register_pred("directedBy", film, true);
        let mut b = KbBuilder::new(o);
        let f = b.entity(film, "Do the Right Thing");
        let p = b.entity(person, "Spike Lee");
        b.triple(f, directed, p);
        // An episode sharing a film's title (ambiguity).
        let e = b.entity(episode, "Crooklyn Ep");
        b.alias(e, "Crooklyn");
        let f2 = b.entity(film, "Crooklyn");
        let _ = f2;
        let _ = e;
        b.build()
    }

    #[test]
    fn links_unique_entities() {
        let kb = kb();
        let out = link(&kb, &[fact("do the right thing", "directedBy", "Spike Lee")]);
        assert!(matches!(out[0].subject, Linkage::Linked(_)));
        assert!(matches!(out[0].object, Linkage::Linked(_)));
    }

    #[test]
    fn type_filter_disambiguates_subjects() {
        let kb = kb();
        // "Crooklyn" matches both a Film and a TVEpisode alias; as the
        // subject of `directedBy` only the Film survives.
        let out = link(&kb, &[fact("crooklyn", "directedBy", "Spike Lee")]);
        match &out[0].subject {
            Linkage::Linked(v) => assert_eq!(kb.canonical(*v), "Crooklyn"),
            other => panic!("expected link, got {other:?}"),
        }
    }

    #[test]
    fn unknown_strings_become_new_entities() {
        let kb = kb();
        let out = link(&kb, &[fact("totally new film", "directedBy", "Fresh Face")]);
        assert_eq!(out[0].subject, Linkage::NewEntity);
        assert_eq!(out[0].object, Linkage::NewEntity);
    }

    #[test]
    fn untyped_object_resolution_reports_ambiguity() {
        let kb = kb();
        // As an object (no type filter), "Crooklyn" is ambiguous.
        let out = link(&kb, &[fact("do the right thing", "directedBy", "Crooklyn")]);
        match &out[0].object {
            Linkage::Ambiguous(c) => assert_eq!(c.len(), 2),
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn unknown_predicate_links_without_type_filter() {
        let kb = kb();
        let out = link(&kb, &[fact("spike lee", "not.a.predicate", "Do the Right Thing")]);
        assert!(matches!(out[0].subject, Linkage::Linked(_)));
    }
}
