//! Plain-text (TSV) export/import of harvested facts.
//!
//! The end product of a CERES run is a fact stream destined for a KB
//! ingestion pipeline; TSV keeps the workspace dependency-free while being
//! trivially consumable by downstream tools.

use crate::fuse::FusedFact;
use ceres_runtime::Runtime;
use std::fmt::Write as _;

/// Escape a field for TSV (tabs/newlines/backslashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Header line of the fused-fact TSV schema.
pub const HEADER: &str = "subject\tpredicate\tobject\tobject_surface\tbelief\tobservations\tsites";

/// Serialize fused facts to TSV (with header).
pub fn to_tsv(facts: &[FusedFact]) -> String {
    let mut out = String::with_capacity(64 * (facts.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for f in facts {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.6}\t{}\t{}",
            escape(&f.subject),
            escape(&f.pred),
            escape(&f.object),
            escape(&f.object_surface),
            f.belief,
            f.observations,
            f.sites,
        );
    }
    out
}

/// Parse a TSV produced by [`to_tsv`]. Malformed lines are reported with
/// their line number (the first — lowest-numbered — bad line wins).
pub fn from_tsv(tsv: &str) -> Result<Vec<FusedFact>, String> {
    from_tsv_on(&Runtime::sequential(), tsv)
}

/// [`from_tsv`] with per-line parsing fanned out on `rt` — the ingest path
/// for multi-site harvest files. Built on `Runtime::try_par_map`, so the
/// reported error is the lowest-numbered malformed line at every thread
/// count, exactly what the sequential scan reports.
pub fn from_tsv_on(rt: &Runtime, tsv: &str) -> Result<Vec<FusedFact>, String> {
    let mut lines = tsv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == HEADER => {}
        Some((_, h)) => return Err(format!("unexpected header: {h}")),
        None => return Err("empty input".to_string()),
    }
    let lines: Vec<(usize, &str)> = lines.filter(|(_, line)| !line.is_empty()).collect();
    rt.try_par_map(&lines, |&(i, line)| parse_line(i, line))
}

fn parse_line(i: usize, line: &str) -> Result<FusedFact, String> {
    let cols: Vec<&str> = line.split('\t').collect();
    if cols.len() != 7 {
        return Err(format!("line {}: expected 7 columns, got {}", i + 1, cols.len()));
    }
    let belief: f64 =
        cols[4].parse().map_err(|_| format!("line {}: bad belief {}", i + 1, cols[4]))?;
    let observations: usize =
        cols[5].parse().map_err(|_| format!("line {}: bad count {}", i + 1, cols[5]))?;
    let sites: usize =
        cols[6].parse().map_err(|_| format!("line {}: bad count {}", i + 1, cols[6]))?;
    Ok(FusedFact {
        subject: unescape(cols[0]),
        pred: unescape(cols[1]),
        object: unescape(cols[2]),
        object_surface: unescape(cols[3]),
        belief,
        observations,
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fact(subject: &str, object: &str) -> FusedFact {
        FusedFact {
            subject: subject.to_string(),
            pred: "directedBy".to_string(),
            object: object.to_string(),
            object_surface: object.to_string(),
            belief: 0.875,
            observations: 3,
            sites: 2,
        }
    }

    #[test]
    fn parallel_ingest_matches_sequential_and_reports_first_error() {
        let facts: Vec<FusedFact> =
            (0..200).map(|i| fact(&format!("subject {i}"), "spike lee")).collect();
        let tsv = to_tsv(&facts);
        let serial = from_tsv(&tsv).unwrap();
        for threads in [2, 8] {
            let par = from_tsv_on(&Runtime::new(threads), &tsv).unwrap();
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            assert_eq!(par[7].subject, serial[7].subject);
        }
        // Corrupt two lines; the lowest line number must be reported at
        // any thread count (try_par_map's lowest-indexed-error contract).
        let mut bad: Vec<&str> = tsv.lines().collect();
        bad[50] = "garbage";
        bad[10] = "also garbage";
        let bad = bad.join("\n");
        for threads in [1, 2, 8] {
            let err = from_tsv_on(&Runtime::new(threads), &bad).unwrap_err();
            assert!(err.starts_with("line 11:"), "threads={threads}: {err}");
        }
    }

    #[test]
    fn roundtrip_simple() {
        let facts = vec![fact("do the right thing", "spike lee"), fact("crooklyn", "spike lee")];
        let tsv = to_tsv(&facts);
        let back = from_tsv(&tsv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].subject, "do the right thing");
        assert_eq!(back[0].sites, 2);
        assert!((back[0].belief - 0.875).abs() < 1e-9);
    }

    #[test]
    fn tabs_and_newlines_survive() {
        let f = fact("a\tb", "c\nd\\e");
        let tsv = to_tsv(std::slice::from_ref(&f));
        let back = from_tsv(&tsv).unwrap();
        assert_eq!(back[0].subject, "a\tb");
        assert_eq!(back[0].object, "c\nd\\e");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_tsv("").is_err());
        assert!(from_tsv("wrong header\n").is_err());
        let bad = format!("{HEADER}\nonly\tthree\tcols\n");
        assert!(from_tsv(&bad).is_err());
        let bad_belief = format!("{HEADER}\na\tb\tc\td\tnot-a-number\t1\t1\n");
        assert!(from_tsv(&bad_belief).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_strings(
            subject in ".{0,24}",
            object in ".{0,24}",
            belief in 0.0f64..1.0,
            observations in 0usize..100,
            sites in 0usize..10,
        ) {
            let f = FusedFact {
                subject: subject.clone(),
                pred: "p".to_string(),
                object: object.clone(),
                object_surface: object.clone(),
                belief,
                observations,
                sites,
            };
            let back = from_tsv(&to_tsv(std::slice::from_ref(&f))).unwrap();
            prop_assert_eq!(&back[0].subject, &subject);
            prop_assert_eq!(&back[0].object, &object);
            prop_assert!((back[0].belief - belief).abs() < 1e-5);
            prop_assert_eq!(back[0].observations, observations);
        }
    }
}
