//! Knowledge fusion: combine redundant extractions across pages and sites
//! into fused facts with calibrated belief.
//!
//! Model (after Knowledge Vault [10, 11]): each extraction is an
//! independent, unreliable assertion of its triple. A source (site) has a
//! reliability prior `r`; an extraction with classifier confidence `c`
//! asserts its triple with probability `r·c`. The fused belief of a triple
//! is the noisy-OR over its assertions:
//!
//! ```text
//! belief(t) = 1 − Π_i (1 − r_i · c_i)
//! ```
//!
//! Per-page duplicates are collapsed first (the same fact rendered twice on
//! one page is one observation — within-page repetition is template
//! redundancy, not independent evidence).

use ceres_core::extract::{ExtractLabel, Extraction};
use ceres_text::{nan_lowest, normalize, FxHashMap};

/// An extraction tagged with its source site.
#[derive(Debug, Clone)]
pub struct SourcedExtraction {
    pub site: String,
    pub extraction: Extraction,
}

/// Fusion knobs.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Default per-site reliability prior.
    pub default_reliability: f64,
    /// Per-site overrides (e.g. measured from a validation sample).
    pub site_reliability: Vec<(String, f64)>,
    /// Fused facts below this belief are dropped.
    pub min_belief: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig { default_reliability: 0.8, site_reliability: Vec::new(), min_belief: 0.0 }
    }
}

impl FusionConfig {
    fn reliability(&self, site: &str) -> f64 {
        self.site_reliability
            .iter()
            .find(|(s, _)| s == site)
            .map(|(_, r)| *r)
            .unwrap_or(self.default_reliability)
            .clamp(0.0, 1.0)
    }
}

/// A fused fact: the canonical triple plus aggregate evidence.
#[derive(Debug, Clone)]
pub struct FusedFact {
    /// Normalized subject string (as extracted; see [`crate::link`](mod@crate::link) for KB
    /// resolution).
    pub subject: String,
    /// Predicate name, or `"name"` for topic-name assertions.
    pub pred: String,
    pub object: String,
    /// A representative surface form of the object (most common raw text).
    pub object_surface: String,
    /// Noisy-OR belief in [0, 1).
    pub belief: f64,
    /// Number of distinct (site, page) observations.
    pub observations: usize,
    /// Number of distinct sites asserting the fact.
    pub sites: usize,
}

/// Fuse extractions into ranked facts (highest belief first). `pred_name`
/// maps predicate ids to names (pass `kb.ontology().pred_name`).
pub fn fuse(
    extractions: &[SourcedExtraction],
    pred_name: impl Fn(ceres_kb::PredId) -> String,
    cfg: &FusionConfig,
) -> Vec<FusedFact> {
    // Key: (subject-normalized, pred, object-normalized).
    type Key = (String, String, String);
    struct Acc {
        log_not: f64, // Σ ln(1 − r·c)
        observations: usize,
        sites: std::collections::BTreeSet<String>,
        surface_counts: FxHashMap<String, usize>,
        // One observation per (site, page): keep the best confidence.
        per_page: FxHashMap<(String, String), f64>,
    }

    let mut acc: FxHashMap<Key, Acc> = FxHashMap::default();
    for se in extractions {
        let e = &se.extraction;
        let pred = match &e.label {
            ExtractLabel::Name => "name".to_string(),
            ExtractLabel::Pred(p) => pred_name(*p),
        };
        let key = (normalize(&e.subject), pred, normalize(&e.object));
        let a = acc.entry(key).or_insert_with(|| Acc {
            log_not: 0.0,
            observations: 0,
            sites: std::collections::BTreeSet::new(),
            surface_counts: FxHashMap::default(),
            per_page: FxHashMap::default(),
        });
        let page_key = (se.site.clone(), e.page_id.clone());
        let best = a.per_page.entry(page_key).or_insert(0.0);
        *best = best.max(e.confidence);
        *a.surface_counts.entry(e.object.clone()).or_default() += 1;
        a.sites.insert(se.site.clone());
    }

    // Second pass: fold per-page observations into the noisy-OR.
    let mut out: Vec<FusedFact> = Vec::with_capacity(acc.len());
    for ((subject, pred, object), mut a) in acc {
        let mut pages: Vec<((String, String), f64)> = a.per_page.drain().collect();
        pages.sort_by(|x, y| x.0.cmp(&y.0));
        for ((site, _page), conf) in &pages {
            let r = cfg.reliability(site);
            let p = (r * conf).clamp(0.0, 0.999_999);
            a.log_not += (1.0 - p).ln();
        }
        a.observations = pages.len();
        let belief = 1.0 - a.log_not.exp();
        if belief < cfg.min_belief {
            continue;
        }
        let object_surface = a
            .surface_counts
            .iter()
            .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(x.0)))
            .map(|(s, _)| s.clone())
            .unwrap_or_else(|| object.clone());
        out.push(FusedFact {
            subject,
            pred,
            object,
            object_surface,
            belief,
            observations: a.observations,
            sites: a.sites.len(),
        });
    }
    // Belief descending; `nan_lowest` keeps the comparator total (a NaN
    // belief — impossible today, the noisy-OR clamps its inputs — would
    // sink to the bottom instead of scrambling the sort), and the
    // (subject, pred, object) key is unique, so the order never depends on
    // the accumulator map's iteration order.
    out.sort_by(|a, b| {
        nan_lowest(b.belief, a.belief)
            .then(a.subject.cmp(&b.subject))
            .then(a.pred.cmp(&b.pred))
            .then(a.object.cmp(&b.object))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::PredId;

    fn ex(site: &str, page: &str, subj: &str, obj: &str, conf: f64) -> SourcedExtraction {
        SourcedExtraction {
            site: site.to_string(),
            extraction: Extraction {
                page_id: page.to_string(),
                gt_id: None,
                subject: subj.to_string(),
                label: ExtractLabel::Pred(PredId(0)),
                object: obj.to_string(),
                confidence: conf,
            },
        }
    }

    fn name_of(_: PredId) -> String {
        "directedBy".to_string()
    }

    #[test]
    fn corroboration_raises_belief() {
        let cfg = FusionConfig::default();
        let single = fuse(&[ex("a.com", "p1", "Film X", "Lee", 0.8)], name_of, &cfg);
        let multi = fuse(
            &[
                ex("a.com", "p1", "Film X", "Lee", 0.8),
                ex("b.com", "p9", "Film X", "Lee", 0.8),
                ex("c.com", "p3", "Film X", "Lee", 0.8),
            ],
            name_of,
            &cfg,
        );
        assert_eq!(single.len(), 1);
        assert_eq!(multi.len(), 1);
        assert!(multi[0].belief > single[0].belief);
        assert_eq!(multi[0].sites, 3);
        assert_eq!(multi[0].observations, 3);
    }

    #[test]
    fn within_page_duplicates_count_once() {
        let cfg = FusionConfig::default();
        let dup = fuse(
            &[
                ex("a.com", "p1", "Film X", "Lee", 0.8),
                ex("a.com", "p1", "Film X", "Lee", 0.6), // same page, lower conf
            ],
            name_of,
            &cfg,
        );
        let single = fuse(&[ex("a.com", "p1", "Film X", "Lee", 0.8)], name_of, &cfg);
        assert!((dup[0].belief - single[0].belief).abs() < 1e-12);
        assert_eq!(dup[0].observations, 1);
    }

    #[test]
    fn normalization_merges_surface_forms() {
        let cfg = FusionConfig::default();
        let fused = fuse(
            &[
                ex("a.com", "p1", "Film X", "Spike Lee", 0.7),
                ex("b.com", "p2", "FILM X", "SPIKE  LEE", 0.7),
                ex("c.com", "p3", "Film X!", "Spike Lee", 0.7),
            ],
            name_of,
            &cfg,
        );
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].object, "spike lee");
        assert_eq!(fused[0].object_surface, "Spike Lee"); // majority surface
        assert_eq!(fused[0].sites, 3);
    }

    #[test]
    fn unreliable_sites_contribute_less() {
        let mut cfg = FusionConfig::default();
        cfg.site_reliability.push(("shaky.com".to_string(), 0.1));
        let reliable = fuse(&[ex("solid.com", "p", "S", "O", 0.9)], name_of, &cfg);
        let shaky = fuse(&[ex("shaky.com", "p", "S", "O", 0.9)], name_of, &cfg);
        assert!(reliable[0].belief > shaky[0].belief * 3.0);
    }

    #[test]
    fn min_belief_filters() {
        let cfg = FusionConfig { min_belief: 0.5, ..Default::default() };
        let fused = fuse(&[ex("a.com", "p", "S", "O", 0.2)], name_of, &cfg);
        assert!(fused.is_empty());
    }

    #[test]
    fn output_is_sorted_by_belief() {
        let cfg = FusionConfig::default();
        let fused = fuse(
            &[
                ex("a.com", "p1", "S1", "weak", 0.55),
                ex("a.com", "p2", "S2", "strong", 0.95),
                ex("b.com", "p3", "S2", "strong", 0.95),
            ],
            name_of,
            &cfg,
        );
        assert_eq!(fused.len(), 2);
        assert!(fused[0].belief >= fused[1].belief);
        assert_eq!(fused[0].object, "strong");
    }
}
