//! [`StreamMap`]: a bounded, order-preserving streaming map on the worker
//! pool — the runtime's *reorder buffer*.
//!
//! [`Runtime::par_map`](crate::Runtime::par_map) wants the whole input
//! slice up front. A streaming producer (a fetcher, a WARC reader, a
//! decompressor) has the opposite shape: items trickle in one at a time,
//! and the caller wants the expensive per-item work (e.g. HTML parsing) to
//! overlap its own production loop. `StreamMap` is that bridge:
//!
//! * [`StreamMap::push`] hands one item to the pool and returns
//!   immediately — the calling thread goes back to producing while pool
//!   workers run `f` on the items in flight;
//! * at most `cap` items are in flight at once (the *bounded* part): a
//!   push beyond the cap first completes the **oldest** item and returns
//!   its result, which is what keeps memory bounded under a fast producer;
//! * results always come back in **input order** (the *reorder* part), no
//!   matter which worker finishes first — `push` yields the oldest item,
//!   [`StreamMap::drain`]/[`StreamMap::finish`] yield the remainder
//!   front-to-back.
//!
//! Each in-flight item is a one-chunk job under the pool's chunk-claiming
//! protocol (see [`crate::pool`]): a pool worker claims it, or the caller
//! claims it itself when it needs the result (caller participates), so
//! completion never depends on pool capacity and a `StreamMap` used inside
//! a busy pool worker cannot deadlock.
//!
//! ## Determinism
//!
//! For a pure `f`, the concatenation of every `Some` returned by `push`
//! plus the tail from `drain`/`finish` is **exactly**
//! `items.map(f).collect()` in input order, for every thread count and
//! every `cap`. On a sequential runtime (`threads == 1`) `push` runs `f`
//! inline and returns the result immediately — the byte-identical
//! fallback, with the same order guarantee (results just surface with a
//! different cadence than under a saturated parallel buffer).
//!
//! ## Fault semantics
//!
//! A panic inside `f` is re-raised on the thread that pops the panicked
//! item (the submitting thread), never on a pool worker. The unwinding
//! pop consumes the poisoned slot and nothing else: every other in-flight
//! item still completes and drains in input order from the **same** map,
//! a later `push`/`drain` keeps working, and `Drop` finishes outstanding
//! jobs (panics swallowed) so a poisoned map neither deadlocks nor leaks.
//! One caveat: results a single `drain` call had already collected when
//! the unwind hit are discarded with that call's stack — pop results one
//! at a time via a bounded `push` loop when every pre-panic result
//! matters. (Pinned by `one_poisoned_item_neither_deadlocks_nor_leaks`.)

use crate::pool::{self, Job};
use crate::Runtime;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Heap context of one in-flight item. Like the pool's `JobCtx`, it is
/// only dereferenced between a successful chunk claim and the
/// participant-count decrement the popping thread waits on; unlike
/// `JobCtx` it lives on the heap (kept alive by [`InFlight`]) because the
/// submitting call returns before the item completes.
struct ItemCtx<T, R> {
    item: UnsafeCell<Option<T>>,
    result: UnsafeCell<Option<R>>,
    /// The shared map closure. The `'static` in the type is a lie told to
    /// the borrow checker (see the transmute in [`StreamMap::submit`]);
    /// the real lifetime is the `'f` of the owning [`StreamMap`], and the
    /// pointer is dead before the closure drops because every job is
    /// finished before the `StreamMap` (and its boxed closure) goes away.
    f: *const (dyn Fn(T) -> R + Sync),
}

/// Run the single chunk of an item job: take the item, apply `f`, store
/// the result (or record the panic).
///
/// # Safety
/// The caller holds the successful claim on chunk 0, so this is the only
/// dereference of `ctx` for this item, and the popping thread's
/// `wait_idle` orders it before the context is freed.
unsafe fn run_item<T, R>(ctx: *const (), job: &Job, _chunk: usize) {
    // SAFETY: `ctx` points at the boxed `ItemCtx` kept alive by the
    // `InFlight` entry until `finish_stream_job` returns, which the claim
    // this fn runs under happens-before.
    let ctx = unsafe { &*(ctx as *const ItemCtx<T, R>) };
    // SAFETY: `f` borrows the StreamMap's boxed closure, which outlives
    // every job submitted through it (pop/drain/Drop finish jobs first).
    let f = unsafe { &*ctx.f };
    // SAFETY: holding the chunk-0 claim makes this the only access to the
    // `UnsafeCell`s for this item.
    let item = unsafe { (*ctx.item.get()).take() };
    // lint: allow(CL003) reason="the item slot is filled at submit and emptied only here, under the unique chunk-0 claim — an empty slot means the claim protocol double-ran a chunk"
    let item = item.expect("item job claimed exactly once");
    match panic::catch_unwind(AssertUnwindSafe(move || f(item))) {
        // SAFETY: same unique claim as the `item` read above.
        Ok(r) => unsafe { *ctx.result.get() = Some(r) },
        Err(payload) => job.record_panic(0, payload),
    }
}

/// One submitted item: the pool job header plus the heap context it
/// points at. The context box must outlive the job (dropped only after
/// `finish_stream_job`).
struct InFlight<T, R> {
    job: Arc<Job>,
    ctx: Box<ItemCtx<T, R>>,
}

/// A bounded, order-preserving streaming map over the worker pool. See
/// the crate's `StreamMap` docs above for the contract; construct one with
/// [`Runtime::stream`] (or [`StreamMap::new`]).
pub struct StreamMap<'f, T: Send + 'static, R: Send + 'static> {
    f: Box<dyn Fn(T) -> R + Send + Sync + 'f>,
    threads: usize,
    cap: usize,
    /// Submitted items, oldest first — the reorder buffer itself.
    inflight: VecDeque<InFlight<T, R>>,
    _borrow: PhantomData<&'f ()>,
}

// SAFETY: moving a StreamMap moves the VecDeque and the Boxes, never the
// heap blocks the in-flight jobs point at (ItemCtx and the closure are
// both boxed). Items and results cross threads (`T: Send`, `R: Send`) and
// the closure is shared (`Sync`) and movable (`Send`).
unsafe impl<T: Send + 'static, R: Send + 'static> Send for StreamMap<'_, T, R> {}

impl<'f, T: Send + 'static, R: Send + 'static> StreamMap<'f, T, R> {
    /// A stream map running `f` on `rt`'s workers with at most `cap`
    /// items in flight (`cap` is clamped to ≥ 1).
    pub fn new(rt: &Runtime, cap: usize, f: impl Fn(T) -> R + Send + Sync + 'f) -> Self {
        StreamMap {
            f: Box::new(f),
            threads: rt.threads(),
            cap: cap.max(1),
            inflight: VecDeque::new(),
            _borrow: PhantomData,
        }
    }

    /// Items currently in flight (submitted, result not yet yielded).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The in-flight cap this map was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Submit one item. Returns `None` while the buffer has room; once
    /// `cap` items are in flight, completes and returns the **oldest**
    /// item's result (blocking on it if necessary — the caller runs it
    /// itself when no worker has picked it up). On a sequential runtime
    /// the item is mapped inline and its result returned immediately.
    pub fn push(&mut self, item: T) -> Option<R> {
        if self.threads <= 1 {
            return Some((self.f)(item));
        }
        let out = if self.inflight.len() >= self.cap { Some(self.pop_oldest()) } else { None };
        self.submit(item);
        out
    }

    /// Complete every in-flight item and return the results, oldest
    /// first (i.e. in input order).
    pub fn drain(&mut self) -> Vec<R> {
        let mut out = Vec::with_capacity(self.inflight.len());
        while !self.inflight.is_empty() {
            out.push(self.pop_oldest());
        }
        out
    }

    /// [`StreamMap::drain`], consuming the map.
    pub fn finish(mut self) -> Vec<R> {
        self.drain()
    }

    fn submit(&mut self, item: T) {
        // SAFETY: erases the closure's 'f lifetime for storage in ItemCtx;
        // every job is finished (and its ctx dropped) before `self.f` can
        // drop, because pop_oldest/drain/Drop all run finish_stream_job
        // first, so the pointer is never dereferenced after 'f ends.
        let f: *const (dyn Fn(T) -> R + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(T) -> R + Sync), &'static (dyn Fn(T) -> R + Sync)>(
                &*self.f,
            )
        };
        let ctx = Box::new(ItemCtx::<T, R> {
            item: UnsafeCell::new(Some(item)),
            result: UnsafeCell::new(None),
            f,
        });
        // SAFETY: `ctx` is boxed into the InFlight entry below and freed
        // only after pop_oldest/drain/Drop call finish_stream_job on this
        // job, satisfying submit_stream_job's keep-alive contract.
        let job = unsafe {
            pool::submit_stream_job(self.threads, run_item::<T, R>, &*ctx as *const _ as *const ())
        };
        self.inflight.push_back(InFlight { job, ctx });
    }

    /// Complete the oldest in-flight item and return its result,
    /// re-raising its panic if the closure panicked.
    fn pop_oldest(&mut self) -> R {
        // lint: allow(CL003) reason="both callers prove non-emptiness first: push only pops at in_flight >= cap >= 1, drain loops while !is_empty"
        let inf = self.inflight.pop_front().expect("pop_oldest on an empty buffer");
        if let Some(payload) = pool::finish_stream_job(&inf.job) {
            panic::resume_unwind(payload);
        }
        // SAFETY: finish_stream_job waited out every participant, so the
        // claimant's write to the result cell happens-before this read and
        // no other access can be live.
        let result = unsafe { (*inf.ctx.result.get()).take() };
        // lint: allow(CL003) reason="finish_stream_job returned no panic payload, so the item's single claimant completed f and stored the result"
        result.expect("one claimant wrote the result")
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for StreamMap<'_, T, R> {
    /// Complete (or run) every outstanding item so no job outlives its
    /// context; results are discarded and panics swallowed (propagating
    /// from `drop` would abort).
    fn drop(&mut self) {
        while let Some(inf) = self.inflight.pop_front() {
            let _ = pool::finish_stream_job(&inf.job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spin long enough that completion order scrambles under load.
    fn slow_square(x: u64) -> u64 {
        let mut acc = x;
        for _ in 0..((x % 5) * 400) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        x * x
    }

    fn run_stream(threads: usize, cap: usize, items: &[u64]) -> Vec<u64> {
        let rt = Runtime::new(threads);
        let mut sm = rt.stream(cap, |x: u64| slow_square(x));
        let mut got = Vec::new();
        for &x in items {
            if let Some(r) = sm.push(x) {
                got.push(r);
            }
        }
        got.extend(sm.finish());
        got
    }

    #[test]
    fn results_arrive_in_input_order_at_every_thread_count_and_cap() {
        let items: Vec<u64> = (0..173).map(|i| i * 7 % 101).collect();
        let expect: Vec<u64> = items.iter().map(|&x| slow_square(x)).collect();
        for threads in [1, 2, 4, 8] {
            for cap in [1, 2, 5, 64] {
                assert_eq!(run_stream(threads, cap, &items), expect, "threads={threads} cap={cap}");
            }
        }
    }

    #[test]
    fn sequential_runtime_maps_inline() {
        let rt = Runtime::sequential();
        let mut sm = rt.stream(4, |x: u32| x + 1);
        assert_eq!(sm.push(1), Some(2));
        assert_eq!(sm.push(2), Some(3));
        assert_eq!(sm.in_flight(), 0);
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn buffer_stays_bounded() {
        let rt = Runtime::new(4);
        let mut sm = rt.stream(3, |x: u64| slow_square(x));
        for x in 0..50u64 {
            sm.push(x);
            assert!(sm.in_flight() <= 3, "in_flight {} exceeds cap", sm.in_flight());
        }
        drop(sm);
    }

    #[test]
    fn cap_zero_clamps_to_one_and_first_push_neither_deadlocks_nor_panics() {
        // Regression: `cap = 0` must behave exactly like `cap = 1` — a
        // zero-capacity buffer would otherwise have no slot for the first
        // `push` to submit into. The clamp is part of the documented
        // contract of `StreamMap::new` / `Runtime::stream`.
        for threads in [1, 2, 4, 8] {
            let rt = Runtime::new(threads);
            let mut sm = rt.stream(0, |x: u64| slow_square(x));
            assert_eq!(sm.cap(), 1, "threads={threads}: cap 0 must clamp to 1");
            let items: Vec<u64> = (0..40).collect();
            let expect: Vec<u64> = items.iter().map(|&x| slow_square(x)).collect();
            let mut got = Vec::new();
            for &x in &items {
                if let Some(r) = sm.push(x) {
                    got.push(r);
                }
                assert!(sm.in_flight() <= 1, "threads={threads}: buffer exceeded clamped cap");
            }
            got.extend(sm.finish());
            assert_eq!(got, expect, "threads={threads}: cap-0 stream lost or reordered items");
        }
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let rt = Runtime::new(4);
        let sm = rt.stream(2, |x: u8| x);
        assert_eq!(sm.finish(), Vec::<u8>::new());
    }

    #[test]
    fn borrowed_state_is_shared_with_workers() {
        let table: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let rt = Runtime::new(4);
        let mut sm = rt.stream(4, |i: usize| table[i]);
        let mut got = Vec::new();
        for i in 0..100 {
            if let Some(r) = sm.push(i) {
                got.push(r);
            }
        }
        got.extend(sm.finish());
        assert_eq!(got, table);
    }

    #[test]
    fn panic_in_worker_resurfaces_on_pop_and_buffer_survives() {
        let rt = Runtime::new(4);
        let mut sm = rt.stream(2, |x: u64| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x * 10
        });
        let mut popped: Vec<u64> = Vec::new();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            for x in 0..10u64 {
                if let Some(r) = sm.push(x) {
                    popped.push(r);
                }
            }
            sm.drain()
        }));
        assert!(caught.is_err(), "panic must propagate to the popping thread");
        // Items before the panicking one surfaced in order.
        assert!(popped.iter().copied().eq((0..popped.len() as u64).map(|x| x * 10)));
        // The map is still usable (remaining in-flight items were cleaned
        // up by drain/Drop) and the pool is not poisoned.
        drop(sm);
        let rt2 = Runtime::new(4);
        let mut ok = rt2.stream(2, |x: u64| x + 1);
        assert_eq!(ok.push(41).or_else(|| ok.finish().pop()), Some(42));
    }

    #[test]
    fn one_poisoned_item_neither_deadlocks_nor_leaks() {
        // The "Fault semantics" contract: the unwinding pop consumes only
        // the poisoned slot. The survivors behind it are still in flight
        // on the *same* map afterwards — not leaked — and drain in input
        // order; the map stays usable.
        let rt = Runtime::new(4);
        let mut sm = rt.stream(8, |x: u64| {
            if x == 3 {
                panic!("poison at {x}");
            }
            x * 10
        });
        for x in 0..6u64 {
            assert_eq!(sm.push(x), None, "cap 8 must not pop during these pushes");
        }
        let first = panic::catch_unwind(AssertUnwindSafe(|| sm.drain()));
        assert!(first.is_err(), "the poisoned item's panic surfaces on the draining thread");
        // Items 0..3 were consumed by the unwound drain call (its local
        // results vec is gone with its stack); 4 and 5 survive in flight.
        assert_eq!(sm.in_flight(), 2);
        assert_eq!(sm.drain(), vec![40, 50]);
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn drop_with_items_in_flight_is_clean() {
        let rt = Runtime::new(4);
        let mut sm = rt.stream(8, slow_square);
        for x in 0..8u64 {
            sm.push(x);
        }
        drop(sm); // must not leak, dangle, or deadlock
        let rt2 = Runtime::new(4);
        assert_eq!(rt2.par_map(&[1u64, 2], |&x| x * 2), vec![2, 4]);
    }

    #[test]
    fn stream_inside_a_pool_worker_makes_progress() {
        // A StreamMap driven from inside a par_map task: the caller-
        // participates pop keeps it deadlock-free even when every worker
        // is busy with the outer job.
        let rt = Runtime::new(2);
        let outer: Vec<u64> = (0..8).collect();
        let expect: Vec<u64> =
            outer.iter().map(|&i| (0..20).map(|j| (i + j) * (i + j)).sum()).collect();
        let got = rt.par_map(&outer, |&i| {
            let mut sm = rt.stream(3, |j: u64| (i + j) * (i + j));
            let mut acc = 0u64;
            for j in 0..20 {
                if let Some(r) = sm.push(j) {
                    acc += r;
                }
            }
            acc + sm.finish().into_iter().sum::<u64>()
        });
        assert_eq!(got, expect);
    }
}
