//! The persistent worker pool behind `Runtime::par_map*`.
//!
//! One process-wide pool, created lazily by the first parallel call and
//! grown on demand (never shrunk, never torn down — workers park on a
//! condvar and cost nothing while idle). A parallel call is a
//! **chunk-claiming job**:
//!
//! 1. the caller pushes the job onto the pool queue and wakes workers;
//! 2. the caller itself claims and runs chunks until none remain
//!    (*caller participates* — this is what makes nested `par_map` from
//!    inside a pool worker deadlock-free: the nested caller drains its own
//!    job even when every other worker is busy);
//! 3. idle workers join as helpers, up to `threads - 1` of them;
//! 4. the caller waits until every participant has left the job, then
//!    collects the per-index result slots.
//!
//! ## Safety argument
//!
//! The job's borrowed state (`items`, `f`, the result slots) lives on the
//! caller's stack and is reached through a type-erased pointer, so the
//! whole design reduces to one invariant: **no participant dereferences
//! the context except between a successful chunk claim and the
//! participant-count decrement the caller waits on.**
//!
//! * Claims come from a monotonic `fetch_add` counter stored in the
//!   heap-allocated job header (`Arc<Job>`), never on the stack. Once the
//!   counter passes `n_chunks`, every future claim fails — and the caller
//!   only stops participating when its own claim fails, so after the
//!   caller moves on, a late helper can touch nothing but the `Arc`.
//! * Each successful claimant is counted in `active` (a mutex so the
//!   caller can condvar-wait on it). The caller returns only after
//!   `active == 0`, i.e. after every dereferencing participant is gone.
//! * Panics poison the claim counter *first* (`fetch_max(n_chunks)`), so
//!   a stopped job can never hand out another chunk, then record the
//!   lowest-indexed payload for deterministic re-raise.
//!
//! Each result slot `out[i]` is written by exactly one claimant (chunks
//! partition the index space), and those writes happen-before the caller's
//! reads via the `active` mutex.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Upper bound on pool workers, a guard against absurd `CERES_THREADS`
/// values; the pool grows to `threads - 1` as runtimes request capacity.
const MAX_POOL_WORKERS: usize = 128;

/// Scheduling counters behind the `runtime-stats` feature: zero-cost when
/// disabled, three relaxed atomic increments per event when enabled. Read
/// through [`crate::pool_stats`].
#[cfg(feature = "runtime-stats")]
pub(crate) mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Jobs pushed onto the pool queue (one per parallel call or per
    /// streamed item), whether or not a helper ever joined them.
    pub(crate) static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
    /// Pool workers that won a helper slot and participated in a job.
    pub(crate) static HELPER_JOINS: AtomicU64 = AtomicU64::new(0);
    /// Pool workers that woke for a job but lost the claim race (the job
    /// was exhausted or its helper slots were already taken).
    pub(crate) static STEAL_MISSES: AtomicU64 = AtomicU64::new(0);

    /// Record the outcome of one worker's `try_help` attempt.
    pub(crate) fn note_help_attempt(helped: bool) {
        if helped {
            HELPER_JOINS.fetch_add(1, Ordering::Relaxed);
        } else {
            STEAL_MISSES.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Poison-tolerant lock, used for every mutex in this module. The critical
/// sections here are tiny integer-and-pointer regions that cannot panic, so
/// a poisoned mutex can only mean a panic *elsewhere* unwound past a guard;
/// the protected state (monotonic counters, a panic slot, the job queue) is
/// still coherent, and continuing is strictly better than converting
/// someone else's fault into a second panic on the serve path.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased view of one `par_map_chunked` call, valid only while the
/// submitting caller is inside [`run`].
struct JobCtx<T, R, F> {
    items: *const T,
    n: usize,
    chunk: usize,
    f: *const F,
    slots: *mut Option<R>,
}

/// Heap-shared job header. Everything a participant touches *before*
/// winning a claim lives here; `ctx` is only dereferenced after one.
/// Shared with the [`crate::stream`] module, whose per-item jobs are
/// one-chunk instances of the same claim protocol.
pub(crate) struct Job {
    /// Next chunk index to claim (monotonic; `>= n_chunks` = exhausted).
    next: AtomicUsize,
    n_chunks: usize,
    /// Helpers admitted so far (the caller is not counted).
    helpers: AtomicUsize,
    helper_limit: usize,
    /// Lowest-indexed panic payload (deterministic re-raise).
    panic_slot: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    /// Participants currently inside [`Job::participate`]; guarded by a
    /// mutex (not an atomic) so the caller can condvar-wait for zero.
    active: Mutex<usize>,
    idle_cv: Condvar,
    /// Monomorphized chunk runner + its stack context.
    // SAFETY: the `unsafe fn` pointer is only invoked between a successful
    // chunk claim and the participant-count decrement (module-level
    // protocol), which is exactly the contract its pointee requires.
    run_chunk: unsafe fn(*const (), &Job, usize),
    ctx: *const (),
}

// SAFETY: `ctx` and the pointers inside it are only dereferenced under the
// claim protocol documented at module level; the pointee types are
// constrained by `run` to `T: Sync`, `R: Send`, `F: Sync`.
unsafe impl Send for Job {}
// SAFETY: same argument as `Send` above — shared access never touches
// `ctx` outside the claim protocol.
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run chunks until none remain. Never blocks.
    fn participate(&self) {
        *lock(&self.active) += 1;
        loop {
            let c = self.next.fetch_add(1, Ordering::SeqCst);
            if c >= self.n_chunks {
                break;
            }
            // SAFETY: successful claim; see the module-level argument.
            unsafe { (self.run_chunk)(self.ctx, self, c) };
        }
        let mut active = lock(&self.active);
        *active -= 1;
        if *active == 0 {
            self.idle_cv.notify_all();
        }
    }

    /// Block until every participant has left the job.
    fn wait_idle(&self) {
        let mut active = lock(&self.active);
        while *active > 0 {
            active = self.idle_cv.wait(active).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Would a fresh helper find work here?
    fn wants_help(&self) -> bool {
        self.next.load(Ordering::SeqCst) < self.n_chunks
            && self.helpers.load(Ordering::SeqCst) < self.helper_limit
    }

    /// Reserve a helper slot; a lost race returns `false`.
    fn try_help(&self) -> bool {
        if self.next.load(Ordering::SeqCst) >= self.n_chunks {
            return false;
        }
        if self.helpers.fetch_add(1, Ordering::SeqCst) >= self.helper_limit {
            self.helpers.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Poison further claims, then record the lowest-indexed panic.
    ///
    /// This is the pool's **fail-fast** containment layer: one panic
    /// abandons the job's remaining chunks and re-raises on the caller.
    /// The **isolating** layer ([`crate::Runtime::par_map_isolated`])
    /// catches unwinds inside the item closure, *below* this one, so a
    /// contained fault never reaches `record_panic` and the job runs to
    /// completion with per-item [`crate::JobFault`]s instead.
    pub(crate) fn record_panic(&self, item: usize, payload: Box<dyn Any + Send>) {
        self.next.fetch_max(self.n_chunks, Ordering::SeqCst);
        let mut slot = lock(&self.panic_slot);
        match &*slot {
            Some((j, _)) if *j <= item => {}
            _ => *slot = Some((item, payload)),
        }
    }
}

/// Run chunk `c` of the job: `f` over `items[c*chunk .. min(+chunk, n)]`,
/// results written to the per-index slots.
///
/// # Safety
/// Caller holds a successful claim on `c`, and the submitting thread is
/// still inside [`run`] (guaranteed by the claim protocol).
unsafe fn run_chunk<T, R, F>(ctx: *const (), job: &Job, c: usize)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // SAFETY: the submitting thread is still inside `run` (this fn's
    // contract), so `ctx` points at its live stack-allocated `JobCtx`, and
    // the `items`/`f` pointers inside it borrow arguments of that same
    // still-active `run` call.
    let ctx = unsafe { &*(ctx as *const JobCtx<T, R, F>) };
    // SAFETY: `items`/`n` came verbatim from a `&[T]` in `run`.
    let items = unsafe { std::slice::from_raw_parts(ctx.items, ctx.n) };
    // SAFETY: `f` borrows `run`'s `&F` argument, live for the same reason.
    let f = unsafe { &*ctx.f };
    let start = c * ctx.chunk;
    let end = (start + ctx.chunk).min(ctx.n);
    for (i, item) in items[start..end].iter().enumerate() {
        let i = start + i;
        match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
            // SAFETY: each index belongs to exactly one claimed chunk.
            Ok(r) => unsafe { *ctx.slots.add(i) = Some(r) },
            Err(payload) => {
                job.record_panic(i, payload);
                return;
            }
        }
    }
}

/// Execute one parallel map on the pool. `threads >= 2` (the sequential
/// fallback short-circuits in `Runtime::par_map_chunked`).
pub(crate) fn run<T, R, F>(items: &[T], chunk: usize, threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let ctx = JobCtx::<T, R, F> {
        items: items.as_ptr(),
        n,
        chunk,
        f: f as *const F,
        slots: slots.as_mut_ptr(),
    };
    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        n_chunks: n.div_ceil(chunk),
        helpers: AtomicUsize::new(0),
        helper_limit: threads - 1,
        panic_slot: Mutex::new(None),
        active: Mutex::new(0),
        idle_cv: Condvar::new(),
        run_chunk: run_chunk::<T, R, F>,
        ctx: &ctx as *const JobCtx<T, R, F> as *const (),
    });

    let pool = Pool::global();
    pool.ensure_workers(threads - 1);
    #[cfg(feature = "runtime-stats")]
    stats::JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    pool.submit(Arc::clone(&job));
    job.participate();
    pool.retire(&job);
    job.wait_idle();

    if let Some((_, payload)) = lock(&job.panic_slot).take() {
        panic::resume_unwind(payload);
    }
    // lint: allow(CL003) reason="chunks partition 0..n and wait_idle returned with no recorded panic, so every slot was written exactly once; an empty slot here is a broken claim protocol, not a recoverable state"
    slots.into_iter().map(|r| r.expect("every index was claimed exactly once")).collect()
}

/// Submit a one-chunk job (a single streamed item) to the pool and return
/// its header.
///
/// # Safety
/// The caller must eventually call [`finish_stream_job`] on the returned
/// header — and keep `ctx` alive (upholding `run_chunk`'s own contract)
/// until it does — or the pool's workers could dereference a dangling
/// context.
pub(crate) unsafe fn submit_stream_job(
    threads: usize,
    run_chunk: unsafe fn(*const (), &Job, usize),
    ctx: *const (),
) -> Arc<Job> {
    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        n_chunks: 1,
        helpers: AtomicUsize::new(0),
        // One chunk, so at most one helper is ever useful.
        helper_limit: 1,
        panic_slot: Mutex::new(None),
        active: Mutex::new(0),
        idle_cv: Condvar::new(),
        run_chunk,
        ctx,
    });
    let pool = Pool::global();
    pool.ensure_workers(threads.saturating_sub(1));
    #[cfg(feature = "runtime-stats")]
    stats::JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    pool.submit(Arc::clone(&job));
    job
}

/// Complete a job from [`submit_stream_job`]: the caller participates
/// (running the item inline if no worker claimed it yet), the job is
/// retired from the queue, and the call returns once every participant has
/// left — after which the job's context may be freed. Returns the recorded
/// panic payload, if the item's closure panicked.
pub(crate) fn finish_stream_job(job: &Arc<Job>) -> Option<Box<dyn Any + Send>> {
    job.participate();
    Pool::global().retire(job);
    job.wait_idle();
    lock(&job.panic_slot).take().map(|(_, payload)| payload)
}

/// The process-wide pool: a queue of in-flight jobs plus parked workers.
struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    n_workers: Mutex<usize>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            n_workers: Mutex::new(0),
        })
    }

    /// Grow the pool to at least `want` workers (capped, never shrunk).
    /// Spawn failure (thread exhaustion) is not fatal: the pool keeps the
    /// workers it has, and jobs still complete because the submitting
    /// caller always participates in its own job.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut n = lock(&self.n_workers);
        while *n < want {
            let spawned = std::thread::Builder::new()
                .name(format!("ceres-pool-{}", *n + 1))
                .spawn(move || self.worker_loop());
            match spawned {
                Ok(_) => *n += 1,
                Err(_) => break,
            }
        }
    }

    fn submit(&self, job: Arc<Job>) {
        lock(&self.queue).push_back(job);
        self.work_cv.notify_all();
    }

    /// Remove a finished job from the queue (late helpers already holding
    /// the `Arc` fail their claims harmlessly).
    fn retire(&self, job: &Arc<Job>) {
        let mut q = lock(&self.queue);
        if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, job)) {
            q.remove(pos);
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(j) = q.iter().find(|j| j.wants_help()).cloned() {
                        break j;
                    }
                    q = self.work_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let helped = job.try_help();
            #[cfg(feature = "runtime-stats")]
            stats::note_help_attempt(helped);
            if helped {
                job.participate();
            }
            // Exhausted or full jobs stop matching `wants_help`, so the
            // next loop iteration parks instead of spinning.
        }
    }
}

#[cfg(all(test, feature = "runtime-stats"))]
mod tests {
    use super::*;

    /// Never called: the tests below race for claims but run no chunks.
    ///
    /// # Safety
    /// Trivially safe — it dereferences nothing (and aborts the test run
    /// if a claim race ever reaches it).
    unsafe fn unreachable_chunk(_: *const (), _: &Job, _: usize) {
        unreachable!("claim-race tests never participate in a job");
    }

    fn job(next: usize, n_chunks: usize, helper_limit: usize) -> Job {
        Job {
            next: AtomicUsize::new(next),
            n_chunks,
            helpers: AtomicUsize::new(0),
            helper_limit,
            panic_slot: Mutex::new(None),
            active: Mutex::new(0),
            idle_cv: Condvar::new(),
            run_chunk: unreachable_chunk,
            ctx: std::ptr::null(),
        }
    }

    /// The `pool_steal_misses` counter read 0 in every committed bench
    /// record — true (a 2-thread run has one pool worker, so nobody ever
    /// races it), but indistinguishable from the counter being dead code.
    /// A scheduler-driven provocation is hopeless to pin down on an
    /// arbitrary CI box (on a 1-core machine the losing window is a few
    /// instructions wide; 10k contended stream pushes never hit it), so
    /// these tests drive the worker's exact sequence —
    /// `wants_help` → `try_help` → `note_help_attempt` (the
    /// [`Pool::worker_loop`] body) — through both losing interleavings
    /// directly, proving the counter moves whenever a worker loses.
    ///
    /// Counters are process-global and other tests in this binary also run
    /// pool work, so every assertion is a monotonic `>=` on a before/after
    /// delta, never an exact equality.
    #[test]
    fn losing_the_helper_slot_race_records_a_steal_miss() {
        let j = job(0, 100, 1);
        assert!(j.wants_help(), "both racers saw claimable work under the queue lock");

        let joins0 = stats::HELPER_JOINS.load(Ordering::Relaxed);
        let misses0 = stats::STEAL_MISSES.load(Ordering::Relaxed);

        // Two workers woke for the same one-helper job; the slot admits one.
        let first = j.try_help();
        stats::note_help_attempt(first);
        let second = j.try_help();
        stats::note_help_attempt(second);

        assert!(first, "the first racer wins the only helper slot");
        assert!(!second, "the second racer must lose the slot race");
        assert!(stats::HELPER_JOINS.load(Ordering::Relaxed) >= joins0 + 1);
        assert!(
            stats::STEAL_MISSES.load(Ordering::Relaxed) >= misses0 + 1,
            "a lost helper-slot race must move the steal-miss counter"
        );
    }

    #[test]
    fn waking_for_an_exhausted_job_records_a_steal_miss() {
        // The worker passed `wants_help` under the queue lock, then the
        // caller (or another helper) claimed the last chunk before its
        // `try_help` landed: `next` has reached `n_chunks`.
        let j = job(1, 1, 1);
        let misses0 = stats::STEAL_MISSES.load(Ordering::Relaxed);

        let helped = j.try_help();
        stats::note_help_attempt(helped);

        assert!(!helped, "an exhausted job admits no helpers");
        assert!(
            stats::STEAL_MISSES.load(Ordering::Relaxed) >= misses0 + 1,
            "waking for an exhausted job must move the steal-miss counter"
        );
    }
}
