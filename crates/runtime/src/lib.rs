//! # ceres-runtime
//!
//! Deterministic parallel execution for the CERES workspace.
//!
//! The paper runs CERES over 440k+ CommonCrawl pages across hundreds of
//! sites; every unit of that work (page parse, cluster job, site run) is
//! independent. This crate provides the one primitive all of them share: an
//! **index-ordered parallel map** over a slice, executed on a persistent
//! **worker pool** (spawn-per-call dominates at micro scale) with
//! chunk-size autotuning.
//!
//! ## The determinism contract
//!
//! For a pure `f`, `Runtime::par_map(items, f)` returns **exactly** the
//! vector the sequential loop `items.iter().map(f).collect()` returns, for
//! every thread count and every chunk size:
//!
//! * each `f(&items[i])` is invoked exactly once, with nothing shared
//!   between invocations;
//! * results are merged by **item index**, never by completion order;
//! * `threads = 1` short-circuits to the plain sequential loop (no pool,
//!   no threads), so the fallback is byte-identical by construction and
//!   the parallel path is byte-identical by the indexed merge.
//!
//! Worker panics propagate to the caller: the payload of the
//! lowest-indexed panicking item is re-raised (deterministic even when
//! several items panic), and remaining work is abandoned promptly. For
//! fallible stages prefer [`Runtime::try_par_map`], which returns the
//! lowest-indexed `Err` instead of unwinding.
//!
//! ## Fault isolation
//!
//! The fail-fast contract above is right for pure pipeline stages, where a
//! panic means a bug and the whole run is suspect. Ingest and serve paths
//! face the opposite regime: one poisoned page must not take down the
//! batch. [`Runtime::par_map_isolated`] and
//! [`Runtime::try_par_map_isolated`] wrap every item invocation in
//! [`std::panic::catch_unwind`], so a panicking item yields a typed
//! [`JobFault`] *in its slot* while every other item still runs and
//! returns its result. Outcomes come back in item order (same indexed
//! merge), so fault ordering is deterministic — scanning the returned
//! vector finds the lowest-indexed fault first at any thread count — and
//! fault-free inputs produce byte-identical results to [`Runtime::par_map`].
//!
//! ## The worker pool
//!
//! Parallel calls execute on a process-wide pool that is created lazily
//! and grown on demand (never shrunk). A call's work is a *chunk-claiming
//! job*: the calling thread pushes the job on the pool's queue, then
//! **participates itself**, claiming chunks until none remain; idle pool
//! workers join in (up to `threads - 1` helpers). Because the caller
//! always drains its own job, a `par_map` issued from *inside* a pool
//! worker (nested parallelism, e.g. per-row feature collection inside a
//! per-cluster training job) makes progress even when every other worker
//! is busy — the pool cannot deadlock and never oversubscribes beyond its
//! fixed worker set.
//!
//! [`Runtime::par_map_spawn_chunked`] keeps the original
//! spawn-scoped-threads-per-call execution path; the equivalence suite
//! pins pool output to spawn output byte-for-byte.
//!
//! ## Choosing the thread count
//!
//! [`Runtime::with_threads`] resolves, in order: an explicit programmatic
//! override (e.g. `CeresConfig::threads`), the `CERES_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. `0` or an
//! unparsable value means "not set" at either level.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic;

mod pool;
mod stream;

pub use stream::StreamMap;

/// A contained panic from one item of an isolated parallel map
/// ([`Runtime::par_map_isolated`] / [`Runtime::try_par_map_isolated`]).
///
/// Carries the index of the item whose closure panicked and the raw panic
/// payload, exactly as `catch_unwind` delivered it. Because isolated maps
/// return outcomes in item order, faults are deterministically ordered:
/// the first `Err` found when scanning the result vector is the
/// lowest-indexed fault at any thread count.
pub struct JobFault {
    /// Index of the item whose invocation panicked.
    pub index: usize,
    /// The raw panic payload (what `panic!` carried).
    pub payload: Box<dyn std::any::Any + Send>,
}

impl JobFault {
    /// The panic message, when the payload is a string (the overwhelmingly
    /// common case: `panic!("…")` carries `String` or `&'static str`).
    /// Non-string payloads yield a fixed placeholder.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

impl std::fmt::Debug for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobFault")
            .field("index", &self.index)
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message())
    }
}

/// Why one item of [`Runtime::try_par_map_isolated`] failed: the closure
/// returned `Err`, or it panicked and the panic was contained.
#[derive(Debug)]
pub enum IsolatedError<E> {
    /// The closure returned this error.
    Err(E),
    /// The closure panicked; the payload was contained as a [`JobFault`].
    Panic(JobFault),
}

/// Environment variable consulted when no programmatic thread count is
/// given. `0`, empty, or unparsable values fall through to the machine's
/// available parallelism.
pub const THREADS_ENV: &str = "CERES_THREADS";

/// A handle describing how parallel stages execute.
///
/// Construction is free: the backing worker pool is process-wide, created
/// lazily by the first parallel call and shared by every `Runtime`, so a
/// `Runtime` can be rebuilt per call site without cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// Equivalent to [`Runtime::from_env`].
    fn default() -> Self {
        Runtime::from_env()
    }
}

impl Runtime {
    /// A runtime with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Runtime {
        Runtime { threads: threads.max(1) }
    }

    /// The sequential runtime: `par_map` degenerates to a plain loop.
    pub fn sequential() -> Runtime {
        Runtime::new(1)
    }

    /// Thread count from `CERES_THREADS`, else available parallelism.
    pub fn from_env() -> Runtime {
        Runtime::with_threads(None)
    }

    /// Resolve a thread count: explicit override → `CERES_THREADS` env →
    /// available parallelism. `Some(0)` counts as "no override".
    pub fn with_threads(threads: Option<usize>) -> Runtime {
        let resolved =
            threads.filter(|&t| t > 0).or_else(env_threads).unwrap_or_else(available_threads);
        Runtime::new(resolved)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Map `f` over `items` on up to `threads` workers; results come back
    /// in item order (see the crate-level determinism contract). The chunk
    /// size is autotuned from `items.len()` (see [`auto_chunk`]); output is
    /// identical for every chunk size.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_chunked(items, auto_chunk(items.len(), self.threads), f)
    }

    /// [`Runtime::par_map`] with workers claiming `chunk` consecutive items
    /// at a time — fewer claim operations for many small items. Output is
    /// identical to `par_map` for every `chunk` value. Runs on the
    /// persistent worker pool; the calling thread participates, so nesting
    /// `par_map` inside a parallel task is safe and productive.
    pub fn par_map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let chunk = chunk.max(1);
        // No more workers than there are chunks to claim.
        let threads = self.threads.min(n.div_ceil(chunk));
        if threads <= 1 {
            // The byte-identical sequential fallback: same calls, same order.
            return items.iter().map(f).collect();
        }
        pool::run(items, chunk, threads, &f)
    }

    /// Fallible [`Runtime::par_map`]: every item is attempted, and the
    /// **lowest-indexed** `Err` is returned (deterministic at any thread
    /// count); `Ok` carries the results in item order. Panics still
    /// propagate as panics.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        // The indexed merge makes `collect` see errors in item order, so
        // the first one it stops at is the lowest-indexed failure.
        self.par_map(items, f).into_iter().collect()
    }

    /// Panic-isolated [`Runtime::par_map`]: every item is attempted, and an
    /// item whose closure panics yields `Err(`[`JobFault`]`)` in its slot
    /// instead of unwinding the whole call. Outcomes come back in item
    /// order, so fault ordering is deterministic (the lowest-indexed fault
    /// is found first when scanning), and on fault-free input the unwrapped
    /// results are byte-identical to `par_map` at any thread count.
    ///
    /// The pool itself is untouched by contained panics: the unwind is
    /// caught *inside* the item closure, below the pool's own fail-fast
    /// panic plumbing, so no job poisoning occurs and later calls see a
    /// clean pool.
    pub fn par_map_isolated<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, JobFault>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // AssertUnwindSafe: `f` is `&F + Sync` and items are `&T`; a caught
        // unwind cannot leave either in a broken state visible elsewhere
        // (the same assertion the pool's per-item catch makes).
        let caught =
            self.par_map(items, |item| panic::catch_unwind(panic::AssertUnwindSafe(|| f(item))));
        caught
            .into_iter()
            .enumerate()
            .map(|(index, r)| r.map_err(|payload| JobFault { index, payload }))
            .collect()
    }

    /// Panic-isolated [`Runtime::try_par_map`]: every item is attempted;
    /// an item's `Err(e)` comes back as [`IsolatedError::Err`] in its slot
    /// and a contained panic as [`IsolatedError::Panic`]. Outcomes are in
    /// item order (deterministic fault ordering, lowest index first when
    /// scanning); fault-free, `Err`-free input is byte-identical to the
    /// unwrapped `try_par_map` result at any thread count.
    pub fn try_par_map_isolated<T, R, E, F>(
        &self,
        items: &[T],
        f: F,
    ) -> Vec<Result<R, IsolatedError<E>>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.par_map_isolated(items, f)
            .into_iter()
            .map(|slot| match slot {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(e)) => Err(IsolatedError::Err(e)),
                Err(fault) => Err(IsolatedError::Panic(fault)),
            })
            .collect()
    }

    /// A bounded, order-preserving streaming map (the runtime's *reorder
    /// buffer*): [`StreamMap::push`] hands items to the pool one at a
    /// time, at most `cap` are in flight at once, and results come back
    /// in input order regardless of completion order. `cap = 0` is
    /// clamped to 1 (a zero-capacity buffer could never accept a push);
    /// the clamp is observable via [`StreamMap::cap`]. Use it to overlap
    /// a producer loop (fetch, decompress, read) with per-item work the
    /// pool runs — see the [`stream`](crate::StreamMap) docs for the
    /// determinism contract.
    pub fn stream<'f, T, R>(
        &self,
        cap: usize,
        f: impl Fn(T) -> R + Send + Sync + 'f,
    ) -> StreamMap<'f, T, R>
    where
        T: Send,
        R: Send,
    {
        StreamMap::new(self, cap, f)
    }

    /// The original spawn-scoped-threads-per-call execution path, kept as
    /// the reference implementation the pool is tested against (and for
    /// callers that must not touch the shared pool). Output is
    /// byte-identical to [`Runtime::par_map_chunked`].
    pub fn par_map_spawn_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        use std::panic::AssertUnwindSafe;
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n = items.len();
        let chunk = chunk.max(1);
        let threads = self.threads.min(n.div_ceil(chunk));
        if threads <= 1 {
            return items.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Lowest-indexed panic payload wins; only touched on the panic path.
        let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items[start..end].iter().enumerate() {
                                let i = start + i;
                                match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                                    Ok(r) => local.push((i, r)),
                                    Err(payload) => {
                                        stop.store(true, Ordering::Relaxed);
                                        let mut slot = panicked.lock().unwrap();
                                        match &*slot {
                                            Some((j, _)) if *j <= i => {}
                                            _ => *slot = Some((i, payload)),
                                        }
                                        return local;
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Worker closures never unwind (panics are caught above);
                // a join error would be a runtime bug, not a user panic.
                parts.push(h.join().expect("ceres-runtime worker did not unwind"));
            }
        });

        if let Some((_, payload)) = panicked.into_inner().unwrap() {
            panic::resume_unwind(payload);
        }

        // Ordered merge: scatter completion-ordered parts back by index.
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for (i, r) in parts.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every index was claimed exactly once")).collect()
    }
}

/// Chunk-size autotuning for [`Runtime::par_map`]: aim for several chunks
/// per worker (load balance for uneven items) without letting one-item
/// chunks drown in claim traffic. Chunk size never affects output, only
/// scheduling granularity.
pub fn auto_chunk(n: usize, threads: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (n / (threads.max(1) * 8)).clamp(1, 64)
}

/// [`auto_chunk`] for **coarse** tasks — items that each carry substantial,
/// possibly uneven work (a gradient block, an interning shard, a per-cluster
/// training job). Claim traffic is negligible next to the per-item cost, so
/// the tuning goes the other way: chunks stay tiny (≤ 4 items) to maximize
/// load balance, reaching 1-item chunks as soon as there are fewer than
/// ~32 items per worker. Like `auto_chunk`, the value never affects output,
/// only scheduling granularity.
pub fn auto_chunk_coarse(n: usize, threads: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (n / (threads.max(1) * 32)).clamp(1, 4)
}

/// Snapshot of the pool's scheduling counters (the `runtime-stats`
/// feature). Counters are process-wide and monotonic since process start
/// (or the last [`reset_pool_stats`]).
#[cfg(feature = "runtime-stats")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs pushed onto the pool queue: one per parallel call that reached
    /// the pool, plus one per streamed [`StreamMap`] item.
    pub jobs_executed: u64,
    /// Pool workers that won a helper slot and joined a job.
    pub helper_joins: u64,
    /// Pool workers that woke for a job but lost the claim race.
    pub steal_misses: u64,
}

/// Read the pool's scheduling counters. Only present with the
/// `runtime-stats` feature; the counters cost three relaxed atomic
/// increments per scheduling event when enabled and nothing when not.
#[cfg(feature = "runtime-stats")]
pub fn pool_stats() -> PoolStats {
    use std::sync::atomic::Ordering;
    PoolStats {
        jobs_executed: pool::stats::JOBS_EXECUTED.load(Ordering::Relaxed),
        helper_joins: pool::stats::HELPER_JOINS.load(Ordering::Relaxed),
        steal_misses: pool::stats::STEAL_MISSES.load(Ordering::Relaxed),
    }
}

/// Zero the pool's scheduling counters (e.g. between bench phases).
#[cfg(feature = "runtime-stats")]
pub fn reset_pool_stats() {
    use std::sync::atomic::Ordering;
    pool::stats::JOBS_EXECUTED.store(0, Ordering::Relaxed);
    pool::stats::HELPER_JOINS.store(0, Ordering::Relaxed);
    pool::stats::STEAL_MISSES.store(0, Ordering::Relaxed);
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV).ok()?.trim().parse::<usize>().ok().filter(|&t| t > 0)
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map(&items, |&x| x * 3), expect, "threads={threads}");
            for chunk in [1, 4, 1000] {
                assert_eq!(
                    rt.par_map_chunked(&items, chunk, |&x| x * 3),
                    expect,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential_fallback_exactly() {
        // Non-trivial per-item output: formatting exercises byte identity.
        let items: Vec<u64> = (0..100).map(|i| i * 7919).collect();
        let f = |&x: &u64| format!("{:x}:{}", x.wrapping_mul(0x9E3779B97F4A7C15), x % 13);
        let serial = Runtime::sequential().par_map(&items, f);
        let parallel = Runtime::new(8).par_map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_path_matches_spawn_path_exactly() {
        // The persistent pool and the spawn-per-call reference must agree
        // byte-for-byte at every thread count and chunk size.
        let items: Vec<u64> = (0..311u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let f = |&x: &u64| format!("{:x}|{}", x.rotate_left(17), x % 101);
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            for chunk in [1, 3, 64, 1000] {
                assert_eq!(
                    rt.par_map_chunked(&items, chunk, f),
                    rt.par_map_spawn_chunked(&items, chunk, f),
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn nested_par_map_completes_and_is_deterministic() {
        // A parallel task that itself fans out on the pool: the inner call
        // must make progress even when every worker is busy with the outer
        // job (the caller-participates guarantee).
        let outer: Vec<usize> = (0..16).collect();
        let rt = Runtime::new(4);
        let expect: Vec<usize> = outer.iter().map(|&i| (0..50).map(|j| i * j).sum()).collect();
        let got = rt.par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..50).collect();
            rt.par_map(&inner, |&j| i * j).into_iter().sum::<usize>()
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn try_par_map_returns_lowest_indexed_error() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let ok: Result<Vec<usize>, String> = rt.try_par_map(&items, |&x| Ok(x * 2));
            assert_eq!(ok.unwrap()[50], 100, "threads={threads}");
            let err: Result<Vec<usize>, String> =
                rt.try_par_map(
                    &items,
                    |&x| {
                        if x % 7 == 3 {
                            Err(format!("bad {x}"))
                        } else {
                            Ok(x)
                        }
                    },
                );
            // Items 3, 10, 17, … fail; the lowest index must win at any
            // thread count.
            assert_eq!(err.unwrap_err(), "bad 3", "threads={threads}");
        }
    }

    #[test]
    fn auto_chunk_is_sane() {
        assert_eq!(auto_chunk(0, 4), 1);
        assert_eq!(auto_chunk(1, 4), 1);
        assert_eq!(auto_chunk(10, 4), 1);
        assert!(auto_chunk(10_000, 4) > 1);
        assert!(auto_chunk(usize::MAX, 1) <= 64);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(Runtime::new(4).par_map(&items, |&x| x).is_empty());
        assert!(Runtime::sequential().par_map_chunked(&items, 16, |&x| x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(Runtime::new(8).par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..64).collect();
        let rt = Runtime::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            rt.par_map(&items, |&x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 37");
    }

    #[test]
    fn lowest_index_panic_wins_when_all_items_panic() {
        let items: Vec<usize> = (0..32).collect();
        // chunk=1 so index 0 is its own claim unit: whichever participant
        // claims it records it, and lower indexes always win the slot.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::new(2).par_map_chunked(&items, 1, |&x| -> usize { panic!("item {x}") })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "item 0");
    }

    #[test]
    fn pool_panic_then_reuse_is_clean() {
        // A panicking job must not poison the pool for later jobs.
        let items: Vec<usize> = (0..64).collect();
        let rt = Runtime::new(4);
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            rt.par_map(&items, |&x| -> usize { panic!("die {x}") })
        }))
        .expect_err("must panic");
        let expect: Vec<usize> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(rt.par_map(&items, |&x| x + 1), expect);
    }

    #[test]
    fn sequential_panic_propagates_too() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::sequential().par_map(&[1u8], |_| -> u8 { panic!("serial boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_resolution_clamps_and_overrides() {
        // Env-independent resolution only; env-reading assertions live in
        // env_variable_sets_the_default_thread_count, the single test
        // allowed to touch the (process-global) environment.
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::new(6).threads(), 6);
        assert!(Runtime::sequential().is_sequential());
        assert_eq!(Runtime::with_threads(Some(3)).threads(), 3);
    }

    #[test]
    fn env_variable_sets_the_default_thread_count() {
        // The ONLY test that reads or writes CERES_THREADS: concurrent
        // getenv during setenv is a data race on glibc, so env access must
        // not span test threads. The original value is restored at the end
        // (the CI matrix pins CERES_THREADS process-wide).
        let saved = std::env::var(THREADS_ENV).ok();
        // Some(0) is "no override": resolution falls through to env/machine,
        // which is always ≥ 1.
        assert!(Runtime::with_threads(Some(0)).threads() >= 1);
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Runtime::from_env().threads(), 3);
        assert_eq!(Runtime::with_threads(None).threads(), 3);
        // Programmatic override beats the env var.
        assert_eq!(Runtime::with_threads(Some(2)).threads(), 2);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Runtime::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Runtime::from_env().threads() >= 1);
        match saved {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn isolated_map_contains_panics_per_item() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let out = rt.par_map_isolated(&items, |&x| {
                if x % 13 == 5 {
                    panic!("poison {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len(), "threads={threads}");
            for (i, slot) in out.iter().enumerate() {
                if i % 13 == 5 {
                    let fault = slot.as_ref().expect_err("poisoned item must fault");
                    assert_eq!(fault.index, i, "threads={threads}");
                    assert_eq!(fault.message(), format!("poison {i}"), "threads={threads}");
                } else {
                    assert_eq!(*slot.as_ref().expect("clean item must succeed"), i * 2);
                }
            }
            // Deterministic fault ordering: scanning finds index 5 first.
            let first = out.iter().find_map(|s| s.as_ref().err()).expect("faults exist");
            assert_eq!(first.index, 5, "threads={threads}");
        }
    }

    #[test]
    fn isolated_map_is_byte_identical_on_fault_free_input() {
        let items: Vec<u64> = (0..211u64).map(|i| i.wrapping_mul(48271)).collect();
        let f = |&x: &u64| format!("{:x}~{}", x.rotate_right(9), x % 17);
        let plain = Runtime::sequential().par_map(&items, f);
        for threads in [1, 2, 8] {
            let isolated: Vec<String> = Runtime::new(threads)
                .par_map_isolated(&items, f)
                .into_iter()
                .map(|r| r.expect("fault-free input"))
                .collect();
            assert_eq!(isolated, plain, "threads={threads}");
        }
    }

    #[test]
    fn isolated_map_leaves_the_pool_clean_for_later_jobs() {
        let items: Vec<usize> = (0..32).collect();
        let rt = Runtime::new(4);
        let all_faults = rt.par_map_isolated(&items, |&x| -> usize { panic!("die {x}") });
        assert!(all_faults.iter().all(|r| r.is_err()));
        // Every index carries its own fault (no job-level poisoning).
        for (i, r) in all_faults.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap_err().index, i);
        }
        let expect: Vec<usize> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(rt.par_map(&items, |&x| x + 1), expect);
    }

    #[test]
    fn try_isolated_map_separates_errors_from_panics() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 2, 8] {
            let out: Vec<Result<usize, IsolatedError<String>>> = Runtime::new(threads)
                .try_par_map_isolated(&items, |&x| {
                    if x % 10 == 3 {
                        Err(format!("reject {x}"))
                    } else if x % 10 == 7 {
                        panic!("explode {x}");
                    } else {
                        Ok(x + 100)
                    }
                });
            for (i, slot) in out.iter().enumerate() {
                match (i % 10, slot) {
                    (3, Err(IsolatedError::Err(e))) => assert_eq!(e, &format!("reject {i}")),
                    (7, Err(IsolatedError::Panic(fault))) => {
                        assert_eq!(fault.index, i);
                        assert_eq!(fault.message(), format!("explode {i}"));
                    }
                    (_, Ok(v)) => assert_eq!(*v, i + 100),
                    other => panic!("unexpected slot {i}: {other:?} (threads={threads})"),
                }
            }
        }
    }

    #[test]
    fn job_fault_formats_usefully() {
        let fault = Runtime::sequential()
            .par_map_isolated(&[0u8], |_| -> u8 { panic!("static message") })
            .remove(0)
            .expect_err("must fault");
        assert_eq!(fault.message(), "static message");
        assert_eq!(format!("{fault}"), "item 0 panicked: static message");
        assert!(format!("{fault:?}").contains("static message"));
        // Non-string payloads degrade to a placeholder, never a panic.
        let odd = Runtime::sequential()
            .par_map_isolated(&[0u8], |_| -> u8 { std::panic::panic_any(42usize) })
            .remove(0)
            .expect_err("must fault");
        assert_eq!(odd.message(), "<non-string panic payload>");
    }

    #[test]
    fn borrowed_state_is_shared_not_cloned() {
        // par_map must work with closures that only borrow (&Fn + Sync):
        // a lookup table shared by reference across all workers.
        let table: Vec<u64> = (0..1000).map(|i| i * i).collect();
        let idx: Vec<usize> = (0..1000).rev().collect();
        let out = Runtime::new(4).par_map(&idx, |&i| table[i]);
        assert_eq!(out[0], 999 * 999);
        assert_eq!(out[999], 0);
    }
}
