//! # ceres-runtime
//!
//! Deterministic parallel execution for the CERES workspace.
//!
//! The paper runs CERES over 440k+ CommonCrawl pages across hundreds of
//! sites; every unit of that work (page parse, cluster job, site run) is
//! independent. This crate provides the one primitive all of them share: an
//! **index-ordered parallel map** over a slice, built on scoped threads —
//! no external dependencies, no persistent pool, no unsafe.
//!
//! ## The determinism contract
//!
//! For a pure `f`, `Runtime::par_map(items, f)` returns **exactly** the
//! vector the sequential loop `items.iter().map(f).collect()` returns, for
//! every thread count:
//!
//! * each `f(&items[i])` is invoked exactly once, with nothing shared
//!   between invocations;
//! * results are merged by **item index**, never by completion order;
//! * `threads = 1` short-circuits to the plain sequential loop (no threads
//!   are spawned at all), so the fallback is byte-identical by construction
//!   and the parallel path is byte-identical by the ordered merge.
//!
//! Worker panics propagate to the caller: the payload of the
//! lowest-indexed panicking item is re-raised (deterministic even when
//! several items panic), and remaining work is abandoned promptly.
//!
//! ## Choosing the thread count
//!
//! [`Runtime::with_threads`] resolves, in order: an explicit programmatic
//! override (e.g. `CeresConfig::threads`), the `CERES_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. `0` or an
//! unparsable value means "not set" at either level.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted when no programmatic thread count is
/// given. `0`, empty, or unparsable values fall through to the machine's
/// available parallelism.
pub const THREADS_ENV: &str = "CERES_THREADS";

/// A handle describing how parallel stages execute.
///
/// Construction is free: no threads exist until a `par_map*` call needs
/// them, and all threads are joined before the call returns (scoped), so a
/// `Runtime` can be rebuilt per call site without cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// Equivalent to [`Runtime::from_env`].
    fn default() -> Self {
        Runtime::from_env()
    }
}

impl Runtime {
    /// A runtime with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Runtime {
        Runtime { threads: threads.max(1) }
    }

    /// The sequential runtime: `par_map` degenerates to a plain loop.
    pub fn sequential() -> Runtime {
        Runtime::new(1)
    }

    /// Thread count from `CERES_THREADS`, else available parallelism.
    pub fn from_env() -> Runtime {
        Runtime::with_threads(None)
    }

    /// Resolve a thread count: explicit override → `CERES_THREADS` env →
    /// available parallelism. `Some(0)` counts as "no override".
    pub fn with_threads(threads: Option<usize>) -> Runtime {
        let resolved =
            threads.filter(|&t| t > 0).or_else(env_threads).unwrap_or_else(available_threads);
        Runtime::new(resolved)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Map `f` over `items` on up to `threads` workers; results come back
    /// in item order (see the crate-level determinism contract).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_chunked(items, 1, f)
    }

    /// [`Runtime::par_map`] with workers claiming `chunk` consecutive items
    /// at a time — fewer atomic operations for many small items. Output is
    /// identical to `par_map` for every `chunk` value.
    pub fn par_map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let chunk = chunk.max(1);
        // No more workers than there are chunks to claim.
        let threads = self.threads.min(n.div_ceil(chunk));
        if threads <= 1 {
            // The byte-identical sequential fallback: same calls, same order.
            return items.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Lowest-indexed panic payload wins; only touched on the panic path.
        let panicked: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items[start..end].iter().enumerate() {
                                let i = start + i;
                                match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                                    Ok(r) => local.push((i, r)),
                                    Err(payload) => {
                                        stop.store(true, Ordering::Relaxed);
                                        let mut slot = panicked.lock().unwrap();
                                        match &*slot {
                                            Some((j, _)) if *j <= i => {}
                                            _ => *slot = Some((i, payload)),
                                        }
                                        return local;
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Worker closures never unwind (panics are caught above);
                // a join error would be a runtime bug, not a user panic.
                parts.push(h.join().expect("ceres-runtime worker did not unwind"));
            }
        });

        if let Some((_, payload)) = panicked.into_inner().unwrap() {
            panic::resume_unwind(payload);
        }

        // Ordered merge: scatter completion-ordered parts back by index.
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for (i, r) in parts.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every index was claimed exactly once")).collect()
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV).ok()?.trim().parse::<usize>().ok().filter(|&t| t > 0)
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map(&items, |&x| x * 3), expect, "threads={threads}");
            for chunk in [1, 4, 1000] {
                assert_eq!(
                    rt.par_map_chunked(&items, chunk, |&x| x * 3),
                    expect,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential_fallback_exactly() {
        // Non-trivial per-item output: formatting exercises byte identity.
        let items: Vec<u64> = (0..100).map(|i| i * 7919).collect();
        let f = |&x: &u64| format!("{:x}:{}", x.wrapping_mul(0x9E3779B97F4A7C15), x % 13);
        let serial = Runtime::sequential().par_map(&items, f);
        let parallel = Runtime::new(8).par_map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(Runtime::new(4).par_map(&items, |&x| x).is_empty());
        assert!(Runtime::sequential().par_map_chunked(&items, 16, |&x| x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(Runtime::new(8).par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..64).collect();
        let rt = Runtime::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            rt.par_map(&items, |&x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 37");
    }

    #[test]
    fn lowest_index_panic_wins_when_all_items_panic() {
        let items: Vec<usize> = (0..32).collect();
        // threads=2 so index 0 is always claimed before stop is observed.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::new(2).par_map(&items, |&x| -> usize { panic!("item {x}") })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "item 0");
    }

    #[test]
    fn sequential_panic_propagates_too() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::sequential().par_map(&[1u8], |_| -> u8 { panic!("serial boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_resolution_clamps_and_overrides() {
        // Env-independent resolution only; env-reading assertions live in
        // env_variable_sets_the_default_thread_count, the single test
        // allowed to touch the (process-global) environment.
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::new(6).threads(), 6);
        assert!(Runtime::sequential().is_sequential());
        assert_eq!(Runtime::with_threads(Some(3)).threads(), 3);
    }

    #[test]
    fn env_variable_sets_the_default_thread_count() {
        // The ONLY test that reads or writes CERES_THREADS: concurrent
        // getenv during setenv is a data race on glibc, so env access must
        // not span test threads. The original value is restored at the end
        // (the CI matrix pins CERES_THREADS process-wide).
        let saved = std::env::var(THREADS_ENV).ok();
        // Some(0) is "no override": resolution falls through to env/machine,
        // which is always ≥ 1.
        assert!(Runtime::with_threads(Some(0)).threads() >= 1);
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Runtime::from_env().threads(), 3);
        assert_eq!(Runtime::with_threads(None).threads(), 3);
        // Programmatic override beats the env var.
        assert_eq!(Runtime::with_threads(Some(2)).threads(), 2);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Runtime::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Runtime::from_env().threads() >= 1);
        match saved {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn borrowed_state_is_shared_not_cloned() {
        // par_map must work with closures that only borrow (&Fn + Sync):
        // a lookup table shared by reference across all workers.
        let table: Vec<u64> = (0..1000).map(|i| i * i).collect();
        let idx: Vec<usize> = (0..1000).rev().collect();
        let out = Runtime::new(4).par_map(&idx, |&i| table[i]);
        assert_eq!(out[0], 999 * 999);
        assert_eq!(out[999], 0);
    }
}
