//! The ontology: entity types and relation predicates (paper §2.1, "the
//! ontology defines the semantics of the relation predicates").

use std::fmt;

/// Identifier of an entity type (e.g. `Person`, `Film`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityTypeId(pub u16);

/// Identifier of a relation predicate (e.g. `film.wasDirectedBy.person`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u16);

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Definition of one predicate.
#[derive(Debug, Clone)]
pub struct PredDef {
    pub name: String,
    /// Entity type of valid subjects.
    pub subject_type: EntityTypeId,
    /// Whether a subject may hold many values for this predicate
    /// (`hasCastMember`) or at most one (`releaseYear`). The annotation and
    /// evaluation layers treat multi-valued predicates differently.
    pub multi_valued: bool,
}

/// A registry of entity types and predicates.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    types: Vec<String>,
    preds: Vec<PredDef>,
}

impl Ontology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) an entity type by name.
    pub fn register_type(&mut self, name: &str) -> EntityTypeId {
        if let Some(i) = self.types.iter().position(|t| t == name) {
            return EntityTypeId(i as u16);
        }
        self.types.push(name.to_string());
        EntityTypeId((self.types.len() - 1) as u16)
    }

    /// Register a predicate. Panics if a predicate with the same name was
    /// already registered with a different definition (an ontology is
    /// append-only and unambiguous by construction).
    pub fn register_pred(
        &mut self,
        name: &str,
        subject_type: EntityTypeId,
        multi_valued: bool,
    ) -> PredId {
        if let Some(i) = self.preds.iter().position(|p| p.name == name) {
            let existing = &self.preds[i];
            assert_eq!(existing.subject_type, subject_type, "predicate {name} redefined");
            assert_eq!(existing.multi_valued, multi_valued, "predicate {name} redefined");
            return PredId(i as u16);
        }
        self.preds.push(PredDef { name: name.to_string(), subject_type, multi_valued });
        PredId((self.preds.len() - 1) as u16)
    }

    pub fn type_name(&self, t: EntityTypeId) -> &str {
        &self.types[t.0 as usize]
    }

    pub fn pred(&self, p: PredId) -> &PredDef {
        &self.preds[p.0 as usize]
    }

    pub fn pred_name(&self, p: PredId) -> &str {
        &self.preds[p.0 as usize].name
    }

    pub fn pred_by_name(&self, name: &str) -> Option<PredId> {
        self.preds.iter().position(|p| p.name == name).map(|i| PredId(i as u16))
    }

    pub fn type_by_name(&self, name: &str) -> Option<EntityTypeId> {
        self.types.iter().position(|t| t == name).map(|i| EntityTypeId(i as u16))
    }

    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    pub fn n_preds(&self) -> usize {
        self.preds.len()
    }

    pub fn pred_ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len() as u16).map(PredId)
    }

    /// Predicates whose subjects are of type `t`.
    pub fn preds_of_type(&self, t: EntityTypeId) -> Vec<PredId> {
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, p)| p.subject_type == t)
            .map(|(i, _)| PredId(i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("film.wasDirectedBy.person", film, true);
        let year = o.register_pred("film.releaseYear", film, false);
        let acted = o.register_pred("person.actedIn.film", person, true);

        assert_eq!(o.n_types(), 2);
        assert_eq!(o.n_preds(), 3);
        assert_eq!(o.type_name(film), "Film");
        assert_eq!(o.pred_name(directed), "film.wasDirectedBy.person");
        assert!(o.pred(directed).multi_valued);
        assert!(!o.pred(year).multi_valued);
        assert_eq!(o.pred_by_name("person.actedIn.film"), Some(acted));
        assert_eq!(o.pred_by_name("nope"), None);
        assert_eq!(o.preds_of_type(film), vec![directed, year]);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut o = Ontology::new();
        let t1 = o.register_type("Film");
        let t2 = o.register_type("Film");
        assert_eq!(t1, t2);
        let p1 = o.register_pred("x", t1, true);
        let p2 = o.register_pred("x", t1, true);
        assert_eq!(p1, p2);
        assert_eq!(o.n_preds(), 1);
    }

    #[test]
    #[should_panic(expected = "redefined")]
    fn conflicting_redefinition_panics() {
        let mut o = Ontology::new();
        let t = o.register_type("Film");
        o.register_pred("x", t, true);
        o.register_pred("x", t, false);
    }
}
