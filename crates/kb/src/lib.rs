//! # ceres-kb
//!
//! The seed-knowledge-base substrate of the CERES reproduction (paper §2.1):
//! a typed ontology, an interned value space (entities and literals), a
//! triple store with the indexes the annotation pipeline needs, and the
//! fuzzy string matcher used to find KB values on webpages (§3.1.1).
//!
//! Design notes:
//!
//! * **Unified value space.** Subjects are entities; objects can be entities
//!   (a film's director) or literals (a release date). Both are interned
//!   into one [`ValueId`] space so that the topic-identification Jaccard
//!   (Eq. 1) can compare "values present on this page" with "objects of this
//!   candidate subject" as plain sorted id-sets.
//! * **Matching = canonicalization + two indexes.** A page string matches a
//!   value if their [`ceres_text::normalize()`] forms are equal, or — the
//!   fuzzy fallback — if their token-sorted forms are equal ("Lee, Spike" ≡
//!   "Spike Lee"). Aliases index like canonical names.
//! * **Batched, memoized lookups.** [`Kb::match_batch`] resolves all of a
//!   page's normalized field texts in one call, grouping keys by
//!   [`MatchShards`] hash prefix so each shard is swept once — the request
//!   shape a future remote-shard protocol needs — and [`MatchCache`] is a
//!   bounded, FIFO-evicting read-through memo in front of either entry
//!   point. Both are result-identical to per-field [`Kb::match_norm`].
//! * **Topic-candidate filters.** Following §3.1.1 we precompute *stop
//!   values* (strings appearing in a large fraction of triples) and flag
//!   *low-information* strings (single digits, years, country names, very
//!   short strings); neither may become a page topic.

pub mod cache;
pub mod matcher;
pub mod ontology;
pub mod store;

pub use cache::MatchCache;
#[cfg(feature = "runtime-stats")]
pub use cache::MatchCacheStats;
pub use matcher::{is_low_information, MatcherConfig};
pub use ontology::{EntityTypeId, Ontology, PredDef, PredId};
pub use store::{Kb, KbBuilder, KbStats, MatchShards, Triple, TypeStats, ValueId, ValueKind};
