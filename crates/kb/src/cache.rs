//! [`MatchCache`]: a deterministic read-through memo in front of the KB's
//! string matcher.
//!
//! Template sites repeat the same normalized field strings across pages,
//! so a small map from normalized text to the matcher's answer turns most
//! lookups into one hash probe. The cache can never change a result —
//! it stores references into the immutable [`Kb`] index and falls through
//! to [`Kb::match_norm`] on every miss — so matching through a cache is
//! byte-identical to matching without one, at any capacity, thread count,
//! or lookup interleaving (property-tested).
//!
//! Eviction is **insertion-order FIFO** (oldest entry first), not LRU:
//! recency updates would make the eviction sequence depend on the exact
//! interleaving of hits, while insertion order depends only on the miss
//! sequence — and the queue is walked front-to-back, never via hash-map
//! iteration, so behavior is run-order-invariant and CL001-clean. This is
//! also the admission policy a hot-value cache in front of a *remote* KB
//! shard needs (ROADMAP "multi-machine KB"): replayable from the miss log
//! alone.

use crate::store::{Kb, ValueId};
use ceres_text::FxHashMap;
use std::collections::VecDeque;

/// Hit/miss counters of one [`MatchCache`] (the `runtime-stats` feature).
/// Counts follow sequential-lookup semantics even for batched calls: a
/// string repeated inside one batch misses once and hits thereafter.
#[cfg(feature = "runtime-stats")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the underlying matcher.
    pub misses: u64,
}

#[cfg(feature = "runtime-stats")]
impl MatchCacheStats {
    /// `hits / (hits + misses)`; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A bounded read-through memo over [`Kb::match_norm`] /
/// [`Kb::match_batch`]. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct MatchCache<'kb> {
    kb: &'kb Kb,
    /// Normalized text → the matcher's interned answer (a borrow of the
    /// KB's index — the cache never clones match lists).
    map: FxHashMap<String, &'kb [ValueId]>,
    /// Cached keys, oldest first — the FIFO eviction queue. Only ever
    /// walked front-to-back; never hash-order iteration.
    queue: VecDeque<String>,
    capacity: usize,
    #[cfg(feature = "runtime-stats")]
    stats: MatchCacheStats,
}

impl<'kb> MatchCache<'kb> {
    /// A cache holding at most `capacity` distinct strings (clamped ≥ 1).
    pub fn new(kb: &'kb Kb, capacity: usize) -> MatchCache<'kb> {
        MatchCache {
            kb,
            map: FxHashMap::default(),
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            #[cfg(feature = "runtime-stats")]
            stats: MatchCacheStats::default(),
        }
    }

    /// Distinct strings currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss counters since construction.
    #[cfg(feature = "runtime-stats")]
    pub fn stats(&self) -> MatchCacheStats {
        self.stats
    }

    #[inline]
    fn note(&mut self, _hit: bool) {
        #[cfg(feature = "runtime-stats")]
        {
            if _hit {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
            }
        }
    }

    /// Admit `(norm, hits)`, evicting the oldest entries while full.
    fn admit(&mut self, norm: &str, hits: &'kb [ValueId]) {
        if self.map.contains_key(norm) {
            return;
        }
        while self.map.len() >= self.capacity {
            // Front of the queue = oldest insertion: deterministic FIFO.
            if let Some(old) = self.queue.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
        self.map.insert(norm.to_string(), hits);
        self.queue.push_back(norm.to_string());
    }

    /// Memoized [`Kb::match_norm`] — identical result, one hash probe on a
    /// hit.
    pub fn match_norm(&mut self, norm: &str) -> &'kb [ValueId] {
        if let Some(&hits) = self.map.get(norm) {
            self.note(true);
            return hits;
        }
        self.note(false);
        let hits = self.kb.match_norm(norm);
        self.admit(norm, hits);
        hits
    }

    /// Memoized [`Kb::match_batch`] — identical results in input order.
    /// Cache misses are folded to their distinct strings and resolved via
    /// one shard-grouped [`Kb::match_batch`] call; entries are admitted in
    /// first-miss order (the order a sequential lookup loop would insert).
    pub fn match_batch<S: AsRef<str>>(&mut self, norms: &[S]) -> Vec<&'kb [ValueId]> {
        let mut out: Vec<&'kb [ValueId]> = Vec::with_capacity(norms.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, norm) in norms.iter().enumerate() {
            match self.map.get(norm.as_ref()) {
                Some(&hits) => {
                    self.note(true);
                    out.push(hits);
                }
                None => {
                    self.note(false);
                    miss_idx.push(i);
                    out.push(&[]);
                }
            }
        }
        if miss_idx.is_empty() {
            return out;
        }
        // Fold the misses to distinct strings (a string repeated within
        // the batch resolves once; its later occurrences count as hits,
        // matching what sequential `match_norm` calls would do).
        let miss_keys: Vec<&str> = miss_idx.iter().map(|&i| norms[i].as_ref()).collect();
        let fold = ceres_text::fold_unique(&miss_keys);
        for _ in 0..(miss_keys.len() - fold.uniq.len()) {
            #[cfg(feature = "runtime-stats")]
            {
                self.stats.misses -= 1;
            }
            self.note(true);
        }
        let resolved = self.kb.match_batch(&fold.uniq);
        // Scatter from the batch answer (not from `self.map`: with a tiny
        // capacity an entry admitted earlier in this loop may already have
        // been evicted), then admit in first-miss order.
        for (pos, &i) in miss_idx.iter().enumerate() {
            out[i] = resolved[fold.slots[pos] as usize];
        }
        for (key, hits) in fold.uniq.iter().zip(&resolved) {
            self.admit(key, hits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Ontology;
    use crate::store::KbBuilder;

    fn test_kb() -> Kb {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("film.directedBy", film, true);
        let mut b = KbBuilder::new(o);
        for i in 0..20 {
            let f = b.entity(film, &format!("Film Number {i}"));
            let p = b.entity(person, &format!("Director Person {i}"));
            b.alias(p, &format!("Person {i}, Director"));
            b.triple(f, directed, p);
        }
        b.build()
    }

    #[test]
    fn cached_results_equal_uncached() {
        let kb = test_kb();
        let mut cache = MatchCache::new(&kb, 8);
        let probes = ["film number 3", "director person 3", "person 3 director", "absent", ""];
        for _round in 0..3 {
            for p in probes {
                assert_eq!(cache.match_norm(p), kb.match_norm(p), "probe {p:?}");
            }
        }
    }

    #[test]
    fn batch_through_cache_equals_kb_batch_even_with_tiny_capacity() {
        let kb = test_kb();
        let norms: Vec<String> = (0..20)
            .flat_map(|i| [format!("film number {i}"), format!("director person {i}")])
            .chain(["film number 1".to_string(), "nope".to_string()])
            .collect();
        for capacity in [1, 2, 7, 1024] {
            let mut cache = MatchCache::new(&kb, capacity);
            for _round in 0..2 {
                let got = cache.match_batch(&norms);
                let want = kb.match_batch(&norms);
                assert_eq!(got, want, "capacity {capacity}");
            }
            assert!(cache.len() <= capacity, "capacity {capacity} overflowed");
        }
    }

    #[test]
    fn eviction_is_insertion_order_fifo() {
        let kb = test_kb();
        let mut cache = MatchCache::new(&kb, 2);
        cache.match_norm("film number 0");
        cache.match_norm("film number 1");
        cache.match_norm("film number 2"); // evicts "film number 0"
        assert_eq!(cache.len(), 2);
        assert!(cache.map.contains_key("film number 1"));
        assert!(cache.map.contains_key("film number 2"));
        assert!(!cache.map.contains_key("film number 0"));
    }

    #[cfg(feature = "runtime-stats")]
    #[test]
    fn counters_follow_sequential_semantics() {
        let kb = test_kb();
        let mut cache = MatchCache::new(&kb, 64);
        // Batch with an internal duplicate: 2 distinct misses, 1 hit.
        let got = cache.match_batch(&["film number 0", "film number 1", "film number 0"]);
        assert_eq!(got.len(), 3);
        assert_eq!(cache.stats(), MatchCacheStats { hits: 1, misses: 2 });
        cache.match_norm("film number 1");
        assert_eq!(cache.stats(), MatchCacheStats { hits: 2, misses: 2 });
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
