//! The triple store: interned values, triples, and the indexes used by
//! annotation (by-subject) and topic identification (object sets).

use crate::matcher::{is_low_information, MatcherConfig};
use crate::ontology::{EntityTypeId, Ontology, PredId};
use ceres_text::{
    normalize, token_sort_key, token_sort_key_normalized, FxBuildHasher, FxHashMap, FxHashSet,
};
use std::hash::BuildHasher;

/// Identifier of an interned value (entity or literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// What a value is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// An entity of the given type; may have aliases.
    Entity(EntityTypeId),
    /// An untyped literal (dates, numbers, phone numbers, free strings).
    Literal,
}

/// One knowledge-base fact `(s, r, o)` (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    pub subject: ValueId,
    pub pred: PredId,
    pub object: ValueId,
}

#[derive(Debug, Clone)]
struct ValueInfo {
    kind: ValueKind,
    canonical: String,
    aliases: Vec<String>,
}

/// Incremental builder for a [`Kb`].
#[derive(Debug)]
pub struct KbBuilder {
    ontology: Ontology,
    values: Vec<ValueInfo>,
    /// (kind-tag, normalized canonical) → id, for entity dedup per type and
    /// literal interning.
    intern: FxHashMap<(u32, String), ValueId>,
    triples: Vec<Triple>,
    triple_set: FxHashSet<Triple>,
    config: MatcherConfig,
}

impl KbBuilder {
    pub fn new(ontology: Ontology) -> Self {
        KbBuilder {
            ontology,
            values: Vec::new(),
            intern: FxHashMap::default(),
            triples: Vec::new(),
            triple_set: FxHashSet::default(),
            config: MatcherConfig::default(),
        }
    }

    pub fn with_config(mut self, config: MatcherConfig) -> Self {
        self.config = config;
        self
    }

    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    fn intern_value(&mut self, kind: ValueKind, canonical: &str) -> ValueId {
        let kind_tag = match kind {
            ValueKind::Entity(t) => u32::from(t.0),
            ValueKind::Literal => u32::MAX,
        };
        let key = (kind_tag, normalize(canonical));
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo { kind, canonical: canonical.to_string(), aliases: Vec::new() });
        self.intern.insert(key, id);
        id
    }

    /// Intern an entity by `(type, canonical name)`; repeated calls with the
    /// same pair return the same id.
    pub fn entity(&mut self, ty: EntityTypeId, name: &str) -> ValueId {
        self.intern_value(ValueKind::Entity(ty), name)
    }

    /// Intern a literal by its canonical string.
    pub fn literal(&mut self, s: &str) -> ValueId {
        self.intern_value(ValueKind::Literal, s)
    }

    /// Attach an alias to a value: alternate person names ("Lee, Spike"),
    /// or alternate literal renderings (a date's "June 30, 1989" for
    /// canonical "1989-06-30"). Aliases participate in string matching.
    pub fn alias(&mut self, value: ValueId, alias: &str) {
        let info = &mut self.values[value.0 as usize];
        if !info.aliases.iter().any(|a| a == alias) {
            info.aliases.push(alias.to_string());
        }
    }

    /// Add a fact; duplicate triples are ignored.
    pub fn triple(&mut self, subject: ValueId, pred: PredId, object: ValueId) {
        let t = Triple { subject, pred, object };
        if self.triple_set.insert(t) {
            self.triples.push(t);
        }
    }

    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// Finalize: build all matcher and navigation indexes.
    pub fn build(self) -> Kb {
        let KbBuilder { ontology, values, triples, config, .. } = self;

        let mut by_subject: FxHashMap<ValueId, Vec<(PredId, ValueId)>> = FxHashMap::default();
        let mut object_counts: FxHashMap<ValueId, usize> = FxHashMap::default();
        let mut pair_index: FxHashMap<(ValueId, ValueId), Vec<PredId>> = FxHashMap::default();
        for t in &triples {
            by_subject.entry(t.subject).or_default().push((t.pred, t.object));
            *object_counts.entry(t.object).or_default() += 1;
            pair_index.entry((t.subject, t.object)).or_default().push(t.pred);
        }

        // Sorted, deduplicated object sets per subject — the `entitySet` of
        // Algorithm 1, precomputed once.
        let mut object_sets: FxHashMap<ValueId, Vec<ValueId>> = FxHashMap::default();
        for (&s, pairs) in &by_subject {
            let mut objs: Vec<ValueId> = pairs.iter().map(|&(_, o)| o).collect();
            objs.sort_unstable();
            objs.dedup();
            object_sets.insert(s, objs);
        }

        // String indexes: normalized form and token-sorted form, over
        // canonical names and aliases, sharded by hash prefix.
        let mut shards = MatchShards::new(config.n_shards);
        for (i, v) in values.iter().enumerate() {
            let id = ValueId(i as u32);
            for s in
                std::iter::once(v.canonical.as_str()).chain(v.aliases.iter().map(|a| a.as_str()))
            {
                let norm = normalize(s);
                if norm.is_empty() {
                    continue;
                }
                let key = token_sort_key(s);
                shards.insert(norm, key, id);
            }
        }

        // Stop values (Uniqueness observation, §3.1.1): values whose string
        // appears as the object of a large fraction of all triples.
        let threshold = ((triples.len() as f64) * config.stop_value_fraction).ceil() as usize;
        let threshold = threshold.max(config.stop_value_min_count);
        let mut stop_values = FxHashSet::default();
        // lint: allow(CL001) reason="builds a membership-only FxHashSet; stop_values is only ever probed with contains(), so iteration order never surfaces"
        for (&v, &c) in object_counts.iter() {
            if c >= threshold {
                stop_values.insert(v);
            }
        }

        // Topic disqualification (§3.1.1 step 1), precomputed per value:
        // the check runs once per (page, candidate) in topic scoring, and
        // the low-information test re-normalizes the canonical string —
        // pay that once here instead of per call.
        let topic_disqualified: Vec<bool> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                !matches!(v.kind, ValueKind::Entity(_))
                    || stop_values.contains(&ValueId(i as u32))
                    || is_low_information(&normalize(&v.canonical), &config)
            })
            .collect();

        Kb {
            ontology,
            values,
            triples,
            by_subject,
            object_sets,
            pair_index,
            shards,
            stop_values,
            topic_disqualified,
            config,
        }
    }
}

fn push_unique(v: &mut Vec<ValueId>, id: ValueId) {
    if !v.contains(&id) {
        v.push(id);
    }
}

/// The string-matching indexes (exact normalized form + token-sorted fuzzy
/// form), **sharded by hash prefix**: a key lives in the shard selected by
/// the top bits of its deterministic FxHash. Sharding does not change any
/// lookup result — a key hashes to exactly one shard, so the sharded maps
/// partition the unsharded one — but it bounds per-shard memory and is the
/// unit a multi-machine KB would distribute (ROADMAP "KB sharding").
#[derive(Debug)]
pub struct MatchShards {
    /// `log2(shard count)`; the shard of a key is its hash's top `bits`.
    bits: u32,
    shards: Vec<MatchShard>,
}

#[derive(Debug, Default)]
struct MatchShard {
    exact: FxHashMap<String, Vec<ValueId>>,
    fuzzy: FxHashMap<String, Vec<ValueId>>,
}

impl MatchShards {
    /// `n_shards` is rounded up to a power of two and clamped to ≥ 1.
    pub fn new(n_shards: usize) -> MatchShards {
        let n = n_shards.clamp(1, 1 << 16).next_power_of_two();
        let bits = n.trailing_zeros();
        let mut shards = Vec::with_capacity(n);
        shards.resize_with(n, MatchShard::default);
        MatchShards { bits, shards }
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index of a key: the top `bits` of its FxHash — the "hash
    /// prefix", so a sorted-by-prefix key space splits contiguously.
    #[inline]
    fn shard_of(&self, key: &str) -> usize {
        if self.bits == 0 {
            return 0;
        }
        (FxBuildHasher::default().hash_one(key) >> (64 - self.bits)) as usize
    }

    fn insert(&mut self, norm: String, fuzzy_key: String, id: ValueId) {
        let s = self.shard_of(&norm);
        push_unique(self.shards[s].exact.entry(norm).or_default(), id);
        let s = self.shard_of(&fuzzy_key);
        push_unique(self.shards[s].fuzzy.entry(fuzzy_key).or_default(), id);
    }

    /// Values whose normalized form equals `norm` exactly.
    #[inline]
    pub fn lookup_exact(&self, norm: &str) -> Option<&[ValueId]> {
        self.shards[self.shard_of(norm)].exact.get(norm).map(Vec::as_slice)
    }

    /// Values whose token-sorted form equals `key`.
    #[inline]
    pub fn lookup_fuzzy(&self, key: &str) -> Option<&[ValueId]> {
        self.shards[self.shard_of(key)].fuzzy.get(key).map(Vec::as_slice)
    }
}

/// An immutable, fully-indexed knowledge base.
#[derive(Debug)]
pub struct Kb {
    ontology: Ontology,
    values: Vec<ValueInfo>,
    triples: Vec<Triple>,
    by_subject: FxHashMap<ValueId, Vec<(PredId, ValueId)>>,
    object_sets: FxHashMap<ValueId, Vec<ValueId>>,
    pair_index: FxHashMap<(ValueId, ValueId), Vec<PredId>>,
    shards: MatchShards,
    stop_values: FxHashSet<ValueId>,
    /// Per-value §3.1.1 step-1 verdicts, precomputed (see `build`).
    topic_disqualified: Vec<bool>,
    config: MatcherConfig,
}

impl Kb {
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    pub fn n_values(&self) -> usize {
        self.values.len()
    }

    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    pub fn kind(&self, v: ValueId) -> ValueKind {
        self.values[v.0 as usize].kind
    }

    pub fn canonical(&self, v: ValueId) -> &str {
        &self.values[v.0 as usize].canonical
    }

    pub fn aliases(&self, v: ValueId) -> &[String] {
        &self.values[v.0 as usize].aliases
    }

    pub fn is_entity(&self, v: ValueId) -> bool {
        matches!(self.kind(v), ValueKind::Entity(_))
    }

    /// All `(pred, object)` pairs with `s` as subject; empty for unknown
    /// subjects.
    pub fn triples_about(&self, s: ValueId) -> &[(PredId, ValueId)] {
        self.by_subject.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The sorted, deduplicated object set of `s` (the `entitySet` of
    /// Algorithm 1).
    pub fn object_set(&self, s: ValueId) -> &[ValueId] {
        self.object_sets.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Predicates asserted between an ordered `(subject, object)` pair —
    /// the lookup at the heart of the classic pairwise distant-supervision
    /// assumption (used by the CERES-BASELINE implementation).
    pub fn preds_between(&self, s: ValueId, o: ValueId) -> &[PredId] {
        self.pair_index.get(&(s, o)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Subjects that have at least one triple, in ascending id order (the
    /// index map's own iteration order is insertion-history-dependent and
    /// must never reach a caller).
    pub fn subjects(&self) -> Vec<ValueId> {
        let mut out: Vec<ValueId> = self.by_subject.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Match a raw page string against the KB: exact normalized match first,
    /// then the token-sorted fuzzy fallback. Returns all matching values
    /// (ambiguity — "Pilot" matching thousands of episodes — is preserved
    /// for the caller to resolve).
    ///
    /// The returned slice **borrows** the KB's index — no per-call clone.
    /// Callers that need ownership use `.to_vec()`. When the caller already
    /// holds the normalized form (every hot path does: `PageView::build`
    /// normalizes each field once), [`Kb::match_norm`] skips the
    /// re-normalization this entry point must perform.
    pub fn match_text(&self, raw: &str) -> &[ValueId] {
        let norm = normalize(raw);
        self.match_norm(&norm)
    }

    /// [`Kb::match_text`] over a **pre-normalized** string (the output of
    /// [`ceres_text::normalize()`]). An exact hit costs one hash lookup and
    /// zero allocations; only the fuzzy fallback builds its token-sorted
    /// key (from the normalized form — never re-normalizing).
    pub fn match_norm(&self, norm: &str) -> &[ValueId] {
        if norm.is_empty() {
            return &[];
        }
        if let Some(hits) = self.shards.lookup_exact(norm) {
            return hits;
        }
        let key = token_sort_key_normalized(norm);
        self.shards.lookup_fuzzy(&key).unwrap_or(&[])
    }

    /// Batched [`Kb::match_norm`]: resolve every pre-normalized string of a
    /// page (or page chunk) in one call, returning the matches **in input
    /// order** — `match_batch(norms)[i]` is exactly `match_norm(norms[i])`
    /// for every `i` (property-tested across shard counts).
    ///
    /// Instead of a shard dispatch per field, keys are grouped by their
    /// [`MatchShards`] hash prefix and each shard's keys are resolved in
    /// one consecutive sweep (exact pass first; the misses' token-sorted
    /// fuzzy keys are then grouped and swept the same way). Per-shard
    /// grouping keeps each shard's tables hot in cache for its whole run
    /// of keys, and the grouped key list is the exact request shape a
    /// remote KB shard would receive (ROADMAP "multi-machine KB").
    pub fn match_batch<'kb, S: AsRef<str>>(&'kb self, norms: &[S]) -> Vec<&'kb [ValueId]> {
        const EMPTY: &[ValueId] = &[];
        let mut out: Vec<&[ValueId]> = vec![EMPTY; norms.len()];
        // Group by exact-index shard. Sorting (shard, input index) pairs
        // visits shards in ascending order and keeps input order within a
        // shard — deterministic, and one flat buffer instead of per-shard
        // bucket allocations.
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(norms.len());
        for (i, norm) in norms.iter().enumerate() {
            if !norm.as_ref().is_empty() {
                order.push((self.shards.shard_of(norm.as_ref()) as u32, i as u32));
            }
        }
        order.sort_unstable();
        // Exact sweep; misses fall through to the fuzzy index, grouped the
        // same way (fuzzy keys hash to their own shard).
        let mut misses: Vec<(u32, u32, String)> = Vec::new();
        for &(s, i) in &order {
            let norm = norms[i as usize].as_ref();
            match self.shards.shards[s as usize].exact.get(norm) {
                Some(hits) => out[i as usize] = hits.as_slice(),
                None => {
                    let key = token_sort_key_normalized(norm);
                    misses.push((self.shards.shard_of(&key) as u32, i, key));
                }
            }
        }
        misses.sort_unstable_by_key(|&(s, i, _)| (s, i));
        for (s, i, key) in &misses {
            if let Some(hits) = self.shards.shards[*s as usize].fuzzy.get(key.as_str()) {
                out[*i as usize] = hits.as_slice();
            }
        }
        out
    }

    /// The sharded string-matching indexes (read-only view).
    pub fn match_shards(&self) -> &MatchShards {
        &self.shards
    }

    /// True if `v` is disqualified from being a page-topic candidate
    /// (§3.1.1 step 1): a literal, a stop value, or low-information.
    /// Precomputed at build time — one indexed load on the topic-scoring
    /// hot path (no re-normalization per call).
    #[inline]
    pub fn is_topic_disqualified(&self, v: ValueId) -> bool {
        self.topic_disqualified[v.0 as usize]
    }

    pub fn is_stop_value(&self, v: ValueId) -> bool {
        self.stop_values.contains(&v)
    }

    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Count of triples grouped by predicate.
    pub fn triples_per_pred(&self) -> Vec<(PredId, usize)> {
        let mut counts = vec![0usize; self.ontology.n_preds()];
        for t in &self.triples {
            counts[t.pred.0 as usize] += 1;
        }
        counts.into_iter().enumerate().map(|(i, c)| (PredId(i as u16), c)).collect()
    }

    /// Summary statistics (Table 2 of the paper).
    pub fn stats(&self) -> KbStats {
        let mut per_type: FxHashMap<EntityTypeId, TypeStats> = FxHashMap::default();
        for v in &self.values {
            if let ValueKind::Entity(t) = v.kind {
                per_type
                    .entry(t)
                    .or_insert_with(|| TypeStats {
                        type_name: self.ontology.type_name(t).to_string(),
                        instances: 0,
                        predicates: 0,
                    })
                    .instances += 1;
            }
        }
        // Distinct predicates observed per subject type.
        let mut preds_per_type: FxHashMap<EntityTypeId, FxHashSet<PredId>> = FxHashMap::default();
        for t in &self.triples {
            if let ValueKind::Entity(ty) = self.kind(t.subject) {
                preds_per_type.entry(ty).or_default().insert(t.pred);
            }
        }
        for (ty, preds) in preds_per_type {
            if let Some(s) = per_type.get_mut(&ty) {
                s.predicates = preds.len();
            }
        }
        let mut types: Vec<TypeStats> = per_type.into_values().collect();
        // Tie-break by name: `sort_by_key` is stable, so without it two
        // types with equal instance counts would keep `per_type`'s hash-map
        // iteration order — FxHash is deterministic per build but the order
        // still shifts whenever an unrelated insertion changes the table,
        // which silently reshuffled Table 2 rows.
        types.sort_by(|a, b| {
            b.instances.cmp(&a.instances).then_with(|| a.type_name.cmp(&b.type_name))
        });
        KbStats { n_triples: self.triples.len(), n_values: self.values.len(), types }
    }
}

/// Per-entity-type statistics (one row of Table 2).
#[derive(Debug, Clone)]
pub struct TypeStats {
    pub type_name: String,
    pub instances: usize,
    pub predicates: usize,
}

/// Whole-KB statistics.
#[derive(Debug, Clone)]
pub struct KbStats {
    pub n_triples: usize,
    pub n_values: usize,
    pub types: Vec<TypeStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kb() -> Kb {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("film.directedBy", film, true);
        let genre = o.register_pred("film.genre", film, true);
        let mut b = KbBuilder::new(o);

        let drt = b.entity(film, "Do the Right Thing");
        let lee = b.entity(person, "Spike Lee");
        b.alias(lee, "Lee, Spike");
        let comedy = b.literal("Comedy");
        b.triple(drt, directed, lee);
        b.triple(drt, genre, comedy);
        b.triple(drt, genre, comedy); // duplicate: ignored
        b.build()
    }

    #[test]
    fn dedup_and_indexes() {
        let kb = small_kb();
        assert_eq!(kb.n_triples(), 2);
        let drt = kb.match_text("Do the Right Thing")[0];
        assert_eq!(kb.triples_about(drt).len(), 2);
        assert_eq!(kb.object_set(drt).len(), 2);
    }

    #[test]
    fn entity_interning_is_type_scoped() {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let series = o.register_type("TVSeries");
        let mut b = KbBuilder::new(o);
        // "Biography" the TV series vs a film of the same name: distinct.
        let s = b.entity(series, "Biography");
        let f = b.entity(film, "Biography");
        assert_ne!(s, f);
        // Same type + same normalized name: interned.
        let f2 = b.entity(film, "biography");
        assert_eq!(f, f2);
    }

    #[test]
    fn match_text_exact_and_fuzzy() {
        let kb = small_kb();
        assert_eq!(kb.match_text("spike lee").len(), 1);
        assert_eq!(kb.match_text("SPIKE LEE!").len(), 1);
        // Fuzzy: token order.
        assert_eq!(kb.match_text("Lee Spike").len(), 1);
        // Alias matches.
        assert_eq!(kb.match_text("Lee, Spike").len(), 1);
        assert!(kb.match_text("Spike Jonze").is_empty());
        assert!(kb.match_text("").is_empty());
    }

    #[test]
    fn ambiguous_strings_return_all_matches() {
        let mut o = Ontology::new();
        let ep = o.register_type("TVEpisode");
        let mut b = KbBuilder::new(o);
        for i in 0..5 {
            // Five distinct "Pilot" episodes — model them as aliases of
            // distinct entities (unique canonical, shared alias).
            let e = b.entity(ep, &format!("Pilot #{i}"));
            b.alias(e, "Pilot");
        }
        let kb = b.build();
        assert_eq!(kb.match_text("Pilot").len(), 5);
    }

    #[test]
    fn stop_values_detected() {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let genre = o.register_pred("film.genre", film, true);
        let mut b = KbBuilder::new(o);
        let drama = b.literal("Drama");
        // Drama is the object of most triples → a stop value.
        for i in 0..100 {
            let f = b.entity(film, &format!("Film {i}"));
            b.triple(f, genre, drama);
        }
        let kb = b.build();
        assert!(kb.is_stop_value(drama));
        assert!(kb.is_topic_disqualified(drama));
        let f0 = kb.match_text("Film 0")[0];
        assert!(!kb.is_topic_disqualified(f0));
    }

    #[test]
    fn stats_cover_types_and_preds() {
        let kb = small_kb();
        let stats = kb.stats();
        assert_eq!(stats.n_triples, 2);
        let film_row = stats.types.iter().find(|t| t.type_name == "Film").unwrap();
        assert_eq!(film_row.instances, 1);
        assert_eq!(film_row.predicates, 2);
        let person_row = stats.types.iter().find(|t| t.type_name == "Person").unwrap();
        assert_eq!(person_row.instances, 1);
        assert_eq!(person_row.predicates, 0);
    }

    /// Regression (surfaced by ceres-lint CL001): `stats()` sorted only by
    /// instance count, so equal-count types kept the `per_type` hash map's
    /// iteration order and Table 2's tied rows could reshuffle between
    /// builds. Tied rows must come out name-sorted.
    #[test]
    fn stats_tie_order_is_name_sorted_not_hash_order() {
        let mut o = Ontology::new();
        // Registration order deliberately not alphabetical.
        let types: Vec<EntityTypeId> =
            ["Zebra", "Mango", "Apple", "Kiwi"].iter().map(|n| o.register_type(n)).collect();
        let mut b = KbBuilder::new(o);
        for (i, &ty) in types.iter().enumerate() {
            // Every type gets exactly 2 instances: all rows tie.
            b.entity(ty, &format!("{i} one"));
            b.entity(ty, &format!("{i} two"));
        }
        let stats = b.build().stats();
        let names: Vec<&str> = stats.types.iter().map(|t| t.type_name.as_str()).collect();
        assert_eq!(names, ["Apple", "Kiwi", "Mango", "Zebra"]);
        assert!(stats.types.iter().all(|t| t.instances == 2));
    }

    #[test]
    fn match_batch_equals_per_field_match_norm() {
        let kb = small_kb();
        // Exact hits, a fuzzy hit, an empty string, a miss, ambiguity-free
        // and duplicate entries — every per-field answer must reappear at
        // the same position in the batch answer.
        let norms = [
            "spike lee",
            "",
            "lee spike",
            "no such value",
            "comedy",
            "spike lee",
            "do the right thing",
        ];
        let batch = kb.match_batch(&norms);
        assert_eq!(batch.len(), norms.len());
        for (i, n) in norms.iter().enumerate() {
            assert_eq!(batch[i], kb.match_norm(n), "field {i} ({n:?}) diverged");
        }
    }

    #[test]
    fn match_batch_agrees_across_shard_counts() {
        let norms = ["spike lee", "lee spike", "comedy", "absent", ""];
        for n_shards in [1, 16, 64] {
            let mut o = Ontology::new();
            let film = o.register_type("Film");
            let person = o.register_type("Person");
            let genre = o.register_pred("film.genre", film, true);
            let mut b = KbBuilder::new(o)
                .with_config(MatcherConfig { n_shards, ..MatcherConfig::default() });
            let drt = b.entity(film, "Do the Right Thing");
            let lee = b.entity(person, "Spike Lee");
            b.alias(lee, "Lee, Spike");
            let comedy = b.literal("Comedy");
            b.triple(drt, genre, comedy);
            let kb = b.build();
            let batch = kb.match_batch(&norms);
            for (i, n) in norms.iter().enumerate() {
                assert_eq!(batch[i], kb.match_norm(n), "n_shards={n_shards} field {i}");
            }
        }
    }

    #[test]
    fn literals_are_topic_disqualified() {
        let kb = small_kb();
        let comedy = kb.match_text("Comedy")[0];
        assert!(kb.is_topic_disqualified(comedy));
    }
}
