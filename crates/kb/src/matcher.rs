//! Matching configuration and the low-information-string filters of
//! §3.1.1: "we discard strings with low information content, such as single
//! digit numbers, years, and names of countries."

/// Tunables for KB string matching and topic-candidate filtering.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// A value is a *stop value* if it appears as the object of at least
    /// this fraction of all triples (paper example: 0.01%).
    pub stop_value_fraction: f64,
    /// ...and at least this many triples in absolute terms (guards tiny KBs
    /// where 0.01% rounds to 1).
    pub stop_value_min_count: usize,
    /// Normalized strings shorter than this are low-information.
    pub min_chars: usize,
    /// Shard count for the string-matching indexes (see
    /// [`crate::store::MatchShards`]); rounded up to a power of two,
    /// clamped to ≥ 1. `1` gives the classic unsharded layout — lookup
    /// results are identical for every value (equivalence-tested).
    pub n_shards: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            stop_value_fraction: 1e-4,
            stop_value_min_count: 20,
            min_chars: 3,
            n_shards: 16,
        }
    }
}

/// Country names excluded from topic candidacy (a representative list; the
/// paper does not enumerate its own).
pub const COUNTRIES: &[&str] = &[
    "usa",
    "united states",
    "united kingdom",
    "uk",
    "france",
    "germany",
    "italy",
    "spain",
    "canada",
    "australia",
    "india",
    "china",
    "japan",
    "korea",
    "south korea",
    "nigeria",
    "indonesia",
    "brazil",
    "mexico",
    "russia",
    "denmark",
    "iceland",
    "czech republic",
    "slovakia",
    "south africa",
    "hong kong",
    "ireland",
    "sweden",
    "norway",
    "netherlands",
    "belgium",
    "austria",
    "switzerland",
    "poland",
    "portugal",
    "greece",
    "turkey",
    "egypt",
    "argentina",
    "chile",
    "new zealand",
];

/// True if a *normalized* string is too uninformative to be a topic
/// candidate: very short, a bare small number, a year, or a country name.
pub fn is_low_information(norm: &str, config: &MatcherConfig) -> bool {
    if norm.len() < config.min_chars {
        return true;
    }
    if let Ok(n) = norm.parse::<i64>() {
        // Single digits and other small numbers are noise; 4-digit numbers
        // in the calendar range are years.
        if (0..=9999).contains(&n) {
            return true;
        }
    }
    COUNTRIES.contains(&norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_text::normalize;

    fn cfg() -> MatcherConfig {
        MatcherConfig::default()
    }

    #[test]
    fn short_strings_are_low_info() {
        assert!(is_low_information("", &cfg()));
        assert!(is_low_information("ab", &cfg()));
        assert!(!is_low_information("abc", &cfg()));
    }

    #[test]
    fn numbers_and_years_are_low_info() {
        assert!(is_low_information("7", &cfg()));
        assert!(is_low_information("1989", &cfg()));
        assert!(is_low_information("2026", &cfg()));
        // A long identifier (ISBN-like) is informative.
        assert!(!is_low_information("9780143127741", &cfg()));
    }

    #[test]
    fn countries_are_low_info() {
        assert!(is_low_information(&normalize("France"), &cfg()));
        assert!(is_low_information(&normalize("South Korea"), &cfg()));
        assert!(!is_low_information(&normalize("Do the Right Thing"), &cfg()));
    }

    #[test]
    fn names_are_informative() {
        assert!(!is_low_information(&normalize("Spike Lee"), &cfg()));
    }
}
