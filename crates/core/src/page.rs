//! Parsed page views with precomputed KB matches.
//!
//! The pipeline touches each text field many times (topic scoring, relation
//! annotation, feature extraction, extraction); [`PageView`] computes the
//! expensive per-field facts — normalized text, KB matches, XPath — exactly
//! once.

use crate::config::GuardConfig;
use crate::session::PageError;
use ceres_dom::{parse_html, Document, NodeId, XPath};
use ceres_kb::{Kb, MatchCache, ValueId};
use ceres_text::{fold_unique, normalize, FxHashMap};

/// One text field of a page.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    pub node: NodeId,
    /// Whitespace-normalized visible text.
    pub text: String,
    /// [`ceres_text::normalize`](fn@ceres_text::normalize)d form of `text`.
    pub norm: String,
    /// KB values this field's text matches (possibly several: ambiguity).
    pub matches: Vec<ValueId>,
    pub xpath: XPath,
    /// The generator's ground-truth id (`data-gt`), carried for evaluation
    /// only. The feature extractor never reads it (tested).
    pub gt_id: Option<u32>,
}

/// A parsed page plus its per-field index.
#[derive(Debug)]
pub struct PageView {
    pub page_id: String,
    pub doc: Document,
    pub fields: Vec<FieldInfo>,
    /// `NodeId → fields index`, built once so [`PageView::field_of_node`]
    /// is O(1) instead of a linear scan per call.
    field_by_node: FxHashMap<NodeId, usize>,
    /// Euler-tour entry/exit clocks per node, built once so
    /// [`PageView::in_subtree`] is O(1) instead of an ancestor walk (the
    /// feature extractor's nearby-text scan tests subtree membership for
    /// every (node, field) pair).
    enter: Vec<u32>,
    exit: Vec<u32>,
}

impl PageView {
    /// Parse `html` and match every text field against `kb`.
    pub fn build(page_id: &str, html: &str, kb: &Kb) -> PageView {
        PageView::build_inner(page_id, html, kb, None)
    }

    /// [`PageView::build`] matching through a shared [`MatchCache`] — the
    /// streaming ingest path hands each parse micro-batch one cache so
    /// field strings repeated *across* a batch's pages resolve once.
    /// Byte-identical to [`PageView::build`] (the cache is read-through
    /// over the immutable KB index; it can only change timing).
    pub fn build_with_cache(
        page_id: &str,
        html: &str,
        kb: &Kb,
        cache: &mut MatchCache<'_>,
    ) -> PageView {
        PageView::build_inner(page_id, html, kb, Some(cache))
    }

    /// Shared core of the build paths. Matching is batched: every field is
    /// normalized, identical normalized strings are folded to one lookup
    /// ([`fold_unique`] — template pages repeat labels and shared values
    /// heavily), the distinct strings go through one shard-grouped
    /// [`Kb::match_batch`] call (optionally memoized by `cache`), and the
    /// answers fan back out per field. `match_batch(uniq)[slot[i]]` is
    /// exactly `match_norm(norm[i])`, so the produced `FieldInfo`s are
    /// byte-identical to the old per-field loop (pinned in
    /// `tests/match_path.rs`).
    fn build_inner(
        page_id: &str,
        html: &str,
        kb: &Kb,
        cache: Option<&mut MatchCache<'_>>,
    ) -> PageView {
        let doc = parse_html(html);
        let nodes = doc.text_fields();
        let mut texts = Vec::with_capacity(nodes.len());
        let mut norms = Vec::with_capacity(nodes.len());
        for &node in &nodes {
            let text = doc.own_text(node);
            // Normalize once; `match_batch` consumes the canonical form
            // directly (the old `match_text(&text)` re-normalized `text`
            // internally — every field was normalized twice).
            norms.push(normalize(&text));
            texts.push(text);
        }
        let (matched, slots): (Vec<&[ValueId]>, Vec<u32>) = {
            let fold = fold_unique(&norms);
            let matched = match cache {
                Some(cache) => cache.match_batch(&fold.uniq),
                None => kb.match_batch(&fold.uniq),
            };
            (matched, fold.slots)
        };
        let mut fields = Vec::with_capacity(nodes.len());
        let mut field_by_node = FxHashMap::default();
        for (i, node) in nodes.into_iter().enumerate() {
            let matches = matched[slots[i] as usize].to_vec();
            let gt_id = doc.node(node).attr("data-gt").and_then(|v| v.parse().ok());
            let xpath = doc.xpath(node);
            field_by_node.insert(node, fields.len());
            fields.push(FieldInfo {
                node,
                text: std::mem::take(&mut texts[i]),
                norm: std::mem::take(&mut norms[i]),
                matches,
                xpath,
                gt_id,
            });
        }
        let (enter, exit) = euler_intervals(&doc);
        PageView { page_id: page_id.to_string(), doc, fields, field_by_node, enter, exit }
    }

    /// Guarded [`PageView::build`] for the fault-isolated ingest/serve
    /// paths: applies `guards`' pre-parse size cap and post-parse
    /// structure checks, returning a typed [`PageError`] instead of
    /// feeding a hostile page downstream. [`PageView::build`] itself stays
    /// infallible and guard-free (the fail-fast paths are unchanged).
    ///
    /// With the test-only `fault-inject` feature, a page whose HTML
    /// contains [`crate::session::FAULT_PANIC_MARKER`] panics here —
    /// the hook seeded fault plans use to prove panic containment.
    pub fn try_build(
        page_id: &str,
        html: &str,
        kb: &Kb,
        guards: &GuardConfig,
    ) -> Result<PageView, PageError> {
        PageView::try_build_inner(page_id, html, kb, guards, None)
    }

    /// [`PageView::try_build`] matching through a shared [`MatchCache`]
    /// (see [`PageView::build_with_cache`] — same contract, guarded path).
    pub fn try_build_with_cache(
        page_id: &str,
        html: &str,
        kb: &Kb,
        guards: &GuardConfig,
        cache: &mut MatchCache<'_>,
    ) -> Result<PageView, PageError> {
        PageView::try_build_inner(page_id, html, kb, guards, Some(cache))
    }

    fn try_build_inner(
        page_id: &str,
        html: &str,
        kb: &Kb,
        guards: &GuardConfig,
        cache: Option<&mut MatchCache<'_>>,
    ) -> Result<PageView, PageError> {
        #[cfg(feature = "fault-inject")]
        if html.contains(crate::session::FAULT_PANIC_MARKER) {
            // lint: allow(CL003) reason="test-only fault-inject feature: this panic IS the seeded fault the containment suite detonates to prove isolation"
            panic!("injected fault: page {page_id}");
        }
        if html.len() > guards.max_page_bytes {
            return Err(PageError::OversizedPage {
                bytes: html.len(),
                limit: guards.max_page_bytes,
            });
        }
        let view = PageView::build_inner(page_id, html, kb, cache);
        let depth = view.doc.max_depth();
        if depth > guards.max_dom_depth {
            return Err(PageError::ParseDepthExceeded { depth, limit: guards.max_dom_depth });
        }
        if view.fields.is_empty() {
            return Err(PageError::EmptyDom);
        }
        Ok(view)
    }

    /// Index of the field at `node`, if it is a text field.
    pub fn field_of_node(&self, node: NodeId) -> Option<usize> {
        self.field_by_node.get(&node).copied()
    }

    /// True if `node` lies in the subtree rooted at `ancestor` (including
    /// `node == ancestor`). O(1) via the precomputed Euler intervals;
    /// equivalent to `node == ancestor || doc.is_ancestor(ancestor, node)`.
    #[inline]
    pub fn in_subtree(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.enter[ancestor.index()] <= self.enter[node.index()]
            && self.exit[node.index()] <= self.exit[ancestor.index()]
    }

    /// All distinct KB values mentioned on the page (the `pageSet` of
    /// Algorithm 1), sorted for Jaccard computation.
    pub fn page_value_set(&self) -> Vec<ValueId> {
        let mut v: Vec<ValueId> =
            self.fields.iter().flat_map(|f| f.matches.iter().copied()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Fields whose matches contain `value` (all mentions of a KB value).
    pub fn mentions_of(&self, value: ValueId) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches.contains(&value))
            .map(|(i, _)| i)
            .collect()
    }
}

/// One iterative DFS assigning entry/exit clocks to every node.
fn euler_intervals(doc: &Document) -> (Vec<u32>, Vec<u32>) {
    let n = doc.len();
    let mut enter = vec![0u32; n];
    let mut exit = vec![0u32; n];
    let mut clock = 0u32;
    let root = doc.root();
    enter[root.index()] = clock;
    clock += 1;
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(top) = stack.last_mut() {
        let (id, ci) = *top;
        let children = &doc.node(id).children;
        if ci < children.len() {
            top.1 += 1;
            let c = children[ci];
            enter[c.index()] = clock;
            clock += 1;
            stack.push((c, 0));
        } else {
            exit[id.index()] = clock;
            clock += 1;
            stack.pop();
        }
    }
    (enter, exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    fn kb() -> Kb {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let mut b = KbBuilder::new(o);
        let f = b.entity(film, "Do the Right Thing");
        let p = b.entity(person, "Spike Lee");
        b.triple(f, directed, p);
        b.build()
    }

    #[test]
    fn builds_fields_with_matches() {
        let kb = kb();
        let html = r#"<html><body><h1 data-gt="0">Do the Right Thing</h1><div><span data-gt="1">Spike Lee</span><span data-gt="2">Nobody Known</span></div></body></html>"#;
        let pv = PageView::build("p1", html, &kb);
        assert_eq!(pv.fields.len(), 3);
        assert_eq!(pv.fields[0].matches.len(), 1);
        assert_eq!(pv.fields[1].matches.len(), 1);
        assert!(pv.fields[2].matches.is_empty());
        assert_eq!(pv.fields[1].gt_id, Some(1));
        assert_eq!(pv.page_value_set().len(), 2);
    }

    #[test]
    fn mentions_of_finds_all_occurrences() {
        let kb = kb();
        let lee = kb.match_text("Spike Lee")[0];
        let html = "<div><b>Spike Lee</b></div><ul><li>Spike Lee</li><li>Other</li></ul>";
        let pv = PageView::build("p", html, &kb);
        assert_eq!(pv.mentions_of(lee).len(), 2);
    }

    #[test]
    fn field_of_node_maps_every_field_and_only_fields() {
        let kb = kb();
        let html = "<div><b>Spike Lee</b></div><ul><li>A</li><li>B</li></ul>";
        let pv = PageView::build("p", html, &kb);
        for (i, f) in pv.fields.iter().enumerate() {
            assert_eq!(pv.field_of_node(f.node), Some(i));
        }
        // A non-field node (the root) maps to nothing.
        assert_eq!(pv.field_of_node(pv.doc.root()), None);
    }

    #[test]
    fn in_subtree_matches_the_ancestor_walk() {
        let kb = kb();
        let html = "<div><b>a</b><i><u>b</u></i></div><p>c</p>";
        let pv = PageView::build("p", html, &kb);
        for a in pv.doc.all_nodes() {
            for n in pv.doc.all_nodes() {
                let reference = n == a || pv.doc.is_ancestor(a, n);
                assert_eq!(pv.in_subtree(a, n), reference, "a={a:?} n={n:?}");
            }
        }
    }

    #[test]
    fn empty_page_is_fine() {
        let kb = kb();
        let pv = PageView::build("empty", "", &kb);
        assert!(pv.fields.is_empty());
        assert!(pv.page_value_set().is_empty());
    }

    #[test]
    fn try_build_types_each_guard_violation() {
        let kb = kb();
        let guards = GuardConfig { max_page_bytes: 128, max_dom_depth: 4 };
        let over = "x".repeat(129);
        assert!(matches!(
            PageView::try_build("big", &over, &kb, &guards),
            Err(PageError::OversizedPage { bytes: 129, limit: 128 })
        ));
        let deep = format!("{}t{}", "<div>".repeat(6), "</div>".repeat(6));
        assert!(matches!(
            PageView::try_build("deep", &deep, &kb, &guards),
            Err(PageError::ParseDepthExceeded { limit: 4, .. })
        ));
        assert!(matches!(
            PageView::try_build("hollow", "<div></div>", &kb, &guards),
            Err(PageError::EmptyDom)
        ));
        let ok = PageView::try_build("fine", "<p>Spike Lee</p>", &kb, &guards).unwrap();
        assert_eq!(ok.fields.len(), 1);
    }

    mod hostile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Arbitrary input — byte soup, stray brackets, anything — is
            /// either built or refused with a typed [`PageError`]; neither
            /// path panics and the arena stays consistent.
            #[test]
            fn build_and_try_build_survive_arbitrary_input(s in ".*") {
                let kb = kb();
                let pv = PageView::build("fuzz", &s, &kb);
                pv.doc.check_consistency().unwrap();
                let guards = GuardConfig::default();
                match PageView::try_build("fuzz", &s, &kb, &guards) {
                    Ok(view) => {
                        view.doc.check_consistency().unwrap();
                        prop_assert!(!view.fields.is_empty());
                        prop_assert!(view.doc.max_depth() <= guards.max_dom_depth);
                        prop_assert!(s.len() <= guards.max_page_bytes);
                    }
                    Err(e) => prop_assert!(PageError::KINDS.contains(&e.kind())),
                }
            }

            /// Under adversarially tight guards every outcome is still a
            /// typed refusal or a view that satisfies both limits.
            #[test]
            fn tight_guards_always_hold_on_taggy_input(
                s in "(<(div|p|b)>|</(div|p|b)>|[a-z &;<>]{0,6}){0,30}",
                max_bytes in 8usize..200,
                max_depth in 1usize..8,
            ) {
                let kb = kb();
                let guards = GuardConfig { max_page_bytes: max_bytes, max_dom_depth: max_depth };
                match PageView::try_build("fuzz", &s, &kb, &guards) {
                    Ok(view) => {
                        prop_assert!(s.len() <= max_bytes);
                        prop_assert!(view.doc.max_depth() <= max_depth);
                        prop_assert!(!view.fields.is_empty());
                    }
                    Err(PageError::OversizedPage { bytes, limit }) => {
                        prop_assert_eq!(bytes, s.len());
                        prop_assert!(bytes > limit);
                    }
                    Err(PageError::ParseDepthExceeded { depth, limit }) => {
                        prop_assert!(depth > limit);
                    }
                    Err(PageError::EmptyDom) => {}
                    Err(other) => prop_assert!(false, "unexpected {other:?}"),
                }
            }
        }
    }
}
