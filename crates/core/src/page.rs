//! Parsed page views with precomputed KB matches.
//!
//! The pipeline touches each text field many times (topic scoring, relation
//! annotation, feature extraction, extraction); [`PageView`] computes the
//! expensive per-field facts — normalized text, KB matches, XPath — exactly
//! once.

use ceres_dom::{parse_html, Document, NodeId, XPath};
use ceres_kb::{Kb, ValueId};
use ceres_text::normalize;

/// One text field of a page.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    pub node: NodeId,
    /// Whitespace-normalized visible text.
    pub text: String,
    /// [`ceres_text::normalize`]d form of `text`.
    pub norm: String,
    /// KB values this field's text matches (possibly several: ambiguity).
    pub matches: Vec<ValueId>,
    pub xpath: XPath,
    /// The generator's ground-truth id (`data-gt`), carried for evaluation
    /// only. The feature extractor never reads it (tested).
    pub gt_id: Option<u32>,
}

/// A parsed page plus its per-field index.
#[derive(Debug)]
pub struct PageView {
    pub page_id: String,
    pub doc: Document,
    pub fields: Vec<FieldInfo>,
}

impl PageView {
    /// Parse `html` and match every text field against `kb`.
    pub fn build(page_id: &str, html: &str, kb: &Kb) -> PageView {
        let doc = parse_html(html);
        let mut fields = Vec::new();
        for node in doc.text_fields() {
            let text = doc.own_text(node);
            let norm = normalize(&text);
            let matches = if norm.is_empty() { Vec::new() } else { kb.match_text(&text) };
            let gt_id = doc.node(node).attr("data-gt").and_then(|v| v.parse().ok());
            let xpath = doc.xpath(node);
            fields.push(FieldInfo { node, text, norm, matches, xpath, gt_id });
        }
        PageView { page_id: page_id.to_string(), doc, fields }
    }

    /// Index of the field at `node`, if it is a text field.
    pub fn field_of_node(&self, node: NodeId) -> Option<usize> {
        self.fields.iter().position(|f| f.node == node)
    }

    /// All distinct KB values mentioned on the page (the `pageSet` of
    /// Algorithm 1), sorted for Jaccard computation.
    pub fn page_value_set(&self) -> Vec<ValueId> {
        let mut v: Vec<ValueId> =
            self.fields.iter().flat_map(|f| f.matches.iter().copied()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Fields whose matches contain `value` (all mentions of a KB value).
    pub fn mentions_of(&self, value: ValueId) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches.contains(&value))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    fn kb() -> Kb {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let mut b = KbBuilder::new(o);
        let f = b.entity(film, "Do the Right Thing");
        let p = b.entity(person, "Spike Lee");
        b.triple(f, directed, p);
        b.build()
    }

    #[test]
    fn builds_fields_with_matches() {
        let kb = kb();
        let html = r#"<html><body><h1 data-gt="0">Do the Right Thing</h1><div><span data-gt="1">Spike Lee</span><span data-gt="2">Nobody Known</span></div></body></html>"#;
        let pv = PageView::build("p1", html, &kb);
        assert_eq!(pv.fields.len(), 3);
        assert_eq!(pv.fields[0].matches.len(), 1);
        assert_eq!(pv.fields[1].matches.len(), 1);
        assert!(pv.fields[2].matches.is_empty());
        assert_eq!(pv.fields[1].gt_id, Some(1));
        assert_eq!(pv.page_value_set().len(), 2);
    }

    #[test]
    fn mentions_of_finds_all_occurrences() {
        let kb = kb();
        let lee = kb.match_text("Spike Lee")[0];
        let html = "<div><b>Spike Lee</b></div><ul><li>Spike Lee</li><li>Other</li></ul>";
        let pv = PageView::build("p", html, &kb);
        assert_eq!(pv.mentions_of(lee).len(), 2);
    }

    #[test]
    fn empty_page_is_fine() {
        let kb = kb();
        let pv = PageView::build("empty", "", &kb);
        assert!(pv.fields.is_empty());
        assert!(pv.page_value_set().is_empty());
    }
}
