//! # ceres-core
//!
//! The CERES system itself (paper §2–§4) plus the baselines of §5.2:
//!
//! * [`page`] — parsed page views with precomputed KB matches;
//! * [`template`] — Vertex-style template clustering of a site's pages
//!   (§2.1, §5.5.1);
//! * [`topic`] — Algorithm 1: page topic identification (local Jaccard
//!   scoring + uniqueness filter + dominant-XPath global step);
//! * [`annotate`] — Algorithm 2: relation annotation with local evidence
//!   (best local mention) and global evidence (XPath clustering);
//! * [`features`] — structural 4-tuple features and node-text features
//!   (§4.2);
//! * [`examples`] — training-set construction with `r = 3` negative
//!   sampling and list-index exclusion (§4.1);
//! * [`extract`] — model application, name-node subject resolution, and
//!   confidence-thresholded extraction (§4.3);
//! * [`pipeline`] — the end-to-end batch site extractor (CERES-FULL and
//!   CERES-TOPIC are the same pipeline with different annotation modes);
//! * [`session`] — the streaming train-once/extract-many API the batch
//!   pipeline wraps: [`session::SiteSession`] ingests pages as they
//!   arrive (parse overlaps the caller's fetch loop), trains once, and
//!   freezes a thread-safe [`session::TrainedSite`] that extracts from
//!   new pages indefinitely — and persists: [`session::TrainedSite::save`]
//!   writes a versioned `ceres-store` artifact that
//!   [`session::TrainedSite::load`] rebuilds in any other process,
//!   byte-identical and panic-free on corrupted input;
//! * [`baseline`] — CERES-BASELINE: the classic pairwise distant-supervision
//!   assumption, with a memory budget that reproduces the paper's
//!   out-of-memory failure on large KBs;
//! * [`vertex`] — VERTEX++: wrapper induction from a handful of
//!   (simulated) manual annotations.

pub mod annotate;
pub mod baseline;
pub mod config;
pub mod examples;
pub mod extract;
pub mod features;
pub mod page;
pub mod pipeline;
pub mod session;
pub mod template;
pub mod topic;
pub mod vertex;

pub use config::{
    AnnotateConfig, CeresConfig, DriftConfig, ExtractConfig, FeatureConfig, GuardConfig,
    TemplateConfig, TopicConfig, XPathDistance,
};
pub use extract::Extraction;
pub use pipeline::{AnnotationMode, SiteRun, SiteRunStats, StageProfile, StageTime};
pub use session::{
    DriftSignal, DriftWatchdog, ExtractOutcome, PageError, SessionHealth, SiteSession,
    SiteSessionBuilder, TrainedSite,
};
