//! Training-set construction (§4.1).
//!
//! Classes: `OTHER` (0), `NAME` (1), then one class per predicate that
//! received at least one annotation on this site. Positives come straight
//! from the annotations; negatives are `r = 3` random unlabeled nodes per
//! positive, excluding nodes that sit in the same template list as a
//! positive (nodes "that differ from these positives only at these
//! indices"), because such nodes are probably unannotated true values.

use crate::annotate::PageAnnotation;
use crate::features::{FeatureSpace, NameArena, NameBuf};
use crate::page::PageView;
use ceres_kb::PredId;
use ceres_ml::Dataset;
use ceres_runtime::Runtime;
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer, PREALLOC_CAP};
use ceres_text::{FxHashMap, FxHashSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The OTHER (no relation) class id.
pub const CLASS_OTHER: u32 = 0;
/// The topic-name class id.
pub const CLASS_NAME: u32 = 1;

/// Maps predicates to contiguous class ids ≥ 2.
#[derive(Debug, Clone)]
pub struct ClassMap {
    preds: Vec<PredId>,
}

impl ClassMap {
    /// Build from the predicates that actually received annotations.
    pub fn from_annotations(annotations: &[PageAnnotation]) -> ClassMap {
        let mut preds: Vec<PredId> =
            annotations.iter().flat_map(|a| a.labels.iter().map(|&(_, p)| p)).collect();
        preds.sort_unstable();
        preds.dedup();
        ClassMap { preds }
    }

    pub fn n_classes(&self) -> usize {
        self.preds.len() + 2
    }

    pub fn class_of(&self, pred: PredId) -> Option<u32> {
        self.preds.binary_search(&pred).ok().map(|i| (i + 2) as u32)
    }

    pub fn pred_of(&self, class: u32) -> Option<PredId> {
        if class < 2 {
            None
        } else {
            self.preds.get((class - 2) as usize).copied()
        }
    }

    pub fn preds(&self) -> &[PredId] {
        &self.preds
    }
}

impl Encode for ClassMap {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.preds.len());
        for p in &self.preds {
            w.put_varint(u64::from(p.0));
        }
    }
}

impl Decode for ClassMap {
    fn decode(r: &mut Reader<'_>) -> Result<ClassMap, StoreError> {
        const CTX: &str = "class map";
        let len = r.get_usize(CTX)?;
        let mut preds = Vec::with_capacity(len.min(PREALLOC_CAP));
        for _ in 0..len {
            let raw = r.get_varint(CTX)?;
            let id = u16::try_from(raw).map_err(|_| StoreError::Invalid {
                context: CTX,
                detail: format!("predicate id {raw} overflows u16"),
            })?;
            preds.push(PredId(id));
        }
        // class_of binary-searches, so sortedness is load-bearing.
        if !preds.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Invalid {
                context: CTX,
                detail: "predicate ids must be strictly increasing".to_string(),
            });
        }
        Ok(ClassMap { preds })
    }
}

/// Build the training dataset. Feature interning happens here (the space
/// must not be frozen yet).
pub fn build_training(
    pages: &[&PageView],
    annotations: &[PageAnnotation],
    space: &mut FeatureSpace,
    class_map: &ClassMap,
    negative_ratio: usize,
    seed: u64,
) -> Dataset {
    build_training_opts(pages, annotations, space, class_map, negative_ratio, seed, true)
}

/// [`build_training`] with the list-index exclusion switchable (ablation).
#[allow(clippy::too_many_arguments)]
pub fn build_training_opts(
    pages: &[&PageView],
    annotations: &[PageAnnotation],
    space: &mut FeatureSpace,
    class_map: &ClassMap,
    negative_ratio: usize,
    seed: u64,
    list_exclusion: bool,
) -> Dataset {
    build_training_on(
        &Runtime::sequential(),
        pages,
        annotations,
        space,
        class_map,
        negative_ratio,
        seed,
        list_exclusion,
    )
}

/// How many training rows one name-collection task covers. Coarse enough
/// that a task's arena amortizes its buffers, fine enough to fan out.
const NAME_ROWS_PER_TASK: usize = 32;

/// Interning shards: the dictionary-building pass splits the name space by
/// the top 4 bits of each name's FxHash, mirroring the KB matcher's
/// [`ceres_kb::MatchShards`] layout.
const INTERN_SHARDS: usize = 16;

/// Shard of a feature name: the top `log2(INTERN_SHARDS)` bits of its
/// FxHash — the same "hash prefix" rule as [`ceres_kb::MatchShards`].
#[inline]
fn intern_shard(name: &str) -> usize {
    use std::hash::BuildHasher;
    (ceres_text::FxBuildHasher::default().hash_one(name) >> 60) as usize
}

/// [`build_training_opts`] with the feature pass split over `rt`.
///
/// The dictionary is the training hot loop's `&mut` bottleneck: interning
/// serializes every example. The split runs **name collection** — all the
/// DOM walking and string assembly, which only needs `&FeatureSpace` — as
/// a parallel pass producing packed [`NameArena`]s, then builds the
/// dictionary by **hash-prefix sharding** instead of a sequential replay:
///
/// 1. a parallel bucketing pass files every collected name (by flat arena
///    index) under its shard — the top 4 bits of the name's FxHash,
///    mirroring `MatchShards`;
/// 2. a parallel pass over the 16 shards walks its buckets in arena order,
///    deduplicating into one name list per shard — shard-local
///    first-occurrence order;
/// 3. the shard lists are appended to the dictionary in shard order (the
///    deterministic index remap: shard 0's names, then shard 1's, …),
///    touching the `&mut` dictionary only once per **unique** name instead
///    of once per occurrence;
/// 4. a parallel pass re-walks the rows streaming each example straight
///    into a per-chunk CSR [`Dataset`] through read-only dictionary
///    lookups; the chunks are concatenated in chunk order.
///
/// Every stage's order is fixed by the data (never the thread count), so
/// feature ids, vectors, and the resulting dataset are byte-identical at
/// every thread count — pinned by `parallel_name_collection_is_thread_count_invariant`.
/// A pre-populated dictionary keeps its ids (new names append after it);
/// a frozen dictionary admits no new names, exactly like the fused loop.
#[allow(clippy::too_many_arguments)]
pub fn build_training_on(
    rt: &Runtime,
    pages: &[&PageView],
    annotations: &[PageAnnotation],
    space: &mut FeatureSpace,
    class_map: &ClassMap,
    negative_ratio: usize,
    seed: u64,
    list_exclusion: bool,
) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7261_696e);
    // Two passes: collect (page, field, class) first so that n_features is
    // known only after interning everything.
    let mut rows: Vec<(usize, usize, u32)> = Vec::new();

    for ann in annotations {
        let page = pages[ann.page_idx];
        let mut labeled: FxHashSet<usize> = FxHashSet::default();
        labeled.insert(ann.name_field);
        rows.push((ann.page_idx, ann.name_field, CLASS_NAME));
        let mut n_pos = 1usize;
        for &(fi, pred) in &ann.labels {
            if let Some(class) = class_map.class_of(pred) {
                rows.push((ann.page_idx, fi, class));
                labeled.insert(fi);
                n_pos += 1;
            }
        }

        // List-index exclusion: positives of the same predicate that share
        // a shape define wildcard positions; unlabeled nodes matching a
        // positive under those wildcards are skipped as negatives.
        let mut excluded: FxHashSet<usize> = labeled.clone();
        let mut by_pred: FxHashMap<PredId, Vec<usize>> = FxHashMap::default();
        if !list_exclusion {
            by_pred.clear();
        }
        if list_exclusion {
            for &(fi, pred) in &ann.labels {
                by_pred.entry(pred).or_default().push(fi);
            }
        }
        for fields in by_pred.values() {
            if fields.len() < 2 {
                continue;
            }
            let mut wildcards: Vec<usize> = Vec::new();
            for w in fields.windows(2) {
                let (a, b) = (&page.fields[w[0]].xpath, &page.fields[w[1]].xpath);
                for pos in a.differing_index_positions(b) {
                    if !wildcards.contains(&pos) {
                        wildcards.push(pos);
                    }
                }
            }
            if wildcards.is_empty() {
                continue;
            }
            let rep = &page.fields[fields[0]].xpath;
            for (fi, f) in page.fields.iter().enumerate() {
                if !excluded.contains(&fi) && rep.matches_with_wildcards(&f.xpath, &wildcards) {
                    excluded.insert(fi);
                }
            }
        }

        // Sample negatives from the remaining unlabeled fields.
        let mut candidates: Vec<usize> =
            (0..page.fields.len()).filter(|fi| !excluded.contains(fi)).collect();
        candidates.shuffle(&mut rng);
        for &fi in candidates.iter().take(negative_ratio * n_pos) {
            rows.push((ann.page_idx, fi, CLASS_OTHER));
        }
    }

    // Feature pass, split in two:
    // 1. parallel name collection (`&FeatureSpace`, one packed arena per
    //    row chunk, no dictionary access);
    let row_chunks: Vec<&[(usize, usize, u32)]> = rows.chunks(NAME_ROWS_PER_TASK).collect();
    let arenas: Vec<NameArena> = rt.par_map(&row_chunks, |chunk| {
        let mut buf = NameBuf::default();
        let mut arena = NameArena::default();
        let space = &*space;
        for &(pi, fi, _) in *chunk {
            space.emit_names(pages[pi], pages[pi].fields[fi].node, &mut buf, &mut arena);
            arena.end_row();
        }
        arena
    });
    // 2. parallel bucketing: file every name under its hash-prefix shard
    //    (flat indexes into the owning arena, emission order preserved);
    let buckets: Vec<Vec<Vec<u32>>> = rt.par_map(&arenas, |arena| {
        let mut b: Vec<Vec<u32>> = vec![Vec::new(); INTERN_SHARDS];
        for k in 0..arena.n_names() {
            b[intern_shard(arena.name(k))].push(k as u32);
        }
        b
    });
    // 3. parallel shard dedup: shard s walks bucket s of every arena in
    //    arena order, keeping first occurrences of names the dictionary
    //    does not already know. Shard-local order is fixed by the data.
    let base_dict = &space.dict;
    let shard_ids: Vec<usize> = (0..INTERN_SHARDS).collect();
    let shard_names: Vec<Vec<String>> = rt.par_map_chunked(&shard_ids, 1, |&s| {
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        let mut names: Vec<String> = Vec::new();
        for (arena, bucket) in arenas.iter().zip(&buckets) {
            for &k in &bucket[s] {
                let name = arena.name(k as usize);
                if base_dict.get(name).is_none() && seen.insert(name) {
                    names.push(name.to_string());
                }
            }
        }
        names
    });
    // 4. sequential merge, once per unique name: append shard lists in
    //    shard order — the deterministic index remap. A frozen dictionary
    //    rejects the appends (intern returns None), matching the fused
    //    loop's behavior of dropping unseen names.
    for names in &shard_names {
        for name in names {
            space.dict.intern(name);
        }
    }
    // 5. parallel CSR build through read-only lookups, rows in order: each
    //    chunk streams its rows straight into a per-chunk `Dataset` (no
    //    per-row SparseVec allocation), and the chunks are concatenated in
    //    chunk order — the same rows, same order, same sorted/deduped
    //    indices as the old per-example build.
    let dict = &space.dict;
    let n_classes = class_map.n_classes();
    let n_features = space.dict.len();
    let chunk_ids: Vec<usize> = (0..arenas.len()).collect();
    let parts: Vec<Dataset> = rt.par_map_chunked(
        &chunk_ids,
        ceres_runtime::auto_chunk_coarse(chunk_ids.len(), rt.threads()),
        |&ci| {
            let arena = &arenas[ci];
            let chunk = row_chunks[ci];
            let mut idx: Vec<u32> = Vec::with_capacity(64);
            let mut part = Dataset::new(n_classes, n_features);
            for (r, &(_, _, class)) in chunk.iter().enumerate() {
                for name in arena.row(r) {
                    if let Some(id) = dict.get(name) {
                        idx.push(id);
                    }
                }
                part.push_indicators_buf(&mut idx, class);
            }
            part
        },
    );
    let mut data = Dataset::new(n_classes, n_features);
    for part in &parts {
        data.append(part);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FeatureConfig;
    use ceres_kb::{Kb, KbBuilder, Ontology, ValueId};

    fn kb_and_page() -> (Kb, PageView, PredId, ValueId) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let cast = o.register_pred("cast", film, true);
        let mut b = KbBuilder::new(o);
        let f = b.entity(film, "The Film");
        for i in 0..3 {
            let p = b.entity(person, &format!("Actor Number {i}"));
            b.triple(f, cast, p);
        }
        let kb = b.build();
        let html = "<html><body><h1>The Film</h1><ul>\
                    <li>Actor Number 0</li><li>Actor Number 1</li><li>Actor Number 2</li>\
                    <li>Unknown Person</li><li>Another Unknown</li></ul>\
                    <div><span>footer a</span><span>footer b</span><span>footer c</span>\
                    <span>footer d</span><span>footer e</span></div></body></html>";
        let page = PageView::build("p", html, &kb);
        let f_id = kb.match_text("The Film")[0];
        (kb, page, cast, f_id)
    }

    fn annotation(page: &PageView, pred: PredId, topic: ValueId) -> PageAnnotation {
        let name_field = page.fields.iter().position(|f| f.text == "The Film").unwrap();
        let labels: Vec<(usize, PredId)> = page
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.text.starts_with("Actor Number"))
            .map(|(fi, _)| (fi, pred))
            .collect();
        PageAnnotation { page_idx: 0, topic, name_field, labels }
    }

    #[test]
    fn class_map_is_dense_and_invertible() {
        let (_, page, pred, topic) = kb_and_page();
        let ann = annotation(&page, pred, topic);
        let cm = ClassMap::from_annotations(std::slice::from_ref(&ann));
        assert_eq!(cm.n_classes(), 3);
        let c = cm.class_of(pred).unwrap();
        assert_eq!(c, 2);
        assert_eq!(cm.pred_of(c), Some(pred));
        assert_eq!(cm.pred_of(CLASS_OTHER), None);
        assert_eq!(cm.pred_of(CLASS_NAME), None);
    }

    #[test]
    fn negatives_exclude_list_siblings() {
        let (_, page, pred, topic) = kb_and_page();
        let ann = annotation(&page, pred, topic);
        let cm = ClassMap::from_annotations(std::slice::from_ref(&ann));
        let pages = vec![&page];
        let mut space = FeatureSpace::new(&pages, FeatureConfig::default());
        let data = build_training(&pages, &[ann], &mut space, &cm, 3, 1);

        // Positives: 1 name + 3 cast. Negatives ≤ 3 × 4 = 12 but the two
        // "Unknown" <li>s are excluded (same list shape as positives), so
        // negatives come from the footer spans and h1 only.
        let n_pos = data.labels().iter().filter(|&&y| y != CLASS_OTHER).count();
        assert_eq!(n_pos, 4);
        let negatives: Vec<ceres_ml::SparseVec> = (0..data.len())
            .filter(|&r| data.labels()[r] == CLASS_OTHER)
            .map(|r| data.sparse_row(r))
            .collect();
        assert!(!negatives.is_empty());

        // No negative may be one of the excluded list items: check by
        // rebuilding feature vectors for the unknown <li>s.
        let page = pages[0];
        for (fi, f) in page.fields.iter().enumerate() {
            if f.text.contains("Unknown") {
                let x = space.features(page, page.fields[fi].node);
                assert!(
                    negatives.iter().all(|n| *n != x),
                    "list sibling {fi} must not be a negative"
                );
            }
        }
    }

    #[test]
    fn negative_count_respects_ratio() {
        let (_, page, pred, topic) = kb_and_page();
        let ann = annotation(&page, pred, topic);
        let cm = ClassMap::from_annotations(std::slice::from_ref(&ann));
        let pages = vec![&page];
        let mut space = FeatureSpace::new(&pages, FeatureConfig::default());
        let data = build_training(&pages, std::slice::from_ref(&ann), &mut space, &cm, 2, 1);
        let n_pos = data.labels().iter().filter(|&&y| y != CLASS_OTHER).count();
        let n_neg = data.labels().iter().filter(|&&y| y == CLASS_OTHER).count();
        assert!(n_neg <= 2 * n_pos);
    }

    #[test]
    fn parallel_name_collection_is_thread_count_invariant() {
        // The split (parallel collect + sequential intern) must produce a
        // byte-identical dataset — including dictionary ids — at any
        // thread count, against the sequential entry point.
        let (_, page, pred, topic) = kb_and_page();
        let ann = annotation(&page, pred, topic);
        let cm = ClassMap::from_annotations(std::slice::from_ref(&ann));
        let pages = vec![&page];
        let mut s_ref = FeatureSpace::new(&pages, FeatureConfig::default());
        let d_ref = build_training(&pages, std::slice::from_ref(&ann), &mut s_ref, &cm, 3, 9);
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let mut s = FeatureSpace::new(&pages, FeatureConfig::default());
            let d =
                build_training_on(&rt, &pages, std::slice::from_ref(&ann), &mut s, &cm, 3, 9, true);
            // Dataset's PartialEq covers the CSR arrays, labels, and shape.
            assert_eq!(d, d_ref, "threads={threads}");
            assert_eq!(s.dict.len(), s_ref.dict.len(), "threads={threads}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, page, pred, topic) = kb_and_page();
        let ann = annotation(&page, pred, topic);
        let cm = ClassMap::from_annotations(std::slice::from_ref(&ann));
        let pages = vec![&page];
        let mut s1 = FeatureSpace::new(&pages, FeatureConfig::default());
        let d1 = build_training(&pages, std::slice::from_ref(&ann), &mut s1, &cm, 3, 9);
        let mut s2 = FeatureSpace::new(&pages, FeatureConfig::default());
        let d2 = build_training(&pages, &[ann], &mut s2, &cm, 3, 9);
        assert_eq!(d1.labels(), d2.labels());
        assert_eq!(d1, d2);
    }
}
