//! All pipeline knobs, with defaults set "according to our empirical
//! observations … tend\[ing\] to a small value" (paper §3.1.2), matching the
//! concrete examples given in the text wherever one is given.

pub use ceres_ml::TrainConfig;
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer};

/// Which Levenshtein distance drives the global XPath clustering
/// (§3.2.2 uses the character-level distance; step-level is an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XPathDistance {
    /// Character-level Levenshtein over the rendered XPath (the paper's).
    Char,
    /// Step-level Levenshtein (each `tag[i]` is one symbol).
    Step,
}

/// Topic-identification knobs (Algorithm 1).
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Uniqueness filter: discard a candidate identified as topic of at
    /// least this many pages (paper example: ≥ 5).
    pub max_pages_per_topic: usize,
    /// Only the most frequent N candidate paths are tried per page when
    /// locating the dominant topic field (performance guard).
    pub max_paths_considered: usize,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig { max_pages_per_topic: 5, max_paths_considered: 50 }
    }
}

/// Relation-annotation knobs (Algorithm 2).
#[derive(Debug, Clone)]
pub struct AnnotateConfig {
    /// Informativeness filter: drop pages with fewer relation annotations
    /// (paper example: ≥ 3).
    pub min_annotations_per_page: usize,
    /// A predicate is "frequently duplicated" when at least this fraction
    /// of its (page, object) occurrences have multiple mentions.
    pub freq_dup_threshold: f64,
    /// §3.2.2 case 2: clustering also applies when one object appears as a
    /// value on more than this fraction of annotated pages.
    pub common_object_page_frac: f64,
    pub distance: XPathDistance,
}

impl Default for AnnotateConfig {
    fn default() -> Self {
        AnnotateConfig {
            min_annotations_per_page: 3,
            freq_dup_threshold: 0.3,
            common_object_page_frac: 0.5,
            distance: XPathDistance::Char,
        }
    }
}

/// Feature-extraction knobs (§4.2).
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// Sibling window width around ancestors ("up to a width of 5 on either
    /// side").
    pub sibling_width: usize,
    /// How far up the ancestor chain structural features reach.
    pub max_ancestor_levels: usize,
    /// A string is "frequent" if it appears on at least this fraction of
    /// annotated pages.
    pub frequent_string_page_frac: f64,
    /// Cap on the frequent-string lexicon size.
    pub max_frequent_strings: usize,
    /// How many ancestor levels up the nearby-text scan reaches.
    pub text_feature_levels: usize,
    /// Cap on nearby fields examined per node (performance guard).
    pub max_nearby_fields: usize,
    /// Ablation switches.
    pub enable_structural: bool,
    pub enable_text: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            sibling_width: 5,
            max_ancestor_levels: 8,
            frequent_string_page_frac: 0.25,
            max_frequent_strings: 60,
            text_feature_levels: 3,
            max_nearby_fields: 40,
            enable_structural: true,
            enable_text: true,
        }
    }
}

impl Encode for FeatureConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.sibling_width);
        w.put_usize(self.max_ancestor_levels);
        w.put_f64(self.frequent_string_page_frac);
        w.put_usize(self.max_frequent_strings);
        w.put_usize(self.text_feature_levels);
        w.put_usize(self.max_nearby_fields);
        w.put_bool(self.enable_structural);
        w.put_bool(self.enable_text);
    }
}

impl Decode for FeatureConfig {
    fn decode(r: &mut Reader<'_>) -> Result<FeatureConfig, StoreError> {
        const CTX: &str = "feature config";
        Ok(FeatureConfig {
            sibling_width: r.get_usize(CTX)?,
            max_ancestor_levels: r.get_usize(CTX)?,
            frequent_string_page_frac: r.get_f64(CTX)?,
            max_frequent_strings: r.get_usize(CTX)?,
            text_feature_levels: r.get_usize(CTX)?,
            max_nearby_fields: r.get_usize(CTX)?,
            enable_structural: r.get_bool(CTX)?,
            enable_text: r.get_bool(CTX)?,
        })
    }
}

/// Extraction-time knobs (§4.3).
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Confidence threshold for emitting a triple (paper default 0.5).
    pub threshold: f64,
    /// Minimum probability for accepting a name node on a page.
    pub name_threshold: f64,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig { threshold: 0.5, name_threshold: 0.5 }
    }
}

impl Encode for ExtractConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.threshold);
        w.put_f64(self.name_threshold);
    }
}

impl Decode for ExtractConfig {
    fn decode(r: &mut Reader<'_>) -> Result<ExtractConfig, StoreError> {
        const CTX: &str = "extract config";
        Ok(ExtractConfig { threshold: r.get_f64(CTX)?, name_threshold: r.get_f64(CTX)? })
    }
}

/// Template-clustering knobs (§2.1; the Vertex clustering of \[17\]).
#[derive(Debug, Clone)]
pub struct TemplateConfig {
    pub enabled: bool,
    /// Jaccard threshold on structural shingles for joining a cluster.
    pub sim_threshold: f64,
    /// Clusters smaller than this are skipped by the pipeline.
    pub min_cluster_size: usize,
}

impl Default for TemplateConfig {
    fn default() -> Self {
        TemplateConfig { enabled: true, sim_threshold: 0.35, min_cluster_size: 6 }
    }
}

/// Ingest/serve page guards: the structural limits a page must respect
/// before the fault-isolating paths ([`crate::session::SiteSession::try_push_page`],
/// [`crate::session::TrainedSite::try_extract_batch`]) will feed it to the
/// pipeline. Violations quarantine the page with a typed
/// [`crate::session::PageError`] instead of letting hostile markup consume
/// unbounded memory or stack. The legacy fail-fast paths (`push_page`,
/// `extract_batch`) apply no guards — their behavior is unchanged.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Pre-parse cap on a page's HTML byte length
    /// ([`crate::session::PageError::OversizedPage`] beyond it). Real
    /// CommonCrawl captures are overwhelmingly under a megabyte; hostile
    /// multi-megabyte attribute blobs are not worth parsing.
    pub max_page_bytes: usize,
    /// Post-parse cap on DOM nesting depth
    /// ([`crate::session::PageError::ParseDepthExceeded`] beyond it).
    /// The tolerant parser accepts absurd nesting without erroring; the
    /// recursive consumers downstream should never see it.
    pub max_dom_depth: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { max_page_bytes: 1 << 20, max_dom_depth: 128 }
    }
}

/// Drift-watchdog knobs (see [`crate::session::DriftWatchdog`]): when the
/// fraction of recently served pages that matched **no trained template**
/// crosses `max_unassigned_rate` over a rolling `window`, the watchdog
/// flips [`crate::session::DriftSignal::RetrainSuggested`] — the serve-side
/// hook for detecting a mid-crawl site redesign.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Rolling-window length, in observed pages.
    pub window: usize,
    /// Observations required before the watchdog may fire (a cold window
    /// of two pages should not suggest retraining).
    pub min_samples: usize,
    /// Unassigned fraction of the window at which the signal flips.
    pub max_unassigned_rate: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { window: 64, min_samples: 16, max_unassigned_rate: 0.5 }
    }
}

/// Everything the site pipeline needs.
#[derive(Debug, Clone)]
pub struct CeresConfig {
    pub seed: u64,
    pub topic: TopicConfig,
    pub annotate: AnnotateConfig,
    pub features: FeatureConfig,
    pub train: TrainConfig,
    /// Negatives per positive (§4.1: "Following convention … r = 3").
    pub negative_ratio: usize,
    /// List-index exclusion during negative sampling (§4.1); off = the
    /// ablation where list siblings may become negatives.
    pub list_exclusion: bool,
    pub extract: ExtractConfig,
    pub template: TemplateConfig,
    /// Cap on annotated pages used for learning (Figure 5's sweep);
    /// `None` = use all.
    pub max_annotated_pages: Option<usize>,
    /// Worker threads for the parallel stages (page parse, per-cluster
    /// jobs, per-page extraction). `None` defers to the `CERES_THREADS`
    /// environment variable, then to the machine's available parallelism.
    /// Pipeline output is byte-identical for every value (README:
    /// "Parallelism & determinism").
    pub threads: Option<usize>,
    /// Cap on pages being parsed concurrently while a
    /// [`crate::session::SiteSession`] ingests (the reorder buffer's
    /// in-flight limit). `None` = twice the worker-thread count. Output is
    /// byte-identical for every value; the cap only bounds memory and
    /// overlap during ingest.
    pub ingest_ahead: Option<usize>,
    /// Page guards for the fault-isolating ingest/serve paths (the
    /// fail-fast paths ignore them).
    pub guards: GuardConfig,
    /// Serve-side drift-watchdog thresholds.
    pub drift: DriftConfig,
}

impl Default for CeresConfig {
    fn default() -> Self {
        CeresConfig {
            seed: 42,
            topic: TopicConfig::default(),
            annotate: AnnotateConfig::default(),
            features: FeatureConfig::default(),
            train: TrainConfig::default(),
            negative_ratio: 3,
            list_exclusion: true,
            extract: ExtractConfig::default(),
            template: TemplateConfig::default(),
            max_annotated_pages: None,
            threads: None,
            ingest_ahead: None,
            guards: GuardConfig::default(),
            drift: DriftConfig::default(),
        }
    }
}

impl CeresConfig {
    pub fn new(seed: u64) -> Self {
        CeresConfig { seed, ..Default::default() }
    }

    /// Pin the worker-thread count (builder style; `0` means "unset").
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_examples() {
        let c = CeresConfig::new(1);
        assert_eq!(c.topic.max_pages_per_topic, 5);
        assert_eq!(c.annotate.min_annotations_per_page, 3);
        assert_eq!(c.negative_ratio, 3);
        assert_eq!(c.extract.threshold, 0.5);
        assert_eq!(c.features.sibling_width, 5);
        assert!((c.train.c - 1.0).abs() < f64::EPSILON);
    }
}
