//! The end-to-end site extractor (Figure 3), restructured as explicit
//! stages on the deterministic [`ceres_runtime`] executor:
//!
//! ```text
//! Parse ──▶ Cluster ──▶ {Topic ▸ Annotate}   ──▶ Plan ──▶ Train  ──▶ Extract
//! (par,     (seq,       (par, one job per        (seq     (par,      (par, one task per
//!  pages)    site-wide)  template cluster)        budget   cluster)   (cluster, page) pair)
//!                                                 alloc)
//! ```
//!
//! Every parallel stage merges its results in **input order** (cluster
//! order, then page order), so [`SiteRun`] output is byte-identical for
//! every thread count — the serial path at `threads = 1` and the parallel
//! path are the same computation, differently scheduled. The
//! `max_annotated_pages` budget, which would otherwise chain cluster jobs
//! sequentially, is allocated by the Plan stage over annotation *counts*
//! (in cluster order) before any training starts, so cluster jobs stay
//! independent.
//!
//! CERES-FULL and CERES-TOPIC are this same pipeline run with
//! [`AnnotationMode::Full`] vs [`AnnotationMode::TopicOnly`].

pub use crate::annotate::AnnotationMode;
use crate::annotate::{annotate_relations, PageAnnotation};
use crate::config::CeresConfig;
use crate::examples::ClassMap;
use crate::extract::{extract_page, Extraction};
use crate::features::FeatureSpace;
use crate::page::PageView;
use crate::template::cluster_pages;
use crate::topic::{identify_topics, TopicOutcome};
use ceres_kb::Kb;
use ceres_ml::LogReg;
use ceres_runtime::Runtime;

/// Topic decision for one annotation-half page (evaluation input for
/// Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicRecord {
    pub page_id: String,
    /// Canonical name of the identified topic entity, if any.
    pub topic: Option<String>,
    /// Ground-truth id of the name field chosen, if any.
    pub name_gt_id: Option<u32>,
    /// Whether the page survived the informativeness filter.
    pub survived: bool,
}

/// One relation annotation (evaluation input for Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationRecord {
    pub page_id: String,
    pub gt_id: Option<u32>,
    /// Predicate name (ontology string).
    pub pred: String,
}

/// Aggregate counters for one site run.
///
/// Counters are either **sums** over clusters (`n_*_pages`, `n_annotations`,
/// `n_train_examples`) or **maxima** (`n_features`, `n_classes`). Both are
/// commutative and associative, so every aggregate is well-defined no
/// matter which order concurrent cluster jobs complete in; the merge
/// additionally runs in fixed cluster order for byte-stable output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteRunStats {
    pub n_annotation_pages: usize,
    pub n_extraction_pages: usize,
    pub n_clusters: usize,
    pub n_pages_with_topic: usize,
    /// Pages that survived the informativeness filter (≥ min annotations).
    pub n_annotated_pages: usize,
    /// Total relation annotations on surviving pages.
    pub n_annotations: usize,
    pub n_train_examples: usize,
    /// Feature-space size of the **largest** per-cluster model (explicitly
    /// a max, not a sum: clusters train independent models over
    /// independent dictionaries, so summing dimensions is meaningless).
    pub n_features: usize,
    /// Class count of the largest per-cluster model (max, like
    /// [`SiteRunStats::n_features`]).
    pub n_classes: usize,
    /// Whether at least one cluster trained a model.
    pub trained: bool,
    /// The pairwise baseline sets this when it exceeds its memory budget
    /// (reproducing the paper's out-of-memory failure).
    pub oom: bool,
}

/// Everything a site run produces.
#[derive(Debug, Default)]
pub struct SiteRun {
    pub extractions: Vec<Extraction>,
    pub topic_records: Vec<TopicRecord>,
    pub annotation_records: Vec<AnnotationRecord>,
    pub stats: SiteRunStats,
}

/// Run the CERES pipeline on one website.
///
/// * `annotation_pages`: `(page id, html)` pairs used for distant
///   supervision (the training half).
/// * `extraction_pages`: pages to extract from; `None` extracts from the
///   annotation pages themselves (the CommonCrawl protocol, where the
///   whole site is both annotated and harvested).
pub fn run_site(
    kb: &Kb,
    annotation_pages: &[(String, String)],
    extraction_pages: Option<&[(String, String)]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let rt = Runtime::with_threads(cfg.threads);
    // --- Parse stage: PageView::build fans out, one task per page ---
    let ann_views: Vec<PageView> =
        rt.par_map(annotation_pages, |(id, html)| PageView::build(id, html, kb));
    let ext_views: Option<Vec<PageView>> =
        extraction_pages.map(|pages| rt.par_map(pages, |(id, html)| PageView::build(id, html, kb)));
    run_site_views_on(&rt, kb, &ann_views, ext_views.as_deref(), cfg, mode)
}

/// One template cluster's work order: indexes into the annotation and
/// extraction view slices. Plans are fixed before any cluster stage runs,
/// which is what lets cluster jobs execute concurrently.
struct ClusterPlan {
    ann_idx: Vec<usize>,
    ext_idx: Vec<usize>,
}

/// Output of one cluster's {Topic ▸ Annotate} job.
struct ClusterAnnotations {
    topic_out: TopicOutcome,
    annotations: Vec<PageAnnotation>,
}

/// Output of one cluster's Train job; the frozen [`FeatureSpace`] is shared
/// by reference across that cluster's parallel extract tasks.
struct ClusterModel {
    model: LogReg,
    space: FeatureSpace,
    class_map: ClassMap,
    n_train_examples: usize,
    n_features: usize,
    n_classes: usize,
}

/// [`run_site`] over pre-built [`PageView`]s (benchmarks parse once).
/// Threads come from `cfg.threads` (then `CERES_THREADS`, then the
/// machine); output is byte-identical for every thread count.
pub fn run_site_views(
    kb: &Kb,
    ann_views: &[PageView],
    ext_views: Option<&[PageView]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    run_site_views_on(&Runtime::with_threads(cfg.threads), kb, ann_views, ext_views, cfg, mode)
}

/// [`run_site_views`] on a caller-provided [`Runtime`].
pub fn run_site_views_on(
    rt: &Runtime,
    kb: &Kb,
    ann_views: &[PageView],
    ext_views: Option<&[PageView]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let mut run = SiteRun::default();
    run.stats.n_annotation_pages = ann_views.len();
    run.stats.n_extraction_pages = ext_views.map_or(ann_views.len(), |v| v.len());

    // --- Cluster stage: template clustering over annotation ∪ extraction
    // pages, so every extraction page is handled by the model of its own
    // template family (site-wide, sequential) ---
    let n_ann = ann_views.len();
    let combined: Vec<&PageView> = match ext_views {
        Some(ext) => ann_views.iter().chain(ext.iter()).collect(),
        None => ann_views.iter().collect(),
    };
    let clusters = cluster_pages(&combined, &cfg.template);
    run.stats.n_clusters = clusters.len();

    // Fix each cluster's work order up front (in cluster order).
    let plans: Vec<ClusterPlan> = clusters
        .into_iter()
        .filter(|cluster| cluster.len() >= cfg.template.min_cluster_size)
        .filter_map(|cluster| {
            let ann_idx: Vec<usize> = cluster.iter().copied().filter(|&i| i < n_ann).collect();
            if ann_idx.is_empty() {
                return None;
            }
            let ext_idx: Vec<usize> = match ext_views {
                Some(_) => {
                    cluster.iter().copied().filter(|&i| i >= n_ann).map(|i| i - n_ann).collect()
                }
                None => ann_idx.clone(),
            };
            Some(ClusterPlan { ann_idx, ext_idx })
        })
        .collect();
    let cluster_ann = |plan: &ClusterPlan| -> Vec<&PageView> {
        plan.ann_idx.iter().map(|&i| &ann_views[i]).collect()
    };

    // --- {Topic ▸ Annotate} stage: Algorithms 1 and 2, one concurrent job
    // per cluster (no cross-cluster state) ---
    let mut annotated: Vec<ClusterAnnotations> = rt.par_map(&plans, |plan| {
        let pages = cluster_ann(plan);
        let topic_out = identify_topics(&pages, kb, &cfg.topic);
        let annotations = annotate_relations(&pages, kb, &topic_out, &cfg.annotate, mode);
        ClusterAnnotations { topic_out, annotations }
    });

    // --- Plan stage: allocate Figure 5's annotated-pages budget across
    // clusters *before* training. Walking annotation counts in cluster
    // order reproduces exactly what consuming the budget inside a
    // sequential cluster loop produced, while leaving the Train/Extract
    // jobs below free of cross-cluster data flow.
    let mut annotated_budget = cfg.max_annotated_pages.unwrap_or(usize::MAX);
    for ca in &mut annotated {
        let granted = ca.annotations.len().min(annotated_budget);
        ca.annotations.truncate(granted);
        annotated_budget -= granted;
    }

    // Records for the evaluation harness (ordered merge: cluster order,
    // then page order within each cluster).
    for (plan, ca) in plans.iter().zip(&annotated) {
        let pages = cluster_ann(plan);
        let survived: std::collections::BTreeSet<usize> =
            ca.annotations.iter().map(|a| a.page_idx).collect();
        run.stats.n_pages_with_topic +=
            ca.topic_out.assignments.iter().filter(|a| a.is_some()).count();
        for (k, page) in pages.iter().enumerate() {
            let assignment = ca.topic_out.assignments[k];
            run.topic_records.push(TopicRecord {
                page_id: page.page_id.clone(),
                topic: assignment.map(|(v, _)| kb.canonical(v).to_string()),
                name_gt_id: assignment.and_then(|(_, fi)| page.fields[fi].gt_id),
                survived: survived.contains(&k),
            });
        }
        for ann in &ca.annotations {
            let page = pages[ann.page_idx];
            for &(fi, pred) in &ann.labels {
                run.annotation_records.push(AnnotationRecord {
                    page_id: page.page_id.clone(),
                    gt_id: page.fields[fi].gt_id,
                    pred: kb.ontology().pred_name(pred).to_string(),
                });
            }
        }
        run.stats.n_annotated_pages += ca.annotations.len();
        run.stats.n_annotations += ca.annotations.iter().map(|a| a.labels.len()).sum::<usize>();
    }

    // --- Train stage: one concurrent job per cluster; budgets are already
    // fixed, so jobs are fully independent ---
    let cluster_ids: Vec<usize> = (0..plans.len()).collect();
    let trained: Vec<Option<ClusterModel>> = rt.par_map(&cluster_ids, |&ci| {
        let ca = &annotated[ci];
        if ca.annotations.len() < 2 {
            return None;
        }
        let class_map = ClassMap::from_annotations(&ca.annotations);
        if class_map.preds().is_empty() {
            return None;
        }
        let pages = cluster_ann(&plans[ci]);
        let mut space = FeatureSpace::new(&pages, cfg.features.clone());
        // Nested fan-out: name collection for this cluster's rows runs on
        // the same pool (the caller-participates pool makes the nesting
        // deadlock-free), so a single-cluster site still parallelizes its
        // training feature pass.
        let data = crate::examples::build_training_on(
            rt,
            &pages,
            &ca.annotations,
            &mut space,
            &class_map,
            cfg.negative_ratio,
            cfg.seed,
            cfg.list_exclusion,
        );
        if data.is_empty() {
            return None;
        }
        let (model, _train_stats) = LogReg::train(&data, &cfg.train);
        space.freeze();
        Some(ClusterModel {
            model,
            space,
            class_map,
            n_train_examples: data.len(),
            n_features: data.n_features,
            n_classes: data.n_classes,
        })
    });
    for cm in trained.iter().flatten() {
        run.stats.n_train_examples += cm.n_train_examples;
        run.stats.n_features = run.stats.n_features.max(cm.n_features);
        run.stats.n_classes = run.stats.n_classes.max(cm.n_classes);
        run.stats.trained = true;
    }

    // --- Extract stage: flatten to one task per (cluster, page) pair so a
    // single-cluster site still fans out across its pages. Each task only
    // reads its cluster's frozen FeatureSpace (`&FeatureSpace`); the merge
    // restores cluster order then page order.
    let tasks: Vec<(usize, &PageView)> = plans
        .iter()
        .enumerate()
        .filter(|&(ci, _)| trained[ci].is_some())
        .flat_map(|(ci, plan)| {
            plan.ext_idx.iter().map(move |&i| match ext_views {
                Some(ext) => (ci, &ext[i]),
                None => (ci, &ann_views[i]),
            })
        })
        .collect();
    let extracted: Vec<Vec<Extraction>> = rt.par_map(&tasks, |&(ci, page)| {
        let cm = trained[ci].as_ref().expect("extract tasks exist only for trained clusters");
        extract_page(page, &cm.model, &cm.space, &cm.class_map, &cfg.extract)
    });
    run.extractions = extracted.into_iter().flatten().collect();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    /// Build a small consistent site + KB and run the whole pipeline.
    fn small_site() -> (Kb, Vec<(String, String)>) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let cast_p = o.register_pred("cast", film, true);
        let genre_p = o.register_pred("genre", film, true);
        let mut b = KbBuilder::new(o);
        let genres = ["Drama", "Comedy", "Action"];
        // 12 films in the KB, site has 18 pages (6 about unknown films).
        for i in 0..12 {
            let f = b.entity(film, &format!("Great Movie {i}"));
            let d = b.entity(person, &format!("Director Person {i}"));
            b.triple(f, directed, d);
            let g = b.literal(genres[i % 3]);
            b.triple(f, genre_p, g);
            for j in 0..3 {
                let a = b.entity(person, &format!("Star {i} {j}"));
                b.triple(f, cast_p, a);
            }
        }
        let kb = b.build();

        let html = |i: usize| {
            let genre = genres[i % 3];
            format!(
                "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                 <h1 class=title>Great Movie {i}</h1>\
                 <div class=info>\
                 <div class=row><span class=label>Director:</span><span class=val>Director Person {i}</span></div>\
                 <div class=row><span class=label>Genre:</span><span class=val>{genre}</span></div>\
                 </div>\
                 <div class=cast><h2>Cast</h2><ul>\
                 <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li></ul></div>\
                 <div class=recs><h3>Also like</h3><span class=rec>{genre}</span></div>\
                 </body></html>"
            )
        };
        let pages: Vec<(String, String)> =
            (0..18).map(|i| (format!("page-{i}"), html(i))).collect();
        (kb, pages)
    }

    #[test]
    fn full_pipeline_extracts_beyond_the_kb() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.trained, "model must train: {:?}", run.stats);
        assert!(run.stats.n_annotated_pages >= 8, "stats: {:?}", run.stats);
        // Extraction must cover films 12..17 (absent from the KB).
        let unknown_extractions = run
            .extractions
            .iter()
            .filter(|e| {
                e.page_id
                    .trim_start_matches("page-")
                    .parse::<usize>()
                    .map(|i| i >= 12)
                    .unwrap_or(false)
            })
            .count();
        assert!(unknown_extractions > 0, "no long-tail extractions");
    }

    #[test]
    fn topic_records_and_annotation_records_are_emitted() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert_eq!(run.topic_records.len(), 18);
        assert!(run.annotation_records.len() >= 20);
        assert!(
            run.annotation_records.iter().all(|r| r.gt_id.is_none()),
            "hand-written test pages carry no data-gt; records must reflect that"
        );
    }

    #[test]
    fn split_halves_protocol_extracts_only_eval_pages() {
        let (kb, pages) = small_site();
        let train: Vec<(String, String)> = pages.iter().step_by(2).cloned().collect();
        let eval: Vec<(String, String)> = pages.iter().skip(1).step_by(2).cloned().collect();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &train, Some(&eval), &cfg, AnnotationMode::Full);
        let eval_ids: std::collections::HashSet<&str> =
            eval.iter().map(|(id, _)| id.as_str()).collect();
        assert!(!run.extractions.is_empty());
        assert!(run.extractions.iter().all(|e| eval_ids.contains(e.page_id.as_str())));
    }

    #[test]
    fn annotated_page_cap_limits_training() {
        let (kb, pages) = small_site();
        let mut cfg = CeresConfig::new(11);
        cfg.max_annotated_pages = Some(3);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.n_annotated_pages <= 3);
    }

    #[test]
    fn output_is_byte_identical_for_every_thread_count() {
        let (kb, pages) = small_site();
        let run_at = |threads: usize| {
            let cfg = CeresConfig::new(11).with_threads(threads);
            run_site(&kb, &pages, None, &cfg, AnnotationMode::Full)
        };
        let serial = run_at(1);
        assert!(serial.stats.trained);
        for threads in [2, 8] {
            let parallel = run_at(threads);
            assert_eq!(serial.stats, parallel.stats, "stats differ at {threads} threads");
            assert_eq!(serial.extractions, parallel.extractions);
            assert_eq!(serial.topic_records, parallel.topic_records);
            assert_eq!(serial.annotation_records, parallel.annotation_records);
        }
    }

    #[test]
    fn annotated_page_cap_is_thread_count_invariant() {
        // The budget plan must allocate identically whether cluster jobs
        // run sequentially or concurrently.
        let (kb, pages) = small_site();
        let run_at = |threads: usize| {
            let mut cfg = CeresConfig::new(11).with_threads(threads);
            cfg.max_annotated_pages = Some(5);
            run_site(&kb, &pages, None, &cfg, AnnotationMode::Full)
        };
        let serial = run_at(1);
        let parallel = run_at(8);
        assert!(serial.stats.n_annotated_pages <= 5);
        assert_eq!(serial.stats, parallel.stats);
        assert_eq!(serial.extractions, parallel.extractions);
    }

    #[test]
    fn topic_only_mode_produces_more_annotations() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let full = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        let naive = run_site(&kb, &pages, None, &cfg, AnnotationMode::TopicOnly);
        assert!(naive.stats.n_annotations >= full.stats.n_annotations);
    }
}
