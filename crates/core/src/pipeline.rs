//! The end-to-end site extractor (Figure 3): batch wrappers over the
//! streaming train-once/extract-many engine in [`crate::session`]. The
//! stages run on the deterministic [`ceres_runtime`] executor:
//!
//! ```text
//! Parse ──▶ Cluster ──▶ {Topic ▸ Annotate}   ──▶ Plan ──▶ Train  ──▶ Extract
//! (par,     (seq,       (par, one job per        (seq     (par,      (par, one task per
//!  stream)   site-wide)  template cluster)        budget   cluster)   page / (cluster,
//!                                                 alloc)              page) pair)
//! ```
//!
//! Every parallel stage merges its results in **input order** (cluster
//! order, then page order), so [`SiteRun`] output is byte-identical for
//! every thread count — the serial path at `threads = 1` and the parallel
//! path are the same computation, differently scheduled. The
//! `max_annotated_pages` budget, which would otherwise chain cluster jobs
//! sequentially, is allocated by the Plan stage over annotation *counts*
//! (in cluster order) before any training starts, so cluster jobs stay
//! independent.
//!
//! Training clusters the **annotation pages only**; extraction pages
//! (when given) are placed by the trained template signatures
//! ([`crate::template::Clustering::assign`]) — the same path
//! [`crate::session::TrainedSite::extract_page`] uses for pages that
//! arrive long after training, so `run_site` is the streaming API run
//! back-to-back and is byte-identical to it by construction (and by the
//! `tests/session.rs` equivalence suite).
//!
//! CERES-FULL and CERES-TOPIC are this same pipeline run with
//! [`AnnotationMode::Full`] vs [`AnnotationMode::TopicOnly`].

pub use crate::annotate::AnnotationMode;
use crate::config::CeresConfig;
use crate::extract::Extraction;
use crate::page::PageView;
use crate::session::{train_views_on, INGEST_MATCH_CACHE_CAP};
use ceres_kb::{Kb, MatchCache};
use ceres_runtime::{auto_chunk, Runtime};
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer};

/// Topic decision for one annotation-half page (evaluation input for
/// Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicRecord {
    pub page_id: String,
    /// Canonical name of the identified topic entity, if any.
    pub topic: Option<String>,
    /// Ground-truth id of the name field chosen, if any.
    pub name_gt_id: Option<u32>,
    /// Whether the page survived the informativeness filter.
    pub survived: bool,
}

/// One relation annotation (evaluation input for Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationRecord {
    pub page_id: String,
    pub gt_id: Option<u32>,
    /// Predicate name (ontology string).
    pub pred: String,
}

/// Aggregate counters for one site run.
///
/// Counters are either **sums** over clusters (`n_*_pages`, `n_annotations`,
/// `n_train_examples`) or **maxima** (`n_features`, `n_classes`). Both are
/// commutative and associative, so every aggregate is well-defined no
/// matter which order concurrent cluster jobs complete in; the merge
/// additionally runs in fixed cluster order for byte-stable output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteRunStats {
    pub n_annotation_pages: usize,
    pub n_extraction_pages: usize,
    pub n_clusters: usize,
    pub n_pages_with_topic: usize,
    /// Pages that survived the informativeness filter (≥ min annotations).
    pub n_annotated_pages: usize,
    /// Total relation annotations on surviving pages.
    pub n_annotations: usize,
    pub n_train_examples: usize,
    /// Feature-space size of the **largest** per-cluster model (explicitly
    /// a max, not a sum: clusters train independent models over
    /// independent dictionaries, so summing dimensions is meaningless).
    pub n_features: usize,
    /// Class count of the largest per-cluster model (max, like
    /// [`SiteRunStats::n_features`]).
    pub n_classes: usize,
    /// Whether at least one cluster trained a model.
    pub trained: bool,
    /// The pairwise baseline sets this when it exceeds its memory budget
    /// (reproducing the paper's out-of-memory failure).
    pub oom: bool,
}

impl Encode for TopicRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.page_id);
        w.put(&self.topic);
        w.put(&self.name_gt_id);
        w.put_bool(self.survived);
    }
}

impl Decode for TopicRecord {
    fn decode(r: &mut Reader<'_>) -> Result<TopicRecord, StoreError> {
        Ok(TopicRecord {
            page_id: r.get_str("topic record page id")?,
            topic: r.get()?,
            name_gt_id: r.get()?,
            survived: r.get_bool("topic record survived flag")?,
        })
    }
}

impl Encode for AnnotationRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.page_id);
        w.put(&self.gt_id);
        w.put_str(&self.pred);
    }
}

impl Decode for AnnotationRecord {
    fn decode(r: &mut Reader<'_>) -> Result<AnnotationRecord, StoreError> {
        Ok(AnnotationRecord {
            page_id: r.get_str("annotation record page id")?,
            gt_id: r.get()?,
            pred: r.get_str("annotation record predicate")?,
        })
    }
}

impl Encode for SiteRunStats {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_annotation_pages);
        w.put_usize(self.n_extraction_pages);
        w.put_usize(self.n_clusters);
        w.put_usize(self.n_pages_with_topic);
        w.put_usize(self.n_annotated_pages);
        w.put_usize(self.n_annotations);
        w.put_usize(self.n_train_examples);
        w.put_usize(self.n_features);
        w.put_usize(self.n_classes);
        w.put_bool(self.trained);
        w.put_bool(self.oom);
    }
}

impl Decode for SiteRunStats {
    fn decode(r: &mut Reader<'_>) -> Result<SiteRunStats, StoreError> {
        const CTX: &str = "site run stats";
        Ok(SiteRunStats {
            n_annotation_pages: r.get_usize(CTX)?,
            n_extraction_pages: r.get_usize(CTX)?,
            n_clusters: r.get_usize(CTX)?,
            n_pages_with_topic: r.get_usize(CTX)?,
            n_annotated_pages: r.get_usize(CTX)?,
            n_annotations: r.get_usize(CTX)?,
            n_train_examples: r.get_usize(CTX)?,
            n_features: r.get_usize(CTX)?,
            n_classes: r.get_usize(CTX)?,
            trained: r.get_bool(CTX)?,
            oom: r.get_bool(CTX)?,
        })
    }
}

/// One stage's slice of the per-run wall-time profile: elapsed time plus
/// the number of jobs the worker pool executed during the stage (pool
/// utilization; counted only with the `runtime-stats` feature, 0 without
/// it, and process-global — concurrent sessions bleed into each other's
/// counts, which is fine for the single-pipeline bench/repro use).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTime {
    pub ms: f64,
    pub pool_jobs: u64,
}

/// Per-stage wall-time profile of one site run: Parse → Cluster →
/// {Topic ▸ Annotate} → Plan → Train → Extract.
///
/// Deliberately **not** part of [`SiteRunStats`]: stats are compared for
/// byte-identity across thread counts (`tests/parallelism.rs`) and
/// serialized into the `TrainedSite` artifact, while wall times differ
/// run to run — so the profile lives *beside* the stats, outside both the
/// equality contract and the codec. An artifact loaded from disk reports
/// an all-zero profile (training happened in another process).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageProfile {
    pub parse: StageTime,
    pub cluster: StageTime,
    pub annotate: StageTime,
    pub plan: StageTime,
    pub train: StageTime,
    pub extract: StageTime,
}

impl StageTime {
    /// Time `f`, attributing its wall clock and pool-job delta to one
    /// stage — how callers outside this crate (e.g. the eval harness,
    /// which runs extraction itself) fill a [`StageProfile`] slot.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (StageTime, R) {
        let t = StageTimer::start();
        let r = f();
        (t.stop(), r)
    }
}

impl StageProfile {
    /// The stages in pipeline order, labeled — the iteration every report
    /// (bench JSON, `repro --stats`) renders from.
    pub fn stages(&self) -> [(&'static str, StageTime); 6] {
        [
            ("parse", self.parse),
            ("cluster", self.cluster),
            ("annotate", self.annotate),
            ("plan", self.plan),
            ("train", self.train),
            ("extract", self.extract),
        ]
    }

    /// Wall time across all stages (the profiled fraction of the run).
    pub fn total_ms(&self) -> f64 {
        self.stages().iter().map(|(_, t)| t.ms).sum()
    }
}

/// Duplicate-row folding totals of the Train stage, summed over every
/// per-cluster model: how many training examples went in and how many
/// unique `(row, label)` rows the optimizer actually walked after folding
/// (see `ceres_ml::logreg`).
///
/// Like [`StageProfile`], this is deliberately **not** part of
/// [`SiteRunStats`]: it describes how training was *executed*, not what it
/// produced, so it lives beside the stats — outside the byte-identity
/// contract of `tests/parallelism.rs` and outside the `TrainedSite`
/// artifact codec (a loaded artifact reports zeros; folding happened in
/// the training process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainFoldStats {
    /// Training examples handed to the per-cluster trainers, summed.
    pub n_examples: usize,
    /// Unique rows after duplicate folding, summed over clusters.
    pub n_unique_rows: usize,
}

impl TrainFoldStats {
    /// Examples per unique row (≥ 1.0); 1.0 when nothing trained.
    pub fn fold_ratio(&self) -> f64 {
        if self.n_unique_rows == 0 {
            1.0
        } else {
            self.n_examples as f64 / self.n_unique_rows as f64
        }
    }
}

/// Pool jobs executed so far (`runtime-stats` only; 0 without the feature).
pub(crate) fn pool_jobs_now() -> u64 {
    #[cfg(feature = "runtime-stats")]
    {
        ceres_runtime::pool_stats().jobs_executed
    }
    #[cfg(not(feature = "runtime-stats"))]
    {
        0
    }
}

/// Scope timer filling one [`StageTime`]: wall clock plus the pool-job
/// delta over the stage.
pub(crate) struct StageTimer {
    t0: std::time::Instant,
    jobs0: u64,
}

impl StageTimer {
    pub(crate) fn start() -> StageTimer {
        // lint: allow(CL002) reason="profiling channel only: StageTime durations feed RunStats display and never touch the byte-identical pipeline output"
        StageTimer { t0: std::time::Instant::now(), jobs0: pool_jobs_now() }
    }

    pub(crate) fn stop(self) -> StageTime {
        StageTime {
            ms: self.t0.elapsed().as_secs_f64() * 1e3,
            pool_jobs: pool_jobs_now().saturating_sub(self.jobs0),
        }
    }
}

/// Everything a site run produces.
#[derive(Debug, Default)]
pub struct SiteRun {
    pub extractions: Vec<Extraction>,
    pub topic_records: Vec<TopicRecord>,
    pub annotation_records: Vec<AnnotationRecord>,
    pub stats: SiteRunStats,
    /// Per-stage wall times of this run (not part of any equality or
    /// serialization contract — see [`StageProfile`]).
    pub profile: StageProfile,
    /// Train-stage duplicate-folding totals (execution detail, outside the
    /// equality and serialization contracts — see [`TrainFoldStats`]).
    pub fold: TrainFoldStats,
    /// Ingest/serve health ledger (quarantine, assign-confidence). Like
    /// `profile` and `fold` it lives beside the stats, outside both the
    /// equality contract and the artifact codec — the batch entry points
    /// ingest pre-vetted fixtures and leave it empty; session-built runs
    /// carry the session's ledger (see [`crate::session::SessionHealth`]).
    pub health: crate::session::SessionHealth,
}

/// Run the CERES pipeline on one website.
///
/// * `annotation_pages`: `(page id, html)` pairs used for distant
///   supervision (the training half).
/// * `extraction_pages`: pages to extract from; `None` extracts from the
///   annotation pages themselves (the CommonCrawl protocol, where the
///   whole site is both annotated and harvested).
///
/// This is the train-once/extract-many session run back-to-back on the
/// same engine, with one batch advantage: the page slices are already
/// materialized, so parsing borrows them (a bulk `par_map`, no per-page
/// string copies and no reorder buffer — those exist for producers that
/// stream pages in, which is [`crate::session::SiteSession`]'s job).
pub fn run_site(
    kb: &Kb,
    annotation_pages: &[(String, String)],
    extraction_pages: Option<&[(String, String)]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let rt = Runtime::with_threads(cfg.threads);
    let parse_t = StageTimer::start();
    // Parse in page chunks, one shared read-through MatchCache per chunk:
    // template pages repeat field strings, so the chunk's KB lookups fold
    // to one per distinct string. Chunk-major order + in-order flatten
    // keep the output byte-identical to per-page building (the cache
    // cannot change a match result), at every thread count.
    let chunk = auto_chunk(annotation_pages.len(), rt.threads());
    let page_chunks: Vec<&[(String, String)]> = annotation_pages.chunks(chunk.max(1)).collect();
    let ann_views: Vec<PageView> = rt
        .par_map_chunked(&page_chunks, 1, |pages| {
            let mut cache = MatchCache::new(kb, INGEST_MATCH_CACHE_CAP);
            pages
                .iter()
                .map(|(id, html)| PageView::build_with_cache(id, html, kb, &mut cache))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let parse = parse_t.stop();
    let core = train_views_on(&rt, kb, &ann_views, cfg, mode);
    let extract_t = StageTimer::start();
    let (extractions, n_ext) = match extraction_pages {
        Some(pages) => (core.extract_pages_on(&rt, kb, pages), pages.len()),
        None => (core.extract_members_on(&rt, &ann_views), ann_views.len()),
    };
    let extract = extract_t.stop();
    let mut run = core.into_site_run(extractions, n_ext);
    run.profile.parse = parse;
    run.profile.extract = extract;
    run
}

/// [`run_site`] over pre-built [`PageView`]s (benchmarks parse once).
/// Threads come from `cfg.threads` (then `CERES_THREADS`, then the
/// machine); output is byte-identical for every thread count.
pub fn run_site_views(
    kb: &Kb,
    ann_views: &[PageView],
    ext_views: Option<&[PageView]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    run_site_views_on(&Runtime::with_threads(cfg.threads), kb, ann_views, ext_views, cfg, mode)
}

/// [`run_site_views`] on a caller-provided [`Runtime`].
pub fn run_site_views_on(
    rt: &Runtime,
    kb: &Kb,
    ann_views: &[PageView],
    ext_views: Option<&[PageView]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let core = train_views_on(rt, kb, ann_views, cfg, mode);
    let extract_t = StageTimer::start();
    let (extractions, n_ext) = match ext_views {
        // Unseen pages go through the template-assignment path, one task
        // per page, merged in page order.
        Some(ext) => (core.extract_views_on(rt, ext), ext.len()),
        // The whole-site protocol extracts from the training pages via
        // their recorded cluster membership (cluster order, then page
        // order — the classic batch layout).
        None => (core.extract_members_on(rt, ann_views), ann_views.len()),
    };
    let extract = extract_t.stop();
    let mut run = core.into_site_run(extractions, n_ext);
    run.profile.extract = extract;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    /// Build a small consistent site + KB and run the whole pipeline.
    fn small_site() -> (Kb, Vec<(String, String)>) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let cast_p = o.register_pred("cast", film, true);
        let genre_p = o.register_pred("genre", film, true);
        let mut b = KbBuilder::new(o);
        let genres = ["Drama", "Comedy", "Action"];
        // 12 films in the KB, site has 18 pages (6 about unknown films).
        for i in 0..12 {
            let f = b.entity(film, &format!("Great Movie {i}"));
            let d = b.entity(person, &format!("Director Person {i}"));
            b.triple(f, directed, d);
            let g = b.literal(genres[i % 3]);
            b.triple(f, genre_p, g);
            for j in 0..3 {
                let a = b.entity(person, &format!("Star {i} {j}"));
                b.triple(f, cast_p, a);
            }
        }
        let kb = b.build();

        let html = |i: usize| {
            let genre = genres[i % 3];
            format!(
                "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                 <h1 class=title>Great Movie {i}</h1>\
                 <div class=info>\
                 <div class=row><span class=label>Director:</span><span class=val>Director Person {i}</span></div>\
                 <div class=row><span class=label>Genre:</span><span class=val>{genre}</span></div>\
                 </div>\
                 <div class=cast><h2>Cast</h2><ul>\
                 <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li></ul></div>\
                 <div class=recs><h3>Also like</h3><span class=rec>{genre}</span></div>\
                 </body></html>"
            )
        };
        let pages: Vec<(String, String)> =
            (0..18).map(|i| (format!("page-{i}"), html(i))).collect();
        (kb, pages)
    }

    #[test]
    fn full_pipeline_extracts_beyond_the_kb() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.trained, "model must train: {:?}", run.stats);
        assert!(run.stats.n_annotated_pages >= 8, "stats: {:?}", run.stats);
        // Extraction must cover films 12..17 (absent from the KB).
        let unknown_extractions = run
            .extractions
            .iter()
            .filter(|e| {
                e.page_id
                    .trim_start_matches("page-")
                    .parse::<usize>()
                    .map(|i| i >= 12)
                    .unwrap_or(false)
            })
            .count();
        assert!(unknown_extractions > 0, "no long-tail extractions");
    }

    #[test]
    fn topic_records_and_annotation_records_are_emitted() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert_eq!(run.topic_records.len(), 18);
        assert!(run.annotation_records.len() >= 20);
        assert!(
            run.annotation_records.iter().all(|r| r.gt_id.is_none()),
            "hand-written test pages carry no data-gt; records must reflect that"
        );
    }

    #[test]
    fn split_halves_protocol_extracts_only_eval_pages() {
        let (kb, pages) = small_site();
        let train: Vec<(String, String)> = pages.iter().step_by(2).cloned().collect();
        let eval: Vec<(String, String)> = pages.iter().skip(1).step_by(2).cloned().collect();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &train, Some(&eval), &cfg, AnnotationMode::Full);
        let eval_ids: std::collections::HashSet<&str> =
            eval.iter().map(|(id, _)| id.as_str()).collect();
        assert!(!run.extractions.is_empty());
        assert!(run.extractions.iter().all(|e| eval_ids.contains(e.page_id.as_str())));
    }

    #[test]
    fn annotated_page_cap_limits_training() {
        let (kb, pages) = small_site();
        let mut cfg = CeresConfig::new(11);
        cfg.max_annotated_pages = Some(3);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.n_annotated_pages <= 3);
    }

    #[test]
    fn output_is_byte_identical_for_every_thread_count() {
        let (kb, pages) = small_site();
        let run_at = |threads: usize| {
            let cfg = CeresConfig::new(11).with_threads(threads);
            run_site(&kb, &pages, None, &cfg, AnnotationMode::Full)
        };
        let serial = run_at(1);
        assert!(serial.stats.trained);
        for threads in [2, 8] {
            let parallel = run_at(threads);
            assert_eq!(serial.stats, parallel.stats, "stats differ at {threads} threads");
            assert_eq!(serial.extractions, parallel.extractions);
            assert_eq!(serial.topic_records, parallel.topic_records);
            assert_eq!(serial.annotation_records, parallel.annotation_records);
        }
    }

    #[test]
    fn annotated_page_cap_is_thread_count_invariant() {
        // The budget plan must allocate identically whether cluster jobs
        // run sequentially or concurrently.
        let (kb, pages) = small_site();
        let run_at = |threads: usize| {
            let mut cfg = CeresConfig::new(11).with_threads(threads);
            cfg.max_annotated_pages = Some(5);
            run_site(&kb, &pages, None, &cfg, AnnotationMode::Full)
        };
        let serial = run_at(1);
        let parallel = run_at(8);
        assert!(serial.stats.n_annotated_pages <= 5);
        assert_eq!(serial.stats, parallel.stats);
        assert_eq!(serial.extractions, parallel.extractions);
    }

    #[test]
    fn topic_only_mode_produces_more_annotations() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let full = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        let naive = run_site(&kb, &pages, None, &cfg, AnnotationMode::TopicOnly);
        assert!(naive.stats.n_annotations >= full.stats.n_annotations);
    }
}
