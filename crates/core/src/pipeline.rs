//! The end-to-end site extractor (Figure 3): template clustering →
//! topic identification → relation annotation → training → extraction.
//!
//! CERES-FULL and CERES-TOPIC are this same pipeline run with
//! [`AnnotationMode::Full`] vs [`AnnotationMode::TopicOnly`].

use crate::annotate::annotate_relations;
pub use crate::annotate::AnnotationMode;
use crate::config::CeresConfig;
use crate::examples::ClassMap;
use crate::extract::{extract_pages, Extraction};
use crate::features::FeatureSpace;
use crate::page::PageView;
use crate::template::cluster_pages;
use crate::topic::identify_topics;
use ceres_kb::Kb;
use ceres_ml::LogReg;

/// Topic decision for one annotation-half page (evaluation input for
/// Table 7).
#[derive(Debug, Clone)]
pub struct TopicRecord {
    pub page_id: String,
    /// Canonical name of the identified topic entity, if any.
    pub topic: Option<String>,
    /// Ground-truth id of the name field chosen, if any.
    pub name_gt_id: Option<u32>,
    /// Whether the page survived the informativeness filter.
    pub survived: bool,
}

/// One relation annotation (evaluation input for Table 6).
#[derive(Debug, Clone)]
pub struct AnnotationRecord {
    pub page_id: String,
    pub gt_id: Option<u32>,
    /// Predicate name (ontology string).
    pub pred: String,
}

/// Aggregate counters for one site run.
#[derive(Debug, Clone, Default)]
pub struct SiteRunStats {
    pub n_annotation_pages: usize,
    pub n_extraction_pages: usize,
    pub n_clusters: usize,
    pub n_pages_with_topic: usize,
    /// Pages that survived the informativeness filter (≥ min annotations).
    pub n_annotated_pages: usize,
    /// Total relation annotations on surviving pages.
    pub n_annotations: usize,
    pub n_train_examples: usize,
    pub n_features: usize,
    pub n_classes: usize,
    /// Whether at least one cluster trained a model.
    pub trained: bool,
    /// The pairwise baseline sets this when it exceeds its memory budget
    /// (reproducing the paper's out-of-memory failure).
    pub oom: bool,
}

/// Everything a site run produces.
#[derive(Debug, Default)]
pub struct SiteRun {
    pub extractions: Vec<Extraction>,
    pub topic_records: Vec<TopicRecord>,
    pub annotation_records: Vec<AnnotationRecord>,
    pub stats: SiteRunStats,
}

/// Run the CERES pipeline on one website.
///
/// * `annotation_pages`: `(page id, html)` pairs used for distant
///   supervision (the training half).
/// * `extraction_pages`: pages to extract from; `None` extracts from the
///   annotation pages themselves (the CommonCrawl protocol, where the
///   whole site is both annotated and harvested).
pub fn run_site(
    kb: &Kb,
    annotation_pages: &[(String, String)],
    extraction_pages: Option<&[(String, String)]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let ann_views: Vec<PageView> =
        annotation_pages.iter().map(|(id, html)| PageView::build(id, html, kb)).collect();
    let ext_views: Option<Vec<PageView>> = extraction_pages
        .map(|pages| pages.iter().map(|(id, html)| PageView::build(id, html, kb)).collect());
    run_site_views(kb, &ann_views, ext_views.as_deref(), cfg, mode)
}

/// [`run_site`] over pre-built [`PageView`]s (benchmarks parse once).
pub fn run_site_views(
    kb: &Kb,
    ann_views: &[PageView],
    ext_views: Option<&[PageView]>,
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> SiteRun {
    let mut run = SiteRun::default();
    run.stats.n_annotation_pages = ann_views.len();
    run.stats.n_extraction_pages = ext_views.map_or(ann_views.len(), |v| v.len());

    // --- Template clustering over annotation ∪ extraction pages, so every
    // extraction page is handled by the model of its own template family ---
    let n_ann = ann_views.len();
    let combined: Vec<&PageView> = match ext_views {
        Some(ext) => ann_views.iter().chain(ext.iter()).collect(),
        None => ann_views.iter().collect(),
    };
    let clusters = cluster_pages(&combined, &cfg.template);
    run.stats.n_clusters = clusters.len();

    let mut annotated_budget = cfg.max_annotated_pages.unwrap_or(usize::MAX);

    for cluster in clusters {
        if cluster.len() < cfg.template.min_cluster_size {
            continue;
        }
        let ann_idx: Vec<usize> = cluster.iter().copied().filter(|&i| i < n_ann).collect();
        let ext_idx: Vec<usize> = match ext_views {
            Some(_) => cluster.iter().copied().filter(|&i| i >= n_ann).map(|i| i - n_ann).collect(),
            None => ann_idx.clone(),
        };
        if ann_idx.is_empty() {
            continue;
        }
        let cluster_ann: Vec<&PageView> = ann_idx.iter().map(|&i| &ann_views[i]).collect();

        // --- Algorithm 1: topic identification ---
        let topic_out = identify_topics(&cluster_ann, kb, &cfg.topic);
        run.stats.n_pages_with_topic +=
            topic_out.assignments.iter().filter(|a| a.is_some()).count();

        // --- Algorithm 2: relation annotation ---
        let mut annotations = annotate_relations(&cluster_ann, kb, &topic_out, &cfg.annotate, mode);
        // Figure 5's annotated-pages cap.
        if annotations.len() > annotated_budget {
            annotations.truncate(annotated_budget);
        }
        annotated_budget -= annotations.len().min(annotated_budget);

        // Records for the evaluation harness.
        let survived: std::collections::BTreeSet<usize> =
            annotations.iter().map(|a| a.page_idx).collect();
        for (k, page) in cluster_ann.iter().enumerate() {
            let assignment = topic_out.assignments[k];
            run.topic_records.push(TopicRecord {
                page_id: page.page_id.clone(),
                topic: assignment.map(|(v, _)| kb.canonical(v).to_string()),
                name_gt_id: assignment.and_then(|(_, fi)| page.fields[fi].gt_id),
                survived: survived.contains(&k),
            });
        }
        for ann in &annotations {
            let page = cluster_ann[ann.page_idx];
            for &(fi, pred) in &ann.labels {
                run.annotation_records.push(AnnotationRecord {
                    page_id: page.page_id.clone(),
                    gt_id: page.fields[fi].gt_id,
                    pred: kb.ontology().pred_name(pred).to_string(),
                });
            }
        }
        run.stats.n_annotated_pages += annotations.len();
        run.stats.n_annotations += annotations.iter().map(|a| a.labels.len()).sum::<usize>();

        if annotations.len() < 2 {
            continue;
        }
        let class_map = ClassMap::from_annotations(&annotations);
        if class_map.preds().is_empty() {
            continue;
        }

        // --- Training ---
        let mut space = FeatureSpace::new(&cluster_ann, cfg.features.clone());
        let data = crate::examples::build_training_opts(
            &cluster_ann,
            &annotations,
            &mut space,
            &class_map,
            cfg.negative_ratio,
            cfg.seed,
            cfg.list_exclusion,
        );
        if data.is_empty() {
            continue;
        }
        let (model, _train_stats) = LogReg::train(&data, &cfg.train);
        space.freeze();
        run.stats.n_train_examples += data.len();
        run.stats.n_features = run.stats.n_features.max(data.n_features);
        run.stats.n_classes = run.stats.n_classes.max(data.n_classes);
        run.stats.trained = true;

        // --- Extraction ---
        let targets: Vec<&PageView> = match ext_views {
            Some(ext) => ext_idx.iter().map(|&i| &ext[i]).collect(),
            None => ext_idx.iter().map(|&i| &ann_views[i]).collect(),
        };
        let extractions = extract_pages(&targets, &model, &mut space, &class_map, &cfg.extract);
        run.extractions.extend(extractions);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    /// Build a small consistent site + KB and run the whole pipeline.
    fn small_site() -> (Kb, Vec<(String, String)>) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let cast_p = o.register_pred("cast", film, true);
        let genre_p = o.register_pred("genre", film, true);
        let mut b = KbBuilder::new(o);
        let genres = ["Drama", "Comedy", "Action"];
        // 12 films in the KB, site has 18 pages (6 about unknown films).
        for i in 0..12 {
            let f = b.entity(film, &format!("Great Movie {i}"));
            let d = b.entity(person, &format!("Director Person {i}"));
            b.triple(f, directed, d);
            let g = b.literal(genres[i % 3]);
            b.triple(f, genre_p, g);
            for j in 0..3 {
                let a = b.entity(person, &format!("Star {i} {j}"));
                b.triple(f, cast_p, a);
            }
        }
        let kb = b.build();

        let html = |i: usize| {
            let genre = genres[i % 3];
            format!(
                "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                 <h1 class=title>Great Movie {i}</h1>\
                 <div class=info>\
                 <div class=row><span class=label>Director:</span><span class=val>Director Person {i}</span></div>\
                 <div class=row><span class=label>Genre:</span><span class=val>{genre}</span></div>\
                 </div>\
                 <div class=cast><h2>Cast</h2><ul>\
                 <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li></ul></div>\
                 <div class=recs><h3>Also like</h3><span class=rec>{genre}</span></div>\
                 </body></html>"
            )
        };
        let pages: Vec<(String, String)> =
            (0..18).map(|i| (format!("page-{i}"), html(i))).collect();
        (kb, pages)
    }

    #[test]
    fn full_pipeline_extracts_beyond_the_kb() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.trained, "model must train: {:?}", run.stats);
        assert!(run.stats.n_annotated_pages >= 8, "stats: {:?}", run.stats);
        // Extraction must cover films 12..17 (absent from the KB).
        let unknown_extractions = run
            .extractions
            .iter()
            .filter(|e| {
                e.page_id
                    .trim_start_matches("page-")
                    .parse::<usize>()
                    .map(|i| i >= 12)
                    .unwrap_or(false)
            })
            .count();
        assert!(unknown_extractions > 0, "no long-tail extractions");
    }

    #[test]
    fn topic_records_and_annotation_records_are_emitted() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert_eq!(run.topic_records.len(), 18);
        assert!(run.annotation_records.len() >= 20);
        assert!(
            run.annotation_records.iter().all(|r| r.gt_id.is_none()),
            "hand-written test pages carry no data-gt; records must reflect that"
        );
    }

    #[test]
    fn split_halves_protocol_extracts_only_eval_pages() {
        let (kb, pages) = small_site();
        let train: Vec<(String, String)> = pages.iter().step_by(2).cloned().collect();
        let eval: Vec<(String, String)> = pages.iter().skip(1).step_by(2).cloned().collect();
        let cfg = CeresConfig::new(11);
        let run = run_site(&kb, &train, Some(&eval), &cfg, AnnotationMode::Full);
        let eval_ids: std::collections::HashSet<&str> =
            eval.iter().map(|(id, _)| id.as_str()).collect();
        assert!(!run.extractions.is_empty());
        assert!(run.extractions.iter().all(|e| eval_ids.contains(e.page_id.as_str())));
    }

    #[test]
    fn annotated_page_cap_limits_training() {
        let (kb, pages) = small_site();
        let mut cfg = CeresConfig::new(11);
        cfg.max_annotated_pages = Some(3);
        let run = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        assert!(run.stats.n_annotated_pages <= 3);
    }

    #[test]
    fn topic_only_mode_produces_more_annotations() {
        let (kb, pages) = small_site();
        let cfg = CeresConfig::new(11);
        let full = run_site(&kb, &pages, None, &cfg, AnnotationMode::Full);
        let naive = run_site(&kb, &pages, None, &cfg, AnnotationMode::TopicOnly);
        assert!(naive.stats.n_annotations >= full.stats.n_annotations);
    }
}
