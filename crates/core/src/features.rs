//! Feature extraction (§4.2).
//!
//! **Structural features** follow the Vertex feature scheme: for the node
//! itself, its ancestors, and siblings of those ancestors (window ±5), emit
//! 4-tuples of (attribute name, attribute value, levels of ancestry,
//! sibling offset) over `tag`, `class`, `id`, `itemprop`, `itemtype`, and
//! `property`.
//!
//! **Node-text features**: strings frequent across the site ("Director:",
//! "Žánr:") found near the node produce features of (string, tree-path to
//! the string's node).
//!
//! Ground-truth hygiene: all `data-*` attributes — in particular the
//! generator's `data-gt` — are excluded from features (unit-tested below).

use crate::config::FeatureConfig;
use crate::page::PageView;
use ceres_dom::NodeId;
use ceres_ml::{FeatureDict, SparseVec};
use ceres_text::FxHashMap;
use std::fmt::Write as _;

/// Attributes used for structural features (paper list).
const FEATURE_ATTRS: &[&str] = &["class", "id", "itemprop", "itemtype", "property"];

/// Site-level feature state: the dictionary and the frequent-string
/// lexicon, built during training and frozen for extraction.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    pub dict: FeatureDict,
    /// Normalized frequent strings (labels etc.).
    pub frequent: Vec<String>,
    pub cfg: FeatureConfig,
}

impl FeatureSpace {
    /// Build the frequent-string lexicon from the annotated pages.
    pub fn new(pages: &[&PageView], cfg: FeatureConfig) -> FeatureSpace {
        let mut page_counts: FxHashMap<&str, usize> = FxHashMap::default();
        for page in pages.iter().copied() {
            let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for f in &page.fields {
                if !f.norm.is_empty() && f.norm.len() <= 40 {
                    seen.insert(f.norm.as_str());
                }
            }
            for s in seen {
                *page_counts.entry(s).or_default() += 1;
            }
        }
        let min_pages =
            ((pages.len() as f64) * cfg.frequent_string_page_frac).ceil().max(2.0) as usize;
        let mut frequent: Vec<(String, usize)> = page_counts
            .into_iter()
            .filter(|&(_, n)| n >= min_pages)
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        frequent.truncate(cfg.max_frequent_strings);
        FeatureSpace {
            dict: FeatureDict::new(),
            frequent: frequent.into_iter().map(|(s, _)| s).collect(),
            cfg,
        }
    }

    /// Freeze the dictionary: extraction-time features not seen in training
    /// are dropped. After freezing, the lookup-only
    /// [`FeatureSpace::features_frozen`] / [`FeatureSpace::pair_features_frozen`]
    /// twins work through `&self`, so the parallel extract stage shares one
    /// space across threads without cloning.
    pub fn freeze(&mut self) {
        self.dict.freeze();
    }

    pub fn is_frozen(&self) -> bool {
        self.dict.is_frozen()
    }

    /// Compute the feature vector of one node, interning new feature names
    /// (the training path; requires an unfrozen space).
    pub fn features(&mut self, page: &PageView, node: NodeId) -> SparseVec {
        let names = self.collect_names(page, node);
        let idx: Vec<u32> = names.iter().filter_map(|n| self.dict.intern(n)).collect();
        SparseVec::from_indices(idx)
    }

    /// Lookup-only twin of [`FeatureSpace::features`] for a frozen space.
    /// On a frozen dictionary `intern` and `get` coincide, so the returned
    /// vector is identical to what `features` would produce.
    pub fn features_frozen(&self, page: &PageView, node: NodeId) -> SparseVec {
        debug_assert!(self.dict.is_frozen(), "freeze the feature space before extraction");
        let names = self.collect_names(page, node);
        let idx: Vec<u32> = names.iter().filter_map(|n| self.dict.get(n)).collect();
        SparseVec::from_indices(idx)
    }

    /// Feature vector for a *pair* of nodes: each node's features prefixed
    /// by its role and concatenated — the representation CERES-BASELINE
    /// uses ("to produce features for the pair, we concatenate the features
    /// for each node", §5.2).
    pub fn pair_features(
        &mut self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> SparseVec {
        let names = self.collect_pair_names(page, subject_node, object_node);
        let idx: Vec<u32> = names.iter().filter_map(|n| self.dict.intern(n)).collect();
        SparseVec::from_indices(idx)
    }

    /// Lookup-only twin of [`FeatureSpace::pair_features`] for a frozen
    /// space (the baseline's extraction path).
    pub fn pair_features_frozen(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> SparseVec {
        debug_assert!(self.dict.is_frozen(), "freeze the feature space before extraction");
        let names = self.collect_pair_names(page, subject_node, object_node);
        let idx: Vec<u32> = names.iter().filter_map(|n| self.dict.get(n)).collect();
        SparseVec::from_indices(idx)
    }

    fn collect_names(&self, page: &PageView, node: NodeId) -> Vec<String> {
        let mut names: Vec<String> = Vec::with_capacity(64);
        if self.cfg.enable_structural {
            self.structural_features(page, node, &mut names);
        }
        if self.cfg.enable_text {
            self.text_features(page, node, &mut names);
        }
        names
    }

    fn collect_pair_names(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> Vec<String> {
        let mut names: Vec<String> = Vec::with_capacity(128);
        for (prefix, node) in [("S|", subject_node), ("O|", object_node)] {
            let tmp = self.collect_names(page, node);
            names.extend(tmp.iter().map(|n| format!("{prefix}{n}")));
        }
        names
    }

    fn structural_features(&self, page: &PageView, node: NodeId, out: &mut Vec<String>) {
        let doc = &page.doc;
        // Chain: the node itself (level 0) and its ancestors.
        let mut chain: Vec<NodeId> = vec![node];
        chain.extend(doc.ancestors(node).take(self.cfg.max_ancestor_levels));
        for (level, &n) in chain.iter().enumerate() {
            if !doc.node(n).is_element() || n == doc.root() {
                continue;
            }
            emit_node_features(page, n, level, 0, out);
            // Sibling number of the chain node itself (4th tuple slot).
            let sib = doc.element_sibling_number(n).min(9);
            out.push(format!("s:sib={sib}@l{level}"));
            // Siblings of ancestors (not of the leaf node itself — the
            // paper examines "ancestors of the node, and siblings of those
            // ancestors").
            if level >= 1 {
                for (off, sib_node) in doc.sibling_window(n, self.cfg.sibling_width) {
                    emit_node_features(page, sib_node, level, off, out);
                }
            }
        }
    }

    fn text_features(&self, page: &PageView, node: NodeId, out: &mut Vec<String>) {
        if self.frequent.is_empty() {
            return;
        }
        let doc = &page.doc;
        // The ancestor subtree scanned for nearby frequent strings.
        let scope = doc.ancestors(node).take(self.cfg.text_feature_levels).last().unwrap_or(node);
        let mut scanned = 0usize;
        for f in &page.fields {
            if f.node == node {
                continue;
            }
            if !(f.node == scope || doc.is_ancestor(scope, f.node)) {
                continue;
            }
            if scanned >= self.cfg.max_nearby_fields {
                break;
            }
            scanned += 1;
            if self.frequent.iter().any(|s| s == &f.norm) {
                let rel = doc.relative_path(node, f.node);
                let mut name = String::with_capacity(8 + f.norm.len() + rel.len());
                let _ = write!(name, "t:{}@{}", &f.norm[..f.norm.len().min(30)], rel);
                out.push(name);
            }
        }
    }
}

fn emit_node_features(page: &PageView, n: NodeId, level: usize, off: isize, out: &mut Vec<String>) {
    let doc = &page.doc;
    let Some(tag) = doc.node(n).tag() else { return };
    out.push(format!("s:tag={tag}@l{level}o{off}"));
    for (k, v) in doc.node(n).attrs() {
        // Never leak generator ground truth (or any data-* payload) into
        // the model.
        if k.starts_with("data-") {
            continue;
        }
        if FEATURE_ATTRS.contains(&k.as_str()) {
            out.push(format!("s:{k}={v}@l{level}o{off}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{Kb, KbBuilder, Ontology};

    fn empty_kb() -> Kb {
        KbBuilder::new(Ontology::new()).build()
    }

    fn page(html: &str) -> PageView {
        PageView::build("p", html, &empty_kb())
    }

    fn feats_of(space: &mut FeatureSpace, pv: &PageView, i: usize) -> Vec<String> {
        let v = space.features(pv, pv.fields[i].node);
        v.iter().map(|(id, _)| space.dict.name(id).to_string()).collect()
    }

    #[test]
    fn structural_features_cover_self_ancestors_siblings() {
        let pv = page(
            r#"<html><body><div class="info"><span class="label">Director:</span><span class="value">Spike Lee</span></div></body></html>"#,
        );
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let names = feats_of(&mut space, &pv, 1); // the value span
        assert!(names.iter().any(|n| n == "s:tag=span@l0o0"), "self tag: {names:?}");
        assert!(names.iter().any(|n| n == "s:class=value@l0o0"), "self class");
        assert!(names.iter().any(|n| n == "s:class=info@l1o0"), "parent class");
        // The label span is a sibling of the value span's... the value
        // span's parent (div) has no element siblings, but the label span
        // appears as a sibling of the leaf's ancestor chain? No — the label
        // is the leaf's own sibling; siblings of the *node itself* are not
        // scanned, only of ancestors. The label is reachable as a sibling
        // of nothing here, but its class appears via text features instead.
        assert!(names.iter().any(|n| n.starts_with("s:tag=div@l1")));
    }

    #[test]
    fn sibling_window_features_present_for_ancestor_siblings() {
        let pv = page(
            r#"<div class="a">x</div><div class="b"><span>y</span></div><div class="c">z</div>"#,
        );
        // Feature target: the span inside div.b; its parent's siblings are
        // div.a (off -1) and div.c (off +1).
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let span_idx = pv.fields.iter().position(|f| f.text == "y").unwrap();
        let names = feats_of(&mut space, &pv, span_idx);
        assert!(names.iter().any(|n| n == "s:class=a@l1o-1"), "{names:?}");
        assert!(names.iter().any(|n| n == "s:class=c@l1o1"));
    }

    #[test]
    fn data_attributes_never_become_features() {
        let pv = page(r#"<div data-gt="7" data-secret="x" class="ok">text</div>"#);
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let names = feats_of(&mut space, &pv, 0);
        assert!(
            names.iter().all(|n| !n.contains("data-") && !n.contains("secret")),
            "gold leaked into features: {names:?}"
        );
        assert!(names.iter().any(|n| n.contains("class=ok")));
    }

    #[test]
    fn frequent_strings_become_text_features() {
        let htmls: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "<div class=row><span class=l>Director:</span><span class=v>Person {i}</span></div>"
                )
            })
            .collect();
        let kb = empty_kb();
        let pages: Vec<PageView> = htmls
            .iter()
            .enumerate()
            .map(|(i, h)| PageView::build(&format!("p{i}"), h, &kb))
            .collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let mut space = FeatureSpace::new(&refs, FeatureConfig::default());
        assert!(space.frequent.iter().any(|s| s == "director"), "{:?}", space.frequent);
        let v = space.features(&pages[0], pages[0].fields[1].node);
        let names: Vec<String> = v.iter().map(|(id, _)| space.dict.name(id).to_string()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("t:director@")),
            "text feature missing: {names:?}"
        );
    }

    #[test]
    fn frozen_twins_match_the_interning_path() {
        let pv = page(
            r#"<div class="info"><span class="l">Director:</span><span class="v">Someone</span></div>"#,
        );
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let trained = space.features(&pv, pv.fields[1].node);
        space.freeze();
        // Same page: identical vectors through &self and &mut self.
        assert_eq!(space.features_frozen(&pv, pv.fields[1].node), trained);
        assert_eq!(space.features(&pv, pv.fields[1].node), trained);
        // Unseen page: unknown names dropped identically by both paths.
        let pv2 = page(r#"<div class="fresh"><span class="l">Director:</span></div>"#);
        let a = space.features_frozen(&pv2, pv2.fields[0].node);
        let b = space.features(&pv2, pv2.fields[0].node);
        assert_eq!(a, b);
        let p = space.pair_features_frozen(&pv, pv.fields[0].node, pv.fields[1].node);
        let q = space.pair_features(&pv, pv.fields[0].node, pv.fields[1].node);
        assert_eq!(p, q);
    }

    #[test]
    fn frozen_space_drops_new_features() {
        let pv = page("<div class=x>a</div>");
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let v1 = space.features(&pv, pv.fields[0].node);
        space.freeze();
        let pv2 = page("<div class=never-seen>b</div>");
        let v2 = space.features(&pv2, pv2.fields[0].node);
        assert!(v2.nnz() < v1.nnz() + 5);
        assert!(space.dict.get("s:class=never-seen@l0o0").is_none());
    }

    #[test]
    fn ablation_switches_disable_feature_families() {
        let pv = page(r#"<div class="info"><span class="l">Director:</span><span>V</span></div>"#);
        let mut cfg = FeatureConfig { enable_text: false, ..FeatureConfig::default() };
        let mut s1 = FeatureSpace::new(&[&pv], cfg.clone());
        let v = s1.features(&pv, pv.fields[1].node);
        let names: Vec<String> = v.iter().map(|(i, _)| s1.dict.name(i).to_string()).collect();
        assert!(names.iter().all(|n| n.starts_with("s:")));

        cfg.enable_text = true;
        cfg.enable_structural = false;
        cfg.frequent_string_page_frac = 0.0;
        let mut s2 = FeatureSpace::new(&[&pv], cfg);
        let v = s2.features(&pv, pv.fields[1].node);
        let names: Vec<String> = v.iter().map(|(i, _)| s2.dict.name(i).to_string()).collect();
        assert!(names.iter().all(|n| n.starts_with("t:")), "{names:?}");
    }
}
