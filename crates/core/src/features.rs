//! Feature extraction (§4.2).
//!
//! **Structural features** follow the Vertex feature scheme: for the node
//! itself, its ancestors, and siblings of those ancestors (window ±5), emit
//! 4-tuples of (attribute name, attribute value, levels of ancestry,
//! sibling offset) over `tag`, `class`, `id`, `itemprop`, `itemtype`, and
//! `property`.
//!
//! **Node-text features**: strings frequent across the site ("Director:",
//! "Žánr:") found near the node produce features of (string, tree-path to
//! the string's node).
//!
//! ## Feature sinks
//!
//! Vectorizing a node used to materialize a `Vec<String>` of feature names
//! (one heap string per feature per node, re-`format!`ed with a role prefix
//! for pairs). The hot paths now **stream** names instead: every name is
//! assembled in a reusable [`NameBuf`] and handed to a [`FeatureSink`] as a
//! `&str` that is valid only for the duration of the call. The sinks are:
//!
//! * an *interning* sink (training: `&mut FeatureDict`),
//! * a *lookup* sink (frozen extraction: `&FeatureDict`),
//! * a [`NameArena`] (the parallel name-collection pass of
//!   `build_training_on`, which packs names end-to-end for the sequential
//!   interning pass),
//! * a plain `Vec<String>` collector ([`FeatureSpace::collect_names`]),
//!   kept as the reference path the equivalence suite pins the sinks to.
//!
//! Together with the reusable index buffer in [`FeatureScratch`], per-node
//! vectorization performs no transient allocations: the only allocation is
//! the exact-size output `SparseVec`.
//!
//! Ground-truth hygiene: all `data-*` attributes — in particular the
//! generator's `data-gt` — are excluded from features (unit-tested below).

use crate::config::FeatureConfig;
use crate::page::PageView;
use ceres_dom::NodeId;
use ceres_ml::{FeatureDict, SparseVec};
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer};
use ceres_text::{FxHashMap, FxHashSet};
use std::fmt::Write as _;

/// Attributes used for structural features (paper list).
const FEATURE_ATTRS: &[&str] = &["class", "id", "itemprop", "itemtype", "property"];

/// Receives streamed feature names. The `&str` lives in the caller's
/// [`NameBuf`] and is only valid for the duration of the call — sinks that
/// keep names (arena, collector) must copy the bytes out.
pub trait FeatureSink {
    fn accept(&mut self, name: &str);
}

/// Reusable assembly state for streaming feature names: the name buffer
/// (with an optional role prefix for pair features) plus the node-chain
/// and sibling-window scratch vectors the structural emitter needs.
#[derive(Debug, Default)]
pub struct NameBuf {
    s: String,
    prefix: usize,
    chain: Vec<NodeId>,
    sibs: Vec<(isize, NodeId)>,
}

impl NameBuf {
    /// Prefix subsequent names with `p` (pair features: `"S|"` / `"O|"`).
    fn set_prefix(&mut self, p: &str) {
        self.s.clear();
        self.s.push_str(p);
        self.prefix = self.s.len();
    }

    fn clear_prefix(&mut self) {
        self.s.clear();
        self.prefix = 0;
    }

    /// Start assembling a fresh name: truncate back to the role prefix.
    #[inline]
    fn begin(&mut self) -> &mut String {
        self.s.truncate(self.prefix);
        &mut self.s
    }

    #[inline]
    fn as_str(&self) -> &str {
        &self.s
    }
}

/// Reusable buffers for allocation-free vectorization: the [`NameBuf`]
/// plus the feature-index buffer the dict sinks collect into. One scratch
/// per worker/loop; `Default::default()` is a valid fresh scratch.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    buf: NameBuf,
    idx: Vec<u32>,
}

impl FeatureScratch {
    pub fn new() -> FeatureScratch {
        FeatureScratch::default()
    }
}

/// Feature names packed end-to-end — one backing `String`, name ends, and
/// row boundaries. The parallel name-collection pass of training fills one
/// arena per row chunk through `&FeatureSpace`; the sequential interning
/// pass replays rows in order against the `&mut` dictionary. Two small
/// buffers per *chunk* replace one `String` per *feature*.
#[derive(Debug, Default)]
pub struct NameArena {
    text: String,
    ends: Vec<u32>,
    rows: Vec<u32>,
}

impl NameArena {
    /// Close the current row (a row = one training example's names).
    pub fn end_row(&mut self) {
        self.rows.push(self.ends.len() as u32);
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total names across all rows (the flat index space of
    /// [`NameArena::name`]).
    pub fn n_names(&self) -> usize {
        self.ends.len()
    }

    /// The `k`-th name in emission order, across row boundaries — the flat
    /// view the sharded interning pass of
    /// [`crate::examples::build_training_on`] buckets by hash prefix.
    pub fn name(&self, k: usize) -> &str {
        let start = if k == 0 { 0 } else { self.ends[k - 1] as usize };
        &self.text[start..self.ends[k] as usize]
    }

    /// Names of row `r`, in emission order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = &str> + '_ {
        let lo = if r == 0 { 0 } else { self.rows[r - 1] as usize };
        let hi = self.rows[r] as usize;
        (lo..hi).map(move |k| {
            let start = if k == 0 { 0 } else { self.ends[k - 1] as usize };
            &self.text[start..self.ends[k] as usize]
        })
    }
}

impl FeatureSink for NameArena {
    fn accept(&mut self, name: &str) {
        self.text.push_str(name);
        self.ends.push(self.text.len() as u32);
    }
}

/// Training sink: intern through the mutable dictionary.
struct DictSink<'a> {
    dict: &'a mut FeatureDict,
    idx: &'a mut Vec<u32>,
}

impl FeatureSink for DictSink<'_> {
    fn accept(&mut self, name: &str) {
        if let Some(i) = self.dict.intern(name) {
            self.idx.push(i);
        }
    }
}

/// Extraction sink: lookup-only against a frozen dictionary.
struct FrozenSink<'a> {
    dict: &'a FeatureDict,
    idx: &'a mut Vec<u32>,
}

impl FeatureSink for FrozenSink<'_> {
    fn accept(&mut self, name: &str) {
        if let Some(i) = self.dict.get(name) {
            self.idx.push(i);
        }
    }
}

/// Reference sink: copy every name out (the old `Vec<String>` path).
struct CollectSink(Vec<String>);

impl FeatureSink for CollectSink {
    fn accept(&mut self, name: &str) {
        self.0.push(name.to_string());
    }
}

/// Site-level feature state: the dictionary and the frequent-string
/// lexicon, built during training and frozen for extraction.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    pub dict: FeatureDict,
    /// Normalized frequent strings (labels etc.).
    pub frequent: Vec<String>,
    /// Set view of `frequent` for the per-field membership test.
    frequent_set: FxHashSet<String>,
    pub cfg: FeatureConfig,
}

impl FeatureSpace {
    /// Build the frequent-string lexicon from the annotated pages.
    pub fn new(pages: &[&PageView], cfg: FeatureConfig) -> FeatureSpace {
        let mut page_counts: FxHashMap<&str, usize> = FxHashMap::default();
        for page in pages.iter().copied() {
            let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for f in &page.fields {
                if !f.norm.is_empty() && f.norm.len() <= 40 {
                    seen.insert(f.norm.as_str());
                }
            }
            for s in seen {
                *page_counts.entry(s).or_default() += 1;
            }
        }
        let min_pages =
            ((pages.len() as f64) * cfg.frequent_string_page_frac).ceil().max(2.0) as usize;
        let mut frequent: Vec<(String, usize)> = page_counts
            .into_iter()
            .filter(|&(_, n)| n >= min_pages)
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        frequent.truncate(cfg.max_frequent_strings);
        let frequent: Vec<String> = frequent.into_iter().map(|(s, _)| s).collect();
        let frequent_set = frequent.iter().cloned().collect();
        FeatureSpace { dict: FeatureDict::new(), frequent, frequent_set, cfg }
    }

    /// Freeze the dictionary: extraction-time features not seen in training
    /// are dropped. After freezing, the lookup-only
    /// [`FeatureSpace::features_frozen`] / [`FeatureSpace::pair_features_frozen`]
    /// twins work through `&self`, so the parallel extract stage shares one
    /// space across threads without cloning.
    pub fn freeze(&mut self) {
        self.dict.freeze();
    }

    pub fn is_frozen(&self) -> bool {
        self.dict.is_frozen()
    }

    /// Stream the feature names of `node` into `sink` (no dictionary
    /// involved — `&self`). This is the single emitter every vectorization
    /// path shares; name bytes and order are identical for all sinks.
    pub fn emit_names(
        &self,
        page: &PageView,
        node: NodeId,
        buf: &mut NameBuf,
        sink: &mut dyn FeatureSink,
    ) {
        emit_names(&self.frequent_set, &self.cfg, page, node, buf, sink);
    }

    /// Pair twin of [`FeatureSpace::emit_names`]: subject's names under
    /// `S|`, then object's under `O|` (§5.2 concatenation).
    pub fn emit_pair_names(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
        buf: &mut NameBuf,
        sink: &mut dyn FeatureSink,
    ) {
        for (prefix, node) in [("S|", subject_node), ("O|", object_node)] {
            buf.set_prefix(prefix);
            emit_names(&self.frequent_set, &self.cfg, page, node, buf, sink);
        }
        buf.clear_prefix();
    }

    /// Compute the feature vector of one node, interning new feature names
    /// (the training path; requires an unfrozen space). Allocates a fresh
    /// scratch — hot loops use [`FeatureSpace::features_with`].
    pub fn features(&mut self, page: &PageView, node: NodeId) -> SparseVec {
        self.features_with(page, node, &mut FeatureScratch::new())
    }

    /// [`FeatureSpace::features`] through caller-owned reusable buffers.
    pub fn features_with(
        &mut self,
        page: &PageView,
        node: NodeId,
        scratch: &mut FeatureScratch,
    ) -> SparseVec {
        let FeatureScratch { buf, idx } = scratch;
        let mut sink = DictSink { dict: &mut self.dict, idx };
        emit_names(&self.frequent_set, &self.cfg, page, node, buf, &mut sink);
        SparseVec::from_indices_buf(idx)
    }

    /// Lookup-only twin of [`FeatureSpace::features`] for a frozen space.
    /// On a frozen dictionary `intern` and `get` coincide, so the returned
    /// vector is identical to what `features` would produce.
    pub fn features_frozen(&self, page: &PageView, node: NodeId) -> SparseVec {
        self.features_frozen_with(page, node, &mut FeatureScratch::new())
    }

    /// [`FeatureSpace::features_frozen`] through caller-owned buffers —
    /// the per-(cluster, page) extract tasks keep one scratch alive across
    /// every field they classify.
    pub fn features_frozen_with(
        &self,
        page: &PageView,
        node: NodeId,
        scratch: &mut FeatureScratch,
    ) -> SparseVec {
        debug_assert!(self.dict.is_frozen(), "freeze the feature space before extraction");
        let FeatureScratch { buf, idx } = scratch;
        let mut sink = FrozenSink { dict: &self.dict, idx };
        emit_names(&self.frequent_set, &self.cfg, page, node, buf, &mut sink);
        SparseVec::from_indices_buf(idx)
    }

    /// Feature vector for a *pair* of nodes: each node's features prefixed
    /// by its role and concatenated — the representation CERES-BASELINE
    /// uses ("to produce features for the pair, we concatenate the features
    /// for each node", §5.2).
    pub fn pair_features(
        &mut self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> SparseVec {
        self.pair_features_with(page, subject_node, object_node, &mut FeatureScratch::new())
    }

    /// [`FeatureSpace::pair_features`] through caller-owned buffers.
    pub fn pair_features_with(
        &mut self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
        scratch: &mut FeatureScratch,
    ) -> SparseVec {
        let FeatureScratch { buf, idx } = scratch;
        let mut sink = DictSink { dict: &mut self.dict, idx };
        for (prefix, node) in [("S|", subject_node), ("O|", object_node)] {
            buf.set_prefix(prefix);
            emit_names(&self.frequent_set, &self.cfg, page, node, buf, &mut sink);
        }
        buf.clear_prefix();
        SparseVec::from_indices_buf(idx)
    }

    /// Lookup-only twin of [`FeatureSpace::pair_features`] for a frozen
    /// space (the baseline's extraction path).
    pub fn pair_features_frozen(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> SparseVec {
        self.pair_features_frozen_with(page, subject_node, object_node, &mut FeatureScratch::new())
    }

    /// [`FeatureSpace::pair_features_frozen`] through caller-owned buffers.
    pub fn pair_features_frozen_with(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
        scratch: &mut FeatureScratch,
    ) -> SparseVec {
        debug_assert!(self.dict.is_frozen(), "freeze the feature space before extraction");
        let FeatureScratch { buf, idx } = scratch;
        let mut sink = FrozenSink { dict: &self.dict, idx };
        for (prefix, node) in [("S|", subject_node), ("O|", object_node)] {
            buf.set_prefix(prefix);
            emit_names(&self.frequent_set, &self.cfg, page, node, buf, &mut sink);
        }
        buf.clear_prefix();
        SparseVec::from_indices_buf(idx)
    }

    /// The reference `Vec<String>` path: every feature name of `node`,
    /// owned, in emission order. The equivalence suite pins the streaming
    /// sinks to this output; hot paths never call it.
    pub fn collect_names(&self, page: &PageView, node: NodeId) -> Vec<String> {
        let mut sink = CollectSink(Vec::with_capacity(64));
        self.emit_names(page, node, &mut NameBuf::default(), &mut sink);
        sink.0
    }

    /// Reference pair path (role-prefixed concatenation), owned.
    pub fn collect_pair_names(
        &self,
        page: &PageView,
        subject_node: NodeId,
        object_node: NodeId,
    ) -> Vec<String> {
        let mut sink = CollectSink(Vec::with_capacity(128));
        self.emit_pair_names(page, subject_node, object_node, &mut NameBuf::default(), &mut sink);
        sink.0
    }
}

/// Serializable parts: the dictionary, the frequent-string lexicon, and
/// the config. `frequent_set` is derived state, rebuilt on decode.
impl Encode for FeatureSpace {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.dict);
        w.put_str_table(&self.frequent);
        w.put(&self.cfg);
    }
}

impl Decode for FeatureSpace {
    fn decode(r: &mut Reader<'_>) -> Result<FeatureSpace, StoreError> {
        let dict = FeatureDict::decode(r)?;
        let frequent = r.get_str_table("frequent-string lexicon")?;
        let cfg = FeatureConfig::decode(r)?;
        let frequent_set = frequent.iter().cloned().collect();
        Ok(FeatureSpace { dict, frequent, frequent_set, cfg })
    }
}

/// The one true emitter: structural then text features, every name
/// assembled in `buf` and streamed to `sink`.
fn emit_names(
    frequent_set: &FxHashSet<String>,
    cfg: &FeatureConfig,
    page: &PageView,
    node: NodeId,
    buf: &mut NameBuf,
    sink: &mut dyn FeatureSink,
) {
    if cfg.enable_structural {
        structural_features(cfg, page, node, buf, sink);
    }
    if cfg.enable_text {
        text_features(frequent_set, cfg, page, node, buf, sink);
    }
}

fn structural_features(
    cfg: &FeatureConfig,
    page: &PageView,
    node: NodeId,
    buf: &mut NameBuf,
    sink: &mut dyn FeatureSink,
) {
    let doc = &page.doc;
    // Chain: the node itself (level 0) and its ancestors. The chain and
    // sibling-window vectors are borrowed out of the scratch for the loop
    // (they cannot be used while `buf` assembles names).
    let mut chain = std::mem::take(&mut buf.chain);
    let mut sibs = std::mem::take(&mut buf.sibs);
    chain.clear();
    chain.push(node);
    chain.extend(doc.ancestors(node).take(cfg.max_ancestor_levels));
    for (level, &n) in chain.iter().enumerate() {
        if !doc.node(n).is_element() || n == doc.root() {
            continue;
        }
        emit_node_features(page, n, level, 0, buf, sink);
        // Sibling number of the chain node itself (4th tuple slot).
        let sib = doc.element_sibling_number(n).min(9);
        let b = buf.begin();
        let _ = write!(b, "s:sib={sib}@l{level}");
        sink.accept(buf.as_str());
        // Siblings of ancestors (not of the leaf node itself — the
        // paper examines "ancestors of the node, and siblings of those
        // ancestors").
        if level >= 1 {
            doc.sibling_window_into(n, cfg.sibling_width, &mut sibs);
            for &(off, sib_node) in &sibs {
                emit_node_features(page, sib_node, level, off, buf, sink);
            }
        }
    }
    buf.chain = chain;
    buf.sibs = sibs;
}

fn text_features(
    frequent_set: &FxHashSet<String>,
    cfg: &FeatureConfig,
    page: &PageView,
    node: NodeId,
    buf: &mut NameBuf,
    sink: &mut dyn FeatureSink,
) {
    if frequent_set.is_empty() {
        return;
    }
    let doc = &page.doc;
    // The ancestor subtree scanned for nearby frequent strings.
    let scope = doc.ancestors(node).take(cfg.text_feature_levels).last().unwrap_or(node);
    let mut scanned = 0usize;
    for f in &page.fields {
        if f.node == node {
            continue;
        }
        // O(1) Euler-interval test, ≡ `f.node == scope || is_ancestor(…)`.
        if !page.in_subtree(scope, f.node) {
            continue;
        }
        if scanned >= cfg.max_nearby_fields {
            break;
        }
        scanned += 1;
        if frequent_set.contains(&f.norm) {
            let b = buf.begin();
            let _ = write!(b, "t:{}@", &f.norm[..f.norm.len().min(30)]);
            doc.relative_path_into(node, f.node, b);
            sink.accept(buf.as_str());
        }
    }
}

fn emit_node_features(
    page: &PageView,
    n: NodeId,
    level: usize,
    off: isize,
    buf: &mut NameBuf,
    sink: &mut dyn FeatureSink,
) {
    let doc = &page.doc;
    let Some(tag) = doc.node(n).tag() else { return };
    let b = buf.begin();
    let _ = write!(b, "s:tag={tag}@l{level}o{off}");
    sink.accept(buf.as_str());
    for (k, v) in doc.node(n).attrs() {
        // Never leak generator ground truth (or any data-* payload) into
        // the model.
        if k.starts_with("data-") {
            continue;
        }
        if FEATURE_ATTRS.contains(&k.as_str()) {
            let b = buf.begin();
            let _ = write!(b, "s:{k}={v}@l{level}o{off}");
            sink.accept(buf.as_str());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{Kb, KbBuilder, Ontology};

    fn empty_kb() -> Kb {
        KbBuilder::new(Ontology::new()).build()
    }

    fn page(html: &str) -> PageView {
        PageView::build("p", html, &empty_kb())
    }

    fn feats_of(space: &mut FeatureSpace, pv: &PageView, i: usize) -> Vec<String> {
        let v = space.features(pv, pv.fields[i].node);
        v.iter().map(|(id, _)| space.dict.name(id).to_string()).collect()
    }

    #[test]
    fn structural_features_cover_self_ancestors_siblings() {
        let pv = page(
            r#"<html><body><div class="info"><span class="label">Director:</span><span class="value">Spike Lee</span></div></body></html>"#,
        );
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let names = feats_of(&mut space, &pv, 1); // the value span
        assert!(names.iter().any(|n| n == "s:tag=span@l0o0"), "self tag: {names:?}");
        assert!(names.iter().any(|n| n == "s:class=value@l0o0"), "self class");
        assert!(names.iter().any(|n| n == "s:class=info@l1o0"), "parent class");
        // The label span is a sibling of the value span's... the value
        // span's parent (div) has no element siblings, but the label span
        // appears as a sibling of the leaf's ancestor chain? No — the label
        // is the leaf's own sibling; siblings of the *node itself* are not
        // scanned, only of ancestors. The label is reachable as a sibling
        // of nothing here, but its class appears via text features instead.
        assert!(names.iter().any(|n| n.starts_with("s:tag=div@l1")));
    }

    #[test]
    fn sibling_window_features_present_for_ancestor_siblings() {
        let pv = page(
            r#"<div class="a">x</div><div class="b"><span>y</span></div><div class="c">z</div>"#,
        );
        // Feature target: the span inside div.b; its parent's siblings are
        // div.a (off -1) and div.c (off +1).
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let span_idx = pv.fields.iter().position(|f| f.text == "y").unwrap();
        let names = feats_of(&mut space, &pv, span_idx);
        assert!(names.iter().any(|n| n == "s:class=a@l1o-1"), "{names:?}");
        assert!(names.iter().any(|n| n == "s:class=c@l1o1"));
    }

    #[test]
    fn data_attributes_never_become_features() {
        let pv = page(r#"<div data-gt="7" data-secret="x" class="ok">text</div>"#);
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let names = feats_of(&mut space, &pv, 0);
        assert!(
            names.iter().all(|n| !n.contains("data-") && !n.contains("secret")),
            "gold leaked into features: {names:?}"
        );
        assert!(names.iter().any(|n| n.contains("class=ok")));
    }

    #[test]
    fn frequent_strings_become_text_features() {
        let htmls: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "<div class=row><span class=l>Director:</span><span class=v>Person {i}</span></div>"
                )
            })
            .collect();
        let kb = empty_kb();
        let pages: Vec<PageView> = htmls
            .iter()
            .enumerate()
            .map(|(i, h)| PageView::build(&format!("p{i}"), h, &kb))
            .collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let mut space = FeatureSpace::new(&refs, FeatureConfig::default());
        assert!(space.frequent.iter().any(|s| s == "director"), "{:?}", space.frequent);
        let v = space.features(&pages[0], pages[0].fields[1].node);
        let names: Vec<String> = v.iter().map(|(id, _)| space.dict.name(id).to_string()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("t:director@")),
            "text feature missing: {names:?}"
        );
    }

    #[test]
    fn frozen_twins_match_the_interning_path() {
        let pv = page(
            r#"<div class="info"><span class="l">Director:</span><span class="v">Someone</span></div>"#,
        );
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let trained = space.features(&pv, pv.fields[1].node);
        space.freeze();
        // Same page: identical vectors through &self and &mut self.
        assert_eq!(space.features_frozen(&pv, pv.fields[1].node), trained);
        assert_eq!(space.features(&pv, pv.fields[1].node), trained);
        // Unseen page: unknown names dropped identically by both paths.
        let pv2 = page(r#"<div class="fresh"><span class="l">Director:</span></div>"#);
        let a = space.features_frozen(&pv2, pv2.fields[0].node);
        let b = space.features(&pv2, pv2.fields[0].node);
        assert_eq!(a, b);
        let p = space.pair_features_frozen(&pv, pv.fields[0].node, pv.fields[1].node);
        let q = space.pair_features(&pv, pv.fields[0].node, pv.fields[1].node);
        assert_eq!(p, q);
    }

    #[test]
    fn sinks_match_the_reference_vec_string_path() {
        // Interning sink vs interning collect_names output by hand, with a
        // *reused* scratch across nodes (buffer-reuse bugs would show as
        // name bleed between nodes).
        let pv = page(
            r#"<div class="info"><span class="l">Director:</span><span class="v">Someone</span></div><ul><li class=x>A</li><li>B</li></ul>"#,
        );
        let mut by_sink = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let mut by_ref = by_sink.clone();
        let mut scratch = FeatureScratch::new();
        for f in &pv.fields {
            let a = by_sink.features_with(&pv, f.node, &mut scratch);
            let names = by_ref.collect_names(&pv, f.node);
            let idx: Vec<u32> = names.iter().filter_map(|n| by_ref.dict.intern(n)).collect();
            let b = SparseVec::from_indices(idx);
            assert_eq!(a, b, "node {:?}", f.node);
        }
        // The dictionaries grew identically → frozen lookups agree too.
        by_sink.freeze();
        by_ref.freeze();
        for f in &pv.fields {
            let a = by_sink.features_frozen_with(&pv, f.node, &mut scratch);
            let names = by_ref.collect_names(&pv, f.node);
            let idx: Vec<u32> = names.iter().filter_map(|n| by_ref.dict.get(n)).collect();
            assert_eq!(a, SparseVec::from_indices(idx));
        }
    }

    #[test]
    fn pair_sinks_match_reference_and_reset_prefix() {
        let pv = page(r#"<div class="a"><b>S</b></div><div class="b"><i>O</i></div>"#);
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let s = pv.fields[0].node;
        let o = pv.fields[1].node;
        let mut scratch = FeatureScratch::new();
        let v = space.pair_features_with(&pv, s, o, &mut scratch);
        let names = space.collect_pair_names(&pv, s, o);
        assert!(names.iter().any(|n| n.starts_with("S|")));
        assert!(names.iter().any(|n| n.starts_with("O|")));
        let idx: Vec<u32> = names.iter().filter_map(|n| space.dict.get(n)).collect();
        assert_eq!(v, SparseVec::from_indices(idx));
        // After a pair call, the same scratch must produce unprefixed
        // single-node names (prefix fully cleared).
        let single = space.features_with(&pv, s, &mut scratch);
        let single_names: Vec<String> =
            single.iter().map(|(i, _)| space.dict.name(i).to_string()).collect();
        assert!(single_names.iter().all(|n| !n.starts_with("S|") && !n.starts_with("O|")));
    }

    #[test]
    fn name_arena_round_trips_rows() {
        let pv = page(r#"<div class="q"><span>A</span><span>B</span></div>"#);
        let space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let mut arena = NameArena::default();
        let mut buf = NameBuf::default();
        for f in &pv.fields {
            space.emit_names(&pv, f.node, &mut buf, &mut arena);
            arena.end_row();
        }
        assert_eq!(arena.n_rows(), pv.fields.len());
        for (r, f) in pv.fields.iter().enumerate() {
            let from_arena: Vec<&str> = arena.row(r).collect();
            let reference = space.collect_names(&pv, f.node);
            assert_eq!(from_arena, reference, "row {r}");
        }
    }

    #[test]
    fn frozen_space_drops_new_features() {
        let pv = page("<div class=x>a</div>");
        let mut space = FeatureSpace::new(&[&pv], FeatureConfig::default());
        let v1 = space.features(&pv, pv.fields[0].node);
        space.freeze();
        let pv2 = page("<div class=never-seen>b</div>");
        let v2 = space.features(&pv2, pv2.fields[0].node);
        assert!(v2.nnz() < v1.nnz() + 5);
        assert!(space.dict.get("s:class=never-seen@l0o0").is_none());
    }

    #[test]
    fn ablation_switches_disable_feature_families() {
        let pv = page(r#"<div class="info"><span class="l">Director:</span><span>V</span></div>"#);
        let mut cfg = FeatureConfig { enable_text: false, ..FeatureConfig::default() };
        let mut s1 = FeatureSpace::new(&[&pv], cfg.clone());
        let v = s1.features(&pv, pv.fields[1].node);
        let names: Vec<String> = v.iter().map(|(i, _)| s1.dict.name(i).to_string()).collect();
        assert!(names.iter().all(|n| n.starts_with("s:")));

        cfg.enable_text = true;
        cfg.enable_structural = false;
        cfg.frequent_string_page_frac = 0.0;
        let mut s2 = FeatureSpace::new(&[&pv], cfg);
        let v = s2.features(&pv, pv.fields[1].node);
        let names: Vec<String> = v.iter().map(|(i, _)| s2.dict.name(i).to_string()).collect();
        assert!(names.iter().all(|n| n.starts_with("t:")), "{names:?}");
    }

    mod codec {
        use super::*;
        use proptest::prelude::*;

        fn roundtrip(space: &FeatureSpace) -> FeatureSpace {
            let mut w = ceres_store::Writer::new();
            space.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ceres_store::Reader::new(&bytes);
            let back = FeatureSpace::decode(&mut r).expect("decode");
            assert!(r.is_empty(), "decode must consume the whole encoding");
            back
        }

        proptest! {
            #[test]
            fn prop_feature_space_round_trips(
                names in proptest::collection::vec("[a-z:=@]{1,12}", 0..48),
                frequent in proptest::collection::vec(".{0,20}", 0..16),
                // Drawn from 0..2 and compared to 1: the shim has no bool
                // strategy.
                frozen in 0u32..2,
                enable_structural in 0u32..2,
                enable_text in 0u32..2,
                sibling_width in 0usize..9,
                frac in 0.0f64..1.0,
            ) {
                let mut dict = FeatureDict::new();
                for n in &names {
                    dict.intern(n);
                }
                if frozen == 1 {
                    dict.freeze();
                }
                let cfg = FeatureConfig {
                    sibling_width,
                    frequent_string_page_frac: frac,
                    enable_structural: enable_structural == 1,
                    enable_text: enable_text == 1,
                    ..FeatureConfig::default()
                };
                let frequent_set: FxHashSet<String> = frequent.iter().cloned().collect();
                let space = FeatureSpace { dict, frequent: frequent.clone(), frequent_set, cfg };

                let back = roundtrip(&space);
                prop_assert_eq!(back.dict.names(), space.dict.names());
                prop_assert_eq!(back.dict.is_frozen(), space.dict.is_frozen());
                prop_assert_eq!(&back.frequent, &space.frequent);
                // Derived state is rebuilt, not stored: membership agrees.
                for s in &frequent {
                    prop_assert!(back.frequent_set.contains(s));
                }
                prop_assert_eq!(back.cfg.sibling_width, space.cfg.sibling_width);
                prop_assert_eq!(back.cfg.enable_structural, space.cfg.enable_structural);
                prop_assert_eq!(back.cfg.enable_text, space.cfg.enable_text);
                prop_assert_eq!(
                    back.cfg.frequent_string_page_frac.to_bits(),
                    space.cfg.frequent_string_page_frac.to_bits()
                );
            }

            #[test]
            fn prop_feature_space_decode_of_random_bytes_never_panics(
                raw in proptest::collection::vec(0u32..256, 0..96)
            ) {
                let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
                let _ = FeatureSpace::decode(&mut ceres_store::Reader::new(&bytes));
            }
        }
    }
}
