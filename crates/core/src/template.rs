//! Template clustering of a website's pages — our implementation of the
//! Vertex clustering step CERES runs before extraction (§2.1: "we first
//! apply the clustering algorithm in [17] to cluster the webpages such that
//! each cluster roughly corresponds to a template").
//!
//! Pages are represented by their *structural shingles* — the index-free
//! XPaths of their text fields — and greedily merged into clusters by
//! Jaccard similarity against a cluster representative. Like the original,
//! this is deliberately imperfect: §5.5.1 documents that the strict Vertex
//! algorithm sometimes lumps detail and non-detail pages together, and the
//! imperfection is part of what the CommonCrawl experiment measures.

use crate::config::TemplateConfig;
use crate::page::PageView;
use ceres_text::jaccard;

/// A page's structural signature: sorted, deduplicated index-free paths.
fn shingles(page: &PageView) -> Vec<String> {
    let mut v: Vec<String> = page
        .fields
        .iter()
        .map(|f| {
            let mut s = String::new();
            for step in &f.xpath.0 {
                s.push('/');
                s.push_str(&step.tag);
            }
            s
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Cluster pages into template groups; returns clusters of page indexes,
/// largest first.
pub fn cluster_pages(pages: &[&PageView], cfg: &TemplateConfig) -> Vec<Vec<usize>> {
    if !cfg.enabled {
        return vec![(0..pages.len()).collect()];
    }
    let sigs: Vec<Vec<String>> = pages.iter().map(|p| shingles(p)).collect();

    // Greedy leader clustering: each cluster is represented by the
    // signature of its first member.
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut reps: Vec<&Vec<String>> = Vec::new();
    for (i, sig) in sigs.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (ci, rep) in reps.iter().enumerate() {
            let sim = jaccard(rep.as_slice(), sig.as_slice());
            if sim >= cfg.sim_threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((ci, sim));
            }
        }
        match best {
            Some((ci, _)) => clusters[ci].push(i),
            None => {
                clusters.push(vec![i]);
                reps.push(sig);
            }
        }
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{Kb, KbBuilder, Ontology};

    fn empty_kb() -> Kb {
        KbBuilder::new(Ontology::new()).build()
    }

    fn pv(id: &str, html: &str, kb: &Kb) -> PageView {
        PageView::build(id, html, kb)
    }

    #[test]
    fn separates_different_templates() {
        let kb = empty_kb();
        let detail = |t: &str| {
            format!(
                "<html><body><h1>{t}</h1><div class=i><span>a</span><span>b</span></div></body></html>"
            )
        };
        let chart = |t: &str| {
            format!(
                "<html><body><table><tr><td>{t}</td><td>1</td></tr><tr><td>x</td><td>2</td></tr></table></body></html>"
            )
        };
        let pages: Vec<PageView> = vec![
            pv("d1", &detail("one"), &kb),
            pv("c1", &chart("one"), &kb),
            pv("d2", &detail("two"), &kb),
            pv("c2", &chart("two"), &kb),
            pv("d3", &detail("three"), &kb),
        ];
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &TemplateConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 3); // details (largest first)
        assert_eq!(clusters[1].len(), 2);
    }

    #[test]
    fn similar_pages_with_varying_lists_stay_together() {
        let kb = empty_kb();
        let page = |n: usize| {
            let lis: String = (0..n).map(|i| format!("<li>p{i}</li>")).collect();
            format!("<html><body><h1>t</h1><ul>{lis}</ul></body></html>")
        };
        let pages: Vec<PageView> = (2..10).map(|n| pv(&format!("p{n}"), &page(n), &kb)).collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &TemplateConfig::default());
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn disabled_clustering_returns_one_cluster() {
        let kb = empty_kb();
        let pages =
            [pv("a", "<div>x</div>", &kb), pv("b", "<table><tr><td>y</td></tr></table>", &kb)];
        let cfg = TemplateConfig { enabled: false, ..Default::default() };
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &cfg);
        assert_eq!(clusters, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_input() {
        let clusters = cluster_pages(&[], &TemplateConfig::default());
        assert!(clusters.is_empty());
    }
}
