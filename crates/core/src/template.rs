//! Template clustering of a website's pages — our implementation of the
//! Vertex clustering step CERES runs before extraction (§2.1: "we first
//! apply the clustering algorithm in \[17\] to cluster the webpages such that
//! each cluster roughly corresponds to a template").
//!
//! Pages are represented by their *structural shingles* — the index-free
//! XPaths of their text fields — and greedily merged into clusters by
//! Jaccard similarity against a cluster representative. Like the original,
//! this is deliberately imperfect: §5.5.1 documents that the strict Vertex
//! algorithm sometimes lumps detail and non-detail pages together, and the
//! imperfection is part of what the CommonCrawl experiment measures.
//!
//! Two entry points share the greedy pass:
//!
//! * [`cluster_pages`] — cluster a fixed page set (training);
//! * [`Clustering::assign`] — place a page **not seen during clustering**
//!   into the best existing cluster, using the representative signatures
//!   the greedy pass produced. This is what lets a trained site extract
//!   from pages that arrive after training (the train-once/extract-many
//!   split of [`crate::session`]); before it existed, extraction pages had
//!   to be clustered jointly with the training pages.

use crate::config::TemplateConfig;
use crate::page::PageView;
use ceres_store::{Decode, Encode, Error as StoreError, Reader, Writer, PREALLOC_CAP};
use ceres_text::jaccard;

/// Candidate step shared by the greedy pass and [`Clustering::assign`]:
/// offer `(candidate, sim)` against the incumbent `best`.
///
/// The contract (previously implicit in a bare `sim > b` comparison):
///
/// * **NaN never competes.** [`jaccard`] itself never produces NaN, but the
///   similarity threshold is config-supplied and a NaN on either side makes
///   every float ordering false — the incumbent would silently freeze while
///   looking like a legitimate "no better match". Non-numbers are rejected
///   before any comparison happens.
/// * **Ties keep the earliest candidate.** Candidates are offered in
///   cluster-creation order and only a strictly better similarity displaces
///   the incumbent, so an exact tie resolves to the earliest-created
///   cluster. Oldest-wins keeps [`Clustering::assign`] stable as clusters
///   are appended and makes both call sites agree on tie behavior.
fn offer_candidate(best: &mut Option<(usize, f64)>, candidate: usize, sim: f64, threshold: f64) {
    if sim.is_nan() || threshold.is_nan() {
        return;
    }
    if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
        *best = Some((candidate, sim));
    }
}

/// A page's structural signature: sorted, deduplicated index-free paths.
fn shingles(page: &PageView) -> Vec<String> {
    let mut v: Vec<String> = page
        .fields
        .iter()
        .map(|f| {
            let mut s = String::new();
            for step in &f.xpath.0 {
                s.push('/');
                s.push_str(&step.tag);
            }
            s
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The result of clustering a site's training pages: the clusters
/// themselves plus the representative signatures needed to [`assign`]
/// pages that were not part of the clustered set.
///
/// [`assign`]: Clustering::assign
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Clusters of page indexes (into the clustered page set), largest
    /// first — exactly what [`cluster_pages`] returns.
    pub clusters: Vec<Vec<usize>>,
    /// Representative signatures in cluster-**creation** order (the order
    /// the greedy pass consulted them in), each tagged with its cluster's
    /// index in the size-sorted `clusters`.
    reps: Vec<(Vec<String>, usize)>,
    enabled: bool,
    sim_threshold: f64,
}

/// The scored result of [`Clustering::assign_scored`]: where a page was
/// placed (if anywhere) plus the best similarity observed — even when it
/// fell short of the threshold. The below-threshold similarity is what the
/// serve path's drift watchdog and `ExtractOutcome::Unassigned { best_sim }`
/// report: "how close was the nearest template" distinguishes a page that
/// *almost* matched (template drift) from one that matched nothing at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Index into [`Clustering::clusters`] of the best-matching cluster,
    /// or `None` when no representative reached the similarity threshold.
    pub cluster: Option<usize>,
    /// Best (NaN-free) similarity seen against any representative,
    /// threshold or not; `0.0` when there are no representatives.
    pub best_sim: f64,
}

impl Clustering {
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Place a page that was **not** part of the clustered set: the index
    /// (into [`Clustering::clusters`]) of the best-matching cluster, or
    /// `None` when no representative reaches the similarity threshold.
    ///
    /// The comparison mirrors the greedy pass exactly (both go through
    /// the same `offer_candidate` helper) — representatives are consulted in creation
    /// order, exact similarity ties keep the earliest-created cluster, and
    /// NaN similarities/thresholds never match — so a page identical to one
    /// seen at clustering time lands in the same cluster it would have
    /// joined.
    pub fn assign(&self, page: &PageView) -> Option<usize> {
        self.assign_scored(page).cluster
    }

    /// [`Clustering::assign`] with the similarity evidence kept: the chosen
    /// cluster (same decision, same tie/NaN rules — `assign` delegates
    /// here) plus the best similarity observed against *any* representative,
    /// including ones below the threshold. Disabled clustering assigns
    /// everything to the single cluster at similarity `1.0`.
    pub fn assign_scored(&self, page: &PageView) -> Assignment {
        if !self.enabled {
            let cluster = (!self.clusters.is_empty()).then_some(0);
            return Assignment { cluster, best_sim: if cluster.is_some() { 1.0 } else { 0.0 } };
        }
        let sig = shingles(page);
        let mut best: Option<(usize, f64)> = None;
        let mut best_sim = 0.0f64;
        for (rep, cluster) in &self.reps {
            let sim = jaccard(rep.as_slice(), sig.as_slice());
            if !sim.is_nan() && sim > best_sim {
                best_sim = sim;
            }
            offer_candidate(&mut best, *cluster, sim, self.sim_threshold);
        }
        Assignment { cluster: best.map(|(cluster, _)| cluster), best_sim }
    }
}

/// Serialized as all four parts — the clusters (membership lists), the
/// representative signatures (what [`Clustering::assign`] consults), the
/// enabled flag, and the similarity threshold — so a loaded clustering
/// places unseen pages exactly as the training-process one does.
impl Encode for Clustering {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.clusters);
        w.put_usize(self.reps.len());
        for (sig, cluster) in &self.reps {
            w.put_str_table(sig);
            w.put_usize(*cluster);
        }
        w.put_bool(self.enabled);
        w.put_f64(self.sim_threshold);
    }
}

impl Decode for Clustering {
    fn decode(r: &mut Reader<'_>) -> Result<Clustering, StoreError> {
        const CTX: &str = "template clustering";
        let clusters: Vec<Vec<usize>> = r.get()?;
        let n_reps = r.get_usize(CTX)?;
        let mut reps = Vec::with_capacity(n_reps.min(PREALLOC_CAP));
        for _ in 0..n_reps {
            let sig = r.get_str_table("template representative signature")?;
            let cluster = r.get_usize(CTX)?;
            if cluster >= clusters.len() {
                return Err(StoreError::Invalid {
                    context: CTX,
                    detail: format!(
                        "representative points at cluster {cluster} of {}",
                        clusters.len()
                    ),
                });
            }
            reps.push((sig, cluster));
        }
        let enabled = r.get_bool(CTX)?;
        let sim_threshold = r.get_f64(CTX)?;
        Ok(Clustering { clusters, reps, enabled, sim_threshold })
    }
}

/// Cluster pages into template groups, keeping the representative
/// signatures so later pages can be [`Clustering::assign`]ed.
pub fn cluster_site(pages: &[&PageView], cfg: &TemplateConfig) -> Clustering {
    if !cfg.enabled {
        return Clustering {
            clusters: vec![(0..pages.len()).collect()],
            reps: Vec::new(),
            enabled: false,
            sim_threshold: cfg.sim_threshold,
        };
    }
    let sigs: Vec<Vec<String>> = pages.iter().map(|p| shingles(p)).collect();

    // Greedy leader clustering: each cluster is represented by the
    // signature of its first member.
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut rep_pages: Vec<usize> = Vec::new();
    for (i, sig) in sigs.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (ci, &rep) in rep_pages.iter().enumerate() {
            let sim = jaccard(sigs[rep].as_slice(), sig.as_slice());
            offer_candidate(&mut best, ci, sim, cfg.sim_threshold);
        }
        match best {
            Some((ci, _)) => clusters[ci].push(i),
            None => {
                clusters.push(vec![i]);
                rep_pages.push(i);
            }
        }
    }

    // Stable argsort by descending size = the sort `cluster_pages` always
    // applied, but tracked so each creation-order rep knows its sorted
    // cluster's index.
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&ci| std::cmp::Reverse(clusters[ci].len()));
    let mut sorted_pos = vec![0usize; clusters.len()];
    for (new_ci, &old_ci) in order.iter().enumerate() {
        sorted_pos[old_ci] = new_ci;
    }
    let mut slots: Vec<Option<Vec<usize>>> = clusters.into_iter().map(Some).collect();
    let sorted: Vec<Vec<usize>> =
        order.iter().map(|&ci| slots[ci].take().expect("each cluster placed once")).collect();
    let mut sigs: Vec<Option<Vec<String>>> = sigs.into_iter().map(Some).collect();
    let reps: Vec<(Vec<String>, usize)> = rep_pages
        .iter()
        .enumerate()
        .map(|(ci, &p)| (sigs[p].take().expect("each rep page starts one cluster"), sorted_pos[ci]))
        .collect();
    Clustering { clusters: sorted, reps, enabled: true, sim_threshold: cfg.sim_threshold }
}

/// Cluster pages into template groups; returns clusters of page indexes,
/// largest first.
pub fn cluster_pages(pages: &[&PageView], cfg: &TemplateConfig) -> Vec<Vec<usize>> {
    cluster_site(pages, cfg).clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{Kb, KbBuilder, Ontology};

    fn empty_kb() -> Kb {
        KbBuilder::new(Ontology::new()).build()
    }

    fn pv(id: &str, html: &str, kb: &Kb) -> PageView {
        PageView::build(id, html, kb)
    }

    #[test]
    fn separates_different_templates() {
        let kb = empty_kb();
        let detail = |t: &str| {
            format!(
                "<html><body><h1>{t}</h1><div class=i><span>a</span><span>b</span></div></body></html>"
            )
        };
        let chart = |t: &str| {
            format!(
                "<html><body><table><tr><td>{t}</td><td>1</td></tr><tr><td>x</td><td>2</td></tr></table></body></html>"
            )
        };
        let pages: Vec<PageView> = vec![
            pv("d1", &detail("one"), &kb),
            pv("c1", &chart("one"), &kb),
            pv("d2", &detail("two"), &kb),
            pv("c2", &chart("two"), &kb),
            pv("d3", &detail("three"), &kb),
        ];
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &TemplateConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 3); // details (largest first)
        assert_eq!(clusters[1].len(), 2);
    }

    #[test]
    fn similar_pages_with_varying_lists_stay_together() {
        let kb = empty_kb();
        let page = |n: usize| {
            let lis: String = (0..n).map(|i| format!("<li>p{i}</li>")).collect();
            format!("<html><body><h1>t</h1><ul>{lis}</ul></body></html>")
        };
        let pages: Vec<PageView> = (2..10).map(|n| pv(&format!("p{n}"), &page(n), &kb)).collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &TemplateConfig::default());
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn disabled_clustering_returns_one_cluster() {
        let kb = empty_kb();
        let pages =
            [pv("a", "<div>x</div>", &kb), pv("b", "<table><tr><td>y</td></tr></table>", &kb)];
        let cfg = TemplateConfig { enabled: false, ..Default::default() };
        let refs: Vec<&PageView> = pages.iter().collect();
        let clusters = cluster_pages(&refs, &cfg);
        assert_eq!(clusters, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_input() {
        let clusters = cluster_pages(&[], &TemplateConfig::default());
        assert!(clusters.is_empty());
    }

    #[test]
    fn assign_places_unseen_pages_with_their_template() {
        let kb = empty_kb();
        let detail = |t: &str| {
            format!(
                "<html><body><h1>{t}</h1><div class=i><span>a</span><span>b</span></div></body></html>"
            )
        };
        let chart = |t: &str| {
            format!(
                "<html><body><table><tr><td>{t}</td><td>1</td></tr><tr><td>x</td><td>2</td></tr></table></body></html>"
            )
        };
        let pages: Vec<PageView> = vec![
            pv("d1", &detail("one"), &kb),
            pv("c1", &chart("one"), &kb),
            pv("d2", &detail("two"), &kb),
            pv("c2", &chart("two"), &kb),
            pv("d3", &detail("three"), &kb),
        ];
        let refs: Vec<&PageView> = pages.iter().collect();
        let clustering = cluster_site(&refs, &TemplateConfig::default());
        assert_eq!(clustering.n_clusters(), 2);

        // Unseen pages of each template land in that template's cluster
        // (0 = details, the larger cluster after the size sort).
        let new_detail = pv("d9", &detail("nine"), &kb);
        let new_chart = pv("c9", &chart("nine"), &kb);
        assert_eq!(clustering.assign(&new_detail), Some(0));
        assert_eq!(clustering.assign(&new_chart), Some(1));

        // A page unlike any template is rejected.
        let alien =
            pv("x", "<html><body><form><p>q</p><p>r</p><p>s</p><p>t</p></form></body></html>", &kb);
        assert_eq!(clustering.assign(&alien), None);
    }

    #[test]
    fn assign_agrees_with_joint_clustering_for_member_lookalikes() {
        // A page byte-identical to a clustered page must be assigned to
        // exactly the cluster that page is a member of.
        let kb = empty_kb();
        let page = |n: usize| {
            let lis: String = (0..n).map(|i| format!("<li>p{i}</li>")).collect();
            format!("<html><body><h1>t</h1><ul>{lis}</ul></body></html>")
        };
        let pages: Vec<PageView> = (2..10).map(|n| pv(&format!("p{n}"), &page(n), &kb)).collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let clustering = cluster_site(&refs, &TemplateConfig::default());
        for (i, p) in pages.iter().enumerate() {
            let ci = clustering.assign(p).expect("member lookalike must match");
            assert!(clustering.clusters[ci].contains(&i), "page {i} assigned to {ci}");
        }
    }

    #[test]
    fn offer_candidate_ignores_nan_and_keeps_earliest_on_ties() {
        // NaN similarity never displaces the incumbent (or seeds one).
        let mut best = None;
        offer_candidate(&mut best, 0, f64::NAN, 0.0);
        assert_eq!(best, None);
        offer_candidate(&mut best, 1, 0.5, 0.0);
        offer_candidate(&mut best, 2, f64::NAN, 0.0);
        assert_eq!(best, Some((1, 0.5)));

        // NaN threshold matches nothing rather than everything/poisoning.
        let mut best = None;
        offer_candidate(&mut best, 0, 1.0, f64::NAN);
        assert_eq!(best, None);

        // Exact tie keeps the earliest candidate; strictly better displaces.
        let mut best = None;
        offer_candidate(&mut best, 0, 0.5, 0.2);
        offer_candidate(&mut best, 1, 0.5, 0.2);
        assert_eq!(best, Some((0, 0.5)));
        offer_candidate(&mut best, 2, 0.75, 0.2);
        assert_eq!(best, Some((2, 0.75)));

        // Below-threshold candidates never enter.
        offer_candidate(&mut best, 3, 0.1, 0.2);
        assert_eq!(best, Some((2, 0.75)));
    }

    #[test]
    fn assign_resolves_exact_ties_to_the_earliest_created_cluster() {
        // Two representatives with identical signatures tie at sim = 1.0
        // for a matching page; the earliest-created one must win.
        let kb = empty_kb();
        let page = pv("q", "<html><body><div>x</div></body></html>", &kb);
        let sig = shingles(&page);
        assert!(!sig.is_empty());
        let clustering = Clustering {
            clusters: vec![vec![0], vec![1]],
            reps: vec![(sig.clone(), 0), (sig, 1)],
            enabled: true,
            sim_threshold: 0.5,
        };
        assert_eq!(clustering.assign(&page), Some(0));
    }

    #[test]
    fn nan_threshold_rejects_all_pages_instead_of_poisoning_assign() {
        let kb = empty_kb();
        let page = pv("q", "<html><body><div>x</div></body></html>", &kb);
        let sig = shingles(&page);
        let clustering = Clustering {
            clusters: vec![vec![0]],
            reps: vec![(sig, 0)],
            enabled: true,
            sim_threshold: f64::NAN,
        };
        assert_eq!(clustering.assign(&page), None);
    }

    #[test]
    fn assign_scored_reports_below_threshold_similarity() {
        let kb = empty_kb();
        let detail = |t: &str| {
            format!(
                "<html><body><h1>{t}</h1><div class=i><span>a</span><span>b</span></div></body></html>"
            )
        };
        let pages: Vec<PageView> =
            (0..3).map(|i| pv(&format!("d{i}"), &detail("x"), &kb)).collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let clustering = cluster_site(&refs, &TemplateConfig::default());

        // A member lookalike: assigned, and the score agrees with assign().
        let member = pv("d9", &detail("nine"), &kb);
        let scored = clustering.assign_scored(&member);
        assert_eq!(scored.cluster, clustering.assign(&member));
        assert!(scored.cluster.is_some());
        assert!((scored.best_sim - 1.0).abs() < 1e-12, "identical shingles: {scored:?}");

        // A drifted page shares *some* structure: unassigned, but the
        // near-miss similarity is visible instead of being flattened to
        // `None` (what the drift watchdog consumes).
        let drifted = pv(
            "x",
            "<html><body><h1>t</h1><form><p>q</p><p>r</p><p>s</p><p>u</p><p>v</p><p>w</p></form></body></html>",
            &kb,
        );
        let scored = clustering.assign_scored(&drifted);
        assert_eq!(scored.cluster, None);
        assert!(scored.best_sim > 0.0 && scored.best_sim < 1.0, "{scored:?}");

        // No representatives at all → similarity floor, not NaN.
        let empty = Clustering {
            clusters: Vec::new(),
            reps: Vec::new(),
            enabled: true,
            sim_threshold: 0.35,
        };
        assert_eq!(empty.assign_scored(&member), Assignment { cluster: None, best_sim: 0.0 });
    }

    #[test]
    fn disabled_clustering_assigns_everything_to_the_single_cluster() {
        let kb = empty_kb();
        let cfg = TemplateConfig { enabled: false, ..Default::default() };
        let pages = [pv("a", "<div>x</div>", &kb)];
        let refs: Vec<&PageView> = pages.iter().collect();
        let clustering = cluster_site(&refs, &cfg);
        let other = pv("b", "<table><tr><td>y</td></tr></table>", &kb);
        assert_eq!(clustering.assign(&other), Some(0));
    }
}
