//! Extraction (§4.3): apply the trained classifier to every text field of
//! every page; the NAME-classified field supplies the subject, every
//! relation-classified field above the confidence threshold yields a
//! triple.

use crate::config::ExtractConfig;
use crate::examples::{ClassMap, CLASS_NAME, CLASS_OTHER};
use crate::features::{FeatureScratch, FeatureSpace};
use crate::page::PageView;
use ceres_kb::PredId;
use ceres_ml::LogReg;
use ceres_runtime::Runtime;
use ceres_text::nan_lowest;

/// What an extraction asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractLabel {
    /// The field names the page topic.
    Name,
    Pred(PredId),
}

/// One extracted assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    pub page_id: String,
    /// Ground-truth id of the source field (evaluation only).
    pub gt_id: Option<u32>,
    /// The topic-name text of the page ("" when no name node was found).
    pub subject: String,
    pub label: ExtractLabel,
    pub object: String,
    pub confidence: f64,
}

// The serve path runs on whatever a loaded artifact computes; a poisoned
// posterior must *lose* every argmax below, not panic it — hence
// `ceres_text::nan_lowest` (NaN below every real, `-0.0 == 0.0` so the
// index tiebreak stays in charge) rather than `partial_cmp().unwrap()` or
// `f64::total_cmp`.

/// Run extraction over one page. The feature space must be frozen — it is
/// only read (`&FeatureSpace`), so concurrent extraction tasks share it.
pub fn extract_page(
    page: &PageView,
    model: &LogReg,
    space: &FeatureSpace,
    class_map: &ClassMap,
    cfg: &ExtractConfig,
) -> Vec<Extraction> {
    let mut out = Vec::new();
    if page.fields.is_empty() {
        return out;
    }
    // One scratch for the whole page: every field's vectorization reuses
    // the same name/index buffers, and every prediction writes into the
    // same score scratch (zero transient allocations per node). Posteriors
    // land in one flat `n_fields × n_classes` buffer.
    let mut scratch = FeatureScratch::new();
    let mut scores = ceres_ml::ScoreScratch::new();
    let k = model.n_classes();
    let mut probs = vec![0.0f64; page.fields.len() * k];
    for (fi, f) in page.fields.iter().enumerate() {
        let x = space.features_frozen_with(page, f.node, &mut scratch);
        probs[fi * k..(fi + 1) * k].copy_from_slice(model.predict_proba_into(&x, &mut scores));
    }
    let row = |fi: usize| &probs[fi * k..(fi + 1) * k];

    // Name node: the field with the highest NAME probability. `max_by` is
    // `None` only on an empty iterator, and the empty-fields case already
    // returned above — but the serve path takes the total branch rather
    // than asserting it.
    let Some((name_field, name_prob)) = (0..page.fields.len())
        .map(|i| (i, row(i)[CLASS_NAME as usize]))
        .max_by(|a, b| nan_lowest(a.1, b.1).then(b.0.cmp(&a.0)))
    else {
        return out;
    };
    let subject = if name_prob >= cfg.name_threshold {
        let f = &page.fields[name_field];
        out.push(Extraction {
            page_id: page.page_id.clone(),
            gt_id: f.gt_id,
            subject: f.text.clone(),
            label: ExtractLabel::Name,
            object: f.text.clone(),
            confidence: name_prob,
        });
        f.text.clone()
    } else {
        String::new()
    };

    for (fi, f) in page.fields.iter().enumerate() {
        if fi == name_field && name_prob >= cfg.name_threshold {
            continue;
        }
        // A model always has ≥ 2 classes, so the row is never empty; if it
        // somehow were, skipping the field beats panicking the page.
        let Some((class, p)) = row(fi)
            .iter()
            .enumerate()
            .max_by(|a, b| nan_lowest(*a.1, *b.1))
            .map(|(c, &p)| (c as u32, p))
        else {
            continue;
        };
        if class == CLASS_OTHER || class == CLASS_NAME || p < cfg.threshold {
            continue;
        }
        let Some(pred) = class_map.pred_of(class) else { continue };
        out.push(Extraction {
            page_id: page.page_id.clone(),
            gt_id: f.gt_id,
            subject: subject.clone(),
            label: ExtractLabel::Pred(pred),
            object: f.text.clone(),
            confidence: p,
        });
    }
    out
}

/// Run extraction over `pages` sequentially, results in page order.
pub fn extract_pages(
    pages: &[&PageView],
    model: &LogReg,
    space: &FeatureSpace,
    class_map: &ClassMap,
    cfg: &ExtractConfig,
) -> Vec<Extraction> {
    extract_pages_on(&Runtime::sequential(), pages, model, space, class_map, cfg)
}

/// [`extract_pages`] with the per-page fan-out on `rt`. The merged output
/// is byte-identical for every thread count (page order is preserved).
pub fn extract_pages_on(
    rt: &Runtime,
    pages: &[&PageView],
    model: &LogReg,
    space: &FeatureSpace,
    class_map: &ClassMap,
    cfg: &ExtractConfig,
) -> Vec<Extraction> {
    debug_assert!(space.is_frozen(), "freeze the feature space before extraction");
    rt.par_map(pages, |page| extract_page(page, model, space, class_map, cfg))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::PageAnnotation;
    use crate::config::FeatureConfig;
    use crate::examples::build_training;
    use ceres_kb::{Kb, KbBuilder, Ontology};
    use ceres_ml::TrainConfig;

    /// End-to-end mini check: train on annotated pages, extract from a
    /// fresh page of the same template.
    #[test]
    fn learns_template_and_extracts_unseen_values() {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let mut b = KbBuilder::new(o);
        // Films 0..6 are in the KB; film 9 is not (long tail).
        let mut film_ids = Vec::new();
        for i in 0..6 {
            let f = b.entity(film, &format!("Movie Number {i}"));
            let p = b.entity(person, &format!("Director Number {i}"));
            b.triple(f, directed, p);
            film_ids.push(f);
        }
        let kb: Kb = b.build();

        let html = |i: usize| {
            format!(
                "<html><body><h1 class=title>Movie Number {i}</h1>\
                 <div class=info><div class=row><span class=label>Director:</span>\
                 <span class=value>Director Number {i}</span></div></div>\
                 <div class=footer><span>c1</span><span>c2</span><span>c3</span>\
                 <span>c4</span><span>c5</span><span>c6</span></div></body></html>"
            )
        };
        let pages: Vec<PageView> =
            (0..6).map(|i| PageView::build(&format!("p{i}"), &html(i), &kb)).collect();

        // Hand-build annotations (bypassing Algorithm 1/2 — tested
        // elsewhere) to isolate the train→extract path.
        let annotations: Vec<PageAnnotation> = (0..6)
            .map(|i| {
                let page = &pages[i];
                let name_field =
                    page.fields.iter().position(|f| f.text.starts_with("Movie")).unwrap();
                let dir_field =
                    page.fields.iter().position(|f| f.text.starts_with("Director N")).unwrap();
                PageAnnotation {
                    page_idx: i,
                    topic: film_ids[i],
                    name_field,
                    labels: vec![(dir_field, directed)],
                }
            })
            .collect();

        let class_map = crate::examples::ClassMap::from_annotations(&annotations);
        let refs: Vec<&PageView> = pages.iter().collect();
        let mut space = FeatureSpace::new(&refs, FeatureConfig::default());
        let data = build_training(&refs, &annotations, &mut space, &class_map, 3, 7);
        let (model, _) = ceres_ml::LogReg::train(&data, &TrainConfig::default());
        space.freeze();

        // A page about an unknown movie (not in KB).
        let unseen = PageView::build(
            "p9",
            "<html><body><h1 class=title>Totally New Film</h1>\
             <div class=info><div class=row><span class=label>Director:</span>\
             <span class=value>Fresh Face</span></div></div>\
             <div class=footer><span>c1</span><span>c2</span><span>c3</span>\
             <span>c4</span><span>c5</span><span>c6</span></div></body></html>",
            &kb,
        );
        let ex = extract_pages(&[&unseen], &model, &space, &class_map, &ExtractConfig::default());
        let name = ex.iter().find(|e| e.label == ExtractLabel::Name).expect("name found");
        assert_eq!(name.object, "Totally New Film");
        let dir = ex
            .iter()
            .find(|e| matches!(e.label, ExtractLabel::Pred(p) if p == directed))
            .expect("director extracted");
        assert_eq!(dir.object, "Fresh Face");
        assert_eq!(dir.subject, "Totally New Film");
        assert!(dir.confidence >= 0.5);
        // The footer junk is not extracted.
        assert!(ex.iter().all(|e| !e.object.starts_with('c')));
    }

    #[test]
    fn nan_loses_every_argmax_and_zero_signs_stay_equal() {
        use std::cmp::Ordering;
        assert_eq!(nan_lowest(f64::NAN, 0.0), Ordering::Less);
        assert_eq!(nan_lowest(0.0, f64::NAN), Ordering::Greater);
        assert_eq!(nan_lowest(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_lowest(1.0, 2.0), Ordering::Less);
        // Unlike `total_cmp`: the index tiebreak decides, not the zero sign.
        assert_eq!(nan_lowest(-0.0, 0.0), Ordering::Equal);
        // A poisoned posterior row still argmaxes to a real entry.
        let probs = [f64::NAN, 0.3, f64::NAN, 0.1];
        let best = probs.iter().enumerate().max_by(|a, b| nan_lowest(*a.1, *b.1)).map(|(i, _)| i);
        assert_eq!(best, Some(1));
    }
}
