//! The streaming, train-once/extract-many site API.
//!
//! CERES's Figure-3 pipeline is two-phase by nature: distant supervision
//! trains per-template-cluster models once, then extraction applies them
//! to every page of the site. This module makes that split the API:
//!
//! ```text
//!  ingest                      train                      serve
//!  ──────                      ─────                      ─────
//!  SiteSession::push_page ──▶  finish_training()    ──▶   TrainedSite::extract_page
//!  (parse overlaps the         (Cluster ▸ Topic/Annotate  extract_batch / extract_views
//!   caller's fetch loop         ▸ Plan ▸ Train; freezes   (&self, thread-safe: many
//!   via a bounded reorder       models + template          callers extract concurrently,
//!   buffer)                     signatures)                no re-training, ever)
//! ```
//!
//! * **Ingest** — [`SiteSession::push_page`] collects pages into small
//!   parse micro-batches and hands each batch to the runtime's bounded
//!   reorder buffer ([`ceres_runtime::StreamMap`]): parsing runs on pool
//!   workers (one job and one shared KB [`MatchCache`] per batch) while
//!   the caller fetches/decompresses the next page, and parsed views
//!   surface in input order, so the session is byte-identical to batch
//!   parsing at every thread count and batch size.
//! * **Train** — [`SiteSession::finish_training`] runs the training-side
//!   stages once and freezes everything extraction needs: per-cluster
//!   `(LogReg, FeatureSpace, ClassMap)` triples plus the template
//!   signatures ([`Clustering`]) that place *unseen* pages into a cluster.
//! * **Serve** — [`TrainedSite`] is an immutable artifact: every method
//!   takes `&self`, so one trained site can serve many extracting threads
//!   simultaneously and indefinitely.
//!
//! [`run_site`](crate::pipeline::run_site) and friends are thin wrappers
//! over this module (one engine, proven byte-identical by the equivalence
//! suite in `tests/session.rs`).
//!
//! ## Fault isolation
//!
//! Real crawls contain poison: truncated markup, multi-megabyte attribute
//! blobs, absurd nesting, duplicate captures. The fail-fast paths above
//! (`push_page`, `extract_batch`) treat a panic as a bug and abort the
//! run; the **fault-isolated** siblings treat bad pages as data:
//!
//! * [`SiteSession::try_push_page`] / [`SiteSession::try_ingest`] vet each
//!   page against [`GuardConfig`] and
//!   **quarantine** violators with a typed [`PageError`] instead of
//!   feeding them to training — including pages whose parse *panics*.
//! * [`TrainedSite::try_extract_batch`] returns one [`ExtractOutcome`]
//!   per page, so serve callers distinguish "no facts" (`Ok(vec![])`)
//!   from "no template" ([`ExtractOutcome::Unassigned`]) from "page blew
//!   up" ([`ExtractOutcome::Failed`]).
//! * [`SessionHealth`] is the ledger: pages ok, quarantined-by-reason,
//!   and rolling assign-confidence stats. Like
//!   [`StageProfile`] it lives **beside**
//!   [`SiteRunStats`] — outside the equality contract and the artifact
//!   codec (a loaded site reports an empty ledger).
//! * [`DriftWatchdog`] watches the serve path's template-assignment
//!   outcomes and flips [`DriftSignal::RetrainSuggested`] when the
//!   unassigned rate over a rolling window crosses the configured
//!   threshold — the retrain trigger a mid-crawl site redesign needs.

use crate::annotate::{annotate_relations, AnnotationMode, PageAnnotation};
use crate::config::{CeresConfig, DriftConfig, ExtractConfig, GuardConfig};
use crate::examples::ClassMap;
use crate::extract::{extract_page, Extraction};
use crate::features::FeatureSpace;
use crate::page::PageView;
use crate::pipeline::{
    pool_jobs_now, AnnotationRecord, SiteRun, SiteRunStats, StageProfile, StageTime, StageTimer,
    TopicRecord, TrainFoldStats,
};
use crate::template::{cluster_site, Clustering};
use crate::topic::identify_topics;
use ceres_kb::{Kb, MatchCache};
use ceres_ml::LogReg;
use ceres_runtime::{auto_chunk_coarse, Runtime, StreamMap};
use ceres_store::{
    ArtifactReader, ArtifactWriter, Decode, Encode, Error as StoreError, Fnv64, Reader, Writer,
};
use std::io::{Read, Write};

// --- Fault isolation: the error taxonomy, health ledger, and watchdog ----

/// Why a page was quarantined by the fault-isolated ingest/serve paths
/// instead of being fed to the pipeline. Every variant carries enough to
/// explain the refusal in a log line; [`PageError::kind`] gives the stable
/// slug used for counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The raw HTML exceeded [`GuardConfig::max_page_bytes`] — refused
    /// before parsing (a multi-megabyte attribute blob is not worth the
    /// allocation).
    OversizedPage { bytes: usize, limit: usize },
    /// The page parsed to a DOM with no text fields at all: nothing to
    /// match, train on, or extract from.
    EmptyDom,
    /// The parsed DOM nests deeper than [`GuardConfig::max_dom_depth`]
    /// (the tolerant parser accepts any nesting; downstream consumers
    /// should not have to).
    ParseDepthExceeded { depth: usize, limit: usize },
    /// A page with this id was already ingested in the same session.
    DuplicateId { id: String },
    /// The parse/match pipeline panicked on this page; the panic was
    /// contained and its message captured.
    Panicked { message: String },
}

impl PageError {
    /// Stable one-word slug per variant (quarantine counters, CLI output).
    pub fn kind(&self) -> &'static str {
        match self {
            PageError::OversizedPage { .. } => "oversized",
            PageError::EmptyDom => "empty-dom",
            PageError::ParseDepthExceeded { .. } => "parse-depth",
            PageError::DuplicateId { .. } => "duplicate-id",
            PageError::Panicked { .. } => "panicked",
        }
    }

    /// Every slug [`PageError::kind`] can produce, in taxonomy order.
    pub const KINDS: [&'static str; 5] =
        ["oversized", "empty-dom", "parse-depth", "duplicate-id", "panicked"];
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::OversizedPage { bytes, limit } => {
                write!(f, "page is {bytes} bytes (guard limit {limit})")
            }
            PageError::EmptyDom => write!(f, "page parsed to a DOM with no text fields"),
            PageError::ParseDepthExceeded { depth, limit } => {
                write!(f, "DOM nests {depth} deep (guard limit {limit})")
            }
            PageError::DuplicateId { id } => {
                write!(f, "page id {id:?} was already ingested in this session")
            }
            PageError::Panicked { message } => write!(f, "page processing panicked: {message}"),
        }
    }
}

impl std::error::Error for PageError {}

/// Marker honored by the test-only `fault-inject` feature: when a page's
/// HTML contains this string, the guarded build paths panic instead of
/// parsing — letting seeded fault plans prove panic containment
/// end-to-end. Without the feature the marker is inert (generators embed
/// it in an HTML comment, which the parser skips), so the same corpus is
/// valid input for clean builds.
pub const FAULT_PANIC_MARKER: &str = "ceres:fault=panic";

/// Ingest/serve health report: what the fault-isolated paths accepted,
/// what they quarantined and why, and (after
/// [`SessionHealth::absorb_watchdog`]) the serve path's rolling
/// assign-confidence stats.
///
/// Deliberately carried **beside** [`SiteRunStats`] — outside the equality
/// contract the thread-invariance suites compare and outside the artifact
/// codec (like [`StageProfile`]): the
/// ledger describes one process's ingest history, not the trained model,
/// so a [`TrainedSite`] loaded from disk reports an empty ledger.
#[derive(Debug, Clone, Default)]
pub struct SessionHealth {
    /// Pages that survived ingest vetting and reached training.
    pub pages_ok: usize,
    /// Quarantined pages in discovery order: `(page id, why)`.
    pub quarantine: Vec<(String, PageError)>,
    /// Serve-path pages observed by an absorbed [`DriftWatchdog`].
    pub assign_observed: usize,
    /// …of which matched no trained template.
    pub assign_unassigned: usize,
    /// Sum of the near-miss similarities of unassigned pages (mean via
    /// [`SessionHealth::mean_near_miss_sim`]).
    pub assign_near_sim_sum: f64,
}

impl SessionHealth {
    /// Number of quarantined pages.
    pub fn pages_quarantined(&self) -> usize {
        self.quarantine.len()
    }

    /// Quarantine counts per [`PageError::kind`] slug, in taxonomy order
    /// (zero-count kinds included, so output columns are stable).
    pub fn quarantined_by_reason(&self) -> [(&'static str, usize); 5] {
        let mut out = [("", 0usize); 5];
        for (slot, kind) in out.iter_mut().zip(PageError::KINDS) {
            *slot = (kind, self.quarantine.iter().filter(|(_, e)| e.kind() == kind).count());
        }
        out
    }

    /// Fraction of observed serve pages that matched no trained template
    /// (0 when nothing was observed).
    pub fn unassigned_rate(&self) -> f64 {
        if self.assign_observed == 0 {
            0.0
        } else {
            self.assign_unassigned as f64 / self.assign_observed as f64
        }
    }

    /// Mean best-similarity of the unassigned pages — how close the
    /// nearest template was on the misses (0 when there were none).
    pub fn mean_near_miss_sim(&self) -> f64 {
        if self.assign_unassigned == 0 {
            0.0
        } else {
            self.assign_near_sim_sum / self.assign_unassigned as f64
        }
    }

    /// Fold a watchdog's lifetime counters into this report (serve-side
    /// assign-confidence stats accumulate in the caller-owned
    /// [`DriftWatchdog`]; this merges them for one combined report).
    pub fn absorb_watchdog(&mut self, watchdog: &DriftWatchdog) {
        self.assign_observed += watchdog.observed();
        self.assign_unassigned += watchdog.unassigned_total();
        self.assign_near_sim_sum += watchdog.near_sim_sum();
    }

    fn note_quarantined(&mut self, id: String, why: PageError) {
        self.quarantine.push((id, why));
    }
}

/// What the [`DriftWatchdog`] currently advises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSignal {
    /// The unassigned rate is below the configured threshold (or the
    /// window has too few samples to judge).
    Healthy,
    /// Over the last `window` observed pages, `unassigned_rate` matched no
    /// trained template — the site has likely drifted away from its
    /// training templates; retraining is suggested.
    RetrainSuggested { unassigned_rate: f64, window: usize },
}

impl DriftSignal {
    pub fn retrain_suggested(&self) -> bool {
        matches!(self, DriftSignal::RetrainSuggested { .. })
    }
}

/// Serve-path template-drift watchdog: a rolling window over
/// [`ExtractOutcome`]s (or raw assignment observations) that flips
/// [`DriftSignal::RetrainSuggested`] when the fraction of pages matching
/// no trained template crosses [`DriftConfig::max_unassigned_rate`].
///
/// The watchdog is **caller-owned** — [`TrainedSite`] stays immutable and
/// thread-shareable; each serving loop feeds its own watchdog from the
/// outcomes it receives ([`DriftWatchdog::observe_batch`]) and reacts to
/// the returned signal. [`ExtractOutcome::Failed`] pages are quarantine
/// material, not drift evidence, and are not counted.
#[derive(Debug, Clone)]
pub struct DriftWatchdog {
    cfg: DriftConfig,
    /// Rolling window of "matched no template" flags, oldest first.
    window: std::collections::VecDeque<bool>,
    unassigned_in_window: usize,
    observed: usize,
    unassigned_total: usize,
    near_sim_sum: f64,
}

impl DriftWatchdog {
    /// A watchdog with `cfg`'s thresholds (window and `min_samples` are
    /// clamped to ≥ 1).
    pub fn new(cfg: DriftConfig) -> DriftWatchdog {
        let cfg =
            DriftConfig { window: cfg.window.max(1), min_samples: cfg.min_samples.max(1), ..cfg };
        DriftWatchdog {
            window: std::collections::VecDeque::with_capacity(cfg.window),
            cfg,
            unassigned_in_window: 0,
            observed: 0,
            unassigned_total: 0,
            near_sim_sum: 0.0,
        }
    }

    /// Record one raw assignment observation: did the page match a trained
    /// template, and (for misses) how close the nearest template was.
    /// Returns the signal after the observation.
    pub fn observe(&mut self, unassigned: bool, near_sim: Option<f64>) -> DriftSignal {
        if self.window.len() == self.cfg.window && self.window.pop_front() == Some(true) {
            self.unassigned_in_window -= 1;
        }
        self.window.push_back(unassigned);
        self.observed += 1;
        if unassigned {
            self.unassigned_in_window += 1;
            self.unassigned_total += 1;
            if let Some(sim) = near_sim {
                if !sim.is_nan() {
                    self.near_sim_sum += sim;
                }
            }
        }
        self.signal()
    }

    /// Record one serve outcome ([`ExtractOutcome::Failed`] is ignored —
    /// quarantine, not drift). Returns the signal afterwards.
    pub fn observe_outcome(&mut self, outcome: &ExtractOutcome) -> DriftSignal {
        match outcome {
            ExtractOutcome::Ok(_) => self.observe(false, None),
            ExtractOutcome::Unassigned { best_sim } => self.observe(true, Some(*best_sim)),
            ExtractOutcome::Failed(_) => self.signal(),
        }
    }

    /// [`DriftWatchdog::observe_outcome`] over a whole batch; returns the
    /// signal after the last outcome.
    pub fn observe_batch(&mut self, outcomes: &[ExtractOutcome]) -> DriftSignal {
        for outcome in outcomes {
            self.observe_outcome(outcome);
        }
        self.signal()
    }

    /// The current advice, judged over the rolling window. Never fires
    /// before [`DriftConfig::min_samples`] observations are in the window,
    /// and never fires on a NaN threshold.
    pub fn signal(&self) -> DriftSignal {
        let n = self.window.len();
        if n >= self.cfg.min_samples {
            let rate = self.unassigned_in_window as f64 / n as f64;
            if rate >= self.cfg.max_unassigned_rate {
                return DriftSignal::RetrainSuggested { unassigned_rate: rate, window: n };
            }
        }
        DriftSignal::Healthy
    }

    /// Unassigned fraction of the current window (0 when empty).
    pub fn window_unassigned_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.unassigned_in_window as f64 / self.window.len() as f64
        }
    }

    /// Lifetime pages observed (not just the window).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Lifetime pages that matched no trained template.
    pub fn unassigned_total(&self) -> usize {
        self.unassigned_total
    }

    /// Lifetime sum of near-miss similarities (see [`SessionHealth`]).
    pub fn near_sim_sum(&self) -> f64 {
        self.near_sim_sum
    }
}

/// Per-page result of the outcome-typed serve path
/// ([`TrainedSite::try_extract_page`] / [`TrainedSite::try_extract_batch`]):
/// distinguishes "extracted (possibly zero) facts" from "matched no
/// trained template" from "the page itself was refused or blew up".
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractOutcome {
    /// The page matched a trained template; these are its extractions
    /// (possibly empty — a matching page can simply contain no facts).
    /// Byte-identical to what [`TrainedSite::extract_batch`] would have
    /// contributed for this page.
    Ok(Vec<Extraction>),
    /// The page matched no *trained* template (nothing reached the
    /// similarity threshold, or the matched cluster trained no model);
    /// `best_sim` is the closest any template representative came — the
    /// drift watchdog's evidence.
    Unassigned { best_sim: f64 },
    /// The page was refused by a guard or its processing panicked.
    Failed(PageError),
}

impl ExtractOutcome {
    /// The extractions, when the page was served (`None` otherwise).
    pub fn extractions(&self) -> Option<&[Extraction]> {
        match self {
            ExtractOutcome::Ok(ex) => Some(ex),
            _ => None,
        }
    }
}

/// Render a caught panic payload (string payloads verbatim, anything else
/// a placeholder — same contract as `ceres_runtime::JobFault::message`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One cluster's frozen model: everything its extract tasks read.
pub(crate) struct ClusterModel {
    pub(crate) model: LogReg,
    pub(crate) space: FeatureSpace,
    pub(crate) class_map: ClassMap,
    pub(crate) n_train_examples: usize,
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
}

/// The trained engine state shared by [`TrainedSite`] and the batch
/// wrappers in [`crate::pipeline`]: per-cluster models, the template
/// signatures for cluster assignment, and the training-side records.
pub(crate) struct TrainedCore {
    clustering: Clustering,
    /// Trained-eligible clusters' page-index lists (cluster order).
    plans: Vec<Vec<usize>>,
    /// Sorted-cluster index → index into `plans`/`models` (clusters that
    /// failed the size filter map to `None`).
    plan_of_cluster: Vec<Option<usize>>,
    models: Vec<Option<ClusterModel>>,
    stats: SiteRunStats,
    topic_records: Vec<TopicRecord>,
    annotation_records: Vec<AnnotationRecord>,
    extract_cfg: ExtractConfig,
    /// Wall-time profile of the training stages that produced this core
    /// (all-zero when the core was loaded from an artifact — see
    /// [`StageProfile`]).
    pub(crate) profile: StageProfile,
    /// Duplicate-folding totals of the Train stage, summed over clusters
    /// (zeros when loaded from an artifact — see [`TrainFoldStats`]).
    pub(crate) fold: TrainFoldStats,
}

/// Run the training side of the pipeline — Cluster → {Topic ▸ Annotate} →
/// Plan → Train — over pre-parsed views, exactly as the staged batch
/// pipeline always has (same stage order, same ordered merges, so the
/// output is byte-identical at every thread count).
pub(crate) fn train_views_on(
    rt: &Runtime,
    kb: &Kb,
    views: &[PageView],
    cfg: &CeresConfig,
    mode: AnnotationMode,
) -> TrainedCore {
    let mut stats = SiteRunStats { n_annotation_pages: views.len(), ..Default::default() };
    let mut topic_records = Vec::new();
    let mut annotation_records = Vec::new();
    let mut profile = StageProfile::default();

    // --- Cluster stage: template clustering over the training pages
    // (site-wide, sequential). The representative signatures are kept so
    // unseen pages can be assigned to a cluster at serve time. ---
    let stage_t = StageTimer::start();
    let refs: Vec<&PageView> = views.iter().collect();
    let clustering = cluster_site(&refs, &cfg.template);
    stats.n_clusters = clustering.n_clusters();

    // Fix each cluster's work order up front (in cluster order).
    let mut plan_of_cluster: Vec<Option<usize>> = vec![None; clustering.n_clusters()];
    let mut plans: Vec<Vec<usize>> = Vec::new();
    for (ci, cluster) in clustering.clusters.iter().enumerate() {
        if !cluster.is_empty() && cluster.len() >= cfg.template.min_cluster_size {
            plan_of_cluster[ci] = Some(plans.len());
            plans.push(cluster.clone());
        }
    }
    let cluster_pages_of =
        |plan: &Vec<usize>| -> Vec<&PageView> { plan.iter().map(|&i| &views[i]).collect() };
    profile.cluster = stage_t.stop();

    // --- {Topic ▸ Annotate} stage: Algorithms 1 and 2, one concurrent job
    // per cluster (no cross-cluster state) ---
    let stage_t = StageTimer::start();
    struct ClusterAnnotations {
        topic_out: crate::topic::TopicOutcome,
        annotations: Vec<PageAnnotation>,
    }
    let mut annotated: Vec<ClusterAnnotations> = rt.par_map(&plans, |plan| {
        let pages = cluster_pages_of(plan);
        let topic_out = identify_topics(&pages, kb, &cfg.topic);
        let annotations = annotate_relations(&pages, kb, &topic_out, &cfg.annotate, mode);
        ClusterAnnotations { topic_out, annotations }
    });
    profile.annotate = stage_t.stop();

    // --- Plan stage: allocate Figure 5's annotated-pages budget across
    // clusters *before* training. Walking annotation counts in cluster
    // order reproduces exactly what consuming the budget inside a
    // sequential cluster loop produced, while leaving the Train jobs below
    // free of cross-cluster data flow.
    let stage_t = StageTimer::start();
    let mut annotated_budget = cfg.max_annotated_pages.unwrap_or(usize::MAX);
    for ca in &mut annotated {
        let granted = ca.annotations.len().min(annotated_budget);
        ca.annotations.truncate(granted);
        annotated_budget -= granted;
    }

    // Records for the evaluation harness (ordered merge: cluster order,
    // then page order within each cluster).
    for (plan, ca) in plans.iter().zip(&annotated) {
        let pages = cluster_pages_of(plan);
        let survived: std::collections::BTreeSet<usize> =
            ca.annotations.iter().map(|a| a.page_idx).collect();
        stats.n_pages_with_topic += ca.topic_out.assignments.iter().filter(|a| a.is_some()).count();
        for (k, page) in pages.iter().enumerate() {
            let assignment = ca.topic_out.assignments[k];
            topic_records.push(TopicRecord {
                page_id: page.page_id.clone(),
                topic: assignment.map(|(v, _)| kb.canonical(v).to_string()),
                name_gt_id: assignment.and_then(|(_, fi)| page.fields[fi].gt_id),
                survived: survived.contains(&k),
            });
        }
        for ann in &ca.annotations {
            let page = pages[ann.page_idx];
            for &(fi, pred) in &ann.labels {
                annotation_records.push(AnnotationRecord {
                    page_id: page.page_id.clone(),
                    gt_id: page.fields[fi].gt_id,
                    pred: kb.ontology().pred_name(pred).to_string(),
                });
            }
        }
        stats.n_annotated_pages += ca.annotations.len();
        stats.n_annotations += ca.annotations.iter().map(|a| a.labels.len()).sum::<usize>();
    }
    profile.plan = stage_t.stop();

    // --- Train stage: one concurrent job per cluster; budgets are already
    // fixed, so jobs are fully independent ---
    let stage_t = StageTimer::start();
    let cluster_ids: Vec<usize> = (0..plans.len()).collect();
    let trained: Vec<(Option<ClusterModel>, TrainFoldStats)> = rt.par_map(&cluster_ids, |&ci| {
        let ca = &annotated[ci];
        if ca.annotations.len() < 2 {
            return (None, TrainFoldStats::default());
        }
        let class_map = ClassMap::from_annotations(&ca.annotations);
        if class_map.preds().is_empty() {
            return (None, TrainFoldStats::default());
        }
        let pages = cluster_pages_of(&plans[ci]);
        let mut space = FeatureSpace::new(&pages, cfg.features.clone());
        // Nested fan-out: name collection for this cluster's rows runs on
        // the same pool (the caller-participates pool makes the nesting
        // deadlock-free), so a single-cluster site still parallelizes its
        // training feature pass.
        let data = crate::examples::build_training_on(
            rt,
            &pages,
            &ca.annotations,
            &mut space,
            &class_map,
            cfg.negative_ratio,
            cfg.seed,
            cfg.list_exclusion,
        );
        if data.is_empty() {
            return (None, TrainFoldStats::default());
        }
        let (model, train_stats) = LogReg::train_on(rt, &data, &cfg.train);
        space.freeze();
        let fold = TrainFoldStats {
            n_examples: train_stats.n_examples,
            n_unique_rows: train_stats.n_unique_rows,
        };
        let cm = ClusterModel {
            model,
            space,
            class_map,
            n_train_examples: data.len(),
            n_features: data.n_features,
            n_classes: data.n_classes,
        };
        (Some(cm), fold)
    });
    let mut fold = TrainFoldStats::default();
    let mut models: Vec<Option<ClusterModel>> = Vec::with_capacity(trained.len());
    for (cm, f) in trained {
        fold.n_examples += f.n_examples;
        fold.n_unique_rows += f.n_unique_rows;
        models.push(cm);
    }
    for cm in models.iter().flatten() {
        stats.n_train_examples += cm.n_train_examples;
        stats.n_features = stats.n_features.max(cm.n_features);
        stats.n_classes = stats.n_classes.max(cm.n_classes);
        stats.trained = true;
    }
    profile.train = stage_t.stop();

    TrainedCore {
        clustering,
        plans,
        plan_of_cluster,
        models,
        stats,
        topic_records,
        annotation_records,
        extract_cfg: cfg.extract.clone(),
        profile,
        fold,
    }
}

impl TrainedCore {
    /// The model serving `view`, via the template-assignment path.
    fn model_for(&self, view: &PageView) -> Option<&ClusterModel> {
        let ci = self.clustering.assign(view)?;
        let pi = self.plan_of_cluster[ci]?;
        self.models[pi].as_ref()
    }

    /// Extract from one page not seen at train time: assign it to a
    /// template cluster, apply that cluster's model.
    pub(crate) fn extract_one(&self, view: &PageView) -> Vec<Extraction> {
        match self.model_for(view) {
            Some(cm) => extract_page(view, &cm.model, &cm.space, &cm.class_map, &self.extract_cfg),
            None => Vec::new(),
        }
    }

    /// Outcome-typed [`TrainedCore::extract_one`]: the same assignment
    /// walk, but "matched no trained template" is reported as
    /// [`ExtractOutcome::Unassigned`] with the near-miss similarity
    /// instead of being flattened into an empty extraction list. Index
    /// walks use `get` so even a hostile artifact that slipped past load
    /// validation degrades to `Unassigned`, never a panic.
    pub(crate) fn try_extract_one(&self, view: &PageView) -> ExtractOutcome {
        let scored = self.clustering.assign_scored(view);
        let model = scored
            .cluster
            .and_then(|ci| self.plan_of_cluster.get(ci).copied().flatten())
            .and_then(|pi| self.models.get(pi).and_then(|m| m.as_ref()));
        match model {
            Some(cm) => ExtractOutcome::Ok(extract_page(
                view,
                &cm.model,
                &cm.space,
                &cm.class_map,
                &self.extract_cfg,
            )),
            None => ExtractOutcome::Unassigned { best_sim: scored.best_sim },
        }
    }

    /// Extract from unseen pre-parsed views (assignment path), one task
    /// per page, results merged in page order.
    pub(crate) fn extract_views_on(&self, rt: &Runtime, views: &[PageView]) -> Vec<Extraction> {
        rt.par_map(views, |view| self.extract_one(view)).into_iter().flatten().collect()
    }

    /// Extract from unseen raw pages: parse (borrowing the slice — no
    /// string copies) + assign + extract, one task per page, merged in
    /// page order.
    pub(crate) fn extract_pages_on(
        &self,
        rt: &Runtime,
        kb: &Kb,
        pages: &[(String, String)],
    ) -> Vec<Extraction> {
        rt.par_map(pages, |(id, html)| self.extract_one(&PageView::build(id, html, kb)))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Extract from the training pages themselves (the CommonCrawl
    /// protocol) using their recorded cluster **membership** — no
    /// re-assignment — one task per (cluster, page), merged in cluster
    /// order then page order, exactly as the batch pipeline always has.
    pub(crate) fn extract_members_on(&self, rt: &Runtime, views: &[PageView]) -> Vec<Extraction> {
        // Each task carries its cluster's model directly: untrained
        // clusters are filtered out while the task is built, so the hot
        // closure below holds a `&ClusterModel` by construction instead of
        // re-deriving (and `expect`ing) it per page.
        let tasks: Vec<(&ClusterModel, &PageView)> = self
            .plans
            .iter()
            .zip(&self.models)
            .filter_map(|(plan, model)| model.as_ref().map(|cm| (plan, cm)))
            .flat_map(|(plan, cm)| plan.iter().map(move |&i| (cm, &views[i])))
            .collect();
        let extracted: Vec<Vec<Extraction>> = rt.par_map(&tasks, |&(cm, page)| {
            extract_page(page, &cm.model, &cm.space, &cm.class_map, &self.extract_cfg)
        });
        extracted.into_iter().flatten().collect()
    }

    pub(crate) fn into_site_run(
        mut self,
        extractions: Vec<Extraction>,
        n_extraction_pages: usize,
    ) -> SiteRun {
        self.stats.n_extraction_pages = n_extraction_pages;
        SiteRun {
            extractions,
            topic_records: self.topic_records,
            annotation_records: self.annotation_records,
            stats: self.stats,
            profile: self.profile,
            fold: self.fold,
            health: SessionHealth::default(),
        }
    }
}

impl Encode for ClusterModel {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.model);
        w.put(&self.space);
        w.put(&self.class_map);
        w.put_usize(self.n_train_examples);
        w.put_usize(self.n_features);
        w.put_usize(self.n_classes);
    }
}

impl Decode for ClusterModel {
    fn decode(r: &mut Reader<'_>) -> Result<ClusterModel, StoreError> {
        const CTX: &str = "cluster model";
        Ok(ClusterModel {
            model: r.get()?,
            space: r.get()?,
            class_map: r.get()?,
            n_train_examples: r.get_usize(CTX)?,
            n_features: r.get_usize(CTX)?,
            n_classes: r.get_usize(CTX)?,
        })
    }
}

// --- The on-disk artifact format -----------------------------------------
//
// magic + format version, then checksummed sections in fixed order. The
// section split is the error-message granularity: a flipped bit reports
// *which* part of the artifact is damaged.

/// File magic of a serialized [`TrainedSite`].
pub const ARTIFACT_MAGIC: [u8; 8] = *b"CERES-TS";
/// Newest artifact format this build reads and the version it writes.
pub const ARTIFACT_VERSION: u32 = 1;

const SEC_KB: (u8, &str) = (1, "kb fingerprint");
const SEC_CONFIG: (u8, &str) = (2, "extract config");
const SEC_CLUSTERING: (u8, &str) = (3, "clustering");
const SEC_PLANS: (u8, &str) = (4, "plans");
const SEC_MODELS: (u8, &str) = (5, "models");
const SEC_STATS: (u8, &str) = (6, "stats");
const SEC_RECORDS: (u8, &str) = (7, "records");

/// Identity of the KB a site was trained against: ontology shape (type
/// and predicate names, subject types, multi-valued flags), every value's
/// canonical name, and every triple. Serving against a *different* KB
/// would silently produce garbage — predicate ids and value ids baked
/// into the artifact would point at the wrong things — so
/// [`TrainedSite::load`] refuses on mismatch. One streaming FNV-1a pass,
/// linear in KB size, paid once per save/load.
fn kb_fingerprint(kb: &Kb) -> u64 {
    let mut h = Fnv64::new();
    let o = kb.ontology();
    h.write_u64(o.n_types() as u64);
    for t in 0..o.n_types() {
        h.write_str(o.type_name(ceres_kb::EntityTypeId(t as u16)));
    }
    h.write_u64(o.n_preds() as u64);
    for p in o.pred_ids() {
        let def = o.pred(p);
        h.write_str(&def.name);
        h.write_u64(u64::from(def.subject_type.0));
        h.write_u64(u64::from(def.multi_valued));
    }
    h.write_u64(kb.n_values() as u64);
    for v in 0..kb.n_values() {
        h.write_str(kb.canonical(ceres_kb::ValueId(v as u32)));
    }
    h.write_u64(kb.n_triples() as u64);
    for t in kb.triples() {
        h.write_u64(u64::from(t.subject.0));
        h.write_u64(u64::from(t.pred.0));
        h.write_u64(u64::from(t.object.0));
    }
    h.finish()
}

/// Builds a [`SiteSession`]; obtained from [`SiteSession::builder`].
pub struct SiteSessionBuilder<'kb> {
    kb: &'kb Kb,
    cfg: CeresConfig,
    mode: AnnotationMode,
    ingest_ahead: Option<usize>,
}

impl<'kb> SiteSessionBuilder<'kb> {
    /// Use `cfg` for every stage (defaults to [`CeresConfig::default`]).
    pub fn config(mut self, cfg: CeresConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Annotation mode for training (defaults to [`AnnotationMode::Full`]).
    pub fn mode(mut self, mode: AnnotationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Cap on parse micro-batches in flight during ingest (the reorder
    /// buffer's in-flight limit; each batch holds up to a few pages — see
    /// [`SiteSession::push_page`]). Overrides [`CeresConfig::ingest_ahead`];
    /// the default is twice the worker-thread count.
    pub fn ingest_ahead(mut self, cap: usize) -> Self {
        self.ingest_ahead = Some(cap);
        self
    }

    /// Open the session.
    pub fn build(self) -> SiteSession<'kb> {
        let rt = Runtime::with_threads(self.cfg.threads);
        let cap = self
            .ingest_ahead
            .or(self.cfg.ingest_ahead)
            .unwrap_or_else(|| (rt.threads() * 2).max(1));
        let kb = self.kb;
        let guards = self.cfg.guards.clone();
        // One stream serves both ingest flavors. Each item is a parse
        // micro-batch sharing one read-through MatchCache (field strings
        // repeat heavily across a template site's pages), so one pool job
        // amortizes its dispatch over several pages — the fix for parse's
        // one-job-per-page parallel regression on low-core hosts.
        // Unguarded pages (legacy `push_page`) parse exactly as before —
        // no guards, and a parse panic re-raises fail-fast on the popping
        // thread. Guarded pages (`try_push_page`) are vetted, with panics
        // contained into a typed quarantine entry instead of unwinding the
        // session. A contained panic can only fire before matching (guard
        // checks, the parse itself, the injected fault marker), so the
        // shared cache is never caught mid-mutation — and being
        // read-through over the immutable KB, it cannot change any result
        // either way.
        let parser = move |batch: IngestBatch| -> IngestBatchResult {
            let mut cache = MatchCache::new(kb, INGEST_MATCH_CACHE_CAP);
            batch
                .into_iter()
                .map(|(id, html, guarded)| {
                    if !guarded {
                        return Ok(PageView::build_with_cache(&id, &html, kb, &mut cache));
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        PageView::try_build_with_cache(&id, &html, kb, &guards, &mut cache)
                    })) {
                        Ok(Ok(view)) => Ok(view),
                        Ok(Err(why)) => Err((id, why)),
                        Err(payload) => Err((
                            id,
                            PageError::Panicked { message: panic_message(payload.as_ref()) },
                        )),
                    }
                })
                .collect()
        };
        SiteSession {
            kb,
            cfg: self.cfg,
            mode: self.mode,
            // The coarse autotuner's asymptote: a stream has no known item
            // count, so size batches as auto_chunk_coarse sizes chunks for
            // an unbounded input. Batch size never affects output (the
            // stream preserves input order and the cache is read-through),
            // only job granularity.
            batch_size: auto_chunk_coarse(usize::MAX, rt.threads()),
            rt,
            stream: StreamMap::new(&rt, cap, parser),
            pending: Vec::new(),
            in_flight_pages: 0,
            views: Vec::new(),
            health: SessionHealth::default(),
            seen_ids: std::collections::HashSet::new(),
            parse_ms: 0.0,
            jobs_at_open: pool_jobs_now(),
        }
    }
}

/// `(page id, html, guarded)` — one page of an ingest micro-batch.
type IngestItem = (String, String, bool);
/// A parse micro-batch: the unit handed to the worker pool (one pool job
/// and one shared [`MatchCache`] per batch).
type IngestBatch = Vec<IngestItem>;
/// Parsed view, or `(page id, why)` for a guarded page that was refused.
type IngestResult = Result<PageView, (String, PageError)>;
/// Per-page outcomes of one micro-batch, in push order.
type IngestBatchResult = Vec<IngestResult>;

/// Capacity of the per-batch ingest [`MatchCache`] (distinct normalized
/// strings). Sized to hold every distinct field string a micro-batch of
/// template pages realistically produces; eviction beyond it is
/// deterministic FIFO and can only cost repeat lookups, never change one.
pub(crate) const INGEST_MATCH_CACHE_CAP: usize = 1 << 12;

/// The ingest/train phase of the streaming pipeline: pages are pushed in
/// as they arrive (parsing overlaps the caller's fetch loop), then
/// [`SiteSession::finish_training`] freezes a [`TrainedSite`].
///
/// Output is byte-identical to the batch [`crate::pipeline::run_site`] fed
/// the same pages in the same order, at every thread count and every
/// ingest-ahead cap (see `tests/session.rs`).
pub struct SiteSession<'kb> {
    kb: &'kb Kb,
    cfg: CeresConfig,
    mode: AnnotationMode,
    rt: Runtime,
    stream: StreamMap<'kb, IngestBatch, IngestBatchResult>,
    /// Pages accepted but not yet submitted — the micro-batch being
    /// filled. Flushed every `batch_size` pages and at drain.
    pending: Vec<IngestItem>,
    /// Pages per parse micro-batch (see `SiteSessionBuilder::build`).
    batch_size: usize,
    /// Pages inside submitted, not-yet-absorbed batches (the stream
    /// counts items = batches; ingest accounting needs pages).
    in_flight_pages: usize,
    views: Vec<PageView>,
    /// Quarantine ledger of the fault-isolated ingest path (`pages_ok` is
    /// finalized by `finish_training`).
    health: SessionHealth,
    /// Ids ingested so far (both paths record; only `try_push_page`
    /// rejects duplicates).
    seen_ids: std::collections::HashSet<String>,
    /// Time this session has spent blocked on parsing (inside `push_page`
    /// and the final drain) — the streaming pipeline's visible parse cost;
    /// parse work overlapped with the caller's fetch loop is free and
    /// deliberately not charged here.
    parse_ms: f64,
    /// Pool-job counter at open, so the parse stage can report how many
    /// pool jobs ingest dispatched (ingest fully precedes training).
    jobs_at_open: u64,
}

impl<'kb> SiteSession<'kb> {
    /// Start building a session against `kb`.
    pub fn builder(kb: &Kb) -> SiteSessionBuilder<'_> {
        SiteSessionBuilder {
            kb,
            cfg: CeresConfig::default(),
            mode: AnnotationMode::Full,
            ingest_ahead: None,
        }
    }

    /// Ingest one `(page id, html)` pair. Parsing is handed to the worker
    /// pool and this call returns as soon as the reorder buffer has room —
    /// fetch the next page while this one parses.
    ///
    /// This is the **fail-fast** path: no guards, no quarantine, and a
    /// parse panic unwinds out of the session (it signals a bug, not a bad
    /// page). Use [`SiteSession::try_push_page`] for hostile input.
    pub fn push_page(&mut self, id: impl Into<String>, html: impl Into<String>) {
        let id = id.into();
        self.seen_ids.insert(id.clone());
        self.push_item((id, html.into(), false));
    }

    /// Fault-isolated [`SiteSession::push_page`]: vet the page against the
    /// session's [`GuardConfig`] and **quarantine** it on violation
    /// instead of feeding it to training.
    ///
    /// Synchronously checkable refusals (duplicate id, oversized HTML)
    /// are returned here *and* recorded in the ledger; parse-dependent
    /// ones (empty DOM, excessive depth, a contained parse panic) are
    /// discovered when the page's parse job completes and appear only in
    /// [`SiteSession::health`]. `Ok(())` therefore means "accepted for
    /// parsing", not "will reach training".
    pub fn try_push_page(
        &mut self,
        id: impl Into<String>,
        html: impl Into<String>,
    ) -> Result<(), PageError> {
        let id = id.into();
        let html = html.into();
        if self.seen_ids.contains(&id) {
            let why = PageError::DuplicateId { id: id.clone() };
            self.health.note_quarantined(id, why.clone());
            return Err(why);
        }
        if html.len() > self.cfg.guards.max_page_bytes {
            let why = PageError::OversizedPage {
                bytes: html.len(),
                limit: self.cfg.guards.max_page_bytes,
            };
            self.seen_ids.insert(id.clone());
            self.health.note_quarantined(id, why.clone());
            return Err(why);
        }
        self.seen_ids.insert(id.clone());
        self.push_item((id, html, true));
        Ok(())
    }

    fn push_item(&mut self, item: IngestItem) {
        // lint: allow(CL002) reason="profiling channel only: parse_ms feeds the RunStats display and never touches the byte-identical pipeline output"
        let t0 = std::time::Instant::now();
        self.pending.push(item);
        if self.pending.len() >= self.batch_size {
            self.flush_pending();
        }
        self.parse_ms += t0.elapsed().as_secs_f64() * 1e3;
    }

    /// Submit the micro-batch being filled (no-op when empty). Batches
    /// enter the stream in push order and the stream preserves item
    /// order, so absorption order equals page push order — the byte-
    /// identity contract is untouched by batching.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        self.in_flight_pages += batch.len();
        if let Some(results) = self.stream.push(batch) {
            self.absorb_batch(results);
        }
    }

    fn absorb_batch(&mut self, results: IngestBatchResult) {
        self.in_flight_pages -= results.len();
        for result in results {
            self.absorb(result);
        }
    }

    fn absorb(&mut self, result: IngestResult) {
        match result {
            Ok(view) => self.views.push(view),
            Err((id, why)) => self.health.note_quarantined(id, why),
        }
    }

    /// Ingest every page of an iterator (a convenience loop over
    /// [`SiteSession::push_page`] — the iterator may be lazy, e.g. a
    /// fetcher or archive reader, and parsing overlaps its `next()`).
    pub fn ingest(&mut self, pages: impl IntoIterator<Item = (String, String)>) {
        for (id, html) in pages {
            self.push_page(id, html);
        }
    }

    /// Fault-isolated [`SiteSession::ingest`]: every page goes through
    /// [`SiteSession::try_push_page`]; bad pages are quarantined (see
    /// [`SiteSession::health`]) and ingest continues — one poison page
    /// never aborts a crawl.
    pub fn try_ingest(&mut self, pages: impl IntoIterator<Item = (String, String)>) {
        for (id, html) in pages {
            let _ = self.try_push_page(id, html);
        }
    }

    /// The session's health ledger so far. `pages_ok` stays 0 until
    /// [`SiteSession::finish_training`] (pages still in flight can yet be
    /// quarantined); the quarantine entries are live.
    pub fn health(&self) -> &SessionHealth {
        &self.health
    }

    /// Pages ingested so far (parsed, in a submitted batch, or waiting in
    /// the batch being filled).
    pub fn pages_ingested(&self) -> usize {
        self.views.len() + self.in_flight_pages + self.pending.len()
    }

    /// The session's resolved runtime (thread count etc.).
    pub fn runtime(&self) -> Runtime {
        self.rt
    }

    /// Close ingest and run the training side of the pipeline — Cluster →
    /// {Topic ▸ Annotate} → Plan → Train — freezing per-cluster models and
    /// the template signatures that let the returned [`TrainedSite`]
    /// place pages it has never seen.
    pub fn finish_training(mut self) -> TrainedSite<'kb> {
        // lint: allow(CL002) reason="profiling channel only: parse_ms feeds the RunStats display and never touches the byte-identical pipeline output"
        let t0 = std::time::Instant::now();
        self.flush_pending();
        let drained = self.stream.drain();
        for results in drained {
            self.absorb_batch(results);
        }
        self.parse_ms += t0.elapsed().as_secs_f64() * 1e3;
        let parse = StageTime {
            ms: self.parse_ms,
            pool_jobs: pool_jobs_now().saturating_sub(self.jobs_at_open),
        };
        let mut core = train_views_on(&self.rt, self.kb, &self.views, &self.cfg, self.mode);
        core.profile.parse = parse;
        self.health.pages_ok = self.views.len();
        TrainedSite {
            kb: self.kb,
            rt: self.rt,
            core,
            train_views: self.views,
            health: self.health,
            guards: self.cfg.guards,
            drift: self.cfg.drift,
        }
    }
}

/// The frozen serve-phase artifact: per-cluster models plus template
/// signatures. Every method takes `&self` and all state is immutable, so
/// a `TrainedSite` can be shared by reference across any number of
/// threads, each extracting from new pages concurrently — train once,
/// extract many, no re-training ever.
pub struct TrainedSite<'kb> {
    kb: &'kb Kb,
    rt: Runtime,
    core: TrainedCore,
    train_views: Vec<PageView>,
    /// Ingest-side health ledger, carried beside the stats — outside the
    /// equality contract and the artifact codec (empty after `load`).
    health: SessionHealth,
    /// Guards the fault-isolated serve path applies (defaults after
    /// `load`; see [`TrainedSite::set_guards`]). Not serialized: limits
    /// describe the serving process, not the trained model.
    guards: GuardConfig,
    /// Drift thresholds [`TrainedSite::drift_watchdog`] hands out
    /// (defaults after `load`). Not serialized, same reason.
    drift: DriftConfig,
}

impl<'kb> TrainedSite<'kb> {
    /// Extract from one page **not seen at train time**: parse it, assign
    /// it to the best-matching template cluster, and apply that cluster's
    /// model. Pages matching no trained template yield no extractions.
    pub fn extract_page(&self, id: &str, html: &str) -> Vec<Extraction> {
        self.core.extract_one(&PageView::build(id, html, self.kb))
    }

    /// [`TrainedSite::extract_page`] over a pre-built view.
    pub fn extract_view(&self, view: &PageView) -> Vec<Extraction> {
        self.core.extract_one(view)
    }

    /// Extract from a batch of unseen pages: parse + assign + extract,
    /// one task per page on this site's runtime, results merged in page
    /// order (byte-identical at every thread count).
    pub fn extract_batch(&self, pages: &[(String, String)]) -> Vec<Extraction> {
        self.core.extract_pages_on(&self.rt, self.kb, pages)
    }

    /// [`TrainedSite::extract_batch`] over pre-built views.
    pub fn extract_views(&self, views: &[PageView]) -> Vec<Extraction> {
        self.core.extract_views_on(&self.rt, views)
    }

    /// Outcome-typed [`TrainedSite::extract_page`]: vet the page against
    /// this site's [`GuardConfig`], contain any panic, and report what
    /// happened per page instead of flattening everything into "no
    /// extractions". See [`ExtractOutcome`].
    pub fn try_extract_page(&self, id: &str, html: &str) -> ExtractOutcome {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.vet_and_extract(id, html)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => ExtractOutcome::Failed(PageError::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Outcome-typed [`TrainedSite::extract_batch`]: one
    /// [`ExtractOutcome`] per input page, in input order, at every thread
    /// count. Runs on the runtime's panic-isolated map, so one poison page
    /// becomes [`ExtractOutcome::Failed`]`(`[`PageError::Panicked`]`)` in
    /// its slot while every other page is still served; on clean input the
    /// `Ok` outcomes concatenate to exactly what
    /// [`TrainedSite::extract_batch`] returns.
    ///
    /// Feed the returned outcomes to a [`DriftWatchdog`] to watch for
    /// template drift.
    pub fn try_extract_batch(&self, pages: &[(String, String)]) -> Vec<ExtractOutcome> {
        self.rt
            .par_map_isolated(pages, |(id, html)| self.vet_and_extract(id, html))
            .into_iter()
            .map(|slot| match slot {
                Ok(outcome) => outcome,
                Err(fault) => ExtractOutcome::Failed(PageError::Panicked {
                    message: fault.message().to_string(),
                }),
            })
            .collect()
    }

    fn vet_and_extract(&self, id: &str, html: &str) -> ExtractOutcome {
        match PageView::try_build(id, html, self.kb, &self.guards) {
            Ok(view) => self.core.try_extract_one(&view),
            Err(why) => ExtractOutcome::Failed(why),
        }
    }

    /// The ingest-side health ledger of the session that trained this
    /// site (empty on a site loaded from an artifact — health describes a
    /// process, not the model, and never crosses the codec). Serve-side
    /// assign stats merge in via [`SessionHealth::absorb_watchdog`] on
    /// [`TrainedSite::health_mut`].
    pub fn health(&self) -> &SessionHealth {
        &self.health
    }

    /// Mutable access to the health ledger (merging watchdog stats,
    /// resetting between reporting windows).
    pub fn health_mut(&mut self) -> &mut SessionHealth {
        &mut self.health
    }

    /// A fresh [`DriftWatchdog`] configured with this site's
    /// [`DriftConfig`] — one per serving loop; the site itself stays
    /// immutable and thread-shareable.
    pub fn drift_watchdog(&self) -> DriftWatchdog {
        DriftWatchdog::new(self.drift.clone())
    }

    /// The guards [`TrainedSite::try_extract_batch`] applies.
    pub fn guards(&self) -> &GuardConfig {
        &self.guards
    }

    /// Override the serve-path guards (e.g. after [`TrainedSite::load`],
    /// which starts from [`GuardConfig::default`] — guard limits are an
    /// operational choice and deliberately not part of the artifact).
    pub fn set_guards(&mut self, guards: GuardConfig) {
        self.guards = guards;
    }

    /// Override the drift thresholds [`TrainedSite::drift_watchdog`] uses.
    pub fn set_drift(&mut self, drift: DriftConfig) {
        self.drift = drift;
    }

    /// Extract from the training pages themselves (the CommonCrawl
    /// whole-site protocol) using their recorded cluster membership.
    /// Returns nothing after [`TrainedSite::take_training_views`].
    pub fn extract_training_pages(&self) -> Vec<Extraction> {
        if self.train_views.is_empty() {
            return Vec::new();
        }
        self.core.extract_members_on(&self.rt, &self.train_views)
    }

    /// Release the parsed training pages, returning them to the caller
    /// (drop the result to free the memory). A long-lived serving
    /// artifact only needs the models and template signatures; the
    /// training views — the whole parsed corpus — are kept solely for
    /// [`TrainedSite::extract_training_pages`], which yields nothing once
    /// they are taken. Serving new pages is unaffected.
    pub fn take_training_views(&mut self) -> Vec<PageView> {
        std::mem::take(&mut self.train_views)
    }

    /// Which template cluster `view` would be served by, if any (an index
    /// into the training clustering, largest cluster first).
    pub fn assign(&self, view: &PageView) -> Option<usize> {
        self.core.clustering.assign(view)
    }

    /// Whether cluster `ci` (as returned by [`TrainedSite::assign`])
    /// carries a trained model.
    pub fn cluster_is_trained(&self, ci: usize) -> bool {
        self.core
            .plan_of_cluster
            .get(ci)
            .copied()
            .flatten()
            .is_some_and(|pi| self.core.models[pi].is_some())
    }

    /// Training-side statistics (`n_extraction_pages` is 0 until a
    /// [`SiteRun`] is assembled by [`TrainedSite::into_site_run`]).
    pub fn stats(&self) -> &SiteRunStats {
        &self.core.stats
    }

    /// Per-stage wall times of the training run that produced this site
    /// (`extract` is zero here — extraction happens after training; see
    /// [`SiteRun::profile`]). All-zero on a site loaded from an artifact:
    /// wall times are observations about a past process, not part of the
    /// model, so they are never serialized.
    pub fn profile(&self) -> &StageProfile {
        &self.core.profile
    }

    /// Duplicate-folding totals of the Train stage that produced this site
    /// (summed over per-cluster models). Zeros on a site loaded from an
    /// artifact: like wall times, folding counts describe a past training
    /// process and are never serialized — see [`TrainFoldStats`].
    pub fn fold_stats(&self) -> &TrainFoldStats {
        &self.core.fold
    }

    /// Topic decisions recorded during training (Table 7 input).
    pub fn topic_records(&self) -> &[TopicRecord] {
        &self.core.topic_records
    }

    /// Relation annotations recorded during training (Table 6 input).
    pub fn annotation_records(&self) -> &[AnnotationRecord] {
        &self.core.annotation_records
    }

    /// Number of pages the site was trained on.
    pub fn n_training_pages(&self) -> usize {
        self.train_views.len()
    }

    /// The KB this site was trained against.
    pub fn kb(&self) -> &'kb Kb {
        self.kb
    }

    /// Assemble a batch-style [`SiteRun`] from this site's training
    /// records plus `extractions` produced by the serve phase. The run
    /// carries this site's ingest/serve health ledger beside the stats.
    pub fn into_site_run(self, extractions: Vec<Extraction>, n_extraction_pages: usize) -> SiteRun {
        let health = self.health.clone();
        let mut run = self.core.into_site_run(extractions, n_extraction_pages);
        run.health = health;
        run
    }

    /// Serialize this trained site into `sink` as a versioned, checksummed
    /// artifact (see [`ARTIFACT_MAGIC`]/[`ARTIFACT_VERSION`]). Everything
    /// the serve phase needs crosses the boundary — per-cluster models,
    /// feature spaces, class maps, template signatures, extract config —
    /// plus the training-side stats and records; the parsed training views
    /// deliberately do **not** (a serving artifact re-parses nothing).
    ///
    /// A site loaded from these bytes extracts **byte-identically** to
    /// `self` on any page, including `f64` confidences (floats are stored
    /// as exact bit patterns).
    pub fn save(&self, sink: &mut impl Write) -> Result<(), StoreError> {
        let mut aw = ArtifactWriter::new(sink, ARTIFACT_MAGIC, ARTIFACT_VERSION)?;
        aw.section(SEC_KB.0, |w| {
            w.put_varint(kb_fingerprint(self.kb));
            w.put_usize(self.kb.n_values());
            w.put_usize(self.kb.n_triples());
        })?;
        aw.section(SEC_CONFIG.0, |w| w.put(&self.core.extract_cfg))?;
        aw.section(SEC_CLUSTERING.0, |w| w.put(&self.core.clustering))?;
        aw.section(SEC_PLANS.0, |w| {
            w.put(&self.core.plans);
            w.put(&self.core.plan_of_cluster);
        })?;
        aw.section(SEC_MODELS.0, |w| w.put(&self.core.models))?;
        aw.section(SEC_STATS.0, |w| w.put(&self.core.stats))?;
        aw.section(SEC_RECORDS.0, |w| {
            w.put(&self.core.topic_records);
            w.put(&self.core.annotation_records);
        })?;
        aw.finish()
    }

    /// [`TrainedSite::save`] into a fresh byte vector.
    pub fn to_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let mut bytes = Vec::new();
        self.save(&mut bytes)?;
        Ok(bytes)
    }

    /// Load a trained site saved by [`TrainedSite::save`] — in this
    /// process or any other. The serve runtime is resolved from the
    /// environment ([`Runtime::from_env`]); use [`TrainedSite::load_on`]
    /// to pin it.
    ///
    /// `kb` must be the knowledge base the site was trained against (the
    /// artifact's predicate ids and template signatures only mean anything
    /// relative to it); a fingerprint check refuses mismatches with a
    /// descriptive error. Corrupted, truncated, or future-versioned bytes
    /// fail with a typed [`StoreError`] — never a panic.
    pub fn load(kb: &Kb, source: impl Read) -> Result<TrainedSite<'_>, StoreError> {
        TrainedSite::load_on(kb, Runtime::from_env(), source)
    }

    /// [`TrainedSite::load`] serving on a caller-chosen [`Runtime`].
    pub fn load_on(kb: &Kb, rt: Runtime, source: impl Read) -> Result<TrainedSite<'_>, StoreError> {
        let mut ar = ArtifactReader::new(source, ARTIFACT_MAGIC, ARTIFACT_VERSION)?;

        let payload = ar.section(SEC_KB.0, SEC_KB.1)?;
        let mut r = Reader::new(&payload);
        let fingerprint = r.get_varint(SEC_KB.1)?;
        let n_values = r.get_usize(SEC_KB.1)?;
        let n_triples = r.get_usize(SEC_KB.1)?;
        r.finish(SEC_KB.1)?;
        if fingerprint != kb_fingerprint(kb) {
            return Err(StoreError::Invalid {
                context: "kb fingerprint",
                detail: format!(
                    "artifact was trained against a different KB \
                     ({n_values} values / {n_triples} triples at save time; \
                      this KB has {} / {})",
                    kb.n_values(),
                    kb.n_triples()
                ),
            });
        }

        let payload = ar.section(SEC_CONFIG.0, SEC_CONFIG.1)?;
        let mut r = Reader::new(&payload);
        let extract_cfg: ExtractConfig = r.get()?;
        r.finish(SEC_CONFIG.1)?;

        let payload = ar.section(SEC_CLUSTERING.0, SEC_CLUSTERING.1)?;
        let mut r = Reader::new(&payload);
        let clustering: Clustering = r.get()?;
        r.finish(SEC_CLUSTERING.1)?;

        let payload = ar.section(SEC_PLANS.0, SEC_PLANS.1)?;
        let mut r = Reader::new(&payload);
        let plans: Vec<Vec<usize>> = r.get()?;
        let plan_of_cluster: Vec<Option<usize>> = r.get()?;
        r.finish(SEC_PLANS.1)?;

        let payload = ar.section(SEC_MODELS.0, SEC_MODELS.1)?;
        let mut r = Reader::new(&payload);
        let models: Vec<Option<ClusterModel>> = r.get()?;
        r.finish(SEC_MODELS.1)?;

        let payload = ar.section(SEC_STATS.0, SEC_STATS.1)?;
        let mut r = Reader::new(&payload);
        let stats: SiteRunStats = r.get()?;
        r.finish(SEC_STATS.1)?;

        let payload = ar.section(SEC_RECORDS.0, SEC_RECORDS.1)?;
        let mut r = Reader::new(&payload);
        let topic_records: Vec<TopicRecord> = r.get()?;
        let annotation_records: Vec<AnnotationRecord> = r.get()?;
        r.finish(SEC_RECORDS.1)?;

        // Cross-section consistency: every index the serve path follows
        // (assign → plan_of_cluster → models) must stay in bounds, so a
        // tampered artifact fails here instead of panicking mid-extract.
        if plan_of_cluster.len() != clustering.n_clusters() {
            return Err(StoreError::Invalid {
                context: "plans",
                detail: format!(
                    "plan table covers {} clusters, clustering has {}",
                    plan_of_cluster.len(),
                    clustering.n_clusters()
                ),
            });
        }
        if models.len() != plans.len() {
            return Err(StoreError::Invalid {
                context: "models",
                detail: format!("{} models for {} plans", models.len(), plans.len()),
            });
        }
        if let Some(bad) = plan_of_cluster.iter().flatten().find(|&&pi| pi >= plans.len()) {
            return Err(StoreError::Invalid {
                context: "plans",
                detail: format!("cluster maps to plan {bad} of {}", plans.len()),
            });
        }
        // Predicate ids inside the models only mean anything relative to
        // this KB's ontology — a checksum can be recomputed by a tamperer,
        // so bound them here rather than panicking in `pred_name` later.
        let n_preds = kb.ontology().n_preds();
        for cm in models.iter().flatten() {
            if let Some(bad) = cm.class_map.preds().iter().find(|p| usize::from(p.0) >= n_preds) {
                return Err(StoreError::Invalid {
                    context: "class map",
                    detail: format!("predicate id {bad} out of range (KB has {n_preds})"),
                });
            }
            // Training always sizes the model off the feature space and
            // class map (`Dataset::new(class_map.n_classes(), dict.len())`),
            // so inequality here means a tampered models section — which
            // would otherwise serve silently wrong confidences (a feature
            // index walking into the intercept slot), not an error.
            if cm.space.dict.len() != cm.model.n_features() {
                return Err(StoreError::Invalid {
                    context: "cluster model",
                    detail: format!(
                        "feature dictionary has {} names but the model expects {} features",
                        cm.space.dict.len(),
                        cm.model.n_features()
                    ),
                });
            }
            if cm.class_map.n_classes() != cm.model.n_classes() {
                return Err(StoreError::Invalid {
                    context: "cluster model",
                    detail: format!(
                        "class map has {} classes but the model expects {}",
                        cm.class_map.n_classes(),
                        cm.model.n_classes()
                    ),
                });
            }
        }

        Ok(TrainedSite {
            kb,
            rt,
            core: TrainedCore {
                clustering,
                plans,
                plan_of_cluster,
                models,
                stats,
                topic_records,
                annotation_records,
                extract_cfg,
                // Training ran in another process; its wall times and
                // folding counts did not cross the artifact boundary
                // (deliberately — see `StageProfile` / `TrainFoldStats`).
                profile: StageProfile::default(),
                fold: TrainFoldStats::default(),
            },
            // The parsed training corpus never crosses the process
            // boundary: extract_training_pages() on a loaded site is empty.
            train_views: Vec::new(),
            // Health describes the training process, guards and drift
            // thresholds the serving process; none are model state, so
            // none cross the artifact boundary (like StageProfile).
            health: SessionHealth::default(),
            guards: GuardConfig::default(),
            drift: DriftConfig::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    type Pages = Vec<(String, String)>;

    /// A two-template site: detail pages (director + cast) and review
    /// pages (three critics), each template backed by its own predicates.
    fn two_template_world() -> (Kb, Pages, Pages) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let cast_p = o.register_pred("cast", film, true);
        let reviewed = o.register_pred("reviewedBy", film, true);
        let mut b = KbBuilder::new(o);
        for i in 0..8 {
            let f = b.entity(film, &format!("Great Movie {i}"));
            let d = b.entity(person, &format!("Director Person {i}"));
            b.triple(f, directed, d);
            for j in 0..3 {
                let a = b.entity(person, &format!("Star {i} {j}"));
                b.triple(f, cast_p, a);
                let r = b.entity(person, &format!("Critic Writer {i} {j}"));
                b.triple(f, reviewed, r);
            }
        }
        let kb = b.build();

        let detail = |i: usize| {
            format!(
                "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
                 <h1 class=title>Great Movie {i}</h1>\
                 <div class=info><div class=row><span class=label>Director:</span>\
                 <span class=val>Director Person {i}</span></div></div>\
                 <div class=cast><h2>Cast</h2><ul>\
                 <li>Star {i} 0</li><li>Star {i} 1</li><li>Star {i} 2</li></ul></div>\
                 <div class=footer><span>terms</span><span>privacy</span><span>contact</span>\
                 <span>about</span><span>jobs</span><span>press</span></div></body></html>"
            )
        };
        let review = |i: usize| {
            format!(
                "<html><body><table class=rev><tr><th class=movie>Great Movie {i}</th></tr>\
                 <tr><td class=who>Critic Writer {i} 0</td><td class=when>2019</td></tr>\
                 <tr><td class=who>Critic Writer {i} 1</td><td class=when>2020</td></tr>\
                 <tr><td class=who>Critic Writer {i} 2</td><td class=when>2021</td></tr>\
                 <tr><td>blurb a</td><td>blurb b</td></tr>\
                 <tr><td>blurb c</td><td>blurb d</td></tr></table></body></html>"
            )
        };
        let details: Vec<(String, String)> =
            (0..8).map(|i| (format!("d-{i}"), detail(i))).collect();
        let reviews: Vec<(String, String)> =
            (0..8).map(|i| (format!("r-{i}"), review(i))).collect();
        (kb, details, reviews)
    }

    #[test]
    fn session_lifecycle_trains_and_serves_unseen_pages() {
        let (kb, details, reviews) = two_template_world();
        let mut session = SiteSession::builder(&kb)
            .config(CeresConfig::new(11))
            .mode(AnnotationMode::Full)
            .build();
        for (id, html) in details.iter().chain(reviews.iter()) {
            session.push_page(id.clone(), html.clone());
        }
        assert_eq!(session.pages_ingested(), 16);
        let trained = session.finish_training();
        assert!(trained.stats().trained, "both templates must train: {:?}", trained.stats());

        // An unseen detail page about a film the KB has never heard of.
        let ex = trained.extract_page(
            "d-new",
            "<html><body><div class=nav><a>Home</a><a>Help</a></div>\
             <h1 class=title>Totally Fresh Film</h1>\
             <div class=info><div class=row><span class=label>Director:</span>\
             <span class=val>Fresh Face</span></div></div>\
             <div class=cast><h2>Cast</h2><ul>\
             <li>New Star 0</li><li>New Star 1</li><li>New Star 2</li></ul></div>\
             <div class=footer><span>terms</span><span>privacy</span><span>contact</span>\
             <span>about</span><span>jobs</span><span>press</span></div></body></html>",
        );
        assert!(
            ex.iter().any(|e| e.object == "Fresh Face"),
            "detail model must extract the director: {ex:?}"
        );
    }

    #[test]
    fn unseen_pages_are_served_by_their_own_templates_model() {
        let (kb, details, reviews) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        session.ingest(reviews.iter().cloned());
        let trained = session.finish_training();

        let detail_view = PageView::build("d-x", &details[3].1, &kb);
        let review_view = PageView::build("r-x", &reviews[3].1, &kb);
        let cd = trained.assign(&detail_view).expect("detail page must match a cluster");
        let cr = trained.assign(&review_view).expect("review page must match a cluster");
        assert_ne!(cd, cr, "the two templates must map to different clusters");
        assert!(trained.cluster_is_trained(cd));
        assert!(trained.cluster_is_trained(cr));
    }

    #[test]
    fn trained_site_serves_many_threads_concurrently() {
        let (kb, details, reviews) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        session.ingest(reviews.iter().cloned());
        let trained = session.finish_training();

        let reference: Vec<Vec<Extraction>> =
            details.iter().map(|(id, html)| trained.extract_page(id, html)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for ((id, html), expect) in details.iter().zip(&reference) {
                        assert_eq!(&trained.extract_page(id, html), expect);
                    }
                });
            }
        });
    }

    #[test]
    fn taking_training_views_frees_serving_artifacts_without_breaking_serve() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let mut trained = session.finish_training();
        let before = trained.extract_page(&details[0].0, &details[0].1);

        let views = trained.take_training_views();
        assert_eq!(views.len(), 8, "all parsed training pages are handed back");
        assert_eq!(trained.n_training_pages(), 0);
        assert!(trained.extract_training_pages().is_empty());
        // Serving unseen pages is unaffected by shedding the views.
        assert_eq!(trained.extract_page(&details[0].0, &details[0].1), before);
    }

    #[test]
    fn saved_and_loaded_site_serves_identically() {
        let (kb, details, reviews) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        session.ingest(reviews.iter().cloned());
        let trained = session.finish_training();

        let bytes = trained.to_bytes().expect("save");
        let loaded = TrainedSite::load(&kb, &bytes[..]).expect("load");

        // Training-side state crossed the boundary…
        assert_eq!(loaded.stats(), trained.stats());
        assert_eq!(loaded.topic_records(), trained.topic_records());
        assert_eq!(loaded.annotation_records(), trained.annotation_records());
        // …the parsed corpus did not.
        assert_eq!(loaded.n_training_pages(), 0);
        assert!(loaded.extract_training_pages().is_empty());

        // Serving is byte-identical, unseen pages and batches alike.
        for (id, html) in details.iter().chain(reviews.iter()) {
            assert_eq!(loaded.extract_page(id, html), trained.extract_page(id, html));
        }
        assert_eq!(loaded.extract_batch(&details), trained.extract_batch(&details));
    }

    #[test]
    fn save_is_deterministic() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let trained = session.finish_training();
        assert_eq!(trained.to_bytes().unwrap(), trained.to_bytes().unwrap());
    }

    #[test]
    fn load_rejects_the_wrong_kb() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let bytes = session.finish_training().to_bytes().unwrap();

        let other_kb = {
            let mut o = Ontology::new();
            let film = o.register_type("Film");
            o.register_pred("somethingElse", film, false);
            KbBuilder::new(o).build()
        };
        let Err(err) = TrainedSite::load(&other_kb, &bytes[..]) else {
            panic!("mismatched KB must be refused")
        };
        assert!(err.to_string().contains("different KB"), "{err}");
    }

    #[test]
    fn load_rejects_future_versions_and_corruption_without_panicking() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let bytes = session.finish_training().to_bytes().unwrap();

        // Bumped format version (byte 8, right after the magic).
        let mut bumped = bytes.clone();
        bumped[8] = (ARTIFACT_VERSION + 1) as u8;
        let Err(err) = TrainedSite::load(&kb, &bumped[..]) else {
            panic!("future version must be refused")
        };
        assert!(
            matches!(err, ceres_store::Error::UnsupportedVersion { .. }),
            "bumped version gave {err}"
        );
        assert!(err.to_string().contains("version"), "{err}");

        // Wrong magic.
        let mut not_ours = bytes.clone();
        not_ours[0] = b'X';
        let Err(err) = TrainedSite::load(&kb, &not_ours[..]) else {
            panic!("wrong magic must be refused")
        };
        assert!(matches!(err, ceres_store::Error::BadMagic { .. }));

        // Every truncation fails cleanly.
        for cut in [0, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrainedSite::load(&kb, &bytes[..cut]).is_err(), "cut {cut}");
        }

        // A flipped payload byte deep in the file trips a checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        assert!(TrainedSite::load(&kb, &corrupt[..]).is_err());
    }

    #[test]
    fn tampered_artifact_with_valid_checksums_cannot_smuggle_foreign_pred_ids() {
        // A tamperer can recompute FNV checksums, so section integrity
        // alone cannot stop an out-of-range PredId from reaching
        // `pred_name` (which would panic). Rewrite the models section
        // with a fully re-framed artifact whose class map points past the
        // KB's ontology and demand a typed refusal.
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let trained = session.finish_training();
        let bytes = trained.to_bytes().unwrap();

        // Pull every section payload out of the valid artifact.
        let mut ar = ArtifactReader::new(&bytes[..], ARTIFACT_MAGIC, ARTIFACT_VERSION).unwrap();
        let sections =
            [SEC_KB, SEC_CONFIG, SEC_CLUSTERING, SEC_PLANS, SEC_MODELS, SEC_STATS, SEC_RECORDS];
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for (tag, name) in sections {
            payloads.push(ar.section(tag, name).unwrap());
        }

        // Decode the models, swap in a class map whose predicate id is
        // far beyond this KB's ontology, and re-encode the section.
        let mut models: Vec<Option<ClusterModel>> =
            Reader::new(&payloads[4]).get().expect("decode models");
        let cm = models
            .iter_mut()
            .flatten()
            .next()
            .expect("the fixture trains at least one cluster model");
        let mut w = Writer::new();
        w.put_usize(1);
        w.put_varint(60_000); // PredId(60000): valid u16, foreign to the KB
        cm.class_map = Reader::new(w.as_bytes()).get().expect("craft class map");
        let mut w = Writer::new();
        w.put(&models);
        payloads[4] = w.into_bytes();

        // Re-frame the whole artifact — checksums recomputed, all valid.
        let mut tampered = Vec::new();
        let mut aw = ArtifactWriter::new(&mut tampered, ARTIFACT_MAGIC, ARTIFACT_VERSION).unwrap();
        for ((tag, _), payload) in sections.iter().zip(&payloads) {
            aw.section(*tag, |w| w.put_bytes(payload)).unwrap();
        }
        aw.finish().unwrap();

        let Err(err) = TrainedSite::load(&kb, &tampered[..]) else {
            panic!("foreign predicate id must be refused at load time");
        };
        assert!(err.to_string().contains("predicate id"), "{err}");
    }

    #[test]
    fn pages_matching_no_template_extract_nothing() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.ingest(details.iter().cloned());
        let trained = session.finish_training();
        let ex = trained.extract_page(
            "alien",
            "<html><body><form><p>a</p><p>b</p><p>c</p><p>d</p><p>e</p></form></body></html>",
        );
        assert!(ex.is_empty(), "unmatched template must yield nothing: {ex:?}");
    }

    // --- Fault isolation -------------------------------------------------

    #[test]
    fn try_push_page_refuses_duplicates_and_oversized_synchronously() {
        let (kb, _, _) = two_template_world();
        let mut cfg = CeresConfig::new(11);
        cfg.guards.max_page_bytes = 256;
        let mut session = SiteSession::builder(&kb).config(cfg).build();

        assert!(session.try_push_page("a", "<p>Director Person 0</p>").is_ok());
        assert_eq!(
            session.try_push_page("a", "<p>again</p>"),
            Err(PageError::DuplicateId { id: "a".into() })
        );
        let over = session.try_push_page("b", format!("<p>{}</p>", "x".repeat(300)));
        assert!(
            matches!(over, Err(PageError::OversizedPage { bytes, limit: 256 }) if bytes > 256),
            "{over:?}"
        );
        // Oversized ids are recorded too: re-pushing "b" is a duplicate.
        assert_eq!(
            session.try_push_page("b", "<p>tiny</p>"),
            Err(PageError::DuplicateId { id: "b".into() })
        );

        let by = session.health().quarantined_by_reason();
        assert_eq!(by.iter().find(|(k, _)| *k == "duplicate-id").unwrap().1, 2);
        assert_eq!(by.iter().find(|(k, _)| *k == "oversized").unwrap().1, 1);
        assert_eq!(session.health().pages_quarantined(), 3);
    }

    #[test]
    fn parse_dependent_faults_quarantine_at_pop_without_aborting_training() {
        let (kb, details, _) = two_template_world();
        let mut cfg = CeresConfig::new(11);
        cfg.guards.max_dom_depth = 8;
        let mut session = SiteSession::builder(&kb).config(cfg).build();
        session.try_ingest(details.iter().cloned());
        // Both violations only reveal themselves after parsing, so the
        // push succeeds and the quarantine happens at pop.
        let deep = format!("{}deep{}", "<div>".repeat(20), "</div>".repeat(20));
        assert!(session.try_push_page("deep", deep).is_ok());
        assert!(session.try_push_page("blank", "").is_ok());

        let trained = session.finish_training();
        let health = trained.health();
        assert_eq!(health.pages_ok, details.len());
        assert_eq!(health.pages_quarantined(), 2);
        let by = health.quarantined_by_reason();
        assert_eq!(by.iter().find(|(k, _)| *k == "parse-depth").unwrap().1, 1);
        assert_eq!(by.iter().find(|(k, _)| *k == "empty-dom").unwrap().1, 1);
        assert!(trained.stats().trained, "survivors must still train");
    }

    #[test]
    fn quarantine_leaves_surviving_pages_byte_identical_to_a_clean_run() {
        let (kb, details, reviews) = two_template_world();
        let train = |poison: bool| {
            let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
            for (i, (id, html)) in details.iter().chain(reviews.iter()).enumerate() {
                assert!(session.try_push_page(id.clone(), html.clone()).is_ok());
                if poison && i % 3 == 0 {
                    assert!(session.try_push_page(format!("poison-{i}"), "").is_ok());
                }
            }
            session.finish_training()
        };
        let clean = train(false);
        let poisoned = train(true);
        assert_eq!(poisoned.health().pages_ok, details.len() + reviews.len());
        assert_eq!(poisoned.health().pages_quarantined(), 6);

        let pages: Vec<(String, String)> =
            (0..4).map(|i| (format!("s-{i}"), details[i].1.clone())).collect();
        assert_eq!(poisoned.extract_batch(&pages), clean.extract_batch(&pages));
    }

    #[test]
    fn try_extract_batch_types_outcomes_and_flattens_to_the_fail_fast_batch() {
        let (kb, details, reviews) = two_template_world();
        for threads in [1usize, 2, 8] {
            let mut cfg = CeresConfig::new(11);
            cfg.threads = Some(threads);
            let mut session = SiteSession::builder(&kb).config(cfg).build();
            session.ingest(details.iter().cloned());
            session.ingest(reviews.iter().cloned());
            let mut trained = session.finish_training();

            // On clean input the Ok outcomes concatenate to exactly the
            // fail-fast batch, at every thread count.
            let pages: Vec<(String, String)> =
                (0..8).map(|i| (format!("s-{i}"), details[i].1.clone())).collect();
            let outcomes = trained.try_extract_batch(&pages);
            assert_eq!(outcomes.len(), pages.len());
            let flattened: Vec<Extraction> =
                outcomes.iter().filter_map(|o| o.extractions()).flatten().cloned().collect();
            assert_eq!(flattened, trained.extract_batch(&pages), "threads={threads}");

            // A template-less page is typed, not silently empty.
            let alien = (
                "alien".to_string(),
                "<html><body><p>nothing like this site</p></body></html>".to_string(),
            );
            match &trained.try_extract_batch(std::slice::from_ref(&alien))[0] {
                ExtractOutcome::Unassigned { best_sim } => {
                    assert!((0.0..1.0).contains(best_sim), "best_sim={best_sim}")
                }
                other => panic!("expected Unassigned, got {other:?}"),
            }

            // A guard violation fails in its own slot; neighbors still serve.
            trained.set_guards(GuardConfig { max_page_bytes: 4096, ..GuardConfig::default() });
            let mixed =
                vec![pages[0].clone(), ("huge".to_string(), "y".repeat(8192)), pages[1].clone()];
            let out = trained.try_extract_batch(&mixed);
            assert!(
                matches!(out[1], ExtractOutcome::Failed(PageError::OversizedPage { .. })),
                "{:?}",
                out[1]
            );
            assert!(matches!(out[0], ExtractOutcome::Ok(_)));
            assert!(matches!(out[2], ExtractOutcome::Ok(_)));
        }
    }

    #[test]
    fn drift_watchdog_fires_on_sustained_unassigned_rate_and_recovers() {
        let cfg = DriftConfig { window: 8, min_samples: 4, max_unassigned_rate: 0.5 };
        let mut dog = DriftWatchdog::new(cfg);
        // Below min_samples nothing fires, however bad the evidence.
        for _ in 0..3 {
            assert_eq!(dog.observe(true, Some(0.4)), DriftSignal::Healthy);
        }
        // Fourth straight miss: the window is judgeable and fully missed.
        match dog.observe(true, Some(0.4)) {
            DriftSignal::RetrainSuggested { unassigned_rate, window } => {
                assert_eq!(unassigned_rate, 1.0);
                assert_eq!(window, 4);
            }
            DriftSignal::Healthy => panic!("watchdog must fire at 4/4 unassigned"),
        }
        // A healthy stretch rolls the misses out of the window.
        for _ in 0..8 {
            dog.observe(false, None);
        }
        assert_eq!(dog.signal(), DriftSignal::Healthy);
        assert_eq!(dog.window_unassigned_rate(), 0.0);
        // Lifetime counters survive the rollover.
        assert_eq!(dog.observed(), 12);
        assert_eq!(dog.unassigned_total(), 4);
        assert!((dog.near_sim_sum() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn drift_watchdog_counts_outcomes_but_not_failures() {
        let cfg = DriftConfig { window: 4, min_samples: 2, max_unassigned_rate: 0.5 };
        let mut dog = DriftWatchdog::new(cfg);
        let outcomes = vec![
            ExtractOutcome::Ok(Vec::new()),
            ExtractOutcome::Failed(PageError::EmptyDom),
            ExtractOutcome::Unassigned { best_sim: 0.25 },
            ExtractOutcome::Unassigned { best_sim: 0.35 },
        ];
        // Failed is quarantine material, not drift evidence: 2 of the 3
        // counted pages missed, over the 0.5 threshold.
        assert!(dog.observe_batch(&outcomes).retrain_suggested());
        assert_eq!(dog.observed(), 3);
        assert_eq!(dog.unassigned_total(), 2);
        assert!((dog.near_sim_sum() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn session_health_absorbs_watchdog_stats_and_reports_rates() {
        let mut dog = DriftWatchdog::new(DriftConfig::default());
        dog.observe(false, None);
        dog.observe(true, Some(0.5));
        dog.observe(true, Some(0.3));
        let mut health = SessionHealth::default();
        health.absorb_watchdog(&dog);
        assert_eq!(health.assign_observed, 3);
        assert_eq!(health.assign_unassigned, 2);
        assert!((health.unassigned_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((health.mean_near_miss_sim() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn site_run_carries_the_session_health_ledger() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.try_ingest(details.iter().cloned());
        assert!(session.try_push_page("blank", "").is_ok());
        let trained = session.finish_training();
        let run = trained.into_site_run(Vec::new(), 0);
        assert_eq!(run.health.pages_ok, details.len());
        assert_eq!(run.health.pages_quarantined(), 1);
    }

    #[test]
    fn health_never_crosses_the_artifact_boundary() {
        let (kb, details, _) = two_template_world();
        let mut session = SiteSession::builder(&kb).config(CeresConfig::new(11)).build();
        session.try_ingest(details.iter().cloned());
        assert!(session.try_push_page("blank", "").is_ok());
        let trained = session.finish_training();
        assert_eq!(trained.health().pages_quarantined(), 1);
        let bytes = trained.to_bytes().expect("save");
        let loaded = TrainedSite::load(&kb, &bytes[..]).expect("load");
        assert_eq!(loaded.health().pages_ok, 0);
        assert_eq!(loaded.health().pages_quarantined(), 0);
    }
}
