//! VERTEX++: wrapper induction from manual annotations (§5.2).
//!
//! The Vertex algorithm \[17\] learns XPath extraction rules from a handful
//! of annotated pages; the paper's VERTEX++ re-implementation adds a richer
//! feature set. Ours learns, per label:
//!
//! * a *generalized absolute XPath* — the annotated nodes' path with
//!   wildcards at the step indices that vary across examples (this is how
//!   one rule covers a whole cast list);
//! * an optional *class filter* — when every annotated node agrees on its
//!   `class` attribute, the rule requires it (the "richer features" of the
//!   ++ variant, which keeps rules precise under index drift).
//!
//! VERTEX++ is trained on gold labels for a couple of pages per site
//! (simulating the co-author's manual annotations; the paper notes "Vertex++
//! required two pages per site").

use crate::extract::{ExtractLabel, Extraction};
use crate::page::PageView;
use ceres_dom::{NodeId, XPath};
use ceres_text::FxHashMap;

/// One manually-annotated page: `(field index, label)` pairs.
pub struct LabeledPage<'a> {
    pub page: &'a PageView,
    pub labels: Vec<(usize, ExtractLabel)>,
}

/// A learned extraction rule.
#[derive(Debug, Clone)]
pub struct VertexRule {
    pub label: ExtractLabel,
    /// Representative path; indices at `wildcards` positions are free.
    pub template: XPath,
    pub wildcards: Vec<usize>,
    /// Required `class` attribute value, when consistent across examples.
    pub class_filter: Option<String>,
    /// Number of annotated examples backing the rule.
    pub support: usize,
}

/// Learn rules from annotated pages.
pub fn learn_rules(examples: &[LabeledPage<'_>]) -> Vec<VertexRule> {
    // Group example nodes by (label, path shape).
    type Key = (ExtractLabelKey, Vec<String>);
    let mut groups: FxHashMap<Key, Vec<(XPath, Option<String>)>> = FxHashMap::default();
    for ex in examples {
        for &(fi, ref label) in &ex.labels {
            let f = &ex.page.fields[fi];
            let shape: Vec<String> = f.xpath.0.iter().map(|s| s.tag.clone()).collect();
            let class = ex.page.doc.node(f.node).attr("class").map(str::to_string);
            groups
                .entry((ExtractLabelKey::from(label), shape))
                .or_default()
                .push((f.xpath.clone(), class));
        }
    }

    let mut rules: Vec<VertexRule> = Vec::new();
    // lint: allow(CL001) reason="each group's members vec is built in example order, and the rules pushed here are fully re-sorted by (label, template) before return, so group iteration order cannot reach the output"
    for ((label_key, _shape), members) in groups {
        let template = members[0].0.clone();
        let mut wildcards: Vec<usize> = Vec::new();
        for (path, _) in &members[1..] {
            for pos in template.differing_index_positions(path) {
                if !wildcards.contains(&pos) {
                    wildcards.push(pos);
                }
            }
        }
        wildcards.sort_unstable();
        // Class filter only when unanimous and present.
        let first_class = &members[0].1;
        let class_filter = if first_class.is_some() && members.iter().all(|(_, c)| c == first_class)
        {
            first_class.clone()
        } else {
            None
        };
        rules.push(VertexRule {
            label: label_key.into(),
            template,
            wildcards,
            class_filter,
            support: members.len(),
        });
    }
    // Deterministic order: by label then template string.
    rules.sort_by(|a, b| {
        format!("{:?}", a.label)
            .cmp(&format!("{:?}", b.label))
            .then(a.template.to_string().cmp(&b.template.to_string()))
    });
    rules
}

/// Apply rules to a page; every matching text field yields an extraction
/// with confidence 1.0 (wrappers are deterministic).
pub fn apply_rules(rules: &[VertexRule], page: &PageView) -> Vec<Extraction> {
    let mut out = Vec::new();
    // Subject: the name rule's match, if any.
    let mut subject = String::new();
    for rule in rules.iter().filter(|r| r.label == ExtractLabel::Name) {
        if let Some(node) = match_template(page, rule).into_iter().next() {
            subject = page.doc.own_text(node);
            break;
        }
    }
    for rule in rules {
        for node in match_template(page, rule) {
            let Some(fi) = page.field_of_node(node) else { continue };
            let f = &page.fields[fi];
            out.push(Extraction {
                page_id: page.page_id.clone(),
                gt_id: f.gt_id,
                subject: if rule.label == ExtractLabel::Name {
                    f.text.clone()
                } else {
                    subject.clone()
                },
                label: rule.label.clone(),
                object: f.text.clone(),
                confidence: 1.0,
            });
        }
    }
    // One extraction per (label, node).
    out.sort_by(|a, b| {
        format!("{:?}", a.label)
            .cmp(&format!("{:?}", b.label))
            .then(a.gt_id.cmp(&b.gt_id))
            .then(a.object.cmp(&b.object))
    });
    out.dedup_by(|a, b| a.label == b.label && a.object == b.object && a.gt_id == b.gt_id);
    out
}

/// All nodes of `page` matching the rule's generalized path (+ filter).
fn match_template(page: &PageView, rule: &VertexRule) -> Vec<NodeId> {
    let doc = &page.doc;
    let mut frontier = vec![doc.root()];
    for (depth, step) in rule.template.0.iter().enumerate() {
        let wild = rule.wildcards.contains(&depth);
        let mut next = Vec::new();
        for node in frontier {
            let mut index = 0u32;
            for &child in &doc.node(node).children {
                if doc.node(child).tag() == Some(step.tag.as_str()) {
                    index += 1;
                    if wild || index == step.index {
                        next.push(child);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    if let Some(class) = &rule.class_filter {
        frontier.retain(|&n| doc.node(n).attr("class") == Some(class.as_str()));
    }
    frontier
}

/// Hashable stand-in for [`ExtractLabel`] (PredId is hashable, the enum
/// derives only PartialEq to stay minimal; this avoids a pub derive).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExtractLabelKey {
    Name,
    Pred(u16),
}

impl From<&ExtractLabel> for ExtractLabelKey {
    fn from(l: &ExtractLabel) -> Self {
        match l {
            ExtractLabel::Name => ExtractLabelKey::Name,
            ExtractLabel::Pred(p) => ExtractLabelKey::Pred(p.0),
        }
    }
}

impl From<ExtractLabelKey> for ExtractLabel {
    fn from(k: ExtractLabelKey) -> Self {
        match k {
            ExtractLabelKey::Name => ExtractLabel::Name,
            ExtractLabelKey::Pred(p) => ExtractLabel::Pred(ceres_kb::PredId(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{Kb, KbBuilder, Ontology, PredId};

    fn empty_kb() -> Kb {
        KbBuilder::new(Ontology::new()).build()
    }

    fn page(id: &str, n_cast: usize, kb: &Kb) -> PageView {
        let lis: String =
            (0..n_cast).map(|i| format!("<li class=cast>Person {id} {i}</li>")).collect();
        let html = format!(
            "<html><body><h1 class=title>Film {id}</h1><ul class=list>{lis}</ul></body></html>"
        );
        PageView::build(id, &html, kb)
    }

    #[test]
    fn learns_wildcard_rule_for_lists() {
        let kb = empty_kb();
        let p1 = page("a", 3, &kb);
        let p2 = page("b", 5, &kb);
        let cast = ExtractLabel::Pred(PredId(0));
        fn labeled<'a>(p: &'a PageView, cast: &ExtractLabel) -> LabeledPage<'a> {
            LabeledPage {
                page: p,
                labels: p
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(fi, f)| {
                        if f.text.starts_with("Film") {
                            (fi, ExtractLabel::Name)
                        } else {
                            (fi, cast.clone())
                        }
                    })
                    .collect(),
            }
        }
        let examples = vec![labeled(&p1, &cast), labeled(&p2, &cast)];
        let rules = learn_rules(&examples);
        assert_eq!(rules.len(), 2);
        let cast_rule = rules.iter().find(|r| r.label == cast).unwrap();
        // The list index position must be wildcarded.
        assert!(!cast_rule.wildcards.is_empty(), "{cast_rule:?}");
        assert_eq!(cast_rule.class_filter.as_deref(), Some("cast"));

        // Apply to a fresh page with a different list length.
        let p3 = page("c", 7, &kb);
        let ex = apply_rules(&rules, &p3);
        let casts = ex.iter().filter(|e| e.label == cast).count();
        assert_eq!(casts, 7);
        let name = ex.iter().find(|e| e.label == ExtractLabel::Name).unwrap();
        assert_eq!(name.object, "Film c");
        // Subject is threaded into cast extractions.
        assert!(ex.iter().filter(|e| e.label == cast).all(|e| e.subject == "Film c"));
    }

    #[test]
    fn class_filter_blocks_lookalike_nodes() {
        let kb = empty_kb();
        let html = "<html><body><h1 class=title>T</h1>\
                    <ul class=list><li class=cast>A</li><li class=other>B</li></ul></body></html>";
        let p = PageView::build("x", html, &kb);
        let cast = ExtractLabel::Pred(PredId(0));
        let fi_a = p.fields.iter().position(|f| f.text == "A").unwrap();
        let examples = vec![LabeledPage { page: &p, labels: vec![(fi_a, cast.clone())] }];
        let mut rules = learn_rules(&examples);
        // Widen the rule manually to simulate list generalization.
        for r in &mut rules {
            r.wildcards = vec![r.template.0.len() - 1];
        }
        let ex = apply_rules(&rules, &p);
        // Only the class=cast node matches, despite the wildcard.
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].object, "A");
    }
}
