//! CERES-BASELINE: the classic (pairwise) distant-supervision assumption
//! applied to the DOM setting (§5.2).
//!
//! Annotations are produced for **all pairs** of KB-matched fields on a
//! page that participate in a triple; pair features are the concatenation
//! of both nodes' features. Because there is no page-topic concept, the
//! extractor must consider all candidate pairs at extraction time too —
//! the paper found this "computationally infeasible" and had the Movie run
//! die with an out-of-memory error at 32 GB. We reproduce that behaviour
//! with an explicit pair budget: a run that exceeds it aborts with
//! `stats.oom = true` (reported as `NA`, like Table 3's footnote b).

use crate::config::CeresConfig;
use crate::extract::{ExtractLabel, Extraction};
use crate::features::{FeatureScratch, FeatureSpace};
use crate::page::PageView;
use crate::pipeline::{SiteRun, SiteRunStats};
use ceres_kb::{Kb, PredId};
use ceres_ml::{Dataset, LogReg, SparseVec};
use ceres_runtime::Runtime;
use ceres_text::FxHashSet;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Budgets for the pairwise baseline.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Abort (simulated OOM) when this many candidate pairs accumulate.
    pub max_pairs: usize,
    /// Per-page cap on KB-matched fields considered (both roles).
    pub max_matched_fields: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig { max_pairs: 2_000_000, max_matched_fields: 250 }
    }
}

/// Run the pairwise baseline on a site.
pub fn run_baseline(
    kb: &Kb,
    annotation_pages: &[(String, String)],
    extraction_pages: Option<&[(String, String)]>,
    cfg: &CeresConfig,
    bcfg: &BaselineConfig,
) -> SiteRun {
    // Parse stage on the shared runtime (same determinism contract as the
    // main pipeline: ordered merge, byte-identical at any thread count).
    let rt = Runtime::with_threads(cfg.threads);
    let ann_views: Vec<PageView> =
        rt.par_map(annotation_pages, |(id, html)| PageView::build(id, html, kb));
    let ext_views: Option<Vec<PageView>> =
        extraction_pages.map(|pages| rt.par_map(pages, |(id, html)| PageView::build(id, html, kb)));

    let mut run = SiteRun {
        stats: SiteRunStats {
            n_annotation_pages: ann_views.len(),
            n_extraction_pages: ext_views.as_ref().map_or(ann_views.len(), |v| v.len()),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xba5e);

    // --- Pairwise annotation ---
    let ann_refs: Vec<&PageView> = ann_views.iter().collect();
    let mut space = FeatureSpace::new(&ann_refs, cfg.features.clone());
    let mut positives: Vec<(usize, usize, usize, PredId)> = Vec::new(); // (page, fi, fj, pred)
    let mut negatives_pool: Vec<(usize, usize, usize)> = Vec::new();
    let mut pair_budget = 0usize;

    for (pi, page) in ann_refs.iter().enumerate() {
        let matched: Vec<usize> = page
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.matches.is_empty())
            .map(|(i, _)| i)
            .take(bcfg.max_matched_fields)
            .collect();
        pair_budget += matched.len() * matched.len();
        if pair_budget > bcfg.max_pairs {
            run.stats.oom = true;
            return run;
        }
        for &fi in &matched {
            for &fj in &matched {
                if fi == fj {
                    continue;
                }
                let mut found: Option<PredId> = None;
                'outer: for &s in &page.fields[fi].matches {
                    for &o in &page.fields[fj].matches {
                        if let Some(&pred) = kb.preds_between(s, o).first() {
                            found = Some(pred);
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some(pred) => positives.push((pi, fi, fj, pred)),
                    None => {
                        // Reservoir-ish: keep a bounded random pool.
                        if negatives_pool.len() < 200_000 {
                            negatives_pool.push((pi, fi, fj));
                        } else {
                            let k = rng.gen_range(0..negatives_pool.len());
                            negatives_pool[k] = (pi, fi, fj);
                        }
                    }
                }
            }
        }
    }
    run.stats.n_annotations = positives.len();
    run.stats.n_annotated_pages = {
        let pages: FxHashSet<usize> = positives.iter().map(|&(p, ..)| p).collect();
        pages.len()
    };
    if positives.len() < 4 {
        return run;
    }

    // --- Classes & training set ---
    let mut preds: Vec<PredId> = positives.iter().map(|&(.., p)| p).collect();
    preds.sort_unstable();
    preds.dedup();
    let class_of = |p: PredId| (preds.binary_search(&p).unwrap() + 1) as u32;

    let mut scratch = FeatureScratch::new();
    let mut rows: Vec<(SparseVec, u32)> = Vec::with_capacity(positives.len() * 4);
    for &(pi, fi, fj, pred) in &positives {
        let page = ann_refs[pi];
        let x = space.pair_features_with(
            page,
            page.fields[fi].node,
            page.fields[fj].node,
            &mut scratch,
        );
        rows.push((x, class_of(pred)));
    }
    negatives_pool.shuffle(&mut rng);
    for &(pi, fi, fj) in negatives_pool.iter().take(cfg.negative_ratio * positives.len()) {
        let page = ann_refs[pi];
        let x = space.pair_features_with(
            page,
            page.fields[fi].node,
            page.fields[fj].node,
            &mut scratch,
        );
        rows.push((x, 0));
    }
    let mut data = Dataset::new(preds.len() + 1, space.dict.len());
    for (x, y) in rows {
        data.push(x, y);
    }
    run.stats.n_train_examples = data.len();
    run.stats.n_features = data.n_features;
    run.stats.n_classes = data.n_classes;
    let (model, train_stats) = LogReg::train_on(&rt, &data, &cfg.train);
    run.fold = crate::pipeline::TrainFoldStats {
        n_examples: train_stats.n_examples,
        n_unique_rows: train_stats.n_unique_rows,
    };
    space.freeze();
    run.stats.trained = true;

    // --- Pairwise extraction (budgeted) ---
    // One score scratch for the whole loop: predictions over the O(n²)
    // candidate pairs allocate nothing.
    let mut scores = ceres_ml::ScoreScratch::new();
    let ext_refs: Vec<&PageView> = match &ext_views {
        Some(v) => v.iter().collect(),
        None => ann_views.iter().collect(),
    };
    let mut extract_budget = 0usize;
    for page in &ext_refs {
        let matched: Vec<usize> = page
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.matches.is_empty())
            .map(|(i, _)| i)
            .take(bcfg.max_matched_fields)
            .collect();
        extract_budget += matched.len() * matched.len();
        if extract_budget > bcfg.max_pairs {
            run.stats.oom = true;
            return run;
        }
        for &fi in &matched {
            for &fj in &matched {
                if fi == fj {
                    continue;
                }
                let x = space.pair_features_frozen_with(
                    page,
                    page.fields[fi].node,
                    page.fields[fj].node,
                    &mut scratch,
                );
                let (class, p) = model.predict_into(&x, &mut scores);
                if class == 0 || p < cfg.extract.threshold {
                    continue;
                }
                let pred = preds[(class - 1) as usize];
                run.extractions.push(Extraction {
                    page_id: page.page_id.clone(),
                    gt_id: page.fields[fj].gt_id,
                    subject: page.fields[fi].text.clone(),
                    label: ExtractLabel::Pred(pred),
                    object: page.fields[fj].text.clone(),
                    confidence: p,
                });
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    fn site() -> (Kb, Vec<(String, String)>) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let mut b = KbBuilder::new(o);
        for i in 0..10 {
            let f = b.entity(film, &format!("Movie Alpha {i}"));
            let p = b.entity(person, &format!("Director Beta {i}"));
            b.triple(f, directed, p);
        }
        let kb = b.build();
        let pages = (0..10)
            .map(|i| {
                (
                    format!("p{i}"),
                    format!(
                        "<html><body><h1>Movie Alpha {i}</h1>\
                         <div class=info><span class=l>Director:</span>\
                         <span class=v>Director Beta {i}</span></div>\
                         <div class=x><span>noise one</span><span>noise two</span></div>\
                         </body></html>"
                    ),
                )
            })
            .collect();
        (kb, pages)
    }

    #[test]
    fn baseline_learns_pairs() {
        let (kb, pages) = site();
        let cfg = CeresConfig::new(3);
        let run = run_baseline(&kb, &pages, None, &cfg, &BaselineConfig::default());
        assert!(run.stats.trained);
        assert!(!run.stats.oom);
        assert!(run.stats.n_annotations >= 10);
        // It extracts the director pairs it knows about.
        assert!(!run.extractions.is_empty());
    }

    #[test]
    fn tiny_pair_budget_triggers_oom() {
        let (kb, pages) = site();
        let cfg = CeresConfig::new(3);
        let bcfg = BaselineConfig { max_pairs: 3, ..Default::default() };
        let run = run_baseline(&kb, &pages, None, &cfg, &bcfg);
        assert!(run.stats.oom);
        assert!(run.extractions.is_empty());
    }
}
