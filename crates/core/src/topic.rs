//! Algorithm 1: page topic identification.
//!
//! Local step — for every KB entity mentioned on a page, score it by the
//! Jaccard similarity between the page's value set and the entity's object
//! set (Eq. 1); the argmax is the page's *candidate* topic.
//!
//! Global steps — (1) uniqueness: a candidate claimed by many pages is a
//! spurious string match and is discarded; (2) consistency: the XPaths of
//! candidate mentions are ranked site-wide, and each page's topic is
//! re-anchored to the highest-ranked path that exists on that page.
//!
//! Like annotation, this stage consumes only the per-field KB matches
//! precomputed by the batched match path in
//! [`PageView::build`](crate::page::PageView::build)
//! (`FieldInfo::matches` / `PageView::page_value_set`); it never calls
//! the matcher directly.

use crate::config::TopicConfig;
use crate::page::PageView;
use ceres_dom::XPath;
use ceres_kb::{Kb, ValueId};
use ceres_text::{jaccard, nan_lowest, FxHashMap};

/// Outcome of topic identification over one page cluster.
#[derive(Debug)]
pub struct TopicOutcome {
    /// Per page: `(topic value, field index of the topic mention)`.
    pub assignments: Vec<Option<(ValueId, usize)>>,
    /// The site-wide ranking of candidate-topic XPaths (rendered), most
    /// frequent first. Exposed for diagnostics and tests.
    pub path_ranking: Vec<(String, usize)>,
}

/// Run Algorithm 1 over `pages`.
pub fn identify_topics(pages: &[&PageView], kb: &Kb, cfg: &TopicConfig) -> TopicOutcome {
    // --- ScoreEntitiesForPage (local candidate scoring) ---
    // scores[i]: candidate entity -> Jaccard score for page i.
    let mut scores: Vec<FxHashMap<ValueId, f64>> = Vec::with_capacity(pages.len());
    let mut candidates: Vec<Option<ValueId>> = Vec::with_capacity(pages.len());
    for page in pages {
        let page_set = page.page_value_set();
        let mut p: FxHashMap<ValueId, f64> = FxHashMap::default();
        for &v in &page_set {
            if kb.is_topic_disqualified(v) {
                continue;
            }
            let object_set = kb.object_set(v);
            if object_set.is_empty() {
                continue;
            }
            let score = jaccard(&page_set, object_set);
            if score > 0.0 {
                p.insert(v, score);
            }
        }
        // Jaccard scores are finite by construction, but the argmax uses
        // the total comparator anyway: ties fall to the ValueId, so hash
        // iteration order never decides, and a NaN (if one ever appeared)
        // would lose rather than panic.
        // lint: allow(CL001) reason="max_by with a total comparator and full ValueId tiebreak picks the same entry under any iteration order"
        let best = p.iter().max_by(|a, b| nan_lowest(*a.1, *b.1).then(b.0.cmp(a.0)));
        let best = best.map(|(&v, _)| v);
        scores.push(p);
        candidates.push(best);
    }

    // --- Uniqueness filter: a candidate claimed by many pages is noise ---
    let mut claim_counts: FxHashMap<ValueId, usize> = FxHashMap::default();
    for c in candidates.iter().flatten() {
        *claim_counts.entry(*c).or_default() += 1;
    }
    let over_claimed: Vec<ValueId> = claim_counts
        .iter()
        .filter(|&(_, &n)| n >= cfg.max_pages_per_topic)
        .map(|(&v, _)| v)
        .collect();
    if !over_claimed.is_empty() {
        for (i, cand) in candidates.iter_mut().enumerate() {
            if let Some(c) = cand {
                if over_claimed.contains(c) {
                    // Fall back to the next-best non-over-claimed candidate.
                    *cand = scores[i]
                        .iter()
                        .filter(|(v, _)| !over_claimed.contains(v))
                        .max_by(|a, b| nan_lowest(*a.1, *b.1).then(b.0.cmp(a.0)))
                        .map(|(&v, _)| v);
                }
            }
        }
    }

    // --- Dominant XPath: count paths of all candidate mentions site-wide ---
    let mut path_counts: FxHashMap<String, (usize, XPath)> = FxHashMap::default();
    for (i, page) in pages.iter().enumerate() {
        let Some(c) = candidates[i] else { continue };
        for fi in page.mentions_of(c) {
            let xp = &page.fields[fi].xpath;
            let entry = path_counts.entry(xp.to_string()).or_insert_with(|| (0, xp.clone()));
            entry.0 += 1;
        }
    }
    let mut ranking: Vec<(String, usize, XPath)> =
        path_counts.into_iter().map(|(s, (n, xp))| (s, n, xp)).collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranking.truncate(cfg.max_paths_considered);

    // --- Re-anchor each page's topic to the dominant path ---
    // Strictly per Algorithm 1: the topic field is the *highest-ranked*
    // path extant on the page. If that field's text matches no scored
    // candidate (typically: the page's true topic is missing from the seed
    // KB), the page gets NO topic — falling through to lower-ranked paths
    // would assign whatever KB entity happens to sit in a list and wreck
    // precision (this is precisely what keeps Table 7's precision high).
    let mut assignments: Vec<Option<(ValueId, usize)>> = Vec::with_capacity(pages.len());
    for (i, page) in pages.iter().enumerate() {
        let mut chosen: Option<(ValueId, usize)> = None;
        for (_, _, xp) in &ranking {
            let Some(node) = page.doc.resolve_xpath(xp) else { continue };
            let Some(fi) = page.field_of_node(node) else { continue };
            // Highest-scoring qualified entity mentioned in this field.
            let best = page.fields[fi]
                .matches
                .iter()
                .filter_map(|v| scores[i].get(v).map(|&s| (*v, s)))
                .max_by(|a, b| nan_lowest(a.1, b.1).then(b.0.cmp(&a.0)));
            if let Some((v, _)) = best {
                chosen = Some((v, fi));
            }
            break; // first extant ranked path decides, hit or miss
        }
        assignments.push(chosen);
    }

    TopicOutcome {
        assignments,
        path_ranking: ranking.into_iter().map(|(s, n, _)| (s, n)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_kb::{KbBuilder, Ontology};

    /// A tiny two-film world rendered as consistent detail pages.
    fn setup() -> (Kb, Vec<PageView>) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let genre = o.register_pred("genre", film, true);
        let mut b = KbBuilder::new(o);

        let films = [
            ("Crimson River", "Ada Hill", "Drama"),
            ("Silent Empire", "Bo Cole", "Comedy"),
            ("Golden Harvest", "Cy Dean", "Drama"),
            ("Hollow Summit", "Di East", "Action"),
        ];
        for (t, d, g) in films {
            let f = b.entity(film, t);
            let p = b.entity(person, d);
            let gl = b.literal(g);
            b.triple(f, directed, p);
            b.triple(f, genre, gl);
        }
        let kb = b.build();

        let html = |t: &str, d: &str, g: &str| {
            format!(
                "<html><body><div class=nav><a>Home</a></div><h1>{t}</h1>\
                 <div class=info><span class=l>Director:</span><span>{d}</span>\
                 <span class=l>Genre:</span><span>{g}</span></div></body></html>"
            )
        };
        let pages: Vec<PageView> = films
            .iter()
            .enumerate()
            .map(|(i, (t, d, g))| PageView::build(&format!("p{i}"), &html(t, d, g), &kb))
            .collect();
        (kb, pages)
    }

    #[test]
    fn identifies_topics_on_consistent_pages() {
        let (kb, pages) = setup();
        let refs: Vec<&PageView> = pages.iter().collect();
        let out = identify_topics(&refs, &kb, &TopicConfig::default());
        for (i, a) in out.assignments.iter().enumerate() {
            let (topic, fi) = a.expect("every page has a KB topic");
            let expected = pages[i].fields.iter().find(|f| f.text.starts_with(char::is_uppercase));
            let _ = expected;
            assert_eq!(kb.canonical(topic), pages[i].doc.own_text(pages[i].fields[fi].node));
        }
        // The dominant path is the h1 (same on all pages).
        assert!(out.path_ranking[0].0.contains("h1"));
        assert_eq!(out.path_ranking[0].1, 4);
    }

    #[test]
    fn page_without_kb_topic_gets_none_or_low_anchor() {
        let (kb, mut pages) = setup();
        // A page about an unknown film that mentions a known genre only.
        let html = "<html><body><div class=nav><a>Home</a></div><h1>Unknown Movie</h1>\
                    <div class=info><span class=l>Director:</span><span>No Body</span>\
                    <span class=l>Genre:</span><span>Drama</span></div></body></html>";
        pages.push(PageView::build("unknown", html, &kb));
        let refs: Vec<&PageView> = pages.iter().collect();
        let out = identify_topics(&refs, &kb, &TopicConfig::default());
        // The unknown page must not be assigned one of the four films via
        // its h1 (its h1 text matches nothing).
        assert!(out.assignments[4].is_none());
    }

    #[test]
    fn uniqueness_filter_kills_ubiquitous_candidates() {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let genre_p = o.register_pred("genre", film, true);
        let mut b = KbBuilder::new(o);
        // "Help" is a film in the KB; the string also appears in every nav.
        let help = b.entity(film, "Help");
        let gl = b.literal("Drama");
        b.triple(help, genre_p, gl);
        let kb = b.build();

        // Six pages about unknown films, all showing "Help" in the nav and
        // "Drama" in the body: "Help" would win every page without the
        // uniqueness filter.
        let pages: Vec<PageView> = (0..6)
            .map(|i| {
                let html = format!(
                    "<html><body><div class=nav><a>Help</a></div><h1>Unknown {i}</h1>\
                     <span>Drama</span></body></html>"
                );
                PageView::build(&format!("p{i}"), &html, &kb)
            })
            .collect();
        let refs: Vec<&PageView> = pages.iter().collect();
        let out = identify_topics(&refs, &kb, &TopicConfig::default());
        assert!(
            out.assignments.iter().all(|a| a.is_none()),
            "Help must be rejected as a topic: {:?}",
            out.assignments
        );
    }
}
