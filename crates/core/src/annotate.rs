//! Algorithm 2: relation annotation.
//!
//! For every KB triple `(topic, pred, obj)` whose object is mentioned on
//! the page, pick **at most one** mention to annotate:
//!
//! * *Local evidence* (§3.2.1): prefer the mention whose exclusive ancestor
//!   contains the most objects of the same predicate — multi-valued
//!   predicates are laid out as lists, so the true mention sits among its
//!   peers (Example 3.1: Spike Lee's `acted in` mention is the one in the
//!   cast list).
//! * *Global evidence* (§3.2.2): ties fall through to site-wide
//!   agglomerative clustering of the predicate's mention XPaths — the true
//!   slot clusters tightly across pages (Example 3.2: top-of-page genres
//!   beat recommendation genres).
//!
//! The CERES-TOPIC baseline replaces all of this with "annotate every
//! mention with every applicable predicate".
//!
//! All KB string matching this stage consumes (`FieldInfo::matches`, via
//! [`PageView::mentions_of`](crate::page::PageView)) was resolved by the
//! batched, unique-text-folded match path in
//! [`PageView::build`](crate::page::PageView::build) — annotation itself
//! never calls the matcher, so it rides the batch API by construction.

use crate::config::{AnnotateConfig, XPathDistance};
use crate::page::PageView;
use crate::topic::TopicOutcome;
use ceres_kb::{Kb, PredId, ValueId};
use ceres_ml::agglomerative_cluster;
use ceres_text::{FxHashMap, FxHashSet};

/// How relations are annotated (the CERES-FULL vs CERES-TOPIC switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationMode {
    /// Algorithm 2: local + global evidence, one mention per object.
    Full,
    /// Annotate every mention of every object with every applicable
    /// predicate (the CERES-TOPIC baseline of §5.2).
    TopicOnly,
}

/// Annotations for one page that survived all filters.
#[derive(Debug, Clone)]
pub struct PageAnnotation {
    pub page_idx: usize,
    pub topic: ValueId,
    /// Field index of the topic-name mention (the NAME class example).
    pub name_field: usize,
    /// `(field index, predicate)` relation labels.
    pub labels: Vec<(usize, PredId)>,
}

/// Run relation annotation over a cluster of pages with assigned topics.
pub fn annotate_relations(
    pages: &[&PageView],
    kb: &Kb,
    topics: &TopicOutcome,
    cfg: &AnnotateConfig,
    mode: AnnotationMode,
) -> Vec<PageAnnotation> {
    // Collect per-page candidate mentions: page -> pred -> obj -> fields.
    struct PageCands {
        page_idx: usize,
        topic: ValueId,
        name_field: usize,
        /// (pred, obj, mention field indexes)
        cands: Vec<(PredId, ValueId, Vec<usize>)>,
    }

    let mut all: Vec<PageCands> = Vec::new();
    for (i, page) in pages.iter().enumerate() {
        let Some((topic, name_field)) = topics.assignments[i] else { continue };
        let mut cands: Vec<(PredId, ValueId, Vec<usize>)> = Vec::new();
        for &(pred, obj) in kb.triples_about(topic) {
            let mentions: Vec<usize> =
                page.mentions_of(obj).into_iter().filter(|&fi| fi != name_field).collect();
            if !mentions.is_empty() {
                cands.push((pred, obj, mentions));
            }
        }
        all.push(PageCands { page_idx: i, topic, name_field, cands });
    }

    // --- Global statistics per predicate ---
    #[derive(Default)]
    struct PredStats {
        occurrences: usize,   // (page, obj) pairs
        multi_mention: usize, // ... with >1 mention
        max_mentions: usize,  // k for clustering
        obj_pages: FxHashMap<ValueId, usize>,
        xpath_counts: FxHashMap<String, usize>,
    }
    let mut stats: FxHashMap<PredId, PredStats> = FxHashMap::default();
    let n_annotated_pages = all.len().max(1);
    for pc in &all {
        for (pred, obj, mentions) in &pc.cands {
            let s = stats.entry(*pred).or_default();
            s.occurrences += 1;
            if mentions.len() > 1 {
                s.multi_mention += 1;
            }
            s.max_mentions = s.max_mentions.max(mentions.len());
            *s.obj_pages.entry(*obj).or_default() += 1;
            for &fi in mentions {
                *s.xpath_counts
                    .entry(pages[pc.page_idx].fields[fi].xpath.to_string())
                    .or_default() += 1;
            }
        }
    }

    // --- Clustering per predicate (computed lazily, only when needed) ---
    // cluster_of[pred]: xpath string -> (cluster id, cluster weight)
    let mut cluster_of: FxHashMap<PredId, FxHashMap<String, u64>> = FxHashMap::default();
    let needs_clustering = |s: &PredStats| {
        let freq_dup = s.multi_mention as f64 >= cfg.freq_dup_threshold * s.occurrences as f64;
        let common_obj = s
            .obj_pages
            .values()
            .any(|&n| n as f64 > cfg.common_object_page_frac * n_annotated_pages as f64);
        freq_dup || common_obj
    };
    for (pred, s) in &stats {
        if !needs_clustering(s) || s.xpath_counts.is_empty() {
            continue;
        }
        let mut paths: Vec<(&String, &usize)> = s.xpath_counts.iter().collect();
        paths.sort_unstable_by(|a, b| a.0.cmp(b.0)); // determinism
        let items: Vec<&String> = paths.iter().map(|(p, _)| *p).collect();
        let weights: Vec<u64> = paths.iter().map(|(_, &c)| c as u64).collect();
        let k = s.max_mentions.max(2);
        let clustering = agglomerative_cluster(&items, &weights, k, |a, b| match cfg.distance {
            XPathDistance::Char => ceres_text::levenshtein(a, b) as f64,
            XPathDistance::Step => {
                let pa: ceres_dom::XPath = a.parse().unwrap_or_default();
                let pb: ceres_dom::XPath = b.parse().unwrap_or_default();
                pa.step_distance(&pb) as f64
            }
        });
        let map: FxHashMap<String, u64> = items
            .iter()
            .enumerate()
            .map(|(i, p)| ((*p).clone(), clustering.cluster_weights[clustering.assignment[i]]))
            .collect();
        cluster_of.insert(*pred, map);
    }

    // --- Per-page annotation ---
    let mut out = Vec::with_capacity(all.len());
    for pc in &all {
        let page = &pages[pc.page_idx];
        let mut labels: Vec<(usize, PredId)> = Vec::new();

        for (pred, obj, mentions) in &pc.cands {
            match mode {
                AnnotationMode::TopicOnly => {
                    for &fi in mentions {
                        labels.push((fi, *pred));
                    }
                }
                AnnotationMode::Full => {
                    let chosen = choose_mention(
                        page,
                        *pred,
                        *obj,
                        mentions,
                        &pc.cands,
                        cluster_of.get(pred),
                    );
                    if let Some(fi) = chosen {
                        labels.push((fi, *pred));
                    }
                }
            }
        }

        // Informativeness filter (§3.1.2 step 3): too few annotations →
        // the page is dropped from training entirely.
        if labels.len() < cfg.min_annotations_per_page {
            continue;
        }
        labels.sort_unstable();
        labels.dedup();
        out.push(PageAnnotation {
            page_idx: pc.page_idx,
            topic: pc.topic,
            name_field: pc.name_field,
            labels,
        });
    }
    out
}

/// Algorithm 2's per-object decision: best local mention, then clusters.
fn choose_mention(
    page: &PageView,
    pred: PredId,
    obj: ValueId,
    mentions: &[usize],
    cands: &[(PredId, ValueId, Vec<usize>)],
    clusters: Option<&FxHashMap<String, u64>>,
) -> Option<usize> {
    if mentions.len() == 1 && clusters.is_none() {
        return Some(mentions[0]);
    }

    // All mention nodes of all objects of this predicate on this page.
    let pred_mention_fields: Vec<(ValueId, usize)> = cands
        .iter()
        .filter(|(p, _, _)| *p == pred)
        .flat_map(|(_, o, ms)| ms.iter().map(move |&fi| (*o, fi)))
        .collect();

    // BestLocalMention: maximize the number of distinct objects of `pred`
    // under the mention's exclusive ancestor.
    let mention_nodes: Vec<ceres_dom::NodeId> =
        mentions.iter().map(|&fi| page.fields[fi].node).collect();
    let mut best_count = 0usize;
    let mut best: Vec<usize> = Vec::new();
    for &fi in mentions {
        let node = page.fields[fi].node;
        let ancestor = page.doc.highest_exclusive_ancestor(node, &mention_nodes);
        let mut objs_under: FxHashSet<ValueId> = FxHashSet::default();
        for &(o, ofi) in &pred_mention_fields {
            let onode = page.fields[ofi].node;
            if onode == ancestor || page.doc.is_ancestor(ancestor, onode) {
                objs_under.insert(o);
            }
        }
        let count = objs_under.len();
        match count.cmp(&best_count) {
            std::cmp::Ordering::Greater => {
                best_count = count;
                best = vec![fi];
            }
            std::cmp::Ordering::Equal => best.push(fi),
            std::cmp::Ordering::Less => {}
        }
    }
    let _ = obj;

    if best.len() == 1 {
        return Some(best[0]);
    }
    // Tie: use global clusters when the predicate qualifies, else skip
    // (annotating nothing beats annotating wrong — §3.2). A tie that even
    // the clusters cannot break (several tied mentions in equally-heavy
    // clusters, e.g. the director and writer rows when one person holds
    // both roles) is also skipped: "we may miss labeling these true
    // instances; however, this is acceptable".
    let clusters = clusters?;
    let weights: Vec<u64> = best
        .iter()
        .map(|&fi| clusters.get(&page.fields[fi].xpath.to_string()).copied().unwrap_or(0))
        .collect();
    let max_w = *weights.iter().max()?;
    let winners: Vec<usize> =
        best.iter().zip(&weights).filter(|(_, &w)| w == max_w).map(|(&fi, _)| fi).collect();
    if winners.len() == 1 {
        Some(winners[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopicConfig;
    use crate::topic::identify_topics;
    use ceres_kb::{KbBuilder, Ontology};

    /// World: films with director/writer overlap (Spike Lee case) plus a
    /// cast list, rendered consistently.
    fn setup() -> (Kb, Vec<PageView>, PredId, PredId, PredId) {
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let person = o.register_type("Person");
        let directed = o.register_pred("directedBy", film, true);
        let wrote = o.register_pred("writtenBy", film, true);
        let acted = o.register_pred("cast", film, true);
        let mut b = KbBuilder::new(o);

        // Four films; film i directed+written by person Di who also acts,
        // plus two more actors.
        let data: Vec<(String, String, [String; 2])> = (0..4)
            .map(|i| {
                (
                    format!("Film Number {i}"),
                    format!("Dual Role {i}"),
                    [format!("Actor A{i}"), format!("Actor B{i}")],
                )
            })
            .collect();
        for (t, d, actors) in &data {
            let f = b.entity(film, t);
            let p = b.entity(person, d);
            b.triple(f, directed, p);
            b.triple(f, wrote, p);
            b.triple(f, acted, p);
            for a in actors {
                let pa = b.entity(person, a);
                b.triple(f, acted, pa);
            }
        }
        let kb = b.build();

        let html = |t: &str, d: &str, actors: &[String; 2]| {
            format!(
                "<html><body><h1>{t}</h1>\
                 <div class=info>\
                 <div class=row><span class=l>Director:</span><span class=v>{d}</span></div>\
                 <div class=row><span class=l>Writer:</span><span class=v>{d}</span></div>\
                 </div>\
                 <div class=cast><h2>Cast</h2><ul>\
                 <li>{d}</li><li>{}</li><li>{}</li>\
                 </ul></div></body></html>",
                actors[0], actors[1]
            )
        };
        let pages: Vec<PageView> = data
            .iter()
            .enumerate()
            .map(|(i, (t, d, a))| PageView::build(&format!("p{i}"), &html(t, d, a), &kb))
            .collect();
        (kb, pages, directed, wrote, acted)
    }

    #[test]
    fn full_mode_places_cast_annotation_in_cast_list() {
        let (kb, pages, _directed, _wrote, acted) = setup();
        let refs: Vec<&PageView> = pages.iter().collect();
        let topics = identify_topics(&refs, &kb, &TopicConfig::default());
        let cfg = AnnotateConfig::default();
        let anns = annotate_relations(&refs, &kb, &topics, &cfg, AnnotationMode::Full);
        assert_eq!(anns.len(), 4, "all pages informative");
        for ann in &anns {
            let page = &pages[ann.page_idx];
            // The dual-role person's `cast` annotation must be the <li>
            // mention (inside the list with other cast members), not the
            // director/writer rows.
            let cast_labels: Vec<usize> =
                ann.labels.iter().filter(|(_, p)| *p == acted).map(|(fi, _)| *fi).collect();
            assert_eq!(cast_labels.len(), 3, "three cast members annotated");
            for fi in cast_labels {
                let node = page.fields[fi].node;
                let tag = page.doc.node(node).tag().unwrap();
                assert_eq!(tag, "li", "cast annotation must sit in the list");
            }
        }
    }

    #[test]
    fn full_mode_annotates_each_object_once() {
        let (kb, pages, directed, ..) = setup();
        let refs: Vec<&PageView> = pages.iter().collect();
        let topics = identify_topics(&refs, &kb, &TopicConfig::default());
        let anns = annotate_relations(
            &refs,
            &kb,
            &topics,
            &AnnotateConfig::default(),
            AnnotationMode::Full,
        );
        for ann in &anns {
            let n_directed = ann.labels.iter().filter(|(_, p)| *p == directed).count();
            assert!(n_directed <= 1, "at most one mention per (pred, obj)");
        }
    }

    #[test]
    fn topic_only_mode_annotates_every_mention() {
        let (kb, pages, ..) = setup();
        let refs: Vec<&PageView> = pages.iter().collect();
        let topics = identify_topics(&refs, &kb, &TopicConfig::default());
        let full = annotate_relations(
            &refs,
            &kb,
            &topics,
            &AnnotateConfig::default(),
            AnnotationMode::Full,
        );
        let naive = annotate_relations(
            &refs,
            &kb,
            &topics,
            &AnnotateConfig::default(),
            AnnotationMode::TopicOnly,
        );
        let count = |v: &[PageAnnotation]| v.iter().map(|a| a.labels.len()).sum::<usize>();
        assert!(
            count(&naive) > count(&full),
            "naive {} should out-annotate full {}",
            count(&naive),
            count(&full)
        );
    }

    #[test]
    fn informativeness_filter_drops_sparse_pages() {
        let (kb, mut pages, ..) = setup();
        // A page whose topic exists but shows only one fact.
        let html = "<html><body><h1>Film Number 0</h1><span>Actor A0</span></body></html>";
        pages.push(PageView::build("sparse", html, &kb));
        let refs: Vec<&PageView> = pages.iter().collect();
        let topics = identify_topics(&refs, &kb, &TopicConfig::default());
        let anns = annotate_relations(
            &refs,
            &kb,
            &topics,
            &AnnotateConfig::default(),
            AnnotationMode::Full,
        );
        assert!(anns.iter().all(|a| a.page_idx != 4), "sparse page must be filtered");
    }
}
