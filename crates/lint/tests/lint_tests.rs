//! Integration tests for ceres-lint: one positive and one negative case
//! per rule (inline sources through [`ceres_lint::rules::run_file`]),
//! pragma parsing, baseline-ratchet semantics over the committed fixture
//! tree, and a self-run over the workspace that keeps the repo
//! clean-or-baselined from inside `cargo test`.

use ceres_lint::baseline::{self, Baseline};
use ceres_lint::pragma::{scan_comment, PragmaScan};
use ceres_lint::rules::run_file;
use ceres_lint::{lexer, lint_tree, to_json};
use std::path::Path;

/// Lint `src` as if it lived at `rel`, reduced to `(line, rule)` pairs.
fn lint(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
    run_file(rel, src).into_iter().map(|v| (v.line, v.rule)).collect()
}

// --- CL001: hash iteration order ---

#[test]
fn cl001_flags_hash_iteration_feeding_order() {
    let src = r#"
use rustc_hash::FxHashMap;

pub fn keys_in_hash_order(m: &FxHashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![(6, "CL001")]);
}

#[test]
fn cl001_accepts_collect_then_sort_and_order_free_chains() {
    let src = r#"
use rustc_hash::FxHashMap;

pub fn keys_sorted(m: &FxHashMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = m.keys().copied().collect();
    out.sort_unstable();
    out
}

pub fn total(m: &FxHashMap<u32, u32>) -> u64 {
    m.values().map(|&v| v as u64).sum()
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

#[test]
fn cl001_ignores_non_hash_receivers() {
    let src = r#"
pub fn fine(v: &Vec<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in v.iter() {
        out.push(*k);
    }
    out
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

// --- CL002: wall-clock in equality-contract modules ---

#[test]
fn cl002_flags_instant_now_in_equality_modules() {
    let src = r#"
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert_eq!(lint("crates/kb/src/time_leak.rs", src), vec![(3, "CL002")]);
}

#[test]
fn cl002_exempts_the_bench_harness() {
    let src = r#"
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert_eq!(lint("crates/bench/src/main.rs", src), vec![]);
}

// --- CL003: panic family on the serve path ---

#[test]
fn cl003_flags_unwrap_on_serve_path_only() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert_eq!(lint("crates/core/src/extract.rs", src), vec![(3, "CL003")]);
    // The same code off the serve path is not CL003's business.
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

#[test]
fn cl003_skips_test_code_including_nested_cfg() {
    let src = r#"
pub fn safe() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

#[cfg(all(test, feature = "runtime-stats"))]
mod stat_tests {
    pub fn helper(v: Option<u32>) -> u32 {
        v.unwrap()
    }
}
"#;
    assert_eq!(lint("crates/core/src/extract.rs", src), vec![]);
}

#[test]
fn cl003_still_applies_under_cfg_not_test() {
    let src = r#"
#[cfg(not(test))]
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert_eq!(lint("crates/core/src/extract.rs", src), vec![(4, "CL003")]);
}

// --- CL004: slice indexing in totality modules ---

#[test]
fn cl004_flags_indexing_in_totality_modules_only() {
    let src = r#"
pub fn first(buf: &[u8]) -> u8 {
    buf[0]
}
"#;
    assert_eq!(lint("crates/store/src/lib.rs", src), vec![(3, "CL004")]);
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

#[test]
fn cl004_ignores_attributes_macros_and_array_types() {
    let src = r#"
#[derive(Debug)]
pub struct X {
    pub a: [u8; 4],
}

pub fn make() -> Vec<u8> {
    vec![1, 2, 3]
}
"#;
    assert_eq!(lint("crates/store/src/types.rs", src), vec![]);
}

// --- CL005: partial_cmp ---

#[test]
fn cl005_flags_partial_cmp_everywhere() {
    let src = r#"
pub fn cmp(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![(3, "CL005")]);
}

#[test]
fn cl005_accepts_total_cmp() {
    let src = r#"
pub fn cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

// --- CL006: unsafe hygiene ---

#[test]
fn cl006_flags_uncommented_unsafe_even_in_tests() {
    let src = r#"
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = 5u32;
        let _ = unsafe { *(&x as *const u32) };
    }
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![(3, "CL006"), (11, "CL006")]);
}

#[test]
fn cl006_accepts_safety_comments_and_doc_sections() {
    let src = r#"
pub fn read(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live reference.
    unsafe { *p }
}

/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![]);
}

// --- CL000 / CL007 / suppression ---

#[test]
fn pragma_suppresses_on_its_own_line_and_trailing() {
    let above = r#"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(CL003) reason="x is always Some by construction"
    x.unwrap()
}
"#;
    let trailing = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(CL003) reason="x is always Some by construction"
}
"#;
    assert_eq!(lint("crates/core/src/extract.rs", above), vec![]);
    assert_eq!(lint("crates/core/src/extract.rs", trailing), vec![]);
}

#[test]
fn cl000_flags_malformed_pragmas() {
    let missing_reason = "// lint: allow(CL003)\nfn f() {}\n";
    let unknown_code = "// lint: allow(CL999) reason=\"x\"\nfn f() {}\n";
    let empty_reason = "// lint: allow(CL003) reason=\"\"\nfn f() {}\n";
    for src in [missing_reason, unknown_code, empty_reason] {
        assert_eq!(lint("crates/kb/src/x.rs", src), vec![(1, "CL000")], "src: {src}");
    }
}

#[test]
fn cl007_flags_pragmas_that_suppress_nothing() {
    let src = r#"
pub fn f() -> u32 {
    // lint: allow(CL005) reason="nothing here actually violates CL005"
    42
}
"#;
    assert_eq!(lint("crates/kb/src/x.rs", src), vec![(3, "CL007")]);
}

#[test]
fn pragma_parser_accepts_and_rejects() {
    match scan_comment(0, r#" lint: allow(CL003) reason="proven non-empty above""#) {
        PragmaScan::Ok(p) => {
            assert_eq!(p.code, "CL003");
            assert_eq!(p.reason, "proven non-empty above");
        }
        other => panic!("expected Ok, got {other:?}"),
    }
    // Prose that merely mentions the syntax is not a pragma.
    assert_eq!(scan_comment(0, " use a `lint: allow(...)` pragma here"), PragmaScan::None);
    assert!(matches!(scan_comment(0, " lint: allow(CL003)"), PragmaScan::Malformed(_)));
    assert!(matches!(scan_comment(0, " lint: deny(CL003)"), PragmaScan::Malformed(_)));
}

// --- Lexer edge cases the rules lean on ---

#[test]
fn lexer_blanks_literals_and_strips_comments() {
    let lines = lexer::scan(r#"let s = "x.unwrap()"; // .expect( in comment"#);
    assert_eq!(lines[0].code, r#"let s = ""; "#);
    assert_eq!(lines[0].comment, " .expect( in comment");
}

#[test]
fn lexer_handles_raw_strings_and_nested_block_comments() {
    let lines = lexer::scan("let s = r#\"a \" b\"#;\n/* outer /* inner */ still */ code()\n");
    assert_eq!(lines[0].code, "let s = \"\";");
    assert!(lines[1].code.contains("code()"));
    assert!(lines[1].comment.contains("inner"));
}

// --- Baseline ratchet semantics over the committed fixture tree ---

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn tree_baseline(count: usize) -> Baseline {
    let mut b = Baseline::new();
    b.insert(("crates/core/src/extract.rs".to_string(), "CL003".to_string()), count);
    b
}

#[test]
fn fixture_tree_walker_skips_vendor_and_target() {
    let report = lint_tree(&fixture_root("tree"), &Baseline::new()).expect("fixture tree lints");
    // extract.rs + clean.rs scanned; vendor/ and target/ never visited.
    assert_eq!(report.files_scanned, 2);
    let got: Vec<(&str, &str)> =
        report.findings.iter().map(|f| (f.file.as_str(), f.violation.rule)).collect();
    assert_eq!(
        got,
        vec![("crates/core/src/extract.rs", "CL003"), ("crates/core/src/extract.rs", "CL003")]
    );
    assert_eq!(report.unbaselined(), 2);
}

#[test]
fn baseline_budget_absorbs_first_n_violations() {
    let report = lint_tree(&fixture_root("tree"), &tree_baseline(1)).expect("fixture tree lints");
    let baselined: Vec<bool> = report.findings.iter().map(|f| f.baselined).collect();
    assert_eq!(baselined, vec![true, false], "first hit baselined, second fails the gate");
    assert_eq!(report.unbaselined(), 1);
}

#[test]
fn exact_baseline_passes_and_reports_no_improvement() {
    let report = lint_tree(&fixture_root("tree"), &tree_baseline(2)).expect("fixture tree lints");
    assert_eq!(report.unbaselined(), 0);
    assert!(report.improvements.is_empty());
}

#[test]
fn loose_baseline_reports_the_ratchet_improvement() {
    let report = lint_tree(&fixture_root("tree"), &tree_baseline(3)).expect("fixture tree lints");
    assert_eq!(report.unbaselined(), 0);
    assert_eq!(report.improvements.len(), 1);
    assert_eq!(report.improvements[0].baselined, 3);
    assert_eq!(report.improvements[0].current, 2);
}

#[test]
fn seeded_fixture_fails_the_gate() {
    // The same tree the CI smoke drives the binary over: it must carry
    // exactly one live violation, or the smoke proves nothing.
    let report = lint_tree(&fixture_root("seeded"), &Baseline::new()).expect("seeded tree lints");
    assert_eq!(report.unbaselined(), 1);
    assert_eq!(report.findings[0].violation.rule, "CL003");
}

#[test]
fn json_output_carries_the_gate_fields() {
    let report = lint_tree(&fixture_root("seeded"), &Baseline::new()).expect("seeded tree lints");
    let json = to_json(&report);
    assert!(json.contains("\"unbaselined\": 1"));
    assert!(json.contains("\"rule\": \"CL003\""));
    assert!(json.contains("\"file\": \"crates/core/src/extract.rs\""));
}

#[test]
fn report_to_baseline_round_trips_through_the_committed_format() {
    let report = lint_tree(&fixture_root("tree"), &Baseline::new()).expect("fixture tree lints");
    let b = report.to_baseline();
    assert_eq!(baseline::parse(&baseline::render(&b)).expect("round trip"), b);
    assert_eq!(b.get(&("crates/core/src/extract.rs".into(), "CL003".into())), Some(&2));
}

// --- The gate itself, from inside `cargo test` ---

#[test]
fn workspace_is_clean_or_baselined() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .unwrap_or_else(|_| "{}".to_string());
    let baseline = baseline::parse(&baseline_src).expect("committed baseline parses");
    let report = lint_tree(&root, &baseline).expect("workspace lints");
    let offenders: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.baselined)
        .map(|f| {
            format!(
                "  {}:{} {} — {}",
                f.file, f.violation.line, f.violation.rule, f.violation.message
            )
        })
        .collect();
    assert!(
        offenders.is_empty(),
        "unbaselined lint violations (fix, or pragma with a written reason):\n{}",
        offenders.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — wrong root?",
        report.files_scanned
    );
}
