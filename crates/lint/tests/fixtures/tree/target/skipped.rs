//! Fixture: lives in a `target/` dir, which the walker must skip — the
//! violation below must never be reported. Never compiled.

pub fn bad(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}
