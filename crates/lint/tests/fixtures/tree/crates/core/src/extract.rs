//! Fixture: a serve-path module (matches the `crates/core/src/extract.rs`
//! suffix) carrying exactly two CL003 violations. Never compiled.

pub fn first_two(xs: &[u32]) -> (u32, u32) {
    let a = xs.first().copied().unwrap();
    let b = xs.get(1).copied().unwrap();
    (a, b)
}
