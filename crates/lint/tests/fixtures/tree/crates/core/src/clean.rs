//! Fixture: a violation-free file. Never compiled.

pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
