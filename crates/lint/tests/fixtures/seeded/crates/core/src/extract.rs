//! Fixture: one seeded serve-path violation. The CI smoke test points
//! `ceres-lint --root` at this tree and asserts the gate exits 1, proving
//! the binary still fails on a real violation (a gate that always passes
//! is indistinguishable from a working one). Never compiled.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
