//! # ceres-lint
//!
//! A zero-dependency invariant checker for the CERES workspace. The repo
//! has two load-bearing contracts that ordinary tests only sample:
//! *determinism* (byte-identical output at any thread count) and
//! *panic-freedom on the serve path* (PR 8's fault-isolation work). This
//! crate enforces the code patterns behind both — plus float discipline and
//! unsafe hygiene — as stable coded diagnostics over a hand-rolled lexer
//! (no syn, no proc-macro: the same no-deps ethos as `ceres-store`).
//!
//! See [`rules`] for the rule table, [`pragma`] for the suppression syntax,
//! and [`baseline`] for the ratchet format. The binary (`cargo run -p
//! ceres-lint`) walks the workspace, applies the committed baseline, and
//! exits non-zero on any unbaselined violation — the CI gate.

pub mod baseline;
pub mod lexer;
pub mod pragma;
pub mod rules;

use baseline::Baseline;
use rules::Violation;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One reported diagnostic, with its baseline disposition.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `/`-separated path relative to the lint root.
    pub file: String,
    pub violation: Violation,
    /// Inside the committed ratchet budget: reported, but not a failure.
    pub baselined: bool,
}

/// A `(file, rule)` pair whose count dropped below its baseline budget —
/// the ratchet can (and should) be rewritten tighter.
#[derive(Debug, Clone)]
pub struct Improvement {
    pub file: String,
    pub rule: String,
    pub baselined: usize,
    pub current: usize,
}

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub improvements: Vec<Improvement>,
    pub files_scanned: usize,
}

impl Report {
    /// Violations beyond the baseline budget — what fails the gate.
    pub fn unbaselined(&self) -> usize {
        self.findings.iter().filter(|f| !f.baselined).count()
    }

    /// Current counts in baseline form (for `--write-baseline`).
    pub fn to_baseline(&self) -> Baseline {
        let mut b = Baseline::new();
        for f in &self.findings {
            *b.entry((f.file.clone(), f.violation.rule.to_string())).or_insert(0) += 1;
        }
        b
    }
}

/// Walk `root` for `.rs` files (sorted, deterministic), lint each, and
/// apply `baseline`. Directories named `target`, `vendor`, `fixtures`, or
/// starting with `.` are skipped — fixture trees are linted by pointing
/// `--root` *at* them, never through them.
pub fn lint_tree(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    // Group per (file, rule) so the first `budget` hits are baselined.
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let violations = rules::run_file(&rel, &src);
        report.files_scanned += 1;
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for v in violations {
            let seen = counts.entry(v.rule).or_insert(0);
            *seen += 1;
            let budget = baseline.get(&(rel.clone(), v.rule.to_string())).copied().unwrap_or(0);
            report.findings.push(Finding {
                file: rel.clone(),
                baselined: *seen <= budget,
                violation: v,
            });
        }
        for ((bf, rule), &budget) in baseline.iter() {
            if bf == &rel {
                let current = counts.get(rule.as_str()).copied().unwrap_or(0);
                if current < budget {
                    report.improvements.push(Improvement {
                        file: rel.clone(),
                        rule: rule.clone(),
                        baselined: budget,
                        current,
                    });
                }
            }
        }
    }
    Ok(report)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render the report as JSON (machine channel for the CI gate).
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"total\": {},\n", report.findings.len()));
    s.push_str(&format!("  \"unbaselined\": {},\n", report.unbaselined()));
    s.push_str("  \"violations\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"baselined\": {}, \"message\": \"{}\"}}",
            esc(&f.file),
            f.violation.line,
            f.violation.rule,
            f.baselined,
            esc(&f.violation.message)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"improvements\": [");
    for (i, im) in report.improvements.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"baselined\": {}, \"current\": {}}}",
            esc(&im.file),
            im.rule,
            im.baselined,
            im.current
        ));
    }
    if !report.improvements.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report for humans.
pub fn to_human(report: &Report) -> String {
    let mut s = String::new();
    for f in &report.findings {
        let tag = if f.baselined { " [baselined]" } else { "" };
        s.push_str(&format!(
            "{}:{} {}{} — {}\n",
            f.file, f.violation.line, f.violation.rule, tag, f.violation.message
        ));
    }
    for im in &report.improvements {
        s.push_str(&format!(
            "note: {}|{} improved {} -> {}; tighten the baseline (--write-baseline)\n",
            im.file, im.rule, im.baselined, im.current
        ));
    }
    s.push_str(&format!(
        "{} files scanned, {} violations ({} unbaselined)\n",
        report.files_scanned,
        report.findings.len(),
        report.unbaselined()
    ));
    s
}
