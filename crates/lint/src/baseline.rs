//! The ratchet baseline: committed per-(file, rule) violation counts.
//!
//! The gate is monotone — a count may only go down. Violations inside the
//! baseline budget are reported but don't fail the run; anything beyond it
//! does. When a file's count drops below its budget the run reports the
//! improvement so the baseline can be rewritten tighter (never looser).
//!
//! The format is a flat JSON object `{"path|RULE": count, …}`, parsed and
//! written by hand (the crate has zero dependencies, and the grammar here
//! is a single object of string→integer).

use std::collections::BTreeMap;

/// `(relative path, rule code)` → allowed count.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse the baseline format. Returns `Err` with a human-readable message
/// on anything that is not a flat `{"file|RULE": usize}` object.
pub fn parse(src: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    let s = src.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "baseline must be a JSON object".to_string())?
        .trim();
    if inner.is_empty() {
        return Ok(out);
    }
    for entry in split_top_level(inner) {
        let (key, val) =
            entry.rsplit_once(':').ok_or_else(|| format!("bad baseline entry `{entry}`"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("baseline key must be a string: `{key}`"))?;
        let (file, rule) = key
            .rsplit_once('|')
            .ok_or_else(|| format!("baseline key must be `path|RULE`: `{key}`"))?;
        let count: usize = val
            .trim()
            .parse()
            .map_err(|_| format!("baseline count must be an integer: `{val}`"))?;
        out.insert((file.to_string(), rule.to_string()), count);
    }
    Ok(out)
}

/// Render a baseline in the committed format (sorted, one entry per line).
pub fn render(b: &Baseline) -> String {
    if b.is_empty() {
        return "{}\n".to_string();
    }
    let mut s = String::from("{\n");
    let mut first = true;
    for ((file, rule), count) in b {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!("  \"{file}|{rule}\": {count}"));
    }
    s.push_str("\n}\n");
    s
}

/// Split `"k": v, "k": v` on commas outside string quotes. Keys are plain
/// paths and rule codes — no escapes to worry about.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_round_trips() {
        let b = parse("{}").unwrap();
        assert!(b.is_empty());
        assert_eq!(render(&b), "{}\n");
    }

    #[test]
    fn entries_round_trip_sorted() {
        let mut b = Baseline::new();
        b.insert(("crates/a/src/x.rs".into(), "CL001".into()), 3);
        b.insert(("crates/b/src/y.rs".into(), "CL003".into()), 1);
        let rendered = render(&b);
        assert_eq!(parse(&rendered).unwrap(), b);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("[]").is_err());
        assert!(parse("{\"no-pipe\": 1}").is_err());
        assert!(parse("{\"a|CL001\": \"x\"}").is_err());
    }
}
