//! A minimal Rust source scanner.
//!
//! The rules in this crate are line-oriented string checks, which are only
//! sound if comments and literal contents can never masquerade as code (or
//! vice versa). This module does the one lexical job that requires real
//! state: splitting a source file into per-line *code text* (literal
//! contents blanked, comments removed) and *comment text* (everything
//! behind `//`, `///`, `//!`, or inside `/* */`, including nesting). It
//! also classifies lines as test code so rules can skip them.
//!
//! It is deliberately not a full lexer — no token spans, no keywords — just
//! enough to be exact about the comment/string/char-literal boundaries that
//! trip up naive `grep`-style linting.

/// One source line, split into code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and the *contents* of string and
    /// char literals blanked (the delimiting quotes remain).
    pub code: String,
    /// Concatenated comment text on this line (without `//` / `/*`).
    pub comment: String,
}

/// Split `src` into lines of code/comment channels.
pub fn scan(src: &str) -> Vec<Line> {
    let b: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut i = 0usize;

    // Helper closures capture nothing mutable; state lives in locals.
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut mode = Mode::Code;

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = b.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
                    // Possible raw/byte string prefix: r"", r#""#, b"", br"".
                    if let Some((hashes, consumed, raw)) = string_prefix(&b, i) {
                        cur.code.push('"');
                        mode = if raw { Mode::RawStr(hashes) } else { Mode::Str };
                        i += consumed;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    i += char_or_lifetime(&b, i, &mut cur.code);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = b.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Skip the escaped char (blanked) — but an escaped
                    // newline (string continuation) still ends the line.
                    if b.get(i + 1) == Some(&'\n') {
                        lines.push(std::mem::take(&mut cur));
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // blanked
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&b, i, hashes) {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1; // blanked
                }
            }
        }
    }
    lines.push(cur);
    lines
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// At `b[i] == 'r' | 'b'`, detect a raw/byte string prefix. Returns
/// `(hash_count, chars_to_consume_incl_opening_quote, is_raw)`.
fn string_prefix(b: &[char], i: usize) -> Option<(u32, usize, bool)> {
    let mut j = i;
    let mut raw = false;
    if b[j] == 'b' {
        j += 1;
        if b.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
    } else {
        raw = true;
        j += 1;
    }
    let mut hashes = 0u32;
    if raw {
        while b.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if hashes > 0 && b.get(j) != Some(&'"') {
            return None; // `r#ident` raw identifier, not a string
        }
    }
    if b.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i, raw))
    } else {
        None
    }
}

fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// At `b[i] == '\''`: consume a char literal (blanking its contents) or a
/// lone lifetime tick. Returns chars consumed; pushes kept chars to `code`.
fn char_or_lifetime(b: &[char], i: usize, code: &mut String) -> usize {
    match b.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < b.len() && b[j] != '\'' {
                j += if b[j] == '\\' { 2 } else { 1 };
            }
            code.push('\'');
            code.push('\'');
            j.saturating_sub(i) + 1
        }
        Some(_) if b.get(i + 2) == Some(&'\'') => {
            // 'x' — single-char literal.
            code.push('\'');
            code.push('\'');
            3
        }
        _ => {
            // Lifetime (`'a`) or label (`'outer:`): keep the tick, let the
            // identifier flow through as code.
            code.push('\'');
            1
        }
    }
}

/// Mark lines that belong to test code: a `#[cfg(test)]` (also nested, as
/// in `#[cfg(all(test, feature = "…"))]`) or `#[test]` attribute arms a
/// region that begins at the next `{` (unless a `;` lands first — an
/// attribute on a braceless item) and ends when brace depth returns to its
/// starting level.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i32;
    let mut armed = false;
    let mut region_floor: Option<i32> = None;
    for (li, line) in lines.iter().enumerate() {
        if region_floor.is_none() && (is_test_cfg(&line.code) || line.code.contains("#[test]")) {
            armed = true;
        }
        let mut in_test = region_floor.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && region_floor.is_none() {
                        region_floor = Some(depth);
                        armed = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                            in_test = true; // closing line still counts
                        }
                    }
                }
                ';' if armed && region_floor.is_none() => {
                    armed = false; // `#[cfg(test)] use …;` — no region
                }
                _ => {}
            }
        }
        mask[li] = in_test || armed || region_floor.is_some();
    }
    mask
}

/// Does this (blanked) code line carry a `cfg` attribute that compiles the
/// item only for tests? Matches a bare `test` predicate anywhere inside the
/// `cfg(...)` — `cfg(test)`, `cfg(all(test, feature = "x"))` — but not a
/// negated one (`cfg(not(test))` marks *non*-test code).
fn is_test_cfg(code: &str) -> bool {
    let Some(at) = code.find("cfg(") else {
        return false;
    };
    let inner = &code[at + 4..];
    for (j, _) in inner.match_indices("test") {
        // `test` must be a whole predicate word, not part of an ident.
        let before = inner[..j].chars().next_back();
        let after = inner[j + 4..].chars().next();
        let word = !matches!(before, Some(c) if c.is_alphanumeric() || c == '_')
            && !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if word && !inner[..j].trim_end().ends_with("not(") {
            return true;
        }
    }
    false
}

/// Tokenize one line of blanked code into identifier and punctuation
/// tokens. String/char literals appear as `""` / `''` punctuation pairs.
pub fn tokens(code: &str) -> Vec<Tok<'_>> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' || !c.is_ascii() {
            let start = i;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_alphanumeric() || d == '_' || !d.is_ascii() {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Tok::Ident(&code[start..i]));
        } else if c.is_ascii_digit() {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'.')
            {
                // Numeric literal (incl. floats, suffixes); swallow so
                // `1.0` never yields a `.` punctuation token.
                if bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && !(bytes[i + 1] as char).is_ascii_digit()
                {
                    break;
                }
                i += 1;
            }
            out.push(Tok::Num);
        } else if c.is_whitespace() {
            i += 1;
        } else {
            out.push(Tok::Punct(c));
            i += 1;
        }
    }
    out
}

/// A code token: identifier text, a number, or one punctuation char.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    Ident(&'a str),
    Num,
    Punct(char),
}

impl<'a> Tok<'a> {
    pub fn ident(&self) -> Option<&'a str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is(&self, ch: char) -> bool {
        matches!(self, Tok::Punct(c) if *c == ch)
    }
}
