//! The rule set.
//!
//! | Code  | Invariant |
//! |-------|-----------|
//! | CL000 | pragma syntax: `lint:` comments must parse and carry a reason |
//! | CL001 | determinism: no hash-map/set iteration without an order-restoring consumer |
//! | CL002 | determinism: no wall-clock / thread identity in equality-contract modules |
//! | CL003 | panic-freedom: no `unwrap`/`expect`/`panic!`-family in serve-path modules |
//! | CL004 | panic-freedom: no slice indexing in totality modules (hostile-input decode) |
//! | CL005 | float discipline: no `partial_cmp` — use `nan_lowest`/`nan_greatest`/`total_cmp` |
//! | CL006 | unsafe hygiene: every `unsafe` needs a `// SAFETY:` comment |
//! | CL007 | hygiene: pragmas must suppress something |
//!
//! Everything is a line-oriented check over the lexer's blanked code
//! channel, so string literals and comments can never false-positive.
//! The checks are deliberately *under*-approximate (e.g. CL001 only tracks
//! identifiers it can syntactically tie to a hash container) — a linter
//! that cries wolf gets pragma'd into silence, which is worse than missing
//! the odd exotic site.

use crate::lexer::{self, Line, Tok};
use crate::pragma::{scan_comment, PragmaScan};

/// All valid rule codes (CL000/CL007 are emitted by the linter itself and
/// cannot be suppressed by pragma).
pub const RULE_CODES: &[&str] =
    &["CL000", "CL001", "CL002", "CL003", "CL004", "CL005", "CL006", "CL007"];

/// Modules on the serve path: they run inside `par_map_isolated` fault
/// containment on operator-facing requests, where a panic means a
/// quarantined page or a dead session. CL003 denies the panic family here.
const SERVE_PATH_SUFFIXES: &[&str] = &[
    "crates/core/src/extract.rs",
    "crates/core/src/page.rs",
    "crates/core/src/session.rs",
    "crates/ml/src/logreg.rs",
    "crates/ml/src/sparse.rs",
    "crates/store/src/lib.rs",
    "crates/runtime/src/pool.rs",
    "crates/runtime/src/stream.rs",
];

/// Modules that must be *total* over hostile bytes (artifact decode):
/// CL004 additionally denies slice indexing here.
const TOTALITY_PREFIXES: &[&str] = &["crates/store/src/"];

/// Crates exempt from the equality contract (byte-identical output at any
/// thread count): the bench harness and examples print wall-clock numbers
/// by design, and the linter itself never feeds pipeline output.
const EQUALITY_EXEMPT_PREFIXES: &[&str] = &["crates/bench/", "crates/lint/", "examples/"];

/// Iterator-producing methods on hash containers whose order is
/// implementation-defined.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Hash container type heads (std and the workspace's deterministic Fx
/// variants — Fx fixes the *hash*, not the dependence of iteration order
/// on insertion history, so both are flagged).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Chain fragments that make consuming a hash iterator order-free.
const ORDER_FREE_CHAIN: &[&str] =
    &[".count(", ".len(", ".is_empty(", ".any(", ".all(", ".sum(", ".sum::", ".product("];

/// One diagnostic, 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// What the file's path says about which rules apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    pub serve_path: bool,
    pub totality: bool,
    pub equality_contract: bool,
}

/// Classify a path *relative to the lint root*, `/`-separated.
pub fn classify(rel: &str) -> FileClass {
    FileClass {
        serve_path: SERVE_PATH_SUFFIXES.iter().any(|s| rel.ends_with(s) || rel == *s),
        totality: TOTALITY_PREFIXES.iter().any(|p| rel.starts_with(p) || rel.contains(p)),
        equality_contract: !EQUALITY_EXEMPT_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || rel.contains(p)),
    }
}

/// Lint one file. `rel` is the `/`-separated path relative to the root.
pub fn run_file(rel: &str, src: &str) -> Vec<Violation> {
    let class = classify(rel);
    let lines = lexer::scan(src);
    let test_mask = lexer::test_mask(&lines);
    let mut out: Vec<Violation> = Vec::new();

    // --- Pragmas: parse every comment, resolve each to its target line ---
    // (the same line when it trails code, else the next line with code).
    struct Slot {
        target: usize,
        code: String,
        used: bool,
        line: usize,
    }
    let mut slots: Vec<Slot> = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        match scan_comment(li, &line.comment) {
            PragmaScan::None => {}
            PragmaScan::Malformed(why) => {
                out.push(Violation { line: li + 1, rule: "CL000", message: why });
            }
            PragmaScan::Ok(p) => {
                let target = if !line.code.trim().is_empty() {
                    Some(li)
                } else {
                    (li + 1..lines.len().min(li + 16)).find(|&j| !lines[j].code.trim().is_empty())
                };
                match target {
                    Some(t) => slots.push(Slot { target: t, code: p.code, used: false, line: li }),
                    None => out.push(Violation {
                        line: li + 1,
                        rule: "CL000",
                        message: "pragma attaches to no code line".to_string(),
                    }),
                }
            }
        }
    }

    // --- Raw rule passes ---
    let mut raw: Vec<Violation> = Vec::new();
    let hash_idents = collect_hash_idents(&lines);
    for (li, line) in lines.iter().enumerate() {
        let in_test = test_mask[li];
        let toks = lexer::tokens(&line.code);

        // CL006 applies everywhere, including tests: unsafe is unsafe.
        if toks.iter().any(|t| t.ident() == Some("unsafe")) && !safety_comment_nearby(&lines, li) {
            raw.push(Violation {
                line: li + 1,
                rule: "CL006",
                message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
            });
        }
        if in_test {
            continue;
        }

        check_hash_iteration(li, &toks, &lines, &hash_idents, &mut raw);

        if class.equality_contract {
            for needle in ["Instant::now", "SystemTime", "thread::current", "process::id"] {
                if line.code.replace(' ', "").contains(needle) {
                    raw.push(Violation {
                        line: li + 1,
                        rule: "CL002",
                        message: format!(
                            "`{needle}` in an equality-contract module: wall-clock and \
                             identity values must never influence reproducible output"
                        ),
                    });
                }
            }
        }

        if class.serve_path {
            check_panic_family(li, &toks, &mut raw);
        }
        if class.totality {
            check_indexing(li, &line.code, &mut raw);
        }
        if toks.iter().any(|t| t.ident() == Some("partial_cmp")) {
            raw.push(Violation {
                line: li + 1,
                rule: "CL005",
                message: "`partial_cmp` is not a total order over floats; use \
                          `ceres_text::nan_lowest`/`nan_greatest` (or `f64::total_cmp`)"
                    .to_string(),
            });
        }
    }

    // --- Apply pragmas, collect unused ones ---
    raw.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    raw.dedup();
    for v in raw {
        let suppressed = slots
            .iter_mut()
            .find(|s| !s.used && s.target + 1 == v.line && s.code == v.rule && v.rule != "CL000");
        match suppressed {
            Some(s) => s.used = true,
            None => out.push(v),
        }
    }
    for s in &slots {
        if !s.used && !test_mask[s.target] {
            out.push(Violation {
                line: s.line + 1,
                rule: "CL007",
                message: format!(
                    "pragma allow({}) suppresses nothing on line {}",
                    s.code,
                    s.target + 1
                ),
            });
        }
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// Pass A of CL001: names syntactically bound to a hash container — `let`
/// bindings, struct fields, and fn params whose *outermost* type is one of
/// [`HASH_TYPES`], plus `name = FxHashMap::default()`-style inits.
fn collect_hash_idents(lines: &[Line]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        if !HASH_TYPES.iter().any(|t| line.code.contains(t)) {
            continue;
        }
        // rustfmt may split `name: Type` across lines; join a short window.
        let lo = li.saturating_sub(2);
        let window: String =
            lines[lo..=li].iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join(" ");
        let toks = lexer::tokens(&window);
        for h in 0..toks.len() {
            let Some(id) = toks[h].ident() else { continue };
            if !HASH_TYPES.contains(&id) {
                continue;
            }
            if let Some(name) = binding_name_before(&toks, h) {
                if !names.iter().any(|n| n == &name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Walk backwards from a hash-type token to the identifier it is bound to.
/// Returns `None` when the container is nested inside another generic
/// (`Vec<FxHashMap<…>>` — the binding is a Vec, iteration over it is fine).
fn binding_name_before(toks: &[Tok<'_>], h: usize) -> Option<String> {
    let mut k = h;
    while k > 0 {
        k -= 1;
        match toks[k] {
            Tok::Punct(';')
            | Tok::Punct('{')
            | Tok::Punct('}')
            | Tok::Punct('<')
            | Tok::Punct('(')
            | Tok::Punct(',') => return None,
            Tok::Punct('=') => {
                // `let [mut] name = FxHashMap::default()`
                return match toks.get(k.checked_sub(1)?)? {
                    Tok::Ident(name) if valid_name(name) => Some((*name).to_string()),
                    _ => None,
                };
            }
            Tok::Punct(':') => {
                // Skip `::` path separators (`ceres_text::FxHashMap`).
                let prev = k.checked_sub(1).map(|j| toks[j]);
                if matches!(prev, Some(Tok::Punct(':')))
                    || matches!(toks.get(k + 1), Some(Tok::Punct(':')))
                {
                    continue;
                }
                return match prev? {
                    Tok::Ident(name) if valid_name(name) => Some(name.to_string()),
                    _ => None,
                };
            }
            Tok::Punct('&') | Tok::Ident("mut") | Tok::Ident("pub") => {}
            Tok::Ident(_) => {} // path segments, e.g. `ceres_text`
            _ => {}
        }
    }
    None
}

fn valid_name(name: &str) -> bool {
    !matches!(
        name,
        "let"
            | "mut"
            | "ref"
            | "in"
            | "if"
            | "else"
            | "match"
            | "return"
            | "as"
            | "pub"
            | "where"
            | "impl"
            | "fn"
            | "self"
            | "Self"
            | "type"
            | "const"
            | "static"
    )
}

/// Pass B of CL001: flag `name.iter()`-family calls and `for … in name`
/// loops when `name` is a known hash binding, unless the consuming chain is
/// order-free or feeds the collect-then-sort idiom.
fn check_hash_iteration(
    li: usize,
    toks: &[Tok<'_>],
    lines: &[Line],
    hash_idents: &[String],
    raw: &mut Vec<Violation>,
) {
    let mut hit: Option<&str> = None;
    for k in 2..toks.len() {
        let Some(m) = toks[k].ident() else { continue };
        if HASH_ITER_METHODS.contains(&m)
            && matches!(toks.get(k + 1), Some(Tok::Punct('(')))
            && toks[k - 1].is('.')
        {
            if let Some(Tok::Ident(recv)) = toks.get(k - 2) {
                if hash_idents.iter().any(|n| n == recv) {
                    hit = Some(recv);
                    break;
                }
            }
        }
    }
    if hit.is_none() {
        // `for pat in [&[mut]] name {`
        if let Some(fi) = toks.iter().position(|t| t.ident() == Some("for")) {
            if let Some(ii) = toks[fi..].iter().position(|t| t.ident() == Some("in")) {
                let expr: Vec<Tok> = toks[fi + ii + 1..]
                    .iter()
                    .take_while(|t| !t.is('{'))
                    .copied()
                    .filter(|t| !t.is('&') && t.ident() != Some("mut"))
                    .collect();
                if let [Tok::Ident(name)] = expr.as_slice() {
                    if hash_idents.iter().any(|n| n == name) {
                        hit = Some(name);
                    }
                }
            }
        }
    }
    let Some(name) = hit else { return };
    // Exemption: the statement's chain (this line plus a short lookahead
    // for rustfmt-wrapped chains) is order-free, or lands in the
    // collect-then-sort idiom. The lookahead counts *code-bearing* lines so
    // an explanatory comment between the collect and the sort doesn't
    // defeat it.
    let window: String = lines[li..]
        .iter()
        .map(|l| l.code.as_str())
        .filter(|c| !c.trim().is_empty())
        .take(6)
        .collect::<Vec<_>>()
        .join(" ");
    if ORDER_FREE_CHAIN.iter().any(|f| window.contains(f))
        || (window.contains(".collect") && window.contains(".sort"))
    {
        return;
    }
    raw.push(Violation {
        line: li + 1,
        rule: "CL001",
        message: format!(
            "iteration over hash container `{name}`: order is insertion-history-dependent; \
             collect and sort, consume order-free, or pragma with the order-safety argument"
        ),
    });
}

/// CL003: the panic family in serve-path modules.
fn check_panic_family(li: usize, toks: &[Tok<'_>], raw: &mut Vec<Violation>) {
    for k in 0..toks.len() {
        let Some(id) = toks[k].ident() else { continue };
        let bang = matches!(toks.get(k + 1), Some(Tok::Punct('!')));
        let call = matches!(toks.get(k + 1), Some(Tok::Punct('(')));
        let method = k > 0 && toks[k - 1].is('.');
        let flagged = match id {
            "unwrap" | "expect" => method && call,
            "panic" | "unreachable" | "todo" | "unimplemented" => bang,
            _ => false,
        };
        if flagged {
            raw.push(Violation {
                line: li + 1,
                rule: "CL003",
                message: format!(
                    "`{id}` on the serve path: return a typed error (PageError taxonomy) or \
                     pragma with the infallibility proof"
                ),
            });
        }
    }
}

/// CL004: slice indexing in totality modules. An `[` counts as indexing
/// when it directly follows an identifier char, `)`, or `]` (so `#[attr]`,
/// `vec![…]`, and array types stay clean).
fn check_indexing(li: usize, code: &str, raw: &mut Vec<Violation>) {
    let b: Vec<char> = code.chars().collect();
    for i in 1..b.len() {
        if b[i] == '['
            && (b[i - 1].is_alphanumeric() || b[i - 1] == '_' || b[i - 1] == ')' || b[i - 1] == ']')
        {
            raw.push(Violation {
                line: li + 1,
                rule: "CL004",
                message: "slice indexing in a totality module: hostile input must decode \
                          via `get()`; pragma only with a bounds proof"
                    .to_string(),
            });
            return; // one per line is enough signal
        }
    }
}

/// CL006 helper: a `SAFETY:` comment (or rustdoc `# Safety` section) on the
/// same line or within the 8 lines above.
fn safety_comment_nearby(lines: &[Line], li: usize) -> bool {
    let lo = li.saturating_sub(8);
    lines[lo..=li].iter().any(|l| l.comment.contains("SAFETY:") || l.comment.contains("# Safety"))
}
