//! `// lint: allow(CLxxx) reason="…"` pragma parsing.
//!
//! A pragma suppresses one rule on one line: its own line when it trails
//! code, otherwise the next line that carries code. The `reason` string is
//! mandatory and must be non-empty — a suppression without a written
//! justification is itself a violation (`CL000`), because the whole point
//! of the pragma is to leave the argument in the file.

use crate::rules::RULE_CODES;

/// A successfully parsed pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 0-based line the pragma comment sits on.
    pub line: usize,
    pub code: String,
    pub reason: String,
}

/// Outcome of scanning one comment for a pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaScan {
    None,
    Ok(Pragma),
    /// The comment says `lint:` but does not parse — reported as CL000
    /// with the given explanation.
    Malformed(String),
}

/// Scan one line's comment text for a pragma. Only a comment that *starts*
/// with `lint:` is a pragma — prose that merely mentions the syntax (like
/// this crate's own docs) is not.
pub fn scan_comment(line: usize, comment: &str) -> PragmaScan {
    let Some(rest) = comment.trim_start().strip_prefix("lint:") else {
        return PragmaScan::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return PragmaScan::Malformed("expected `allow(CLxxx)` after `lint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return PragmaScan::Malformed("unclosed `allow(`".to_string());
    };
    let code = rest[..close].trim().to_string();
    if !RULE_CODES.contains(&code.as_str()) {
        return PragmaScan::Malformed(format!("unknown rule code `{code}`"));
    }
    let after = rest[close + 1..].trim_start();
    let Some(after) = after.strip_prefix("reason=\"") else {
        return PragmaScan::Malformed(
            "missing `reason=\"…\"` — every suppression needs a written justification".to_string(),
        );
    };
    let Some(end) = after.find('"') else {
        return PragmaScan::Malformed("unterminated reason string".to_string());
    };
    let reason = after[..end].trim();
    if reason.is_empty() {
        return PragmaScan::Malformed("empty reason — write the actual justification".to_string());
    }
    PragmaScan::Ok(Pragma { line, code, reason: reason.to_string() })
}
