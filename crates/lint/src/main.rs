//! CLI for the invariant checker.
//!
//! ```text
//! ceres-lint [--root PATH] [--json] [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! Exit codes: `0` clean (or fully baselined), `1` unbaselined violations
//! or malformed pragmas, `2` usage / I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: PathBuf::from("."), json: false, baseline: None, write_baseline: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--json" => args.json = true,
            "--baseline" => args.baseline = Some(next_path(&mut it, "--baseline")?),
            "--write-baseline" => {
                args.write_baseline = Some(next_path(&mut it, "--write-baseline")?)
            }
            "--help" | "-h" => {
                return Err("usage: ceres-lint [--root PATH] [--json] [--baseline PATH] \
                            [--write-baseline PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match &args.baseline {
        None => ceres_lint::baseline::Baseline::new(),
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match ceres_lint::baseline::parse(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match ceres_lint::lint_tree(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint walk failed under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.write_baseline {
        let rendered = ceres_lint::baseline::render(&report.to_baseline());
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", ceres_lint::to_json(&report));
    } else {
        print!("{}", ceres_lint::to_human(&report));
    }
    if report.unbaselined() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
