//! Scoring: P/R/F1 counters, gold lookup, triple-level and page-hit
//! protocols, annotation and topic scoring.

use ceres_core::extract::{ExtractLabel, Extraction};
use ceres_core::pipeline::{AnnotationRecord, TopicRecord};
use ceres_kb::Kb;
use ceres_synth::{Page, PageGold, PageKind, Site};
use ceres_text::{normalize, FxHashMap, FxHashSet};

/// Precision/recall/F1 from true-positive, false-positive, false-negative
/// counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl Prf {
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    pub fn add(&mut self, other: Prf) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Gold lookup for a site: page id → gold record.
pub struct GoldIndex<'a> {
    by_page: FxHashMap<&'a str, &'a PageGold>,
}

impl<'a> GoldIndex<'a> {
    pub fn new(site: &'a Site) -> Self {
        GoldIndex { by_page: site.pages.iter().map(|p| (p.id.as_str(), &p.gold)).collect() }
    }

    pub fn from_pages<I: IntoIterator<Item = &'a Page>>(pages: I) -> Self {
        GoldIndex { by_page: pages.into_iter().map(|p| (p.id.as_str(), &p.gold)).collect() }
    }

    pub fn gold(&self, page_id: &str) -> Option<&'a PageGold> {
        self.by_page.get(page_id).copied()
    }

    /// Is an extraction correct? Triple-level (§5.1.3: "a triple is
    /// considered to be correct if it expresses a fact asserted on the page
    /// from which it was extracted"): the page's gold must contain the
    /// (pred, object) pair up to normalization; NAME extractions must match
    /// the gold topic.
    pub fn extraction_correct(&self, kb: &Kb, e: &Extraction) -> bool {
        let Some(gold) = self.gold(&e.page_id) else { return false };
        if gold.kind == PageKind::NonDetail {
            return false;
        }
        match &e.label {
            ExtractLabel::Name => {
                gold.topic.as_deref().map(|t| normalize(t) == normalize(&e.object)).unwrap_or(false)
            }
            ExtractLabel::Pred(p) => {
                let pred_name = kb.ontology().pred_name(*p);
                let obj_norm = normalize(&e.object);
                gold.facts.iter().any(|f| f.pred == pred_name && normalize(&f.object) == obj_norm)
            }
        }
    }

    /// Node-level annotation correctness for Table 6: the annotated node's
    /// own gold predicate must equal the annotation's predicate.
    pub fn annotation_correct(&self, r: &AnnotationRecord) -> bool {
        let Some(gold) = self.gold(&r.page_id) else { return false };
        let Some(gt) = r.gt_id else { return false };
        gold.pred_of(gt) == Some(r.pred.as_str())
    }
}

/// Triple-level per-predicate scorer (Tables 4, 5; Figures 4, 6).
#[derive(Debug, Default)]
pub struct TripleScorer {
    /// pred name → counts.
    pub per_pred: FxHashMap<String, Prf>,
}

impl TripleScorer {
    /// Score `extractions` over `eval_pages`. `pred_filter`, when set,
    /// restricts both extractions and gold to the listed predicate names
    /// (`"name"` included for topic names).
    pub fn score(
        kb: &Kb,
        gold: &GoldIndex<'_>,
        eval_page_ids: &[&str],
        extractions: &[Extraction],
        pred_filter: Option<&[&str]>,
    ) -> TripleScorer {
        let keep = |pred: &str| pred_filter.is_none_or(|f| f.contains(&pred));
        let mut scorer = TripleScorer::default();

        // Extracted triple set per page (dedup identical assertions).
        let mut claimed: FxHashSet<(String, String, String)> = FxHashSet::default();
        for e in extractions {
            let pred_name = match &e.label {
                ExtractLabel::Name => "name".to_string(),
                ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
            };
            if !keep(&pred_name) {
                continue;
            }
            let key = (e.page_id.clone(), pred_name.clone(), normalize(&e.object));
            if !claimed.insert(key) {
                continue; // duplicate assertion counts once
            }
            let entry = scorer.per_pred.entry(pred_name).or_default();
            if gold.extraction_correct(kb, e) {
                entry.tp += 1;
            } else {
                entry.fp += 1;
            }
        }

        // Missed gold triples.
        for &pid in eval_page_ids {
            let Some(g) = gold.gold(pid) else { continue };
            if g.kind == PageKind::NonDetail {
                continue;
            }
            for (pred, obj) in g.triple_set() {
                if !keep(pred) {
                    continue;
                }
                let key = (pid.to_string(), pred.to_string(), normalize(obj));
                if !claimed.contains(&key) {
                    scorer.per_pred.entry(pred.to_string()).or_default().fn_ += 1;
                }
            }
        }
        scorer
    }

    pub fn overall(&self) -> Prf {
        let mut total = Prf::default();
        // lint: allow(CL001) reason="Prf::add sums integer tp/fp/fn counts, which is commutative — any visit order produces identical totals"
        for p in self.per_pred.values() {
            total.add(*p);
        }
        total
    }

    pub fn prf(&self, pred: &str) -> Option<Prf> {
        self.per_pred.get(pred).copied()
    }
}

/// Page-hit scorer implementing the Hao et al. protocol used by Table 3:
/// one prediction per predicate per page (the highest-confidence one);
/// credit if it is correct; recall over pages asserting the predicate.
#[derive(Debug, Default)]
pub struct PageHitScorer {
    pub per_pred: FxHashMap<String, Prf>,
}

impl PageHitScorer {
    pub fn score(
        kb: &Kb,
        gold: &GoldIndex<'_>,
        eval_page_ids: &[&str],
        extractions: &[Extraction],
        preds: &[&str],
    ) -> PageHitScorer {
        // Highest-confidence extraction per (page, pred).
        let mut best: FxHashMap<(String, String), &Extraction> = FxHashMap::default();
        for e in extractions {
            let pred_name = match &e.label {
                ExtractLabel::Name => "name".to_string(),
                ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
            };
            if !preds.contains(&pred_name.as_str()) {
                continue;
            }
            let key = (e.page_id.clone(), pred_name);
            match best.get(&key) {
                Some(prev) if prev.confidence >= e.confidence => {}
                _ => {
                    best.insert(key, e);
                }
            }
        }

        let mut scorer = PageHitScorer::default();
        for &pid in eval_page_ids {
            let Some(g) = gold.gold(pid) else { continue };
            if g.kind == PageKind::NonDetail {
                // Extractions from non-detail pages are pure false
                // positives; handled below through `best` keys.
                continue;
            }
            let asserted: FxHashSet<&str> = g.triple_set().iter().map(|&(p, _)| p).collect();
            for &pred in preds {
                let hit = best.get(&(pid.to_string(), pred.to_string()));
                let gold_has = asserted.contains(pred);
                let entry = scorer.per_pred.entry(pred.to_string()).or_default();
                match (hit, gold_has) {
                    (Some(e), true) => {
                        if gold.extraction_correct(kb, e) {
                            entry.tp += 1;
                        } else {
                            entry.fp += 1;
                            entry.fn_ += 1;
                        }
                    }
                    (Some(_), false) => entry.fp += 1,
                    (None, true) => entry.fn_ += 1,
                    (None, false) => {}
                }
            }
        }
        // Predictions on non-detail pages are false positives.
        // lint: allow(CL001) reason="each (page, pred) key increments its own pred's integer fp exactly once; += over disjoint keys is order-free"
        for (pid, pred) in best.keys() {
            if let Some(g) = gold.gold(pid) {
                if g.kind == PageKind::NonDetail {
                    scorer.per_pred.entry(pred.clone()).or_default().fp += 1;
                }
            }
        }
        scorer
    }

    /// The vertical-level F1 used by Table 3: mean of per-predicate F1s.
    pub fn mean_f1(&self, preds: &[&str]) -> f64 {
        if preds.is_empty() {
            return 0.0;
        }
        let sum: f64 = preds.iter().map(|p| self.per_pred.get(*p).map_or(0.0, |x| x.f1())).sum();
        sum / preds.len() as f64
    }
}

/// Score topic identification (Table 7). Precision over pages where a topic
/// was proposed; recall over detail pages whose gold topic is matchable in
/// the KB (the "strong keys" subset of the paper).
pub fn score_topics(kb: &Kb, gold: &GoldIndex<'_>, records: &[TopicRecord]) -> Prf {
    let mut prf = Prf::default();
    for r in records {
        let Some(g) = gold.gold(&r.page_id) else { continue };
        let gold_topic = match (&g.kind, &g.topic) {
            (PageKind::Detail, Some(t)) => Some(t),
            _ => None,
        };
        let in_kb =
            gold_topic.map(|t| kb.match_text(t).iter().any(|&v| kb.is_entity(v))).unwrap_or(false);
        match (&r.topic, gold_topic) {
            (Some(found), Some(t)) => {
                // An episode's canonical name may carry a disambiguating
                // suffix ("Pilot #12"); match on the prefix of normalized
                // forms.
                let f = normalize(found);
                let tn = normalize(t);
                if f == tn || f.starts_with(&format!("{tn} ")) {
                    prf.tp += 1;
                } else {
                    prf.fp += 1;
                    if in_kb {
                        prf.fn_ += 1;
                    }
                }
            }
            (Some(_), None) => prf.fp += 1,
            (None, Some(_)) if in_kb => prf.fn_ += 1,
            _ => {}
        }
    }
    prf
}

/// Score annotations (Table 6) per predicate. Recall denominator: gold
/// facts on annotation pages that the seed KB knows (the annotatable set).
pub fn score_annotations(
    kb: &Kb,
    gold: &GoldIndex<'_>,
    annotation_page_ids: &[&str],
    records: &[AnnotationRecord],
) -> FxHashMap<String, Prf> {
    let mut per_pred: FxHashMap<String, Prf> = FxHashMap::default();
    // Node-level precision + collect correctly annotated (page, pred, obj).
    let mut covered: FxHashSet<(String, String, String)> = FxHashSet::default();
    for r in records {
        let entry = per_pred.entry(r.pred.clone()).or_default();
        if gold.annotation_correct(r) {
            entry.tp += 1;
            if let (Some(g), Some(gt)) = (gold.gold(&r.page_id), r.gt_id) {
                if let Some(fact) = g.facts.iter().find(|f| f.gt_id == gt) {
                    covered.insert((r.page_id.clone(), r.pred.clone(), normalize(&fact.object)));
                }
            }
        } else {
            entry.fp += 1;
        }
    }
    // Recall: KB-known gold facts not covered.
    for &pid in annotation_page_ids {
        let Some(g) = gold.gold(pid) else { continue };
        let (PageKind::Detail, Some(topic)) = (g.kind, g.topic.as_deref()) else { continue };
        let topic_vals: Vec<_> =
            kb.match_text(topic).iter().copied().filter(|&v| kb.is_entity(v)).collect();
        if topic_vals.is_empty() {
            continue;
        }
        for (pred, obj) in g.triple_set() {
            if pred == "name" {
                continue;
            }
            let Some(pred_id) = kb.ontology().pred_by_name(pred) else { continue };
            let obj_vals = kb.match_text(obj);
            let kb_known = topic_vals
                .iter()
                .any(|&t| obj_vals.iter().any(|&o| kb.preds_between(t, o).contains(&pred_id)));
            if !kb_known {
                continue;
            }
            let key = (pid.to_string(), pred.to_string(), normalize(obj));
            if !covered.contains(&key) {
                per_pred.entry(pred.to_string()).or_default().fn_ += 1;
            }
        }
    }
    per_pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_synth::GoldFact;

    #[test]
    fn prf_arithmetic() {
        let p = Prf { tp: 8, fp: 2, fn_: 8 };
        assert!((p.precision() - 0.8).abs() < 1e-12);
        assert!((p.recall() - 0.5).abs() < 1e-12);
        let f1 = p.f1();
        assert!((f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
        let zero = Prf::default();
        assert_eq!(zero.precision(), 0.0);
        assert_eq!(zero.f1(), 0.0);
    }

    fn site_with_one_page() -> Site {
        Site {
            name: "s".into(),
            focus: "f".into(),
            pages: vec![Page {
                id: "p0".into(),
                html: String::new(),
                gold: PageGold {
                    kind: PageKind::Detail,
                    topic: Some("The Film".into()),
                    topic_type: Some("Film".into()),
                    facts: vec![
                        GoldFact { gt_id: 0, pred: "name".into(), object: "The Film".into() },
                        GoldFact { gt_id: 1, pred: "genre".into(), object: "Drama".into() },
                    ],
                },
            }],
        }
    }

    #[test]
    fn gold_index_checks_extractions() {
        use ceres_kb::{KbBuilder, Ontology};
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let genre = o.register_pred("genre", film, true);
        let kb = KbBuilder::new(o).build();

        let site = site_with_one_page();
        let gold = GoldIndex::new(&site);
        let ok = Extraction {
            page_id: "p0".into(),
            gt_id: Some(1),
            subject: "The Film".into(),
            label: ExtractLabel::Pred(genre),
            object: "DRAMA!".into(), // normalization-robust
            confidence: 0.9,
        };
        assert!(gold.extraction_correct(&kb, &ok));
        let bad = Extraction { object: "Comedy".into(), ..ok.clone() };
        assert!(!gold.extraction_correct(&kb, &bad));
        let name_ok =
            Extraction { label: ExtractLabel::Name, object: "the   film".into(), ..ok.clone() };
        assert!(gold.extraction_correct(&kb, &name_ok));
    }

    #[test]
    fn page_hit_scoring_counts_pages_not_mentions() {
        use ceres_kb::{KbBuilder, Ontology};
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let genre = o.register_pred("genre", film, true);
        let kb = KbBuilder::new(o).build();
        let site = site_with_one_page();
        let gold = GoldIndex::new(&site);
        // Two genre extractions from the same page: only the best counts.
        let exs = vec![
            Extraction {
                page_id: "p0".into(),
                gt_id: Some(1),
                subject: String::new(),
                label: ExtractLabel::Pred(genre),
                object: "Drama".into(),
                confidence: 0.9,
            },
            Extraction {
                page_id: "p0".into(),
                gt_id: None,
                subject: String::new(),
                label: ExtractLabel::Pred(genre),
                object: "Wrong".into(),
                confidence: 0.6,
            },
        ];
        let scorer = PageHitScorer::score(&kb, &gold, &["p0"], &exs, &["genre", "name"]);
        let g = scorer.per_pred.get("genre").unwrap();
        assert_eq!((g.tp, g.fp, g.fn_), (1, 0, 0));
        // No name extraction: recall miss on name.
        let n = scorer.per_pred.get("name").unwrap();
        assert_eq!((n.tp, n.fp, n.fn_), (0, 0, 1));
        assert!(scorer.mean_f1(&["genre", "name"]) > 0.4);
    }

    #[test]
    fn triple_scoring_dedups_and_tracks_misses() {
        use ceres_kb::{KbBuilder, Ontology};
        let mut o = Ontology::new();
        let film = o.register_type("Film");
        let genre = o.register_pred("genre", film, true);
        let kb = KbBuilder::new(o).build();
        let site = site_with_one_page();
        let gold = GoldIndex::new(&site);
        let exs = vec![
            Extraction {
                page_id: "p0".into(),
                gt_id: Some(1),
                subject: String::new(),
                label: ExtractLabel::Pred(genre),
                object: "Drama".into(),
                confidence: 0.9,
            };
            3 // duplicated extraction counts once
        ];
        let scorer = TripleScorer::score(&kb, &gold, &["p0"], &exs, None);
        let g = scorer.prf("genre").unwrap();
        assert_eq!((g.tp, g.fp), (1, 0));
        // `name` was never extracted → one miss.
        let n = scorer.prf("name").unwrap();
        assert_eq!(n.fn_, 1);
    }
}
