//! Wiring between synthetic sites and the extraction systems.

use ceres_core::baseline::{run_baseline, BaselineConfig};
use ceres_core::extract::{ExtractLabel, Extraction};
use ceres_core::page::PageView;
use ceres_core::pipeline::{AnnotationMode, SiteRun};
use ceres_core::session::SiteSession;
use ceres_core::vertex::{apply_rules, learn_rules, LabeledPage};
use ceres_core::CeresConfig;
use ceres_kb::Kb;
use ceres_runtime::Runtime;
use ceres_synth::Site;

/// The systems of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    CeresFull,
    CeresTopic,
    CeresBaseline,
    VertexPlusPlus,
}

impl SystemKind {
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::CeresFull => "CERES-Full",
            SystemKind::CeresTopic => "CERES-Topic",
            SystemKind::CeresBaseline => "CERES-Baseline",
            SystemKind::VertexPlusPlus => "Vertex++",
        }
    }
}

/// Which pages are annotated vs extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalProtocol {
    /// SWDE/IMDb: even pages annotate, odd pages evaluate (50/50).
    SplitHalves,
    /// CommonCrawl: the whole site is annotated and harvested.
    WholeSite,
}

/// `(page id, html)` pairs.
pub type PageSet = Vec<(String, String)>;

/// Page id/html pairs for a protocol.
pub fn protocol_pages(site: &Site, protocol: EvalProtocol) -> (PageSet, Option<PageSet>) {
    match protocol {
        EvalProtocol::SplitHalves => {
            let (train, eval) = site.split_halves();
            (
                train.iter().map(|p| (p.id.clone(), p.html.clone())).collect(),
                Some(eval.iter().map(|p| (p.id.clone(), p.html.clone())).collect()),
            )
        }
        EvalProtocol::WholeSite => {
            (site.pages.iter().map(|p| (p.id.clone(), p.html.clone())).collect(), None)
        }
    }
}

/// Ids of the pages extractions are scored against.
pub fn eval_page_ids(site: &Site, protocol: EvalProtocol) -> Vec<&str> {
    match protocol {
        EvalProtocol::SplitHalves => site.split_halves().1.iter().map(|p| p.id.as_str()).collect(),
        EvalProtocol::WholeSite => site.pages.iter().map(|p| p.id.as_str()).collect(),
    }
}

/// Ids of the annotation-half pages (annotation/topic scoring).
pub fn annotation_page_ids(site: &Site, protocol: EvalProtocol) -> Vec<&str> {
    match protocol {
        EvalProtocol::SplitHalves => site.split_halves().0.iter().map(|p| p.id.as_str()).collect(),
        EvalProtocol::WholeSite => site.pages.iter().map(|p| p.id.as_str()).collect(),
    }
}

/// Run a distantly-supervised system (FULL / TOPIC / BASELINE) on a site.
///
/// The CERES systems go through the streaming session API: pages are
/// pushed into a [`SiteSession`] (the protocol's training half), training
/// is frozen once, and the evaluation half is served by the resulting
/// [`ceres_core::session::TrainedSite`] — the same train-once/extract-many
/// path a production deployment uses, byte-identical to the batch
/// `run_site` wrapper.
pub fn run_ceres_on_site(
    kb: &Kb,
    site: &Site,
    protocol: EvalProtocol,
    cfg: &CeresConfig,
    system: SystemKind,
) -> SiteRun {
    let (train, eval) = protocol_pages(site, protocol);
    let mode = match system {
        SystemKind::CeresFull => AnnotationMode::Full,
        SystemKind::CeresTopic => AnnotationMode::TopicOnly,
        SystemKind::CeresBaseline => {
            return run_baseline(kb, &train, eval.as_deref(), cfg, &BaselineConfig::default())
        }
        SystemKind::VertexPlusPlus => {
            return run_vertex_on_site(kb, site, protocol, 2, cfg.threads)
        }
    };
    let mut session = SiteSession::builder(kb).config(cfg.clone()).mode(mode).build();
    session.ingest(train);
    let trained = session.finish_training();
    let (extract_t, (extractions, n_ext)) = ceres_core::StageTime::measure(|| match eval {
        Some(pages) => {
            let n = pages.len();
            (trained.extract_batch(&pages), n)
        }
        None => (trained.extract_training_pages(), trained.n_training_pages()),
    });
    let mut run = trained.into_site_run(extractions, n_ext);
    run.profile.extract = extract_t;
    run
}

/// Run VERTEX++ with gold ("manual") labels on `n_annotated` training
/// pages — the paper's protocol ("Vertex++ required two pages per site").
/// Per-page work fans out on `threads` (`None` = `CERES_THREADS`, then the
/// machine); callers already parallel at the site level should pass
/// `Some(1)` to avoid nested oversubscription. Output is identical for
/// every value.
pub fn run_vertex_on_site(
    kb: &Kb,
    site: &Site,
    protocol: EvalProtocol,
    n_annotated: usize,
    threads: Option<usize>,
) -> SiteRun {
    let (train_pages, eval_pages): (Vec<&ceres_synth::Page>, Vec<&ceres_synth::Page>) =
        match protocol {
            EvalProtocol::SplitHalves => site.split_halves(),
            EvalProtocol::WholeSite => (site.pages.iter().collect(), site.pages.iter().collect()),
        };

    // Choose the first training pages that carry gold facts.
    let mut views: Vec<PageView> = Vec::new();
    let mut labels: Vec<Vec<(usize, ExtractLabel)>> = Vec::new();
    for page in &train_pages {
        if views.len() >= n_annotated {
            break;
        }
        if page.gold.facts.is_empty() {
            continue;
        }
        let view = PageView::build(&page.id, &page.html, kb);
        let mut page_labels = Vec::new();
        for fact in &page.gold.facts {
            let Some(fi) = view.fields.iter().position(|f| f.gt_id == Some(fact.gt_id)) else {
                continue;
            };
            let label = if fact.pred == "name" {
                ExtractLabel::Name
            } else {
                match kb.ontology().pred_by_name(&fact.pred) {
                    Some(p) => ExtractLabel::Pred(p),
                    None => continue, // predicate outside the ontology
                }
            };
            page_labels.push((fi, label));
        }
        if !page_labels.is_empty() {
            views.push(view);
            labels.push(page_labels);
        }
    }

    let mut run = SiteRun::default();
    run.stats.n_annotation_pages = views.len();
    run.stats.n_extraction_pages = eval_pages.len();
    if views.is_empty() {
        return run;
    }
    let examples: Vec<LabeledPage<'_>> = views
        .iter()
        .zip(labels.iter())
        .map(|(page, l)| LabeledPage { page, labels: l.clone() })
        .collect();
    let rules = learn_rules(&examples);
    run.stats.trained = !rules.is_empty();

    // Per-page parse + rule application fans out on the runtime; the
    // ordered merge keeps extraction order byte-identical to the serial
    // loop for every thread count.
    let rt = Runtime::with_threads(threads);
    let per_page: Vec<Vec<Extraction>> = rt.par_map(&eval_pages, |page| {
        let view = PageView::build(&page.id, &page.html, kb);
        apply_rules(&rules, &view)
    });
    run.extractions = per_page.into_iter().flatten().collect();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_synth::swde::{nba_vertical, SwdeConfig};

    #[test]
    fn vertex_runs_on_synthetic_site() {
        let (v, _) = nba_vertical(SwdeConfig { seed: 2, scale: 0.01 });
        let run = run_vertex_on_site(&v.kb, &v.sites[0], EvalProtocol::SplitHalves, 2, None);
        assert!(run.stats.trained);
        assert!(!run.extractions.is_empty());
    }

    #[test]
    fn protocol_split_partitions_pages() {
        let (v, _) = nba_vertical(SwdeConfig { seed: 2, scale: 0.01 });
        let site = &v.sites[1];
        let (train, eval) = protocol_pages(site, EvalProtocol::SplitHalves);
        assert_eq!(train.len() + eval.as_ref().unwrap().len(), site.pages.len());
        let (whole, none) = protocol_pages(site, EvalProtocol::WholeSite);
        assert_eq!(whole.len(), site.pages.len());
        assert!(none.is_none());
    }
}
