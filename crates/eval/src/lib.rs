//! # ceres-eval
//!
//! Evaluation harness: scores pipeline outputs against the generator's
//! node-level ground truth and regenerates every table and figure of the
//! paper's evaluation section (§5).
//!
//! * [`metrics`] — precision/recall/F1 counters, the node-level and
//!   triple-level correctness checks, and the page-hit protocol of Hao et
//!   al. used by Table 3;
//! * [`harness`] — wiring between `ceres-synth` datasets and the
//!   `ceres-core` pipelines (CERES-FULL / CERES-TOPIC / CERES-BASELINE /
//!   VERTEX++), including the 50/50 annotation-evaluation split protocol;
//! * [`experiments`] — one function per table/figure, each returning a
//!   printable report with the paper's reference numbers alongside;
//! * [`paper`] — the reference numbers transcribed from the paper.

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod paper;

pub use harness::{run_ceres_on_site, run_vertex_on_site, EvalProtocol, SystemKind};
pub use metrics::{GoldIndex, PageHitScorer, Prf, TripleScorer};
