//! Reference numbers transcribed from the paper, printed alongside our
//! measured values so every report is a paper-vs-reproduction comparison.

/// Table 3: F1 by vertical for systems we re-implement.
pub const TABLE3_REIMPLEMENTED: &[(&str, [Option<f64>; 4])] = &[
    // (system, [Movie, NBAPlayer, University, Book]); None = NA/OOM.
    ("Vertex++", [Some(0.90), Some(0.97), Some(1.00), Some(0.94)]),
    ("CERES-Baseline", [None, Some(0.78), Some(0.72), Some(0.27)]),
    ("CERES-Topic", [Some(0.99), Some(0.97), Some(0.96), Some(0.72)]),
    ("CERES-Full", [Some(0.99), Some(0.98), Some(0.94), Some(0.76)]),
];

/// Table 3: literature systems we cannot rerun (printed as reference only).
pub const TABLE3_LITERATURE: &[(&str, &str, [Option<f64>; 4])] = &[
    ("Hao et al. [19]", "yes", [Some(0.79), Some(0.82), Some(0.83), Some(0.86)]),
    ("XTPath [7]", "yes", [Some(0.94), Some(0.98), Some(0.98), Some(0.97)]),
    ("BigGrams [26]", "yes", [Some(0.74), Some(0.90), Some(0.79), Some(0.78)]),
    ("LODIE-Ideal [15]", "no", [Some(0.86), Some(0.90), Some(0.96), Some(0.85)]),
    ("LODIE-LOD [15]", "no", [Some(0.76), Some(0.87), Some(0.91), Some(0.78)]),
    ("RR+WADaR [29]", "no", [Some(0.73), Some(0.80), Some(0.79), Some(0.70)]),
    ("RR+WADaR 2 [30]", "no", [Some(0.75), Some(0.91), Some(0.79), Some(0.71)]),
    ("Bronzi et al. [4]", "no", [Some(0.93), Some(0.89), Some(0.97), Some(0.91)]),
];

/// Table 5 (extraction on IMDb, CERES-Full): (domain, predicate, P, R).
pub const TABLE5_FULL: &[(&str, &str, f64, f64)] = &[
    ("Person", "name", 1.0, 1.0),
    ("Person", "person.hasAlias.name", 0.98, 1.0),
    ("Person", "person.placeOfBirth", 1.0, 0.93),
    ("Person", "person.actedIn.film", 0.93, 0.65),
    ("Person", "person.directorOf.film", 0.95, 0.95),
    ("Person", "person.writerOf.film", 0.89, 0.69),
    ("Person", "person.producerOf.film", 0.80, 0.44),
    ("Film/TV", "name", 1.0, 1.0),
    ("Film/TV", "film.hasCastMember.person", 1.0, 0.49),
    ("Film/TV", "film.wasDirectedBy.person", 0.93, 0.98),
    ("Film/TV", "film.wasWrittenBy.person", 0.99, 0.89),
    ("Film/TV", "film.hasReleaseDate.date", 1.0, 0.63),
    ("Film/TV", "film.releaseYear", 0.91, 1.0),
    ("Film/TV", "film.hasGenre.genre", 1.0, 0.99),
    ("Film/TV", "episode.episodeNumber", 1.0, 1.0),
    ("Film/TV", "episode.seasonNumber", 0.87, 1.0),
    ("Film/TV", "episode.series", 1.0, 1.0),
];

/// Table 5 overall rows: (domain, system, P, R).
pub const TABLE5_OVERALL: &[(&str, &str, f64, f64)] = &[
    ("Person", "CERES-Topic", 0.36, 0.65),
    ("Person", "CERES-Full", 0.93, 0.68),
    ("Film/TV", "CERES-Topic", 0.88, 0.59),
    ("Film/TV", "CERES-Full", 0.99, 0.65),
];

/// Table 6 overall annotation rows: (domain, system, P, R).
pub const TABLE6_OVERALL: &[(&str, &str, f64, f64)] = &[
    ("Person", "CERES-Topic", 0.46, 0.99),
    ("Person", "CERES-Full", 0.93, 0.78),
    ("Film/TV", "CERES-Topic", 0.53, 0.80),
    ("Film/TV", "CERES-Full", 0.96, 0.71),
];

/// Table 7: topic identification (domain, P, R, F1).
pub const TABLE7: &[(&str, f64, f64, f64)] =
    &[("Person", 0.99, 0.76, 0.86), ("Film/TV", 0.97, 0.88, 0.92)];

/// Table 8 headline: total pages, annotations, extractions, precision.
pub const TABLE8_TOTALS: (usize, usize, usize, f64) = (433_832, 414_074, 1_688_913, 0.83);

/// Figure 6 headline: at threshold 0.75, 1.25M extractions at 0.90
/// precision.
pub const FIG6_HEADLINE: (f64, usize, f64) = (0.75, 1_250_000, 0.90);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_well_formed() {
        assert_eq!(TABLE3_REIMPLEMENTED.len(), 4);
        assert_eq!(TABLE3_LITERATURE.len(), 8);
        assert!(TABLE5_FULL
            .iter()
            .all(|&(_, _, p, r)| (0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&r)));
        assert_eq!(TABLE7.len(), 2);
    }
}
