//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns a printable report containing both our measured
//! numbers and the paper's reference values. Expensive corpora (the
//! CommonCrawl-like run, the IMDb-like run, SWDE) are computed once and
//! shared between the tables that read them.

use crate::harness::{
    annotation_page_ids, eval_page_ids, protocol_pages, run_ceres_on_site, run_vertex_on_site,
    EvalProtocol, SystemKind,
};
use crate::metrics::{
    score_annotations, score_topics, GoldIndex, PageHitScorer, Prf, TripleScorer,
};
use crate::paper;
use ceres_core::baseline::{run_baseline, BaselineConfig};
use ceres_core::extract::ExtractLabel;
use ceres_core::pipeline::SiteRun;
use ceres_core::{CeresConfig, XPathDistance};
use ceres_runtime::Runtime;
use ceres_synth::commoncrawl::{self, CcDataset};
use ceres_synth::imdb::{self, ImdbDataset};
use ceres_synth::swde::{
    book_vertical, movie_vertical, nba_vertical, university_vertical, SwdeConfig, SwdeVertical,
};
use ceres_synth::Site;
use ceres_text::FxHashMap;
use std::fmt::Write as _;

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    pub seed: u64,
    /// Corpus scale relative to the paper (1.0 = paper-sized page counts).
    pub scale: f64,
    /// Worker threads for the per-site experiment loops (`None` = the
    /// `CERES_THREADS` env var, then available parallelism). Reports are
    /// byte-identical for every value.
    pub threads: Option<usize>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { seed: 42, scale: 0.1, threads: None }
    }
}

fn ceres_cfg(e: &ExpConfig) -> CeresConfig {
    // Fan-out happens at the site level (the experiment loops below); the
    // inner pipeline runs sequentially so N sites × M cluster jobs don't
    // oversubscribe the machine N×M-fold. Output is identical either way.
    CeresConfig::new(e.seed).with_threads(1)
}

/// The runtime the per-site experiment loops fan out on.
fn rt(e: &ExpConfig) -> Runtime {
    Runtime::with_threads(e.threads)
}

fn fmt_f(x: f64) -> String {
    format!("{x:.2}")
}

fn fmt_opt(x: Option<f64>) -> String {
    x.map(fmt_f).unwrap_or_else(|| "NA".to_string())
}

/// Render an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", c, w = widths[i.min(widths.len() - 1)]);
        }
        out.push('\n');
    };
    line(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

// ====================================================================
// Shared expensive runs
// ====================================================================

/// All four SWDE verticals plus per-system runs (Tables 3, 4, Figures 4, 5).
pub struct SwdeOutcome {
    pub verticals: Vec<SwdeVertical>,
}

pub fn build_swde(e: &ExpConfig) -> SwdeOutcome {
    let cfg = SwdeConfig { seed: e.seed, scale: e.scale };
    let (movie, _) = movie_vertical(cfg);
    let (nba, _) = nba_vertical(cfg);
    let (university, _) = university_vertical(cfg);
    let (book, _) = book_vertical(cfg);
    SwdeOutcome { verticals: vec![movie, nba, university, book] }
}

/// Predicates a DS system can be scored on: present in the KB (footnote a
/// of Table 3 — MPAA-Rating is excluded because it has no seed triples).
fn ds_attributes(v: &SwdeVertical) -> Vec<&str> {
    let per_pred: FxHashMap<&str, usize> =
        v.kb.triples_per_pred()
            .into_iter()
            .map(|(p, n)| (v.kb.ontology().pred_name(p), n))
            .collect();
    v.attributes
        .iter()
        .filter(|(_, pred)| *pred == "name" || per_pred.get(pred).copied().unwrap_or(0) > 0)
        .map(|(_, pred)| *pred)
        .collect()
}

/// The IMDb-like runs shared by Tables 5–7.
pub struct ImdbOutcome {
    pub data: ImdbDataset,
    /// (domain, system, run)
    pub runs: Vec<(&'static str, SystemKind, SiteRun)>,
}

pub fn build_imdb(e: &ExpConfig) -> ImdbOutcome {
    let data = imdb::generate(e.seed, e.scale);
    let cfg = ceres_cfg(e);
    let jobs: Vec<(&'static str, &Site, SystemKind)> = vec![
        ("Film/TV", &data.movie_site, SystemKind::CeresTopic),
        ("Film/TV", &data.movie_site, SystemKind::CeresFull),
        ("Person", &data.person_site, SystemKind::CeresTopic),
        ("Person", &data.person_site, SystemKind::CeresFull),
    ];
    let runs: Vec<(&'static str, SystemKind, SiteRun)> =
        rt(e).par_map(&jobs, |(domain, site, system)| {
            (
                *domain,
                *system,
                run_ceres_on_site(&data.kb, site, EvalProtocol::SplitHalves, &cfg, *system),
            )
        });
    ImdbOutcome { data, runs }
}

/// The CommonCrawl-like run shared by Tables 8, 9 and Figure 6.
pub struct CcOutcome {
    pub data: CcDataset,
    pub runs: Vec<SiteRun>,
    /// Per-extraction (site index, confidence, correct) — threshold sweeps.
    pub scored: Vec<(usize, f64, bool)>,
}

pub fn build_commoncrawl(e: &ExpConfig) -> CcOutcome {
    let data = commoncrawl::generate(e.seed, e.scale);
    let cfg = ceres_cfg(e);
    let runs: Vec<SiteRun> = rt(e).par_map(&data.sites, |site| {
        run_ceres_on_site(&data.kb, site, EvalProtocol::WholeSite, &cfg, SystemKind::CeresFull)
    });
    let mut scored = Vec::new();
    for (si, (site, run)) in data.sites.iter().zip(&runs).enumerate() {
        let gold = GoldIndex::new(site);
        for ex in &run.extractions {
            scored.push((si, ex.confidence, gold.extraction_correct(&data.kb, ex)));
        }
    }
    CcOutcome { data, runs, scored }
}

// ====================================================================
// Tables
// ====================================================================

/// Table 1: the SWDE subset overview.
pub fn table1(e: &ExpConfig) -> String {
    let swde = build_swde(e);
    let rows: Vec<Vec<String>> = swde
        .verticals
        .iter()
        .map(|v| {
            let pages: usize = v.sites.iter().map(|s| s.pages.len()).sum();
            let attrs: Vec<&str> = v.attributes.iter().map(|(d, _)| *d).collect();
            vec![v.name.to_string(), v.sites.len().to_string(), pages.to_string(), attrs.join(", ")]
        })
        .collect();
    format!(
        "Table 1 — SWDE-like verticals (scale {}; paper: 20000/20000/4405/16705 pages)\n\n{}",
        e.scale,
        render_table(&["Vertical", "#Sites", "#Pages", "Attributes"], &rows)
    )
}

/// Table 2: seed-KB composition for the movie vertical.
pub fn table2(e: &ExpConfig) -> String {
    let (v, _) = movie_vertical(SwdeConfig { seed: e.seed, scale: e.scale });
    let stats = v.kb.stats();
    let rows: Vec<Vec<String>> = stats
        .types
        .iter()
        .map(|t| vec![t.type_name.clone(), t.instances.to_string(), t.predicates.to_string()])
        .collect();
    format!(
        "Table 2 — seed-KB entity types (scale {}; paper KB: Person 7.67M, Film 0.43M, \
         TV Series 0.12M, TV Episode 1.09M; 85M triples)\n\nTotal triples: {}\n\n{}",
        e.scale,
        stats.n_triples,
        render_table(&["Entity Type", "#Instances", "#Predicates"], &rows)
    )
}

/// One vertical × one system → mean page-hit F1 (None = OOM/NA).
fn system_vertical_f1(
    rt: &Runtime,
    v: &SwdeVertical,
    system: SystemKind,
    cfg: &CeresConfig,
    baseline_budget: usize,
) -> Option<f64> {
    let attrs: Vec<&str> = match system {
        SystemKind::VertexPlusPlus => v.attributes.iter().map(|(_, p)| *p).collect(),
        _ => ds_attributes(v),
    };
    let site_f1: Vec<Option<f64>> = rt.par_map(&v.sites, |site| {
        let run = match system {
            SystemKind::CeresBaseline => {
                let (train, eval) = protocol_pages(site, EvalProtocol::SplitHalves);
                let bcfg = BaselineConfig { max_pairs: baseline_budget, ..Default::default() };
                run_baseline(&v.kb, &train, eval.as_deref(), cfg, &bcfg)
            }
            _ => run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, cfg, system),
        };
        if run.stats.oom {
            return None;
        }
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let scorer = PageHitScorer::score(&v.kb, &gold, &ids, &run.extractions, &attrs);
        Some(scorer.mean_f1(&attrs))
    });
    if site_f1.iter().any(|f| f.is_none()) {
        return None; // at least one site OOMed → NA, like the paper
    }
    let vals: Vec<f64> = site_f1.into_iter().flatten().collect();
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Table 3: SWDE F1 comparison across systems.
pub fn table3(e: &ExpConfig) -> String {
    let swde = build_swde(e);
    let cfg = ceres_cfg(e);
    // The pair budget models the paper's fixed 32 GB against the paper-
    // sized KB; it scales with the corpus so the Movie vertical (largest
    // KB/page overlap) exhausts it first, as in the paper.
    let baseline_budget = ((2_000_000.0 * e.scale) as usize).max(50_000);

    let systems = [
        SystemKind::VertexPlusPlus,
        SystemKind::CeresBaseline,
        SystemKind::CeresTopic,
        SystemKind::CeresFull,
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, manual, f1s) in paper::TABLE3_LITERATURE {
        let mut row = vec![format!("{name} (paper)"), manual.to_string()];
        row.extend(f1s.iter().map(|f| fmt_opt(*f)));
        rows.push(row);
    }
    for (si, system) in systems.iter().enumerate() {
        let paper_row = paper::TABLE3_REIMPLEMENTED[si];
        let mut row = vec![
            format!("{} (paper)", paper_row.0),
            if *system == SystemKind::VertexPlusPlus { "yes" } else { "no" }.to_string(),
        ];
        row.extend(paper_row.1.iter().map(|f| fmt_opt(*f)));
        rows.push(row);

        let mut ours = vec![
            format!("{} (ours)", system.label()),
            if *system == SystemKind::VertexPlusPlus { "yes" } else { "no" }.to_string(),
        ];
        for v in &swde.verticals {
            let f1 = system_vertical_f1(&rt(e), v, *system, &cfg, baseline_budget);
            ours.push(fmt_opt(f1));
        }
        rows.push(ours);
    }
    format!(
        "Table 3 — SWDE page-hit F1 (scale {}, threshold 0.5; 'NA' = out of memory)\n\n{}",
        e.scale,
        render_table(&["System", "Manual", "Movie", "NBAPlayer", "University", "Book"], &rows)
    )
}

/// Table 4: per-predicate P/R/F1, VERTEX++ vs CERES-FULL, all triples.
pub fn table4(e: &ExpConfig) -> String {
    let swde = build_swde(e);
    let cfg = ceres_cfg(e);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for v in &swde.verticals {
        // Aggregate counts across sites per predicate.
        let mut vertex_scores: FxHashMap<String, Prf> = FxHashMap::default();
        let mut full_scores: FxHashMap<String, Prf> = FxHashMap::default();
        let preds: Vec<&str> = v.attributes.iter().map(|(_, p)| *p).collect();
        let per_site: Vec<(TripleScorer, TripleScorer)> = rt(e).par_map(&v.sites, |site| {
            let gold = GoldIndex::new(site);
            let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
            // Site-level fan-out is the outer par_map; keep Vertex inner-
            // sequential, like ceres_cfg does for the pipeline.
            let vrun = run_vertex_on_site(&v.kb, site, EvalProtocol::SplitHalves, 2, Some(1));
            let frun = run_ceres_on_site(
                &v.kb,
                site,
                EvalProtocol::SplitHalves,
                &cfg,
                SystemKind::CeresFull,
            );
            (
                TripleScorer::score(&v.kb, &gold, &ids, &vrun.extractions, Some(&preds)),
                TripleScorer::score(&v.kb, &gold, &ids, &frun.extractions, Some(&preds)),
            )
        });
        for (vs, fs) in per_site {
            for (p, c) in vs.per_pred {
                vertex_scores.entry(p).or_default().add(c);
            }
            for (p, c) in fs.per_pred {
                full_scores.entry(p).or_default().add(c);
            }
        }
        for (display, pred) in &v.attributes {
            let vp = vertex_scores.get(*pred).copied().unwrap_or_default();
            let fp = full_scores.get(*pred).copied().unwrap_or_default();
            let na = fp == Prf::default();
            rows.push(vec![
                v.name.to_string(),
                display.to_string(),
                fmt_f(vp.precision()),
                fmt_f(vp.recall()),
                fmt_f(vp.f1()),
                if na { "NA".into() } else { fmt_f(fp.precision()) },
                if na { "NA".into() } else { fmt_f(fp.recall()) },
                if na { "NA".into() } else { fmt_f(fp.f1()) },
            ]);
        }
    }
    format!(
        "Table 4 — per-predicate extraction quality (all triples), Vertex++ vs CERES-Full \
         (scale {}; paper averages: Movie .97/.98, NBA 1.0/.98, University .99/.90, Book .93/.70)\n\n{}",
        e.scale,
        render_table(
            &["Vertical", "Predicate", "V++ P", "V++ R", "V++ F1", "Full P", "Full R", "Full F1"],
            &rows
        )
    )
}

/// Short predicate display name (strip the `type.` prefix).
fn short_pred(p: &str) -> String {
    p.to_string()
}

/// Table 5: IMDb-like extraction quality, CERES-TOPIC vs CERES-FULL.
pub fn table5(e: &ExpConfig, imdb: &ImdbOutcome) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for domain in ["Person", "Film/TV"] {
        let site = if domain == "Person" { &imdb.data.person_site } else { &imdb.data.movie_site };
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let get = |system: SystemKind| -> &SiteRun {
            &imdb.runs.iter().find(|(d, s, _)| *d == domain && *s == system).unwrap().2
        };
        let topic = TripleScorer::score(
            &imdb.data.kb,
            &gold,
            &ids,
            &get(SystemKind::CeresTopic).extractions,
            None,
        );
        let full = TripleScorer::score(
            &imdb.data.kb,
            &gold,
            &ids,
            &get(SystemKind::CeresFull).extractions,
            None,
        );

        let mut preds: Vec<&String> = full.per_pred.keys().collect();
        preds.sort();
        for pred in preds {
            let t = topic.prf(pred).unwrap_or_default();
            let f = full.prf(pred).unwrap_or_default();
            let paper_ref = paper::TABLE5_FULL
                .iter()
                .find(|(d, p, _, _)| *d == domain && *p == pred.as_str())
                .map(|(_, _, p, r)| format!("{p:.2}/{r:.2}"))
                .unwrap_or_else(|| "-".into());
            rows.push(vec![
                domain.to_string(),
                short_pred(pred),
                fmt_f(t.precision()),
                fmt_f(t.recall()),
                fmt_f(f.precision()),
                fmt_f(f.recall()),
                paper_ref,
            ]);
        }
        let (to, fo) = (topic.overall(), full.overall());
        let paper_overall: Vec<String> = paper::TABLE5_OVERALL
            .iter()
            .filter(|(d, ..)| *d == domain)
            .map(|(_, s, p, r)| format!("{s}={p:.2}/{r:.2}"))
            .collect();
        rows.push(vec![
            domain.to_string(),
            "ALL".to_string(),
            fmt_f(to.precision()),
            fmt_f(to.recall()),
            fmt_f(fo.precision()),
            fmt_f(fo.recall()),
            paper_overall.join(" "),
        ]);
    }
    format!(
        "Table 5 — IMDb-like extraction quality (scale {}, threshold 0.5)\n\n{}",
        e.scale,
        render_table(
            &["Domain", "Predicate", "Topic P", "Topic R", "Full P", "Full R", "Paper Full P/R"],
            &rows
        )
    )
}

/// Table 6: annotation accuracy on the IMDb-like sites.
pub fn table6(_e: &ExpConfig, imdb: &ImdbOutcome) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for domain in ["Person", "Film/TV"] {
        let site = if domain == "Person" { &imdb.data.person_site } else { &imdb.data.movie_site };
        let gold = GoldIndex::new(site);
        let ann_ids = annotation_page_ids(site, EvalProtocol::SplitHalves);
        for system in [SystemKind::CeresTopic, SystemKind::CeresFull] {
            let run = &imdb.runs.iter().find(|(d, s, _)| *d == domain && *s == system).unwrap().2;
            let per_pred =
                score_annotations(&imdb.data.kb, &gold, &ann_ids, &run.annotation_records);
            let mut total = Prf::default();
            // lint: allow(CL001) reason="Prf::add sums integer tp/fp/fn counts, which is commutative — any visit order produces identical totals"
            for p in per_pred.values() {
                total.add(*p);
            }
            let paper_ref = paper::TABLE6_OVERALL
                .iter()
                .find(|(d, s, ..)| *d == domain && *s == system.label())
                .map(|(_, _, p, r)| format!("{p:.2}/{r:.2}"))
                .unwrap_or_else(|| "-".into());
            rows.push(vec![
                domain.to_string(),
                system.label().to_string(),
                fmt_f(total.precision()),
                fmt_f(total.recall()),
                fmt_f(total.f1()),
                paper_ref,
            ]);
        }
    }
    format!(
        "Table 6 — annotation accuracy (all annotations; paper values are the \
         'All Annotations' rows)\n\n{}",
        render_table(&["Domain", "System", "P", "R", "F1", "Paper P/R"], &rows)
    )
}

/// Table 7: topic identification accuracy on the IMDb-like sites.
pub fn table7(e: &ExpConfig, imdb: &ImdbOutcome) -> String {
    let _ = e;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (domain, paper_row) in [("Person", paper::TABLE7[0]), ("Film/TV", paper::TABLE7[1])] {
        let site = if domain == "Person" { &imdb.data.person_site } else { &imdb.data.movie_site };
        let gold = GoldIndex::new(site);
        let run = &imdb
            .runs
            .iter()
            .find(|(d, s, _)| *d == domain && *s == SystemKind::CeresFull)
            .unwrap()
            .2;
        let prf = score_topics(&imdb.data.kb, &gold, &run.topic_records);
        rows.push(vec![
            domain.to_string(),
            fmt_f(prf.precision()),
            fmt_f(prf.recall()),
            fmt_f(prf.f1()),
            format!("{:.2}/{:.2}/{:.2}", paper_row.1, paper_row.2, paper_row.3),
        ]);
    }
    format!(
        "Table 7 — topic identification accuracy\n\n{}",
        render_table(&["Domain", "P", "R", "F1", "Paper P/R/F1"], &rows)
    )
}

/// Table 8: the 33 long-tail sites.
pub fn table8(e: &ExpConfig, cc: &CcOutcome) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut tot_pages = 0usize;
    let mut tot_ann_pages = 0usize;
    let mut tot_ann = 0usize;
    let (mut tot_ex, mut tot_correct) = (0usize, 0usize);
    for (si, (site, run)) in cc.data.sites.iter().zip(&cc.runs).enumerate() {
        let n_ex = run.extractions.len();
        let correct = cc.scored.iter().filter(|&&(s, _, c)| s == si && c).count();
        let precision = if n_ex == 0 { None } else { Some(correct as f64 / n_ex as f64) };
        tot_pages += site.pages.len();
        tot_ann_pages += run.stats.n_annotated_pages;
        tot_ann += run.stats.n_annotations;
        tot_ex += n_ex;
        tot_correct += correct;
        let ratio_pages = if run.stats.n_annotated_pages == 0 {
            0.0
        } else {
            // extracted pages ≈ pages with ≥1 extraction
            let pages_with_ex: std::collections::BTreeSet<&str> =
                run.extractions.iter().map(|x| x.page_id.as_str()).collect();
            pages_with_ex.len() as f64 / run.stats.n_annotated_pages as f64
        };
        let ratio_ex = if run.stats.n_annotations == 0 {
            0.0
        } else {
            n_ex as f64 / run.stats.n_annotations as f64
        };
        rows.push(vec![
            site.name.clone(),
            site.focus.clone(),
            site.pages.len().to_string(),
            run.stats.n_annotated_pages.to_string(),
            run.stats.n_annotations.to_string(),
            n_ex.to_string(),
            format!("{ratio_pages:.2}"),
            format!("{ratio_ex:.2}"),
            precision.map(|p| format!("{p:.2}")).unwrap_or_else(|| "NA".into()),
        ]);
    }
    let overall_p = if tot_ex == 0 { 0.0 } else { tot_correct as f64 / tot_ex as f64 };
    rows.push(vec![
        "TOTAL".into(),
        "-".into(),
        tot_pages.to_string(),
        tot_ann_pages.to_string(),
        tot_ann.to_string(),
        tot_ex.to_string(),
        "-".into(),
        format!("{:.2}", if tot_ann == 0 { 0.0 } else { tot_ex as f64 / tot_ann as f64 }),
        format!("{overall_p:.2}"),
    ]);
    format!(
        "Table 8 — long-tail movie sites at threshold 0.5 (scale {}; paper totals: \
         {} pages, {} annotations, {} extractions, precision {:.2})\n\n{}",
        e.scale,
        paper::TABLE8_TOTALS.0,
        paper::TABLE8_TOTALS.1,
        paper::TABLE8_TOTALS.2,
        paper::TABLE8_TOTALS.3,
        render_table(
            &[
                "Website",
                "Focus",
                "#Pages",
                "#AnnPages",
                "#Ann",
                "#Extr",
                "ExtPg/AnnPg",
                "Ext/Ann",
                "Prec"
            ],
            &rows
        )
    )
}

/// Table 9: the ten most-extracted predicates on the CommonCrawl-like run.
pub fn table9(e: &ExpConfig, cc: &CcOutcome) -> String {
    let kb = &cc.data.kb;
    let mut ann_per_pred: FxHashMap<String, usize> = FxHashMap::default();
    for run in &cc.runs {
        for r in &run.annotation_records {
            *ann_per_pred.entry(r.pred.clone()).or_default() += 1;
        }
    }
    #[derive(Default)]
    struct Agg {
        n: usize,
        correct: usize,
    }
    let mut per_pred: FxHashMap<String, Agg> = FxHashMap::default();
    for (si, run) in cc.runs.iter().enumerate() {
        let gold = GoldIndex::new(&cc.data.sites[si]);
        for ex in &run.extractions {
            let pred = match &ex.label {
                ExtractLabel::Name => "name".to_string(),
                ExtractLabel::Pred(p) => kb.ontology().pred_name(*p).to_string(),
            };
            let a = per_pred.entry(pred).or_default();
            a.n += 1;
            if gold.extraction_correct(kb, ex) {
                a.correct += 1;
            }
        }
    }
    let mut entries: Vec<(String, Agg)> = per_pred.into_iter().collect();
    entries.sort_by(|a, b| b.1.n.cmp(&a.1.n).then(a.0.cmp(&b.0)));
    let rows: Vec<Vec<String>> = entries
        .iter()
        .take(10)
        .map(|(pred, a)| {
            vec![
                pred.clone(),
                ann_per_pred.get(pred).copied().unwrap_or(0).to_string(),
                a.n.to_string(),
                format!("{:.2}", if a.n == 0 { 0.0 } else { a.correct as f64 / a.n as f64 }),
            ]
        })
        .collect();
    format!(
        "Table 9 — top-10 predicates by extraction count at threshold 0.5 (scale {}; \
         paper top-3: hasCastMember 441k@0.98, actedIn 380k@0.96, hasGenre 175k@0.90)\n\n{}",
        e.scale,
        render_table(&["Predicate", "#Annotations", "#Extractions", "Precision"], &rows)
    )
}

// ====================================================================
// Figures
// ====================================================================

/// Figure 2: XPath index drift for one predicate across two pages.
pub fn fig2(e: &ExpConfig) -> String {
    use ceres_core::page::PageView;
    let data = imdb::generate(e.seed, (e.scale * 0.25).max(0.01));
    let kb = &data.kb;
    // Find two person pages with acted-in gold and compare the XPaths of
    // their first acted-in mention.
    let mut found: Vec<(String, String)> = Vec::new();
    for page in &data.person_site.pages {
        let Some(fact) =
            page.gold.facts.iter().find(|f| f.pred == ceres_synth::schema::movie::ACTED_IN)
        else {
            continue;
        };
        let view = PageView::build(&page.id, &page.html, kb);
        if let Some(field) = view.fields.iter().find(|f| f.gt_id == Some(fact.gt_id)) {
            found.push((page.id.clone(), field.xpath.to_string()));
        }
        if found.len() == 2 {
            break;
        }
    }
    if found.len() < 2 {
        return "Figure 2 — not enough person pages at this scale".to_string();
    }
    let d = ceres_text::levenshtein(&found[0].1, &found[1].1);
    format!(
        "Figure 2 — 'acted in' XPaths on two person pages (ad blocks and optional\n\
         sections shift sibling indices, exactly the Winfrey/McKellen divergence):\n\n\
         {}:\n  {}\n{}:\n  {}\n\ncharacter-level Levenshtein distance = {}\n",
        found[0].0, found[0].1, found[1].0, found[1].1, d
    )
}

/// Figure 4: Book vertical — F1 vs seed-KB overlap per site.
pub fn fig4(e: &ExpConfig) -> String {
    let (v, _world) = book_vertical(SwdeConfig { seed: e.seed, scale: e.scale });
    let cfg = ceres_cfg(e);
    let preds: Vec<&str> = v.attributes.iter().map(|(_, p)| *p).collect();
    let results: Vec<(String, usize, f64)> = rt(e).par_map(&v.sites[1..], |site| {
        let overlap = site
            .pages
            .iter()
            .filter(|p| {
                p.gold.topic.as_deref().map(|t| !v.kb.match_text(t).is_empty()).unwrap_or(false)
            })
            .count();
        let run =
            run_ceres_on_site(&v.kb, site, EvalProtocol::SplitHalves, &cfg, SystemKind::CeresFull);
        let gold = GoldIndex::new(site);
        let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
        let scorer = TripleScorer::score(&v.kb, &gold, &ids, &run.extractions, Some(&preds));
        (site.name.clone(), overlap, scorer.overall().f1())
    });
    let mut sorted = results;
    sorted.sort_by_key(|(_, o, _)| *o);
    let rows: Vec<Vec<String>> =
        sorted.iter().map(|(name, o, f1)| vec![name.clone(), o.to_string(), fmt_f(*f1)]).collect();
    format!(
        "Figure 4 — Book vertical: extraction F1 vs #books overlapping the seed KB\n\
         (paper: lower overlap ⇒ lower recall; sites with ≤5 overlapping pages score ~0)\n\n{}",
        render_table(&["Site", "#KB-overlapping pages", "F1"], &rows)
    )
}

/// Figure 5: Movie vertical — F1 vs annotated-page cap (log-scale x).
pub fn fig5(e: &ExpConfig) -> String {
    let (v, _) = movie_vertical(SwdeConfig { seed: e.seed, scale: e.scale });
    let attrs = ds_attributes(&v);
    let caps: Vec<usize> = [1usize, 2, 5, 10, 25, 50, 100, 250, 500]
        .into_iter()
        .filter(|&c| c <= v.sites[0].pages.len() / 2 + 50)
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &cap in &caps {
        let mut cfg = ceres_cfg(e);
        cfg.max_annotated_pages = Some(cap);
        let f1s: Vec<f64> = rt(e).par_map(&v.sites, |site| {
            let run = run_ceres_on_site(
                &v.kb,
                site,
                EvalProtocol::SplitHalves,
                &cfg,
                SystemKind::CeresFull,
            );
            let gold = GoldIndex::new(site);
            let ids = eval_page_ids(site, EvalProtocol::SplitHalves);
            PageHitScorer::score(&v.kb, &gold, &ids, &run.extractions, &attrs).mean_f1(&attrs)
        });
        let mean = f1s.iter().sum::<f64>() / f1s.len() as f64;
        rows.push(vec![cap.to_string(), fmt_f(mean)]);
    }
    format!(
        "Figure 5 — Movie vertical: page-hit F1 vs #annotated pages used for learning\n\
         (paper: F1 rises steeply in the 1–20 page range, then saturates)\n\n{}",
        render_table(&["#Annotated pages (cap)", "Mean F1"], &rows)
    )
}

/// Figure 6: precision vs number of extractions at varying thresholds.
pub fn fig6(e: &ExpConfig, cc: &CcOutcome) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for t in [0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let kept: Vec<&(usize, f64, bool)> = cc.scored.iter().filter(|(_, c, _)| *c >= t).collect();
        let n = kept.len();
        let correct = kept.iter().filter(|(_, _, ok)| *ok).count();
        let p = if n == 0 { 0.0 } else { correct as f64 / n as f64 };
        rows.push(vec![format!("{t:.2}"), n.to_string(), format!("{p:.3}")]);
    }
    format!(
        "Figure 6 — precision vs #extractions by confidence threshold (scale {};\n\
         paper: threshold 0.75 ⇒ 1.25M extractions at 0.90 precision; precision rises\n\
         monotonically with the threshold)\n\n{}",
        e.scale,
        render_table(&["Threshold", "#Extractions", "Precision"], &rows)
    )
}

// ====================================================================
// Ablations (DESIGN.md §5)
// ====================================================================

/// Run CERES-Full on the IMDb-like person site under configuration
/// variants; report overall triple P/R/F1.
pub fn ablations(e: &ExpConfig) -> String {
    let data = imdb::generate(e.seed, e.scale);
    let site = &data.person_site;
    let gold = GoldIndex::new(site);
    let ids = eval_page_ids(site, EvalProtocol::SplitHalves);

    let variants: Vec<(&str, CeresConfig)> = vec![
        ("full (default)", ceres_cfg(e)),
        ("no list-index exclusion", {
            let mut c = ceres_cfg(e);
            c.list_exclusion = false;
            c
        }),
        ("no text features", {
            let mut c = ceres_cfg(e);
            c.features.enable_text = false;
            c
        }),
        ("SGD optimizer", {
            let mut c = ceres_cfg(e);
            c.train.optimizer = ceres_ml::Optimizer::Sgd;
            c
        }),
        ("step-level XPath distance", {
            let mut c = ceres_cfg(e);
            c.annotate.distance = XPathDistance::Step;
            c
        }),
    ];
    let results: Vec<(String, Prf, usize)> = rt(e).par_map(&variants, |(name, cfg)| {
        let run = run_ceres_on_site(
            &data.kb,
            site,
            EvalProtocol::SplitHalves,
            cfg,
            SystemKind::CeresFull,
        );
        let scorer = TripleScorer::score(&data.kb, &gold, &ids, &run.extractions, None);
        (name.to_string(), scorer.overall(), run.extractions.len())
    });
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, prf, n)| {
            vec![
                name.clone(),
                fmt_f(prf.precision()),
                fmt_f(prf.recall()),
                fmt_f(prf.f1()),
                n.to_string(),
            ]
        })
        .collect();
    format!(
        "Ablations — CERES-Full on the IMDb-like Person site (scale {})\n\n{}",
        e.scale,
        render_table(&["Variant", "P", "R", "F1", "#Extractions"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig { seed: 3, scale: 0.01, threads: None }
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(&["A", "BB"], &[vec!["xxx".into(), "y".into()]]);
        assert!(t.contains("A"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn table1_and_table2_print() {
        let t1 = table1(&tiny());
        assert!(t1.contains("Movie") && t1.contains("Book"));
        let t2 = table2(&tiny());
        assert!(t2.contains("Film"));
    }

    #[test]
    fn fig2_shows_xpath_drift() {
        let f = fig2(&ExpConfig { seed: 3, scale: 0.04, threads: None });
        assert!(f.contains("Levenshtein"), "{f}");
    }

    #[test]
    fn report_is_thread_count_invariant() {
        // The eval-report half of the serial-vs-parallel equivalence suite:
        // the rendered report must be byte-identical at 1, 2, and 8 threads.
        let report =
            |threads: usize| fig4(&ExpConfig { seed: 3, scale: 0.01, threads: Some(threads) });
        let serial = report(1);
        assert_eq!(serial, report(2));
        assert_eq!(serial, report(8));
    }
}
