//! # ceres-store
//!
//! The versioned binary codec behind CERES's on-disk artifacts (the
//! [`TrainedSite`] file written by `repro train` and loaded by
//! `repro serve`). No serde exists in the offline vendor set, so the
//! format is hand-rolled and deliberately small:
//!
//! * **primitives** — little-endian throughout: LEB128 varints for
//!   unsigned ints ([`Writer::put_varint`]), zigzag varints for signed
//!   ([`Writer::put_ivarint`]), IEEE-754 bit patterns for floats (exact
//!   round-trip, so artifacts reproduce extraction confidences byte for
//!   byte), length-prefixed UTF-8 strings, and packed
//!   [string tables](Writer::put_str_table);
//! * **traits** — [`Encode`]/[`Decode`] with blanket impls for `Vec`,
//!   `Option`, pairs, and the scalar types, implemented by the layers
//!   above for their own structs (`SparseVec`, `LogReg`, `FeatureSpace`,
//!   `Clustering`, …);
//! * **framing** — an artifact is a magic + format-version header followed
//!   by tagged sections, each length-prefixed and guarded by an FNV-1a
//!   checksum ([`ArtifactWriter`]/[`ArtifactReader`]).
//!
//! Decoding is **total**: every code path returns a typed [`Error`]
//! instead of panicking, whatever bytes are thrown at it (truncated,
//! bit-flipped, version-bumped, or adversarially huge length prefixes —
//! allocation is capped and grows only as bytes actually arrive). The
//! workspace-level `tests/artifact.rs` fuzzes mutated artifacts against
//! this contract; in-crate proptests pin `decode(encode(x)) == x` for the
//! primitives.
//!
//! [`TrainedSite`]: ../ceres_core/session/struct.TrainedSite.html

use std::fmt;
use std::io::{Read, Write};

/// Most bytes a single LEB128 varint may occupy (10 × 7 bits ≥ 64 bits).
const MAX_VARINT_BYTES: usize = 10;

/// Initial-allocation cap for length-prefixed collections: a corrupted
/// length prefix must not translate into a giant up-front allocation, so
/// capacity beyond this grows only as elements actually decode. Exported
/// so hand-written `Decode` impls in other crates apply the same policy.
pub const PREALLOC_CAP: usize = 4096;

/// Everything that can go wrong while decoding an artifact.
///
/// The decoder's contract is that arbitrary input bytes produce one of
/// these — never a panic. Variants carry a `context` naming the field or
/// section being decoded so errors stay actionable ("checksum mismatch in
/// section `models`", not just "bad file").
#[derive(Debug)]
pub enum Error {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// Input ended mid-value.
    UnexpectedEof { context: &'static str },
    /// The file does not start with the expected magic bytes.
    BadMagic { expected: [u8; 8], found: [u8; 8] },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch { section: &'static str },
    /// A section other than the expected one came next.
    WrongSection { expected: &'static str, found_tag: u8 },
    /// A section decoded cleanly but left unread payload behind.
    TrailingBytes { section: &'static str, remaining: usize },
    /// A value decoded but violates an invariant of its type.
    Invalid { context: &'static str, detail: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "artifact i/o error: {e}"),
            Error::UnexpectedEof { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            Error::BadMagic { expected, found } => write!(
                f,
                "not a CERES artifact: expected magic {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                found
            ),
            Error::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported \
                 (this build reads up to version {supported})"
            ),
            Error::ChecksumMismatch { section } => {
                write!(f, "artifact section `{section}` is corrupted (checksum mismatch)")
            }
            Error::WrongSection { expected, found_tag } => {
                write!(f, "expected artifact section `{expected}`, found tag {found_tag:#04x}")
            }
            Error::TrailingBytes { section, remaining } => {
                write!(f, "artifact section `{section}` carries {remaining} unread trailing bytes")
            }
            Error::Invalid { context, detail } => {
                write!(f, "invalid artifact value for {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Codec result.
pub type Result<T> = std::result::Result<T, Error>;

/// Streaming FNV-1a (64-bit) — the section checksum and the hasher the
/// layers above use for artifact fingerprints (e.g. the KB identity a
/// trained site was built against).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of one byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An in-memory encode buffer with the format's primitive writers.
///
/// Writing is infallible (it only appends to a `Vec<u8>`); fallible I/O
/// happens once per section when [`ArtifactWriter`] flushes the buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// LEB128: 7 value bits per byte, high bit = continuation.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-mapped varint for signed integers.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_varint(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Exact IEEE-754 bit pattern: decode returns the identical float.
    pub fn put_f64(&mut self, v: f64) {
        self.put_bytes(&v.to_bits().to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.put_bytes(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }

    /// A packed string table: count, per-string byte lengths, then every
    /// string's bytes back to back. One length pass + one byte run beats
    /// N individual length-prefixed strings for large dictionaries (the
    /// feature dict of a trained site holds tens of thousands of names).
    pub fn put_str_table(&mut self, strings: &[String]) {
        self.put_varint(strings.len() as u64);
        for s in strings {
            self.put_varint(s.len() as u64);
        }
        for s in strings {
            self.put_bytes(s.as_bytes());
        }
    }

    pub fn put<T: Encode + ?Sized>(&mut self, value: &T) {
        value.encode(self);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one decoded section's payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof { context });
        }
        // lint: allow(CL004) reason="bounds proof: the remaining() guard above ensures pos + n <= buf.len(), so the range is in-bounds"
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    pub fn get_varint(&mut self, context: &'static str) -> Result<u64> {
        let mut v: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.get_u8(context)?;
            let bits = u64::from(byte & 0x7f);
            // The 10th byte may only carry the final bit of a u64.
            if i == MAX_VARINT_BYTES - 1 && byte > 0x01 {
                return Err(Error::Invalid {
                    context,
                    detail: "varint overflows 64 bits".to_string(),
                });
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        // lint: allow(CL003) reason="on the final iteration the byte is capped at 0x01, whose continuation bit is clear, so the loop always returns before falling through"
        unreachable!("loop returns on the capped final byte")
    }

    pub fn get_ivarint(&mut self, context: &'static str) -> Result<i64> {
        let z = self.get_varint(context)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn get_usize(&mut self, context: &'static str) -> Result<usize> {
        let v = self.get_varint(context)?;
        usize::try_from(v).map_err(|_| Error::Invalid {
            context,
            detail: format!("length {v} exceeds this platform's usize"),
        })
    }

    pub fn get_bool(&mut self, context: &'static str) -> Result<bool> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Invalid { context, detail: format!("bool byte {other:#04x}") }),
        }
    }

    pub fn get_f64(&mut self, context: &'static str) -> Result<f64> {
        let bytes = self.take(8, context)?;
        // lint: allow(CL003) reason="take(8) returned Ok, so the slice is exactly 8 bytes and the array conversion cannot fail"
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    pub fn get_f32(&mut self, context: &'static str) -> Result<f32> {
        let bytes = self.take(4, context)?;
        // lint: allow(CL003) reason="take(4) returned Ok, so the slice is exactly 4 bytes and the array conversion cannot fail"
        Ok(f32::from_bits(u32::from_le_bytes(bytes.try_into().expect("4 bytes"))))
    }

    pub fn get_str(&mut self, context: &'static str) -> Result<String> {
        let len = self.get_usize(context)?;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Invalid { context, detail: format!("non-UTF-8 string: {e}") })
    }

    /// Inverse of [`Writer::put_str_table`].
    pub fn get_str_table(&mut self, context: &'static str) -> Result<Vec<String>> {
        let count = self.get_usize(context)?;
        let mut lens = Vec::with_capacity(count.min(PREALLOC_CAP));
        let mut total: usize = 0;
        for _ in 0..count {
            let len = self.get_usize(context)?;
            total = total.checked_add(len).ok_or_else(|| Error::Invalid {
                context,
                detail: "string table total length overflows".to_string(),
            })?;
            lens.push(len);
        }
        let bytes = self.take(total, context)?;
        // One validation over the packed bytes, then split by the lengths.
        let text = std::str::from_utf8(bytes)
            .map_err(|e| Error::Invalid { context, detail: format!("non-UTF-8 table: {e}") })?;
        let mut out = Vec::with_capacity(count.min(PREALLOC_CAP));
        let mut at = 0usize;
        for len in lens {
            let end = at + len;
            let s = text.get(at..end).ok_or_else(|| Error::Invalid {
                context,
                detail: "string table length splits a UTF-8 character".to_string(),
            })?;
            out.push(s.to_string());
            at = end;
        }
        Ok(out)
    }

    pub fn get<T: Decode>(&mut self) -> Result<T> {
        T::decode(self)
    }

    /// Error unless every payload byte was consumed (corruption guard:
    /// a length prefix pointing into the middle of real data usually
    /// surfaces as leftovers).
    pub fn finish(&self, section: &'static str) -> Result<()> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(Error::TrailingBytes { section, remaining }),
        }
    }
}

// ---------------------------------------------------------------------------
// Encode / Decode
// ---------------------------------------------------------------------------

/// Types that can write themselves into a [`Writer`].
pub trait Encode {
    fn encode(&self, w: &mut Writer);
}

/// Types that can reconstruct themselves from a [`Reader`].
///
/// Implementations must be total: any byte sequence yields `Ok` or a
/// typed [`Error`], never a panic — validate every invariant the in-memory
/// type relies on (index bounds, sortedness, cross-field consistency).
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

macro_rules! impl_uint_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.get_varint(stringify!($t))?;
                <$t>::try_from(v).map_err(|_| Error::Invalid {
                    context: stringify!($t),
                    detail: format!("value {v} out of range"),
                })
            }
        }
    )*};
}

impl_uint_codec!(u16, u32, u64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_usize("usize")
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_bool("bool")
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_f64("f64")
    }
}

impl Encode for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_f32(*self);
    }
}

impl Decode for f32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_f32("f32")
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_str("string")
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.get_usize("vec length")?;
        let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(Error::Invalid {
                context: "option tag",
                detail: format!("tag byte {other:#04x}"),
            }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Artifact framing
// ---------------------------------------------------------------------------

/// Writes the artifact container: an 8-byte magic, a format-version
/// varint, then tagged sections (`tag u8`, payload length varint, payload
/// bytes, FNV-1a checksum u64). Each section is encoded in memory first so
/// its length and checksum are exact, then flushed to the sink.
#[derive(Debug)]
pub struct ArtifactWriter<W: Write> {
    sink: W,
}

impl<W: Write> ArtifactWriter<W> {
    pub fn new(mut sink: W, magic: [u8; 8], version: u32) -> Result<ArtifactWriter<W>> {
        sink.write_all(&magic)?;
        let mut header = Writer::new();
        header.put_varint(u64::from(version));
        sink.write_all(header.as_bytes())?;
        Ok(ArtifactWriter { sink })
    }

    /// Encode one section through `encode` and flush it framed.
    pub fn section(&mut self, tag: u8, encode: impl FnOnce(&mut Writer)) -> Result<()> {
        let mut w = Writer::new();
        encode(&mut w);
        let payload = w.into_bytes();
        let mut frame = Writer::new();
        frame.put_u8(tag);
        frame.put_varint(payload.len() as u64);
        self.sink.write_all(frame.as_bytes())?;
        self.sink.write_all(&payload)?;
        self.sink.write_all(&fnv1a64(&payload).to_le_bytes())?;
        Ok(())
    }

    pub fn finish(mut self) -> Result<()> {
        self.sink.flush()?;
        Ok(())
    }
}

/// Reads the artifact container written by [`ArtifactWriter`].
#[derive(Debug)]
pub struct ArtifactReader<R: Read> {
    source: R,
    version: u32,
}

impl<R: Read> ArtifactReader<R> {
    /// Read and validate the header. `supported_version` is the newest
    /// format this build understands; anything newer is refused with
    /// [`Error::UnsupportedVersion`] (older versions are handed to the
    /// caller via [`ArtifactReader::version`] for migration).
    pub fn new(mut source: R, magic: [u8; 8], supported_version: u32) -> Result<ArtifactReader<R>> {
        let mut found = [0u8; 8];
        read_exact(&mut source, &mut found, "artifact magic")?;
        if found != magic {
            return Err(Error::BadMagic { expected: magic, found });
        }
        let version64 = read_varint(&mut source, "format version")?;
        let version = u32::try_from(version64).map_err(|_| Error::Invalid {
            context: "format version",
            detail: format!("version {version64} does not fit in u32"),
        })?;
        if version > supported_version {
            return Err(Error::UnsupportedVersion { found: version, supported: supported_version });
        }
        Ok(ArtifactReader { source, version })
    }

    /// The file's format version (≤ the supported version passed to
    /// [`ArtifactReader::new`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Read the next section, requiring tag `tag`; returns the verified
    /// payload. `name` labels errors for humans.
    pub fn section(&mut self, tag: u8, name: &'static str) -> Result<Vec<u8>> {
        let mut tag_byte = [0u8; 1];
        read_exact(&mut self.source, &mut tag_byte, name)?;
        // lint: allow(CL004) reason="index 0 into a [u8; 1] fixed array is compile-time in-bounds"
        let found_tag = tag_byte[0];
        if found_tag != tag {
            return Err(Error::WrongSection { expected: name, found_tag });
        }
        let len = read_varint(&mut self.source, name)?;
        let len = usize::try_from(len).map_err(|_| Error::Invalid {
            context: name,
            detail: format!("section length {len} exceeds this platform's usize"),
        })?;
        // Chunked read: a corrupted length prefix must not become a giant
        // up-front allocation — the buffer grows only as bytes arrive, so
        // an absurd length fails with EOF after the real bytes run out.
        let mut payload = Vec::with_capacity(len.min(1 << 16));
        let mut chunk = [0u8; 1 << 12];
        while payload.len() < len {
            let want = (len - payload.len()).min(chunk.len());
            // lint: allow(CL004) reason="bounds proof: want is min-clamped to chunk.len(), so the range is in-bounds"
            let got = self.source.read(&mut chunk[..want])?;
            if got == 0 {
                return Err(Error::UnexpectedEof { context: name });
            }
            // lint: allow(CL004) reason="bounds proof: the Read contract caps got at the passed buffer's length, which is at most chunk.len()"
            payload.extend_from_slice(&chunk[..got]);
        }
        let mut checksum = [0u8; 8];
        read_exact(&mut self.source, &mut checksum, name)?;
        if u64::from_le_bytes(checksum) != fnv1a64(&payload) {
            return Err(Error::ChecksumMismatch { section: name });
        }
        Ok(payload)
    }
}

/// `read_exact` with EOF mapped to the codec's typed error.
fn read_exact(source: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<()> {
    source.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => Error::UnexpectedEof { context },
        _ => Error::Io(e),
    })
}

/// Byte-at-a-time varint read straight off an `impl Read` (header fields
/// sit outside any buffered section).
fn read_varint(source: &mut impl Read, context: &'static str) -> Result<u64> {
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT_BYTES {
        let mut byte = [0u8; 1];
        read_exact(source, &mut byte, context)?;
        // lint: allow(CL004) reason="index 0 into a [u8; 1] fixed array is compile-time in-bounds"
        let byte = byte[0];
        if i == MAX_VARINT_BYTES - 1 && byte > 0x01 {
            return Err(Error::Invalid { context, detail: "varint overflows 64 bits".to_string() });
        }
        v |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    // lint: allow(CL003) reason="on the final iteration the byte is capped at 0x01, whose continuation bit is clear, so the loop always returns before falling through"
    unreachable!("loop returns on the capped final byte")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(back, value);
        assert!(r.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [0u64, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint("v").unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut w = Writer::new();
            w.put_ivarint(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_ivarint("v").unwrap(), v);
        }
    }

    #[test]
    fn scalar_and_container_round_trips() {
        roundtrip(42u32);
        roundtrip(7usize);
        roundtrip(true);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(String::from("žánr: драма 🎬"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(vec![(String::from("a"), 1usize)]));
    }

    #[test]
    fn nan_bits_survive_exactly() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let back = Reader::new(&bytes).get_f64("nan").unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_input_is_a_typed_eof() {
        let mut w = Writer::new();
        w.put_str("hello world");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Reader::new(&bytes[..cut]).get_str("s").unwrap_err();
            assert!(matches!(err, Error::UnexpectedEof { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xffu8; 11];
        let err = Reader::new(&bytes).get_varint("v").unwrap_err();
        assert!(matches!(err, Error::Invalid { .. }), "{err:?}");
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = Writer::new();
        w.put_varint(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_str("s").unwrap_err();
        assert!(matches!(err, Error::Invalid { .. }));
    }

    #[test]
    fn huge_length_prefix_fails_without_allocating() {
        // Claims u64::MAX elements; must error out cheaply, not OOM.
        let mut w = Writer::new();
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Vec::<u32>::decode(&mut Reader::new(&bytes)).is_err());
        assert!(Reader::new(&bytes).get_str_table("t").is_err());
    }

    #[test]
    fn artifact_framing_round_trips_and_checks() {
        const MAGIC: [u8; 8] = *b"CERESTST";
        let mut file = Vec::new();
        let mut aw = ArtifactWriter::new(&mut file, MAGIC, 3).unwrap();
        aw.section(1, |w| w.put_str("alpha")).unwrap();
        aw.section(2, |w| w.put_varint(99)).unwrap();
        aw.finish().unwrap();

        let mut ar = ArtifactReader::new(&file[..], MAGIC, 3).unwrap();
        assert_eq!(ar.version(), 3);
        let s1 = ar.section(1, "one").unwrap();
        assert_eq!(Reader::new(&s1).get_str("s").unwrap(), "alpha");
        let s2 = ar.section(2, "two").unwrap();
        assert_eq!(Reader::new(&s2).get_varint("v").unwrap(), 99);

        // Wrong magic.
        assert!(matches!(
            ArtifactReader::new(&file[..], *b"WRONGMGC", 3).unwrap_err(),
            Error::BadMagic { .. }
        ));
        // Future version.
        assert!(matches!(
            ArtifactReader::new(&file[..], MAGIC, 2).unwrap_err(),
            Error::UnsupportedVersion { found: 3, supported: 2 }
        ));
        // A version varint beyond u32 is refused outright (never clamped
        // to a value that could pass the support check).
        let mut oversized = Vec::from(MAGIC);
        let mut vw = Writer::new();
        vw.put_varint(u64::from(u32::MAX) + 1);
        oversized.extend_from_slice(vw.as_bytes());
        assert!(matches!(
            ArtifactReader::new(&oversized[..], MAGIC, u32::MAX).unwrap_err(),
            Error::Invalid { context: "format version", .. }
        ));
        // Wrong section order.
        let mut ar = ArtifactReader::new(&file[..], MAGIC, 3).unwrap();
        assert!(matches!(
            ar.section(2, "two").unwrap_err(),
            Error::WrongSection { expected: "two", found_tag: 1 }
        ));
    }

    #[test]
    fn flipping_any_payload_byte_breaks_the_checksum() {
        const MAGIC: [u8; 8] = *b"CERESTST";
        let mut file = Vec::new();
        let mut aw = ArtifactWriter::new(&mut file, MAGIC, 1).unwrap();
        aw.section(7, |w| w.put_str("precious payload")).unwrap();
        aw.finish().unwrap();
        let header = 8 + 1; // magic + version varint
        let frame = 1 + 1; // tag + length varint (fits one byte here)
        let payload_len = file.len() - header - frame - 8;
        for i in 0..payload_len {
            let mut bad = file.clone();
            bad[header + frame + i] ^= 0x40;
            let mut ar = ArtifactReader::new(&bad[..], MAGIC, 1).unwrap();
            let err = ar.section(7, "payload").unwrap_err();
            assert!(matches!(err, Error::ChecksumMismatch { .. }), "byte {i}: {err:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_varint_round_trips(v in 0u64..u64::MAX) {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            prop_assert_eq!(r.get_varint("v").unwrap(), v);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn prop_ivarint_round_trips(v in i64::MIN..i64::MAX) {
            let mut w = Writer::new();
            w.put_ivarint(v);
            let bytes = w.into_bytes();
            prop_assert_eq!(Reader::new(&bytes).get_ivarint("v").unwrap(), v);
        }

        #[test]
        fn prop_str_table_round_trips(
            strings in proptest::collection::vec(".*", 0..24)
        ) {
            let mut w = Writer::new();
            w.put_str_table(&strings);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            prop_assert_eq!(r.get_str_table("t").unwrap(), strings);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn prop_decoding_random_bytes_never_panics(
            // u32 draw cast down so 0xff (all-continuation varint bytes,
            // the most adversarial value) is reachable — the vendored
            // shim has no inclusive-range strategy.
            raw in proptest::collection::vec(0u32..256, 0..128)
        ) {
            let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
            // Totality: whatever the primitive, arbitrary input decodes to
            // Ok or a typed error — asserting "no panic" by executing.
            let _ = Reader::new(&bytes).get_varint("v");
            let _ = Reader::new(&bytes).get_str("s");
            let _ = Reader::new(&bytes).get_str_table("t");
            let _ = Vec::<u32>::decode(&mut Reader::new(&bytes));
            let _ = Vec::<(String, usize)>::decode(&mut Reader::new(&bytes));
            let _ = Option::<f64>::decode(&mut Reader::new(&bytes));
            let _ = ArtifactReader::new(&bytes[..], *b"CERESTST", 1)
                .and_then(|mut ar| ar.section(1, "fuzz"));
        }

        #[test]
        fn prop_f32_bits_round_trip(bits in 0u32..u32::MAX) {
            let v = f32::from_bits(bits);
            let mut w = Writer::new();
            w.put_f32(v);
            let bytes = w.into_bytes();
            prop_assert_eq!(
                Reader::new(&bytes).get_f32("f").unwrap().to_bits(),
                bits
            );
        }
    }
}
